"""Command-line interface: ``python -m repro <command>``.

Every paper artifact is reachable from the shell without writing code:

- ``python -m repro datasets`` — list the registered synthetic datasets;
- ``python -m repro table1`` — regenerate Table I (with paper reference);
- ``python -m repro fig1`` — the heterogeneity measurement;
- ``python -m repro fig4 --dataset amazon670k-bench`` — the 4-method grid;
- ``python -m repro fig5`` — Adaptive vs SLIDE scalability;
- ``python -m repro fig6`` — batch-scaling / perturbation telemetry;
- ``python -m repro allreduce`` — the §IV merge comparison;
- ``python -m repro train`` — one Adaptive SGD run with a trace summary,
  optionally saved with ``--save <stem>``;
- ``python -m repro trace`` — run a grid with telemetry enabled and export
  a Chrome/Perfetto timeline + JSONL event stream + summary tables
  (``--summary`` prints the time-attribution table instead of writing
  files);
- ``python -m repro analyze <trace>`` — time attribution, straggler /
  critical-path diagnosis, and convergence findings for a recorded trace
  (JSONL or Chrome archive; ``--json`` for machine output, ``--promtext``
  for a Prometheus exposition file);
- ``python -m repro compare <a> <b>`` — align two recorded runs and report
  per-phase deltas, time-to-accuracy delta, and regressions;
- ``python -m repro snapshot`` — train a model and persist it as a
  versioned serving snapshot (``STEM.snapshot.json`` + ``.npz``);
- ``python -m repro serve`` — replay an open-loop request stream against a
  snapshot on the simulated server and print the p50/p95/p99 latency +
  throughput report (``--mode both`` compares sequential vs adaptive
  micro-batching; ``--mode auto`` adds the per-batch cost-model crossover
  between exact and LSH scoring; ``--scoring exact|lsh|auto`` picks the
  ranking path explicitly — ``--lsh`` is the deprecated spelling of
  ``--scoring lsh`` — and the approximate paths report recall vs the
  exact top-k).

- ``python -m repro runs <verb>`` — the cross-run registry: ``ls`` /
  ``show`` / ``diff`` (same comparison engine as ``repro compare``) /
  ``history`` (metric sparkline across runs) / ``gc``. ``train``,
  ``trace``, and ``serve`` register their artifacts when ``--registry
  DIR`` (or ``$REPRO_REGISTRY``) names an index root, and ``analyze`` /
  ``compare`` accept registry run ids wherever they accept trace paths.

Time budgets use the canonical ``--time-budget-s`` flag (matching the
Python API's ``time_budget_s`` keyword); the old ``--budget`` spelling is a
deprecated alias.
"""

from __future__ import annotations

import argparse
import sys
import warnings
from typing import List, Optional

from repro.data.registry import dataset_names
from repro.gpu.profiles import churn_preset_names
from repro.harness.figures import (
    PAPER_TABLE1,
    allreduce_comparison,
    default_config_for,
    fig1_heterogeneity,
    fig4_time_to_accuracy,
    fig5_scalability,
    fig6_adaptivity,
    table1_rows,
)
from repro.harness.report import (
    render_allreduce,
    render_fig1,
    render_fig6,
    render_table1,
    render_tta_curves,
    render_tta_summary,
)

__all__ = ["main", "build_parser"]


class _BudgetAction(argparse.Action):
    """Store the time budget; warn when set via the deprecated spelling."""

    def __call__(self, parser, namespace, values, option_string=None):
        if option_string == "--budget":
            warnings.warn(
                "--budget is deprecated; use --time-budget-s",
                DeprecationWarning,
                stacklevel=2,
            )
        setattr(namespace, self.dest, values)


def _add_time_budget(p: argparse.ArgumentParser, default: float) -> None:
    """The canonical ``--time-budget-s`` flag (+ deprecated ``--budget``)."""
    p.add_argument(
        "--time-budget-s", "--budget",
        dest="time_budget_s", type=float, default=default,
        action=_BudgetAction, metavar="SECONDS",
        help="simulated seconds per run (deprecated alias: --budget)",
    )


def _add_registry(p: argparse.ArgumentParser, *, write: bool) -> None:
    """The ``--registry DIR`` flag shared by every registry-aware command.

    Write-side commands (train/trace/serve) register only when the flag or
    ``$REPRO_REGISTRY`` names a root; read-side commands additionally fall
    back to ``.repro-runs``.
    """
    if write:
        help_text = (
            "register this run in the cross-run index at DIR "
            "(default: $REPRO_REGISTRY, else no registration)"
        )
    else:
        help_text = (
            "run-registry root (default: $REPRO_REGISTRY, else .repro-runs)"
        )
    p.add_argument("--registry", metavar="DIR", default=None, help=help_text)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Adaptive Optimization for Sparse Data on "
                    "Heterogeneous GPUs' (IPDPSW 2022).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list registered synthetic datasets")

    p = sub.add_parser("table1", help="regenerate Table I")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("fig1", help="per-GPU heterogeneity measurement")
    p.add_argument("--gpus", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)

    for name, help_text in (
        ("fig4", "time-to-accuracy for all methods"),
        ("fig5", "Adaptive SGD vs SLIDE scalability"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--dataset", default="amazon670k-bench",
                       choices=dataset_names())
        _add_time_budget(p, 0.3)
        p.add_argument("--gpus", type=int, nargs="+", default=[1, 2, 4])
        p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("fig6", help="batch scaling + perturbation telemetry")
    p.add_argument("--dataset", default="amazon670k-bench",
                   choices=dataset_names())
    _add_time_budget(p, 0.3)
    p.add_argument("--gpus", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)

    sub.add_parser("allreduce", help="ring vs tree merge comparison (§IV)")

    p = sub.add_parser("train", help="run Adaptive SGD once")
    p.add_argument("--dataset", default="amazon670k-bench",
                   choices=dataset_names())
    _add_time_budget(p, 0.3)
    p.add_argument("--gpus", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--save", metavar="STEM",
                   help="save the trace as STEM.json + STEM.npz")
    p.add_argument("--snapshot", metavar="STEM",
                   help="also save the trained model as a serving snapshot "
                        "(STEM.snapshot.json + STEM.snapshot.npz)")
    p.add_argument("--store", metavar="DIR",
                   help="publish the trained model into a snapshot store at "
                        "DIR (`repro serve DIR` hot-swaps versions from it)")
    p.add_argument("--publish-every-s", type=float, default=None,
                   metavar="S",
                   help="with --store: publish a version every S simulated "
                        "seconds during the run (checkpoint-aligned), not "
                        "just once at the end")
    p.add_argument("--churn", default=None, choices=churn_preset_names(),
                   metavar="PROFILE",
                   help="train on an elastic cluster: apply this seeded "
                        "device-lifecycle profile (join/leave/fail/throttle "
                        "events over the time budget; see "
                        "repro.gpu.profiles.CHURN_PRESETS)")
    _add_registry(p, write=True)

    p = sub.add_parser(
        "trace",
        help="run a grid with telemetry; export Chrome trace + JSONL",
    )
    p.add_argument("--dataset", default="micro", choices=dataset_names())
    _add_time_budget(p, 0.05)
    p.add_argument("--gpus", type=int, nargs="+", default=[4])
    p.add_argument(
        "--algorithms", nargs="+", default=["adaptive"],
        help="algorithm names (see repro.api.trainer_names)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--out", metavar="STEM", default="repro-trace",
        help="output stem: STEM.trace.json + STEM.telemetry.jsonl",
    )
    p.add_argument(
        "--summary", action="store_true",
        help="print the time-attribution analysis instead of writing files",
    )
    _add_registry(p, write=True)

    p = sub.add_parser(
        "analyze",
        help="time attribution + straggler + convergence findings for a trace",
    )
    p.add_argument(
        "trace",
        help="a .telemetry.jsonl / .trace.json archive, a result-set "
             "directory containing telemetry.jsonl, or a registry run id "
             "(resolved through --registry)",
    )
    p.add_argument(
        "--run", type=int, default=None,
        help="analyze only this run index (default: every run in the "
             "trace, or the indexed run for a registry run id)",
    )
    p.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the analysis as sorted JSON instead of tables",
    )
    p.add_argument(
        "--promtext", metavar="PATH", default=None,
        help="also write a Prometheus text exposition of final metrics",
    )
    p.add_argument(
        "--width", type=int, default=64,
        help="utilization timeline width in characters",
    )
    _add_registry(p, write=False)

    p = sub.add_parser(
        "snapshot",
        help="train a model and save it as a serving snapshot",
    )
    p.add_argument("stem", metavar="STEM",
                   help="output stem: STEM.snapshot.json + STEM.snapshot.npz")
    p.add_argument("--dataset", default="micro", choices=dataset_names())
    p.add_argument("--algorithm", default="adaptive",
                   help="trainer registry name (see repro.api.trainer_names)")
    _add_time_budget(p, 0.3)
    p.add_argument("--gpus", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "serve",
        help="replay an open-loop load against a snapshot; print latency",
    )
    p.add_argument("snapshot", metavar="STEM",
                   help="snapshot stem (or .snapshot.json path) to serve, "
                        "or a snapshot-store directory (versions published "
                        "on the sim clock then hot-swap in mid-run)")
    p.add_argument("--dataset", default=None, choices=dataset_names(),
                   help="query source (default: the snapshot's dataset)")
    p.add_argument("--mode", default="both",
                   choices=("sequential", "adaptive", "both", "auto"),
                   help="batching mode; 'auto' = adaptive micro-batching "
                        "with the cost-model exact/LSH scoring crossover")
    p.add_argument("--requests", type=int, default=2000,
                   help="number of requests to replay")
    p.add_argument("--rate", type=float, default=None, metavar="RPS",
                   help="offered load (default: ~10x one device's "
                        "sequential capacity, i.e. saturating)")
    p.add_argument("--pattern", default="poisson",
                   choices=("poisson", "burst"))
    p.add_argument("--slo-ms", type=float, default=2.0,
                   help="per-batch latency target for the adaptive sizer")
    p.add_argument("--k", type=int, default=5,
                   help="labels returned per query")
    p.add_argument("--scoring", default=None,
                   choices=("exact", "lsh", "auto"),
                   help="ranking path per batch: exact dense top-k, the "
                        "batched LSH pipeline, or per-batch cost-model "
                        "crossover (default: exact)")
    p.add_argument("--lsh", action="store_true",
                   help="[deprecated: use --scoring lsh] serve through the "
                        "LSH-accelerated sparse path "
                        "and report recall vs exact")
    p.add_argument("--max-queue-depth", type=int, default=None,
                   metavar="N",
                   help="admission-control cap: arrivals beyond N queued "
                        "requests are shed (default: unbounded; 256 with "
                        "--tenants)")
    p.add_argument("--tenants", action="store_true",
                   help="run the multi-tenant noisy-neighbor scenario: a "
                        "class-0 victim tenant at 30%% of cluster capacity "
                        "vs a class-1 aggressor at --aggressor-factor x its "
                        "fair share, solo vs contended, with the per-tenant "
                        "p99 isolation ratio and fairness printed")
    p.add_argument("--aggressor-factor", type=float, default=10.0,
                   metavar="X",
                   help="aggressor offered load as a multiple of its fair "
                        "share (default: 10)")
    p.add_argument("--gpus", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--churn", default=None, choices=churn_preset_names(),
                   metavar="PROFILE",
                   help="serve on an elastic cluster: apply this seeded "
                        "device-lifecycle profile over the arrival window "
                        "(see repro.gpu.profiles.CHURN_PRESETS)")
    p.add_argument("--autoscale", action="store_true",
                   help="enable the queue-depth autoscaler (admit/retire "
                        "devices through the membership event stream)")
    p.add_argument("--out", metavar="STEM", default=None,
                   help="also export serving telemetry: STEM.trace.json + "
                        "STEM.telemetry.jsonl (feed to `repro analyze`)")
    _add_registry(p, write=True)

    p = sub.add_parser(
        "compare",
        help="align two recorded runs: per-phase deltas + TTA + regressions",
    )
    p.add_argument("baseline",
                   help="baseline trace archive (or registry run id)")
    p.add_argument("candidate",
                   help="candidate trace archive (or registry run id)")
    p.add_argument(
        "--run-a", type=int, default=None,
        help="run index inside the baseline trace (default 0, or the "
             "indexed run for a registry run id)",
    )
    p.add_argument(
        "--run-b", type=int, default=None,
        help="run index inside the candidate trace (default 0, or the "
             "indexed run for a registry run id)",
    )
    p.add_argument(
        "--target", type=float, default=None,
        help="accuracy target for the TTA delta "
             "(default: the best accuracy both runs reached)",
    )
    p.add_argument(
        "--noise", type=float, default=0.05,
        help="relative threshold below which a phase delta is jitter",
    )
    p.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the comparison as sorted JSON instead of tables",
    )
    _add_registry(p, write=False)

    p = sub.add_parser(
        "runs",
        help="query the cross-run index: ls/show/diff/history/gc",
    )
    runs_sub = p.add_subparsers(dest="runs_command", required=True)

    q = runs_sub.add_parser("ls", help="list indexed runs, newest first")
    q.add_argument("--kind", default=None,
                   choices=("train", "serve", "bench"),
                   help="only runs of this kind")
    q.add_argument("--tag", default=None,
                   help="only runs carrying this tag (e.g. bench:hotpath)")
    q.add_argument("--status", default=None, choices=("green", "red"))
    q.add_argument("--limit", type=int, default=20,
                   help="newest N runs (default 20; 0 = all)")
    q.add_argument("--json", action="store_true", dest="as_json")
    _add_registry(q, write=False)

    q = runs_sub.add_parser("show", help="one run's manifest + metrics")
    q.add_argument("run_id")
    q.add_argument("--json", action="store_true", dest="as_json")
    _add_registry(q, write=False)

    q = runs_sub.add_parser(
        "diff",
        help="compare two indexed runs (same engine as `repro compare`)",
    )
    q.add_argument("run_a", help="baseline run id (or trace path)")
    q.add_argument("run_b", help="candidate run id (or trace path)")
    q.add_argument("--target", type=float, default=None,
                   help="accuracy target for the TTA delta")
    q.add_argument("--noise", type=float, default=0.05,
                   help="relative threshold below which a delta is jitter")
    q.add_argument("--json", action="store_true", dest="as_json")
    _add_registry(q, write=False)

    q = runs_sub.add_parser(
        "history",
        help="a metric's trajectory across runs, as a sparkline",
    )
    q.add_argument("metric",
                   help="indexed metric name (e.g. duration_s, "
                        "throughput_rps, sections/gather/speedup)")
    q.add_argument("--kind", default=None,
                   choices=("train", "serve", "bench"))
    q.add_argument("--tag", default=None,
                   help="only runs carrying this tag (e.g. bench:hotpath)")
    q.add_argument("--limit", type=int, default=64,
                   help="newest N runs (default 64; 0 = all)")
    q.add_argument("--width", type=int, default=64,
                   help="sparkline width in characters")
    q.add_argument("--json", action="store_true", dest="as_json")
    _add_registry(q, write=False)

    q = runs_sub.add_parser(
        "gc",
        help="delete old runs (never CI-baseline or pinned ones)",
    )
    q.add_argument("--keep", type=int, default=20,
                   help="newest runs to keep per kind (default 20)")
    q.add_argument("--dry-run", action="store_true",
                   help="print what would be deleted without deleting")
    _add_registry(q, write=False)

    return parser


def _write_registry(args):
    """The registry a train/trace/serve run registers into, or ``None``.

    Registration is opt-in: only an explicit ``--registry`` or the
    ``$REPRO_REGISTRY`` environment variable activates it.
    """
    from repro.registry import default_registry

    return default_registry(args.registry, fallback=False)


def _read_registry(args):
    """The registry a read-side verb queries (falls back to .repro-runs).

    Raises ``ConfigurationError`` when no index exists at the resolved
    root — read verbs never mint an empty database.
    """
    from repro.registry import default_registry

    return default_registry(args.registry, create=False, fallback=True)


def _resolve_trace_source(value, registry_path):
    """Resolve a trace argument that may be a path or a registry run id.

    Returns ``(source, run_index, run_id)``: the loadable trace source,
    the indexed run index inside it (``None`` when the argument was a
    plain path), and the resolved run id (``None`` for paths). Existing
    paths always win — a file named like a run id stays a file.
    """
    from pathlib import Path

    from repro.exceptions import ConfigurationError
    from repro.registry import default_registry

    if Path(value).exists():
        return value, None, None
    try:
        registry = default_registry(
            registry_path, create=False, fallback=True
        )
    except ConfigurationError:
        registry = None
    if registry is not None and registry.contains(value):
        record = registry.get(value)
        trace = registry.resolve_trace(value)
        index = record.manifest.get("trace_run_index")
        return str(trace), (int(index) if index is not None else None), value
    return value, None, None


def _comparison_json(cmp) -> str:
    """The one serialization both ``compare --json`` and ``runs diff
    --json`` print — byte-identical by construction."""
    import json

    return json.dumps(cmp.as_dict(), indent=2, sort_keys=True, allow_nan=False)


def _cmd_runs(args) -> int:
    """The ``repro runs`` verbs: ls / show / diff / history / gc."""
    import json

    from repro.exceptions import ConfigurationError, DataFormatError

    try:
        registry = _read_registry(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.runs_command == "ls":
        records = registry.list(
            kind=args.kind, tag=args.tag, status=args.status,
            limit=args.limit or None,
        )
        if args.as_json:
            print(json.dumps(
                [r.as_dict() for r in records],
                indent=2, sort_keys=True, allow_nan=False,
            ))
        else:
            from repro.harness.report import render_runs_table

            print(render_runs_table(records))
        return 0

    if args.runs_command == "show":
        try:
            record = registry.get(args.run_id)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if args.as_json:
            print(json.dumps(
                record.as_dict(), indent=2, sort_keys=True, allow_nan=False,
            ))
        else:
            from repro.harness.report import render_run_show

            print(render_run_show(record))
        return 0

    if args.runs_command == "diff":
        from repro.telemetry.compare import diff_runs

        try:
            src_a, idx_a, _ = _resolve_trace_source(args.run_a, args.registry)
            src_b, idx_b, _ = _resolve_trace_source(args.run_b, args.registry)
            cmp = diff_runs(
                src_a, src_b,
                run_a=idx_a or 0, run_b=idx_b or 0,
                target=args.target, noise=args.noise,
            )
        except (ConfigurationError, DataFormatError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if args.as_json:
            print(_comparison_json(cmp))
        else:
            from repro.harness.report import render_comparison

            print(render_comparison(cmp))
        return 0

    if args.runs_command == "history":
        history = registry.metric_history(
            args.metric, kind=args.kind, tag=args.tag,
            limit=args.limit or None,
        )
        if args.as_json:
            print(json.dumps(
                {
                    "metric": args.metric,
                    "history": [
                        {"run_id": run_id, "value": value}
                        for run_id, value in history
                    ],
                },
                indent=2, sort_keys=True, allow_nan=False,
            ))
        else:
            from repro.harness.report import render_metric_history

            print(render_metric_history(
                args.metric, history, width=args.width,
            ))
        return 0

    if args.runs_command == "gc":
        doomed = registry.gc(keep=args.keep, dry_run=args.dry_run)
        verb = "would delete" if args.dry_run else "deleted"
        print(f"{verb} {len(doomed)} run(s)")
        for run_id in doomed:
            print(run_id)
        return 0

    return 2  # pragma: no cover - unreachable with required=True


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "datasets":
        for name in dataset_names():
            print(name)
        return 0

    if args.command == "table1":
        print(render_table1(table1_rows(seed=args.seed), PAPER_TABLE1))
        return 0

    if args.command == "fig1":
        rows = fig1_heterogeneity(n_gpus=args.gpus, seed=args.seed)
        print(render_fig1(rows))
        return 0

    if args.command == "fig4":
        traces = fig4_time_to_accuracy(
            args.dataset, gpu_counts=tuple(args.gpus),
            time_budget_s=args.time_budget_s, seed=args.seed,
        )
        print(render_tta_curves(traces, title=f"Figure 4 — {args.dataset}"))
        print()
        print(render_tta_summary(list(traces.values())))
        return 0

    if args.command == "fig5":
        traces = fig5_scalability(
            args.dataset, gpu_counts=tuple(args.gpus),
            time_budget_s=args.time_budget_s, seed=args.seed,
        )
        print(render_tta_curves(traces, title=f"Figure 5a — {args.dataset}"))
        print()
        print(render_tta_curves(
            traces, x="epochs", title=f"Figure 5b — {args.dataset}"
        ))
        return 0

    if args.command == "fig6":
        result = fig6_adaptivity(
            args.dataset, n_gpus=args.gpus,
            time_budget_s=args.time_budget_s, seed=args.seed,
        )
        print(render_fig6(result))
        return 0

    if args.command == "allreduce":
        print(render_allreduce(allreduce_comparison()))
        return 0

    if args.command == "train":
        from repro.api import make_trainer
        from repro.harness.experiment import ExperimentSpec
        from repro.utils.tables import format_kv

        spec = ExperimentSpec(
            dataset=args.dataset,
            algorithms=("adaptive",),
            gpu_counts=(args.gpus,),
            time_budget_s=args.time_budget_s,
            config=default_config_for(args.dataset),
            seed=args.seed,
        )
        if args.publish_every_s is not None and not args.store:
            print("error: --publish-every-s requires --store", file=sys.stderr)
            return 1
        registry = _write_registry(args)
        tel = None
        if registry is not None:
            from repro.telemetry import Telemetry

            tel = Telemetry(label=f"train-{args.dataset}")
        membership = None
        server = None
        if args.churn:
            from repro.elastic import ClusterMembership

            server = spec.build_server(args.gpus)
            membership = ClusterMembership(
                server, args.churn,
                duration_s=args.time_budget_s, seed=args.seed,
            )
        trainer = make_trainer(
            "adaptive", spec, telemetry=tel,
            server=server, membership=membership,
        )
        store = None
        if args.store:
            from repro.serve import SnapshotStore

            store = SnapshotStore(args.store)
            if args.publish_every_s is not None:
                trainer.publish_snapshot(
                    store, every_s=args.publish_every_s,
                    time_budget_s=args.time_budget_s,
                )
        trace = trainer.run(time_budget_s=args.time_budget_s)
        print(format_kv({
            "dataset": args.dataset,
            "gpus": args.gpus,
            "best accuracy": trace.best_accuracy,
            "final accuracy": trace.final_accuracy,
            "epochs": trace.total_epochs,
            "mega-batches": len(trace.batch_size_history),
            "perturbation frequency": trace.perturbation_frequency(),
        }))
        if membership is not None:
            summary = membership.summary()
            by_kind = " ".join(
                f"{k}={n}" for k, n in sorted(summary["by_kind"].items())
            )
            print(format_kv({
                "churn profile": args.churn,
                "membership events": (
                    f"{summary['n_applied']} applied, "
                    f"{summary['n_suppressed']} suppressed"
                ),
                "by kind": by_kind or "none",
                "final devices": summary["final_devices"],
                "updates merged/discarded": (
                    f"{summary['updates_merged']}/"
                    f"{summary['updates_discarded']}"
                ),
            }))
        if args.save:
            from repro.harness.store import save_trace

            json_path, npz_path = save_trace(trace, args.save)
            print(f"saved: {json_path} {npz_path}")
        if args.snapshot:
            header = trainer.save_snapshot(
                args.snapshot, time_budget_s=args.time_budget_s,
            )
            print(f"snapshot: {header}")
        if store is not None:
            if args.publish_every_s is None:
                trainer.publish_snapshot(
                    store, time_budget_s=args.time_budget_s,
                )
            print(
                f"store: {store.root} (versions "
                f"{' '.join(f'v{v}' for v in store.versions())})"
            )
        if registry is not None:
            from repro.registry import record_train_run

            run_id = record_train_run(
                registry, trace, telemetry=tel, spec=spec,
            )
            print(f"registered: {run_id} (registry {registry.root})")
        return 0

    if args.command == "trace":
        from pathlib import Path

        from repro.harness.experiment import ExperimentSpec, run_experiment
        from repro.harness.report import render_telemetry_summary
        from repro.telemetry import Telemetry
        from repro.telemetry.export import write_chrome_trace, write_jsonl

        spec = ExperimentSpec(
            dataset=args.dataset,
            algorithms=tuple(args.algorithms),
            gpu_counts=tuple(args.gpus),
            time_budget_s=args.time_budget_s,
            config=default_config_for(args.dataset),
            seed=args.seed,
        )
        tel = Telemetry(label=args.out)
        registry = _write_registry(args)
        run_experiment(spec, telemetry=tel, registry=registry)
        if registry is not None:
            print(f"registered grid in {registry.root}", file=sys.stderr)
        if args.summary:
            from repro.harness.report import render_analysis

            print(render_telemetry_summary(tel))
            print()
            print(render_analysis(tel))
            return 0
        stem = Path(args.out)
        chrome = write_chrome_trace(tel, stem.parent / f"{stem.name}.trace.json")
        jsonl = write_jsonl(tel, stem.parent / f"{stem.name}.telemetry.jsonl")
        print(render_telemetry_summary(tel))
        print()
        print(f"chrome trace: {chrome}")
        print(f"event stream: {jsonl}")
        print(
            "open the trace in Perfetto (https://ui.perfetto.dev) or "
            "chrome://tracing — one process per run, one thread per device"
        )
        return 0

    if args.command == "analyze":
        import json

        from repro.exceptions import ConfigurationError, DataFormatError
        from repro.telemetry.trace_data import load_trace_data

        try:
            source, run_index, run_id = _resolve_trace_source(
                args.trace, args.registry
            )
            run = args.run if args.run is not None else run_index
            data = load_trace_data(source)
        except (ConfigurationError, DataFormatError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if args.as_json:
            from repro.telemetry.analyze import analyze_report

            print(json.dumps(
                analyze_report(data, run=run),
                indent=2, sort_keys=True, allow_nan=False,
            ))
        else:
            from repro.harness.report import render_analysis

            print(render_analysis(data, run=run, width=args.width))
        if args.promtext:
            from repro.telemetry.promtext import write_promtext

            path = write_promtext(data, args.promtext, run_id=run_id)
            print(f"prometheus exposition: {path}", file=sys.stderr)
        return 0

    if args.command == "snapshot":
        from repro.api import make_trainer
        from repro.harness.experiment import ExperimentSpec
        from repro.utils.tables import format_kv

        spec = ExperimentSpec(
            dataset=args.dataset,
            algorithms=(args.algorithm,),
            gpu_counts=(args.gpus,),
            time_budget_s=args.time_budget_s,
            config=default_config_for(args.dataset),
            seed=args.seed,
        )
        trainer = make_trainer(args.algorithm, spec)
        trace = trainer.run(time_budget_s=args.time_budget_s)
        header = trainer.save_snapshot(
            args.stem, time_budget_s=args.time_budget_s,
        )
        print(format_kv({
            "dataset": args.dataset,
            "algorithm": args.algorithm,
            "final accuracy": trace.final_accuracy,
            "parameters": trainer.arch.n_params,
            "snapshot": str(header),
        }))
        return 0

    if args.command == "serve":
        import warnings
        from pathlib import Path

        from repro.api import make_engine
        from repro.data.registry import load_task
        from repro.exceptions import ReproError
        from repro.gpu.cluster import make_server
        from repro.gpu.cost import GpuCostParams
        from repro.serve import (
            LoadSpec,
            ModelSnapshot,
            ServingConfig,
            SnapshotStore,
            generate_arrivals,
            sample_query_rows,
        )
        from repro.serve.store import MANIFEST_NAME
        from repro.telemetry import Telemetry
        from repro.utils.tables import format_kv

        source_path = Path(args.snapshot)
        store = None
        try:
            if (source_path / MANIFEST_NAME).exists():
                store = SnapshotStore(source_path, create=False)
                base_version = store.version_at(0.0)
                if base_version is None:
                    print(
                        f"error: snapshot store {store.root} is empty",
                        file=sys.stderr,
                    )
                    return 1
                snapshot = store.load(base_version)
            else:
                snapshot = ModelSnapshot.load(args.snapshot)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        dataset = args.dataset or str(snapshot.meta.get("dataset", "micro"))
        task = load_task(dataset, seed=args.seed)
        if task.n_features != snapshot.arch.n_features:
            print(
                f"error: dataset {dataset!r} has {task.n_features} features "
                f"but the snapshot expects {snapshot.arch.n_features}",
                file=sys.stderr,
            )
            return 1
        cost_params = GpuCostParams.tiny_model_profile()

        def fresh_server():
            return make_server(
                args.gpus, heterogeneity="het",
                cost_params=cost_params, seed=args.seed,
            )

        scoring = args.scoring
        if args.lsh:
            # The deprecation text lives in ServingConfig.from_options (the
            # single validation layer); the CLI only surfaces it on stderr.
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always", DeprecationWarning)
                remapped = ServingConfig.from_options(
                    use_lsh=True, scoring=scoring,
                )
            for w in caught:
                print(f"note: {w.message}", file=sys.stderr)
            scoring = remapped.scoring
        if args.mode == "auto":
            # Sugar: adaptive micro-batching + the scoring crossover.
            modes = ("adaptive",)
            if scoring is None:
                scoring = "auto"
        elif args.mode == "both":
            modes = ("sequential", "adaptive")
        else:
            modes = (args.mode,)
        if scoring is None:
            scoring = "exact"

        registry = _write_registry(args)
        tel = (
            Telemetry(label=f"serve-{dataset}")
            if (args.out or registry is not None) else None
        )

        if args.tenants and (args.churn or args.autoscale):
            print(
                "error: --churn/--autoscale are not supported with "
                "--tenants (the noisy-neighbor scenario pins its cluster)",
                file=sys.stderr,
            )
            return 1

        if args.tenants:
            import numpy as np

            from repro.serve import TenantLoad, generate_multi_tenant_arrivals

            depth = (
                args.max_queue_depth
                if args.max_queue_depth is not None else 256
            )

            def tenant_engine():
                config = ServingConfig.from_options(
                    mode="adaptive",
                    target_latency_s=args.slo_ms * 1e-3,
                    class_slo_ms={0: args.slo_ms, 1: args.slo_ms},
                    scoring=scoring,
                    k=args.k,
                    lsh_seed=args.seed,
                    max_queue_depth=depth,
                )
                return make_engine(
                    store if store is not None else snapshot,
                    config=config, server=fresh_server(), telemetry=tel,
                )

            try:
                solo_engine = tenant_engine()
                noisy_engine = tenant_engine()
            except ReproError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            probe = solo_engine.predictor.workload(task.test.X[:1])
            per_request = solo_engine.server.gpus[0].cost_model.inference_time(
                probe, n_active_gpus=args.gpus,
            )
            capacity = args.gpus / per_request
            victim_rate = 0.3 * capacity
            fair_share = capacity / 2.0
            aggressor_rate = args.aggressor_factor * fair_share
            n_victim = args.requests
            duration = n_victim / victim_rate
            n_aggressor = max(1, int(aggressor_rate * duration))
            victim_load = TenantLoad(
                "victim",
                LoadSpec(
                    n_requests=n_victim, rate_rps=victim_rate,
                    pattern=args.pattern, seed=args.seed,
                ),
                priority_class=0,
            )
            aggressor_load = TenantLoad(
                "aggressor",
                LoadSpec(
                    n_requests=n_aggressor, rate_rps=aggressor_rate,
                    pattern=args.pattern, seed=args.seed + 1,
                ),
                priority_class=1,
            )
            solo_arrivals = generate_arrivals(victim_load.spec)
            solo = solo_engine.serve(
                task.test.X, solo_arrivals, k=args.k,
                row_indices=sample_query_rows(
                    task.test.X.shape[0], n_victim, seed=args.seed
                ),
                tenants=np.full(n_victim, "victim", dtype=object),
                priority_classes=np.zeros(n_victim, dtype=int),
            )
            times, names, classes = generate_multi_tenant_arrivals(
                [victim_load, aggressor_load]
            )
            noisy = noisy_engine.serve(
                task.test.X, times, k=args.k,
                row_indices=sample_query_rows(
                    task.test.X.shape[0], times.size, seed=args.seed
                ),
                tenants=names, priority_classes=classes,
            )
            solo_p99 = solo.tenants["victim"]["latency_p99_ms"]
            noisy_p99 = noisy.tenants["victim"]["latency_p99_ms"]
            print("-- multi-tenant noisy neighbor --")
            print(format_kv({
                "victim rate (rps)": round(victim_rate, 1),
                "aggressor rate (rps)": round(aggressor_rate, 1),
                "aggressor factor (x fair share)": args.aggressor_factor,
                "victim p99 solo (ms)": round(solo_p99, 4),
                "victim p99 contended (ms)": round(noisy_p99, 4),
                "isolation ratio": round(noisy_p99 / solo_p99, 3),
                "fairness (max/min throughput)": (
                    round(noisy.fairness, 3)
                    if noisy.fairness is not None else "n/a"
                ),
                "max queue depth": noisy.max_queue_depth,
            }))
            for name, stats in sorted(noisy.tenants.items()):
                print(format_kv({
                    f"{name} completed": stats["completed"],
                    f"{name} throughput (rps)": round(
                        stats["throughput_rps"], 1
                    ),
                    f"{name} p50 (ms)": round(stats["latency_p50_ms"], 4),
                    f"{name} p99 (ms)": round(stats["latency_p99_ms"], 4),
                    f"{name} shed": stats["n_shed"],
                }))
            if args.out and tel is not None:
                from repro.telemetry.export import (
                    write_chrome_trace,
                    write_jsonl,
                )

                stem = Path(args.out)
                chrome = write_chrome_trace(
                    tel, stem.parent / f"{stem.name}.trace.json"
                )
                jsonl = write_jsonl(
                    tel, stem.parent / f"{stem.name}.telemetry.jsonl"
                )
                print(f"chrome trace: {chrome}")
                print(f"event stream: {jsonl}")
            if registry is not None:
                from repro.registry import record_serve_runs

                # The contended run is the scenario's result; it is
                # telemetry run 1 (the solo warm-up run is 0).
                run_ids = record_serve_runs(
                    registry, {"tenants": noisy}, telemetry=tel,
                    run_indices={"tenants": 1},
                    extra={"dataset": dataset, "scenario": "noisy-neighbor"},
                )
                print(
                    f"registered: {' '.join(run_ids)} "
                    f"(registry {registry.root})"
                )
            return 0

        engines = {}
        try:
            for mode in modes:
                config = ServingConfig.from_options(
                    mode=mode,
                    target_latency_s=args.slo_ms * 1e-3,
                    scoring=scoring,
                    k=args.k,
                    lsh_seed=args.seed,
                    max_queue_depth=args.max_queue_depth,
                    autoscale=args.autoscale,
                )
                engines[mode] = make_engine(
                    store if store is not None else snapshot,
                    config=config, server=fresh_server(), telemetry=tel,
                )
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        first = next(iter(engines.values()))

        if args.rate is not None:
            rate = args.rate
        elif store is not None and store.entries[-1].published_s > 0:
            # Span the training session's publish window (plus slack) so
            # every later version hot-swaps in mid-run.
            rate = args.requests / (store.entries[-1].published_s * 1.2)
        else:
            # Saturating default: ~10x the cluster's sequential capacity.
            probe = first.predictor.workload(task.test.X[:1])
            per_request = first.server.gpus[0].cost_model.inference_time(
                probe, n_active_gpus=args.gpus,
            )
            rate = 10.0 * args.gpus / per_request
        load = LoadSpec(
            n_requests=args.requests, rate_rps=rate,
            pattern=args.pattern, seed=args.seed,
        )
        arrivals = generate_arrivals(load)
        rows = sample_query_rows(
            task.test.X.shape[0], args.requests, seed=args.seed
        )

        results = {}
        if args.churn or args.autoscale:
            # The default 1 ms poll cadence is far coarser than a short
            # simulated arrival window; track the run's own timescale so
            # the autoscaler reacts while the queue still exists.
            span = float(arrivals[-1]) if float(arrivals[-1]) > 0 else 1.0
            for engine in engines.values():
                engine.config.membership_check_every_s = min(
                    engine.config.membership_check_every_s, span / 256.0
                )
        for mode, engine in engines.items():
            membership = None
            if args.churn or args.autoscale:
                from repro.elastic import ClusterMembership

                membership = ClusterMembership(
                    engine.server,
                    args.churn,
                    duration_s=(
                        float(arrivals[-1]) if args.churn else None
                    ),
                    seed=args.seed,
                )
            results[mode] = engine.serve(
                task.test.X, arrivals, k=args.k, row_indices=rows,
                canary_labels=task.test.Y if store is not None else None,
                membership=membership,
            )
        for mode, result in results.items():
            report = result.report
            print(f"-- {mode} --")
            rows_out = {
                "requests": report.n_requests,
                "offered load (rps)": round(rate, 1),
                "throughput (rps)": round(report.throughput_rps, 1),
                "p50 latency (ms)": round(report.percentile(50) * 1e3, 4),
                "p95 latency (ms)": round(report.percentile(95) * 1e3, 4),
                "p99 latency (ms)": round(report.percentile(99) * 1e3, 4),
                "mean batch size": round(report.mean_batch_size, 2),
                "max queue depth": result.max_queue_depth,
                "scoring": scoring,
            }
            if scoring == "auto":
                split = result.scoring_batches
                rows_out["scoring split (batches)"] = " ".join(
                    f"{path}={n}" for path, n in sorted(split.items())
                ) or "none"
            if result.mean_candidate_fraction is not None:
                rows_out["mean candidate fraction"] = round(
                    result.mean_candidate_fraction, 4
                )
            if store is not None:
                rows_out["hot swaps"] = (
                    f"{result.n_swaps} committed, "
                    f"{result.n_rollbacks} rolled back, "
                    f"{result.n_swap_failures} failed"
                )
                rows_out["versions served"] = " ".join(
                    f"v{v}={n}"
                    for v, n in sorted(result.versions_served.items())
                ) or "none"
                rows_out["mis-versioned"] = result.mis_versioned
            if args.max_queue_depth is not None:
                rows_out["shed requests"] = report.n_shed
            if result.final_devices is not None:
                rows_out["membership events"] = result.n_membership_events
                rows_out["final devices"] = result.final_devices
                if args.autoscale:
                    rows_out["autoscale admits/retires"] = (
                        f"{result.n_autoscale_admits}/"
                        f"{result.n_autoscale_retires}"
                    )
            print(format_kv(rows_out))
        if len(results) == 2:
            ratio = (
                results["adaptive"].report.throughput_rps
                / results["sequential"].report.throughput_rps
            )
            print(f"adaptive/sequential throughput: {ratio:.2f}x")
        if scoring in ("lsh", "auto"):
            sample = task.test.X[rows[: min(256, len(rows))]]
            recall = first.predictor.recall_at_k(sample, args.k)
            print(f"LSH recall@{args.k} vs exact: {recall:.3f}")
        if args.out and tel is not None:
            from pathlib import Path

            from repro.telemetry.export import write_chrome_trace, write_jsonl

            stem = Path(args.out)
            chrome = write_chrome_trace(
                tel, stem.parent / f"{stem.name}.trace.json"
            )
            jsonl = write_jsonl(
                tel, stem.parent / f"{stem.name}.telemetry.jsonl"
            )
            print(f"chrome trace: {chrome}")
            print(f"event stream: {jsonl}")
        if registry is not None:
            from repro.registry import record_serve_runs

            run_ids = record_serve_runs(
                registry, results, telemetry=tel,
                extra={"dataset": dataset, "scoring": scoring},
            )
            print(
                f"registered: {' '.join(run_ids)} (registry {registry.root})"
            )
        return 0

    if args.command == "compare":
        from repro.exceptions import ConfigurationError, DataFormatError
        from repro.telemetry.compare import diff_runs

        try:
            src_a, idx_a, _ = _resolve_trace_source(
                args.baseline, args.registry
            )
            src_b, idx_b, _ = _resolve_trace_source(
                args.candidate, args.registry
            )
            run_a = args.run_a if args.run_a is not None else (idx_a or 0)
            run_b = args.run_b if args.run_b is not None else (idx_b or 0)
            cmp = diff_runs(
                src_a, src_b, run_a=run_a, run_b=run_b,
                target=args.target, noise=args.noise,
            )
        except (ConfigurationError, DataFormatError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if args.as_json:
            print(_comparison_json(cmp))
        else:
            from repro.harness.report import render_comparison

            print(render_comparison(cmp))
        return 0

    if args.command == "runs":
        return _cmd_runs(args)

    return 2  # pragma: no cover - unreachable with required=True


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
