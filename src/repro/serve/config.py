"""ServingConfig: the one validated option surface for the serving stack.

Every way to build a serving engine — ``repro.api.make_engine``, the
``repro serve`` CLI, or constructing :class:`~repro.serve.engine.ServingEngine`
directly with keyword options — funnels through
:meth:`ServingConfig.from_options`. That makes this module the *single*
place where

- unknown options fail early with a :class:`~repro.exceptions.ConfigurationError`
  listing what is accepted (mirroring ``make_trainer``'s contract), and
- deprecated spellings (``use_lsh=True`` for ``scoring='lsh'``, which also
  backs the CLI's ``--lsh`` flag) emit one uniform ``DeprecationWarning``
  and remap.

The dataclass owns four option families:

- **batching** — dispatch mode, the per-batch latency SLO and the adaptive
  sizer's bounds/gain (:class:`~repro.serve.queue.AdaptiveBatchSizer`);
- **scoring** — exact / LSH / auto plus the LSH index geometry the
  predictor is built with;
- **multi-tenancy** — priority classes with per-class SLOs
  (``class_slo_ms`` drives one sizer per class per device), tenant WFQ
  weights, and admission control (``max_queue_depth`` capacity cap +
  ``admission_utilization`` graded shedding gate), all executed by
  :class:`~repro.serve.queue.TenantScheduler`;
- **continuous learning** — the hot-swap protocol: poll cadence, canary
  probe size, the tolerated recall@k drop and latency factor that trigger
  automatic rollback;
- **elastic membership** — the cadence at which the engine polls a
  :class:`~repro.elastic.membership.ClusterMembership` for lifecycle
  events, and the queue-depth autoscaler that admits/retires workers
  through the same membership object (``autoscale`` + hysteresis
  thresholds).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields
from typing import Dict, Optional

from repro.exceptions import ConfigurationError

__all__ = ["ServingConfig", "SERVE_MODES", "SCORING_MODES"]

SERVE_MODES = ("sequential", "adaptive")
SCORING_MODES = ("exact", "lsh", "auto")


@dataclass
class ServingConfig:
    """Validated options for one serving engine."""

    # -- batching ------------------------------------------------------------
    mode: str = "adaptive"
    #: Per-batch service-time SLO the adaptive sizer targets.
    target_latency_s: float = 2e-3
    b_min: int = 1
    b_max: int = 256
    beta: float = 0.5
    #: Dispatch size in ``sequential`` mode.
    fixed_batch_size: int = 1

    # -- scoring -------------------------------------------------------------
    scoring: str = "exact"
    #: Labels returned per query.
    k: int = 5
    lsh_tables: int = 24
    lsh_bits: int = 4
    lsh_probes: int = 1
    lsh_seed: int = 0
    #: Exact-path prediction chunk (rows per fused forward).
    chunk: int = 2048

    # -- admission control ---------------------------------------------------
    #: Queue-depth cap; arrivals beyond it are shed (counted, not silently
    #: queued). ``None`` keeps the unbounded legacy behaviour. Under
    #: pressure the scheduler sheds lowest-priority work first — see
    #: :class:`~repro.serve.queue.TenantScheduler`.
    max_queue_depth: Optional[int] = None
    #: Utilization threshold for graded load shedding: once estimated
    #: utilization reaches ``u + (1-u)(P-p)/P`` class ``p`` is shed at the
    #: door (class 0 never is). ``None`` disables the gate.
    admission_utilization: Optional[float] = None

    # -- multi-tenancy -------------------------------------------------------
    #: Number of priority classes (0 = most important). Auto-grown to cover
    #: the keys of ``class_slo_ms``.
    priority_classes: int = 1
    #: Per-class batch service-time SLO in **milliseconds**; classes without
    #: an entry fall back to ``target_latency_s``. Each class drives its own
    #: AdaptiveBatchSizer per device.
    class_slo_ms: Optional[Dict[int, float]] = None
    #: Tenant → WFQ weight (deficit-round-robin share within a class).
    #: Unlisted tenants weigh 1.0.
    tenant_weights: Optional[Dict[str, float]] = None
    #: DRR quantum: credits granted per rotation visit are
    #: ``wfq_quantum × weight``.
    wfq_quantum: float = 1.0

    # -- continuous learning (hot-swap) --------------------------------------
    #: Sim seconds between store polls by the swap manager.
    swap_check_every_s: float = 1e-3
    #: Probe queries for the post-swap recall canary.
    canary_queries: int = 64
    #: Max tolerated drop in labeled recall@k of the incoming version versus
    #: the outgoing one (measured host-side on a deterministic probe block;
    #: requires ``canary_labels`` at serve time). A larger drop triggers
    #: rollback. ``None`` disables the recall canary.
    canary_recall_drop: Optional[float] = 0.1
    #: Post-swap windowed p99 above ``factor × pre-swap p99`` triggers
    #: rollback. ``None`` disables the latency canary.
    canary_latency_factor: Optional[float] = None
    #: Completed requests needed on each side of a swap before the latency
    #: canary is trusted.
    canary_min_samples: int = 32

    # -- elastic membership ---------------------------------------------------
    #: Sim seconds between membership polls (lifecycle events + autoscaler
    #: decisions). Only consulted when a membership object is attached.
    membership_check_every_s: float = 1e-3
    #: Enable the queue-depth autoscaler: admit a device when the queue
    #: exceeds ``autoscale_high_depth``, retire the most recently
    #: autoscaler-admitted one when it falls to ``autoscale_low_depth``.
    autoscale: bool = False
    #: Queue depth at or above which the autoscaler admits one device.
    autoscale_high_depth: int = 64
    #: Queue depth at or below which the autoscaler retires one of its own
    #: admissions (never a baseline device).
    autoscale_low_depth: int = 4
    #: The autoscaler never retires below this many active devices.
    autoscale_min_devices: int = 1

    def __post_init__(self) -> None:
        if self.mode not in SERVE_MODES:
            raise ConfigurationError(
                f"mode must be one of {SERVE_MODES}, got {self.mode!r}"
            )
        if self.scoring not in SCORING_MODES:
            raise ConfigurationError(
                f"scoring must be one of {SCORING_MODES}, got {self.scoring!r}"
            )
        if not (self.target_latency_s > 0):
            raise ConfigurationError(
                f"target_latency_s must be > 0, got {self.target_latency_s}"
            )
        if not (1 <= self.b_min <= self.b_max):
            raise ConfigurationError(
                f"need 1 <= b_min <= b_max, got [{self.b_min}, {self.b_max}]"
            )
        if self.beta <= 0:
            raise ConfigurationError(f"beta must be > 0, got {self.beta}")
        if self.fixed_batch_size < 1:
            raise ConfigurationError(
                f"fixed_batch_size must be >= 1, got {self.fixed_batch_size}"
            )
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got {self.k}")
        for name in ("lsh_tables", "lsh_bits", "lsh_probes", "chunk"):
            if getattr(self, name) < 1:
                raise ConfigurationError(
                    f"{name} must be >= 1, got {getattr(self, name)}"
                )
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ConfigurationError(
                f"max_queue_depth must be >= 1 or None, "
                f"got {self.max_queue_depth}"
            )
        if self.admission_utilization is not None and not (
            0.0 < self.admission_utilization <= 1.0
        ):
            raise ConfigurationError(
                f"admission_utilization must be in (0, 1] or None, "
                f"got {self.admission_utilization}"
            )
        if self.priority_classes < 1:
            raise ConfigurationError(
                f"priority_classes must be >= 1, got {self.priority_classes}"
            )
        if self.class_slo_ms is not None:
            normalized = {}
            for key, slo in self.class_slo_ms.items():
                try:
                    cls_id = int(key)
                except (TypeError, ValueError):
                    raise ConfigurationError(
                        f"class_slo_ms keys must be class ints, got {key!r}"
                    )
                if cls_id < 0:
                    raise ConfigurationError(
                        f"class_slo_ms keys must be >= 0, got {cls_id}"
                    )
                if not (float(slo) > 0):
                    raise ConfigurationError(
                        f"class_slo_ms[{cls_id}] must be > 0, got {slo}"
                    )
                normalized[cls_id] = float(slo)
            self.class_slo_ms = normalized
            if normalized:
                self.priority_classes = max(
                    self.priority_classes, max(normalized) + 1
                )
        if self.tenant_weights is not None:
            for tenant, w in self.tenant_weights.items():
                if not (float(w) > 0):
                    raise ConfigurationError(
                        f"tenant_weights must be > 0, got {tenant!r}: {w}"
                    )
        if not (self.wfq_quantum > 0):
            raise ConfigurationError(
                f"wfq_quantum must be > 0, got {self.wfq_quantum}"
            )
        if not (self.swap_check_every_s > 0):
            raise ConfigurationError(
                f"swap_check_every_s must be > 0, got {self.swap_check_every_s}"
            )
        if self.canary_queries < 1:
            raise ConfigurationError(
                f"canary_queries must be >= 1, got {self.canary_queries}"
            )
        if self.canary_recall_drop is not None and not (
            0.0 <= self.canary_recall_drop < 1.0
        ):
            raise ConfigurationError(
                f"canary_recall_drop must be in [0, 1) or None, "
                f"got {self.canary_recall_drop}"
            )
        if self.canary_latency_factor is not None and not (
            self.canary_latency_factor > 1.0
        ):
            raise ConfigurationError(
                f"canary_latency_factor must be > 1 or None, "
                f"got {self.canary_latency_factor}"
            )
        if self.canary_min_samples < 1:
            raise ConfigurationError(
                f"canary_min_samples must be >= 1, "
                f"got {self.canary_min_samples}"
            )
        if not (self.membership_check_every_s > 0):
            raise ConfigurationError(
                f"membership_check_every_s must be > 0, "
                f"got {self.membership_check_every_s}"
            )
        if self.autoscale_low_depth < 0:
            raise ConfigurationError(
                f"autoscale_low_depth must be >= 0, "
                f"got {self.autoscale_low_depth}"
            )
        if self.autoscale_high_depth <= self.autoscale_low_depth:
            raise ConfigurationError(
                f"need autoscale_high_depth > autoscale_low_depth, got "
                f"[{self.autoscale_low_depth}, {self.autoscale_high_depth}]"
            )
        if self.autoscale_min_devices < 1:
            raise ConfigurationError(
                f"autoscale_min_devices must be >= 1, "
                f"got {self.autoscale_min_devices}"
            )

    @classmethod
    def option_names(cls) -> list:
        """Accepted keyword options, sorted (for error messages and docs)."""
        return sorted(f.name for f in fields(cls))

    @classmethod
    def from_options(cls, **options) -> "ServingConfig":
        """Build a config from keyword options — *the* validation layer.

        Handles the deprecated spellings uniformly (``use_lsh=True`` ⇒
        ``scoring='lsh'`` with a ``DeprecationWarning``; this also backs the
        CLI's ``--lsh`` flag) and rejects unknown options up front, before
        any engine or predictor is built.
        """
        if options.get("scoring") is None:
            options.pop("scoring", None)  # None means "unset", not a policy
        if "use_lsh" in options:
            use_lsh = options.pop("use_lsh")
            warnings.warn(
                "use_lsh is deprecated; pass scoring='lsh' instead",
                DeprecationWarning,
                stacklevel=2,
            )
            if use_lsh and "scoring" not in options:
                options["scoring"] = "lsh"
        known = {f.name for f in fields(cls)}
        unknown = sorted(k for k in options if k not in known)
        if unknown:
            raise ConfigurationError(
                f"ServingConfig got unknown option(s) {unknown}; "
                f"accepted: {cls.option_names()}"
            )
        return cls(**options)

    def class_target_latency_s(self, priority_class: int) -> float:
        """The batch service-time SLO (seconds) one class's sizer targets."""
        if self.class_slo_ms and priority_class in self.class_slo_ms:
            return self.class_slo_ms[priority_class] / 1e3
        return self.target_latency_s

    def as_dict(self) -> dict:
        """JSON-safe view (what telemetry and reports attach)."""
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        if out["class_slo_ms"] is not None:
            # JSON objects key on strings; keep the view round-trippable.
            out["class_slo_ms"] = {
                str(k): v for k, v in out["class_slo_ms"].items()
            }
        return out
