"""Request coalescing: the serving queue and the adaptive batch sizer.

The engine's dispatch rule is Clipper-style adaptive micro-batching driven
by the paper's Algorithm-1 update shape. Each device owns an
:class:`AdaptiveBatchSizer` holding a real-valued batch-size cap ``b``;
after every batch it executes the linear rule

    ``b ← b + β · b · (target − observed) / target``

where ``observed`` is the batch's *service* time (dispatch → completion)
and ``target`` is the per-batch latency SLO. Batches finishing under the
SLO grow the cap (more coalescing amortizes the fixed kernel-launch +
dispatch overhead); batches running over shrink it. Mirroring
:mod:`repro.core.scaling`, the bound check runs on the real-valued
proposal, the accepted value is rounded to the nearest integer for use,
and the real value is retained so sub-integer progress accumulates.

Observing service time — not queueing delay — keeps the feedback loop
stable: a backlog inflates queueing delay through no fault of the batch
size, and reacting to it would shrink batches exactly when the queue needs
draining (the classic micro-batching death spiral). Queue pressure instead
enters through the dispatch size ``min(cap, queue depth)``: the sizer sets
the ceiling, the queue sets the demand.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.exceptions import ConfigurationError, ServeError

__all__ = ["Request", "RequestQueue", "AdaptiveBatchSizer"]


@dataclass
class Request:
    """One inference query moving through the serving pipeline."""

    req_id: int
    #: Row index into the engine's query matrix.
    row: int
    #: Simulated arrival (enqueue) time.
    t_arrival: float
    #: Filled by the engine as the request advances.
    t_dispatch: Optional[float] = None
    t_done: Optional[float] = None
    device: Optional[int] = None
    #: Top-k label ids predicted for this request.
    labels: Optional[list] = None
    #: Model version this request was admitted under (pinning: the engine
    #: must score it against exactly this version, never a newer swap).
    version: Optional[int] = None
    #: Model version that actually scored it (must equal ``version``).
    served_version: Optional[int] = None
    #: True when admission control rejected the request (queue at capacity).
    shed: bool = False

    @property
    def latency_s(self) -> float:
        """End-to-end latency (arrival → response); requires completion."""
        if self.t_done is None:
            raise ServeError(f"request {self.req_id} has not completed")
        return self.t_done - self.t_arrival

    @property
    def queue_s(self) -> float:
        """Time spent queued before dispatch; requires dispatch."""
        if self.t_dispatch is None:
            raise ServeError(f"request {self.req_id} was never dispatched")
        return self.t_dispatch - self.t_arrival


class RequestQueue:
    """FIFO of pending requests with high-water + shed accounting.

    ``max_depth_limit`` bounds the backlog: a push against a full queue is
    *shed* — rejected with an explicit counter — instead of growing the
    deque without bound (the ROADMAP's max_queue_depth-hit-1797 failure
    mode). ``None`` keeps the legacy unbounded behaviour.

    Batches honour model pinning: :meth:`pop_batch` stops at a version
    boundary, so one dispatched batch never mixes requests admitted under
    different snapshot versions.
    """

    def __init__(self, *, max_depth: Optional[int] = None) -> None:
        if max_depth is not None and max_depth < 1:
            raise ConfigurationError(
                f"max_depth must be >= 1 or None, got {max_depth}"
            )
        self._limit = max_depth
        self._pending: Deque[Request] = deque()
        self._max_depth = 0
        self._total = 0
        self._shed = 0

    def push(self, request: Request) -> bool:
        """Enqueue one arriving request; False when shed at capacity."""
        if self._limit is not None and len(self._pending) >= self._limit:
            self._shed += 1
            request.shed = True
            return False
        self._pending.append(request)
        self._total += 1
        if len(self._pending) > self._max_depth:
            self._max_depth = len(self._pending)
        return True

    def pop_batch(self, max_size: int) -> List[Request]:
        """Dequeue up to ``max_size`` same-version requests in arrival order.

        Stops early at the first request pinned to a different model version
        than the batch head — the in-flight-batches-never-mix-weights
        invariant of the hot-swap protocol.
        """
        if max_size < 1:
            raise ConfigurationError(f"max_size must be >= 1, got {max_size}")
        batch: List[Request] = []
        while self._pending and len(batch) < max_size:
            if batch and self._pending[0].version != batch[0].version:
                break
            batch.append(self._pending.popleft())
        return batch

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def depth(self) -> int:
        """Requests currently queued."""
        return len(self._pending)

    @property
    def max_depth(self) -> int:
        """High-water mark of the queue depth."""
        return self._max_depth

    @property
    def total_enqueued(self) -> int:
        """Total requests ever accepted (shed pushes excluded)."""
        return self._total

    @property
    def n_shed(self) -> int:
        """Requests rejected by admission control."""
        return self._shed

    @property
    def max_depth_limit(self) -> Optional[int]:
        """The configured depth cap (``None`` = unbounded)."""
        return self._limit


class AdaptiveBatchSizer:
    """Latency-targeting linear batch-size controller (one per device)."""

    def __init__(
        self,
        *,
        b_min: int = 1,
        b_max: int = 256,
        b_init: Optional[int] = None,
        beta: float = 0.5,
        target_latency_s: float = 1e-3,
    ) -> None:
        if not (1 <= b_min <= b_max):
            raise ConfigurationError(
                f"need 1 <= b_min <= b_max, got [{b_min}, {b_max}]"
            )
        if beta <= 0:
            raise ConfigurationError(f"beta must be > 0, got {beta}")
        if target_latency_s <= 0:
            raise ConfigurationError(
                f"target_latency_s must be > 0, got {target_latency_s}"
            )
        b_init = b_min if b_init is None else int(b_init)
        if not (b_min <= b_init <= b_max):
            raise ConfigurationError(
                f"b_init {b_init} outside [{b_min}, {b_max}]"
            )
        self.b_min = int(b_min)
        self.b_max = int(b_max)
        self.beta = float(beta)
        self.target_latency_s = float(target_latency_s)
        #: Real-valued cap (the paper's update is real; rounding is per-use).
        self._b = float(b_init)
        self.history: List[int] = []

    @property
    def cap(self) -> int:
        """Current integer batch-size ceiling for the next dispatch."""
        return min(max(int(round(self._b)), self.b_min), self.b_max)

    def observe(self, batch_size: int, service_time_s: float) -> int:
        """Feed back one completed batch; returns the new cap.

        ``service_time_s`` is the batch's dispatch → completion time. The
        proposal is evaluated real-valued against the bounds and clamped,
        exactly as Algorithm 1 does for training batch sizes.
        """
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        if service_time_s < 0:
            raise ConfigurationError(
                f"service_time_s must be >= 0, got {service_time_s}"
            )
        error = (self.target_latency_s - service_time_s) / self.target_latency_s
        proposal = self._b + self.beta * self._b * error
        self._b = min(max(proposal, float(self.b_min)), float(self.b_max))
        cap = self.cap
        self.history.append(cap)
        return cap
