"""Request coalescing: tenant-aware scheduling and the adaptive batch sizer.

Two generations of queue live here. :class:`RequestQueue` is the original
single-tenant FIFO (kept as the reference semantics and for direct use);
:class:`TenantScheduler` is the multi-tenant scheduler the engine now
dispatches from:

- **strict priority tiers** — a batch is always drawn from the highest
  non-empty priority class (class 0 outranks class 1, and so on);
- **weighted-fair queueing within a tier** — tenants in the same class
  share it by deficit-round-robin (DRR): each visit grants a tenant
  ``quantum x weight`` credits and one request costs one credit, so over
  any backlogged interval tenants are served in proportion to their
  weights, with an O(1) per-pop cost and a bounded per-round deviation;
- **admission control** — a total queue-depth cap plus an optional
  utilization threshold. Capacity pressure sheds *lowest-priority work
  first*: an arrival displaces the newest request of the lowest-priority
  class (drawn from that class's deepest tenant queue) whenever it
  outranks it, and is shed at the door only when it is itself the worst
  work present. The utilization gate sheds graded by class — with
  threshold ``u`` and ``P+1`` classes, class ``p`` is rejected once
  estimated utilization reaches ``u + (1-u)(P-p)/P`` — so lower classes
  always shed earlier and class 0 is never utilization-shed.

The engine's dispatch rule is Clipper-style adaptive micro-batching driven
by the paper's Algorithm-1 update shape. Each priority class on each
device owns an :class:`AdaptiveBatchSizer` holding a real-valued
batch-size cap ``b``; after every batch it executes the linear rule

    ``b ← b + β · b · (target − observed) / target``

where ``observed`` is the batch's *service* time (dispatch → completion)
and ``target`` is the per-batch latency SLO. Batches finishing under the
SLO grow the cap (more coalescing amortizes the fixed kernel-launch +
dispatch overhead); batches running over shrink it. Mirroring
:mod:`repro.core.scaling`, the bound check runs on the real-valued
proposal, the accepted value is rounded to the nearest integer for use,
and the real value is retained so sub-integer progress accumulates.

Observing service time — not queueing delay — keeps the feedback loop
stable: a backlog inflates queueing delay through no fault of the batch
size, and reacting to it would shrink batches exactly when the queue needs
draining (the classic micro-batching death spiral). Queue pressure instead
enters through the dispatch size ``min(cap, queue depth)``: the sizer sets
the ceiling, the queue sets the demand.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set

from repro.exceptions import ConfigurationError, ServeError

__all__ = ["Request", "RequestQueue", "TenantScheduler", "AdaptiveBatchSizer"]

#: Tenant name used when a workload does not specify one.
DEFAULT_TENANT = "default"


@dataclass
class Request:
    """One inference query moving through the serving pipeline."""

    req_id: int
    #: Row index into the engine's query matrix.
    row: int
    #: Simulated arrival (enqueue) time.
    t_arrival: float
    #: Filled by the engine as the request advances.
    t_dispatch: Optional[float] = None
    t_done: Optional[float] = None
    device: Optional[int] = None
    #: Top-k label ids predicted for this request.
    labels: Optional[list] = None
    #: Model version this request was admitted under (pinning: the engine
    #: must score it against exactly this version, never a newer swap).
    version: Optional[int] = None
    #: Model version that actually scored it (must equal ``version``).
    served_version: Optional[int] = None
    #: True when admission control rejected the request (queue at capacity,
    #: utilization gate, or displaced by higher-priority work).
    shed: bool = False
    #: Tenant the request bills to (scheduling + accounting key).
    tenant: str = DEFAULT_TENANT
    #: Priority class; 0 is the most important, larger is shed/served later.
    priority_class: int = 0
    #: Why the request was shed: ``"capacity"`` (full queue, nothing worse
    #: to displace), ``"utilization"`` (graded load gate), or
    #: ``"displaced"`` (evicted by a more important arrival).
    shed_reason: Optional[str] = None

    @property
    def latency_s(self) -> float:
        """End-to-end latency (arrival → response); requires completion."""
        if self.t_done is None:
            raise ServeError(f"request {self.req_id} has not completed")
        return self.t_done - self.t_arrival

    @property
    def queue_s(self) -> float:
        """Time spent queued before dispatch; requires dispatch."""
        if self.t_dispatch is None:
            raise ServeError(f"request {self.req_id} was never dispatched")
        return self.t_dispatch - self.t_arrival


class RequestQueue:
    """FIFO of pending requests with high-water + shed accounting.

    ``max_depth_limit`` bounds the backlog: a push against a full queue is
    *shed* — rejected with an explicit counter — instead of growing the
    deque without bound (the ROADMAP's max_queue_depth-hit-1797 failure
    mode). ``None`` keeps the legacy unbounded behaviour.

    Batches honour model pinning: :meth:`pop_batch` stops at a version
    boundary, so one dispatched batch never mixes requests admitted under
    different snapshot versions.
    """

    def __init__(self, *, max_depth: Optional[int] = None) -> None:
        if max_depth is not None and max_depth < 1:
            raise ConfigurationError(
                f"max_depth must be >= 1 or None, got {max_depth}"
            )
        self._limit = max_depth
        self._pending: Deque[Request] = deque()
        self._max_depth = 0
        self._total = 0
        self._shed = 0

    def push(self, request: Request) -> bool:
        """Enqueue one arriving request; False when shed at capacity."""
        if self._limit is not None and len(self._pending) >= self._limit:
            self._shed += 1
            request.shed = True
            return False
        self._pending.append(request)
        self._total += 1
        if len(self._pending) > self._max_depth:
            self._max_depth = len(self._pending)
        return True

    def pop_batch(self, max_size: int) -> List[Request]:
        """Dequeue up to ``max_size`` same-version requests in arrival order.

        Stops early at the first request pinned to a different model version
        than the batch head — the in-flight-batches-never-mix-weights
        invariant of the hot-swap protocol.
        """
        if max_size < 1:
            raise ConfigurationError(f"max_size must be >= 1, got {max_size}")
        batch: List[Request] = []
        while self._pending and len(batch) < max_size:
            if batch and self._pending[0].version != batch[0].version:
                break
            batch.append(self._pending.popleft())
        return batch

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def depth(self) -> int:
        """Requests currently queued."""
        return len(self._pending)

    @property
    def max_depth(self) -> int:
        """High-water mark of the queue depth."""
        return self._max_depth

    @property
    def total_enqueued(self) -> int:
        """Total requests ever accepted (shed pushes excluded)."""
        return self._total

    @property
    def n_shed(self) -> int:
        """Requests rejected by admission control."""
        return self._shed

    @property
    def max_depth_limit(self) -> Optional[int]:
        """The configured depth cap (``None`` = unbounded)."""
        return self._limit


@dataclass
class _Tier:
    """Per-priority-class scheduling state: tenant queues + DRR rotation."""

    queues: Dict[str, Deque[Request]] = field(default_factory=dict)
    #: Round-robin rotation of tenants with (possibly lazily-empty) queues.
    active: Deque[str] = field(default_factory=deque)
    in_active: Set[str] = field(default_factory=set)
    deficit: Dict[str, float] = field(default_factory=dict)
    depth: int = 0


class TenantScheduler:
    """Multi-tenant request scheduler: priority tiers over weighted DRR.

    Dispatch order (:meth:`pop_batch`):

    1. pick the highest-priority (lowest-numbered) class with queued work —
       strict priority, re-evaluated at every dispatch;
    2. within that class, serve tenants by deficit-round-robin: a visit
       replenishes the head tenant's deficit by ``quantum × weight`` and
       pops one request per whole credit, rotating when credit runs out.
       Backlogged tenants therefore share a class in proportion to their
       weights regardless of how fast each one pushes;
    3. a batch never crosses a model-version boundary (hot-swap pinning)
       and never mixes priority classes (each class has its own SLO and
       sizer), but freely mixes tenants of the same class.

    Admission (:meth:`push`) sheds lowest-priority work first:

    - with ``admission_utilization`` = ``u`` set, class ``p > 0`` is shed at
      the door once estimated utilization (busy device-time / elapsed
      capacity, via :meth:`observe_busy`) reaches
      ``u + (1 - u) * (P - p) / P`` where ``P`` is the worst class — a
      graded gate, strictly laxer for more important classes, and never
      applied to class 0;
    - with ``max_depth`` reached, the arrival is weighed against the worst
      (numerically largest) class currently queued: a strictly more
      important arrival *displaces* the newest request of that class's
      deepest tenant; a same-class arrival displaces only when some other
      tenant in the class holds strictly more queued work than its own
      (so a lone tenant degenerates to :class:`RequestQueue` shed-at-door
      semantics, and a flooding tenant can never displace a light one);
      otherwise the arrival itself is shed.

    ``push`` returns the shed request (the arrival or the displaced
    victim) with ``request.shed`` set, or ``None`` on a clean admit — the
    caller owns any per-version pin bookkeeping for displaced requests.
    """

    def __init__(
        self,
        *,
        n_priority_classes: int = 1,
        weights: Optional[Dict[str, float]] = None,
        max_depth: Optional[int] = None,
        admission_utilization: Optional[float] = None,
        n_devices: int = 1,
        quantum: float = 1.0,
    ) -> None:
        if n_priority_classes < 1:
            raise ConfigurationError(
                f"n_priority_classes must be >= 1, got {n_priority_classes}"
            )
        if max_depth is not None and max_depth < 1:
            raise ConfigurationError(
                f"max_depth must be >= 1 or None, got {max_depth}"
            )
        if admission_utilization is not None and not (
            0.0 < admission_utilization <= 1.0
        ):
            raise ConfigurationError(
                f"admission_utilization must be in (0, 1] or None, "
                f"got {admission_utilization}"
            )
        if n_devices < 1:
            raise ConfigurationError(f"n_devices must be >= 1, got {n_devices}")
        if quantum <= 0:
            raise ConfigurationError(f"quantum must be > 0, got {quantum}")
        for tenant, w in (weights or {}).items():
            if not (w > 0):
                raise ConfigurationError(
                    f"tenant weight must be > 0, got {tenant!r}: {w}"
                )
        self.n_classes = int(n_priority_classes)
        self._weights = dict(weights or {})
        self._limit = max_depth
        self._util_threshold = admission_utilization
        self._n_devices = int(n_devices)
        self._quantum = float(quantum)
        self._tiers = [_Tier() for _ in range(self.n_classes)]
        self._depth = 0
        self._max_depth = 0
        self._total = 0
        self._shed = 0
        self._busy_s = 0.0
        self.shed_by_tenant: Dict[str, int] = {}
        self.shed_by_class: Dict[int, int] = {}

    # -- load estimate -------------------------------------------------------

    def observe_busy(self, service_s: float) -> None:
        """Account completed busy device-time (feeds the utilization gate)."""
        if service_s < 0:
            raise ConfigurationError(
                f"service_s must be >= 0, got {service_s}"
            )
        self._busy_s += float(service_s)

    def utilization(self, now: float) -> float:
        """Fraction of elapsed cluster capacity spent busy, in [0, 1]."""
        if now <= 0.0:
            return 0.0
        return min(1.0, self._busy_s / (self._n_devices * now))

    def set_n_devices(self, n_devices: int) -> None:
        """Track elastic membership: the capacity the utilization gate
        divides by follows the *active* device count."""
        if n_devices < 1:
            raise ConfigurationError(f"n_devices must be >= 1, got {n_devices}")
        self._n_devices = int(n_devices)

    def shed_gate(self, priority_class: int) -> Optional[float]:
        """Utilization at which ``priority_class`` is shed (None = never)."""
        if self._util_threshold is None or priority_class <= 0:
            return None
        worst = self.n_classes - 1
        u = self._util_threshold
        return u + (1.0 - u) * (worst - priority_class) / worst

    # -- admission -----------------------------------------------------------

    def push(self, request: Request, *, now: float = 0.0) -> Optional[Request]:
        """Admit one arrival; returns the shed request, if any, else None."""
        p = request.priority_class
        if not (0 <= p < self.n_classes):
            raise ConfigurationError(
                f"priority_class must be in [0, {self.n_classes}), got {p}"
            )
        gate = self.shed_gate(p)
        if gate is not None and self.utilization(now) >= gate:
            return self._shed_request(request, "utilization")
        if self._limit is not None and self._depth >= self._limit:
            victim = self._capacity_victim(request)
            if victim is request:
                return self._shed_request(request, "capacity")
            self._evict(victim)
            self._admit(request)
            return self._shed_request(victim, "displaced")
        self._admit(request)
        return None

    def _shed_request(self, request: Request, reason: str) -> Request:
        request.shed = True
        request.shed_reason = reason
        self._shed += 1
        self.shed_by_tenant[request.tenant] = (
            self.shed_by_tenant.get(request.tenant, 0) + 1
        )
        self.shed_by_class[request.priority_class] = (
            self.shed_by_class.get(request.priority_class, 0) + 1
        )
        return request

    def _capacity_victim(self, request: Request) -> Request:
        """Pick what a full queue sheds: the arrival or a queued request."""
        worst_p = max(p for p, t in enumerate(self._tiers) if t.depth > 0)
        p = request.priority_class
        if p > worst_p:
            return request
        tier = self._tiers[worst_p]
        # Deepest tenant queue in the worst class; name breaks ties so the
        # choice is deterministic regardless of dict insertion order.
        victim_tenant = max(
            (t for t, q in tier.queues.items() if q),
            key=lambda t: (len(tier.queues[t]), t),
        )
        if p == worst_p:
            own = len(tier.queues.get(request.tenant, ()))
            if len(tier.queues[victim_tenant]) <= own:
                return request
        return tier.queues[victim_tenant][-1]

    def _evict(self, victim: Request) -> None:
        tier = self._tiers[victim.priority_class]
        q = tier.queues[victim.tenant]
        assert q[-1] is victim
        q.pop()
        tier.depth -= 1
        self._depth -= 1
        # An emptied queue stays in the rotation; pop_batch skips and
        # retires it lazily.

    def _admit(self, request: Request) -> None:
        tier = self._tiers[request.priority_class]
        tenant = request.tenant
        q = tier.queues.get(tenant)
        if q is None:
            q = tier.queues[tenant] = deque()
        if tenant not in tier.in_active:
            tier.active.append(tenant)
            tier.in_active.add(tenant)
            tier.deficit.setdefault(tenant, 0.0)
        q.append(request)
        tier.depth += 1
        self._depth += 1
        self._total += 1
        if self._depth > self._max_depth:
            self._max_depth = self._depth

    # -- dispatch ------------------------------------------------------------

    def next_class(self) -> Optional[int]:
        """Highest-priority class with queued work (what pop_batch serves)."""
        for p, tier in enumerate(self._tiers):
            if tier.depth > 0:
                return p
        return None

    def pop_batch(self, max_size: int) -> List[Request]:
        """Dequeue up to ``max_size`` requests via priority + weighted DRR.

        The batch is single-class, single-version (stops at a hot-swap
        boundary), and non-empty whenever work is queued — the scheduler
        is work-conserving.
        """
        if max_size < 1:
            raise ConfigurationError(f"max_size must be >= 1, got {max_size}")
        p = self.next_class()
        if p is None:
            return []
        tier = self._tiers[p]
        batch: List[Request] = []
        while len(batch) < max_size and tier.depth > 0:
            tenant = tier.active[0]
            q = tier.queues.get(tenant)
            if not q:
                self._retire_head(tier)
                continue
            if tier.deficit[tenant] < 1.0:
                tier.deficit[tenant] += self._quantum * self._weights.get(
                    tenant, 1.0
                )
                if tier.deficit[tenant] < 1.0:
                    tier.active.rotate(-1)
                    continue
            head = q[0]
            if batch and head.version != batch[0].version:
                break
            batch.append(q.popleft())
            tier.depth -= 1
            self._depth -= 1
            tier.deficit[tenant] -= 1.0
            if not q:
                self._retire_head(tier)
            elif tier.deficit[tenant] < 1.0:
                tier.active.rotate(-1)
        return batch

    @staticmethod
    def _retire_head(tier: _Tier) -> None:
        tenant = tier.active.popleft()
        tier.in_active.discard(tenant)
        tier.deficit[tenant] = 0.0

    # -- accounting ----------------------------------------------------------

    def __len__(self) -> int:
        return self._depth

    @property
    def depth(self) -> int:
        """Requests currently queued across all classes and tenants."""
        return self._depth

    def class_depth(self, priority_class: int) -> int:
        """Requests currently queued in one priority class."""
        return self._tiers[priority_class].depth

    @property
    def max_depth(self) -> int:
        """High-water mark of the total queue depth."""
        return self._max_depth

    @property
    def total_enqueued(self) -> int:
        """Total requests ever admitted (displaced admits still count)."""
        return self._total

    @property
    def n_shed(self) -> int:
        """Requests rejected or displaced by admission control."""
        return self._shed

    @property
    def max_depth_limit(self) -> Optional[int]:
        """The configured depth cap (``None`` = unbounded)."""
        return self._limit


class AdaptiveBatchSizer:
    """Latency-targeting linear batch-size controller (one per device)."""

    def __init__(
        self,
        *,
        b_min: int = 1,
        b_max: int = 256,
        b_init: Optional[int] = None,
        beta: float = 0.5,
        target_latency_s: float = 1e-3,
    ) -> None:
        if not (1 <= b_min <= b_max):
            raise ConfigurationError(
                f"need 1 <= b_min <= b_max, got [{b_min}, {b_max}]"
            )
        if beta <= 0:
            raise ConfigurationError(f"beta must be > 0, got {beta}")
        if target_latency_s <= 0:
            raise ConfigurationError(
                f"target_latency_s must be > 0, got {target_latency_s}"
            )
        b_init = b_min if b_init is None else int(b_init)
        if not (b_min <= b_init <= b_max):
            raise ConfigurationError(
                f"b_init {b_init} outside [{b_min}, {b_max}]"
            )
        self.b_min = int(b_min)
        self.b_max = int(b_max)
        self.beta = float(beta)
        self.target_latency_s = float(target_latency_s)
        #: Real-valued cap (the paper's update is real; rounding is per-use).
        self._b = float(b_init)
        self.history: List[int] = []

    @property
    def cap(self) -> int:
        """Current integer batch-size ceiling for the next dispatch."""
        return min(max(int(round(self._b)), self.b_min), self.b_max)

    def observe(self, batch_size: int, service_time_s: float) -> int:
        """Feed back one completed batch; returns the new cap.

        ``service_time_s`` is the batch's dispatch → completion time. The
        proposal is evaluated real-valued against the bounds and clamped,
        exactly as Algorithm 1 does for training batch sizes.
        """
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        if service_time_s < 0:
            raise ConfigurationError(
                f"service_time_s must be >= 0, got {service_time_s}"
            )
        error = (self.target_latency_s - service_time_s) / self.target_latency_s
        proposal = self._b + self.beta * self._b * error
        self._b = min(max(proposal, float(self.b_min)), float(self.b_max))
        cap = self.cap
        self.history.append(cap)
        return cap
