"""Serving subsystem: snapshots + adaptive-batched sparse inference.

Closes the train → deploy loop of the reproduction: any registry trainer
can persist its final model as a versioned snapshot
(:mod:`repro.serve.snapshot`) — or *publish* a stream of them into a
:class:`~repro.serve.store.SnapshotStore` — and
:class:`~repro.serve.engine.ServingEngine` replays an open-loop request
stream (:mod:`repro.serve.loadgen`) against it on the simulated
heterogeneous server: scheduling tenants through priority tiers +
weighted-fair queueing with admission control, coalescing queries into
per-class adaptive micro-batches (:mod:`repro.serve.queue`), scoring them
through the exact or LSH-accelerated top-k path
(:mod:`repro.serve.predictor`), and hot-swapping newly published versions
mid-traffic with per-request model pinning and canary-guarded rollback.
:class:`~repro.serve.config.ServingConfig` is the single validated option
surface, fronted by ``repro.api.make_engine``.
"""

from repro.serve.config import SCORING_MODES, SERVE_MODES, ServingConfig
from repro.serve.engine import ServeResult, ServingEngine
from repro.serve.loadgen import (
    LatencyReport,
    LoadSpec,
    TenantLoad,
    fairness_ratio,
    generate_arrivals,
    generate_multi_tenant_arrivals,
    grouped_nearest_rank_percentiles,
    nearest_rank_percentile,
    nearest_rank_percentiles,
    per_tenant_stats,
    sample_query_rows,
)
from repro.serve.predictor import Predictor
from repro.serve.queue import (
    AdaptiveBatchSizer,
    Request,
    RequestQueue,
    TenantScheduler,
)
from repro.serve.snapshot import SNAPSHOT_FORMAT, SNAPSHOT_VERSION, ModelSnapshot
from repro.serve.store import STORE_FORMAT, STORE_VERSION, SnapshotStore, StoreEntry

__all__ = [
    "ModelSnapshot",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "SnapshotStore",
    "StoreEntry",
    "STORE_FORMAT",
    "STORE_VERSION",
    "Predictor",
    "ServingEngine",
    "ServingConfig",
    "ServeResult",
    "SERVE_MODES",
    "SCORING_MODES",
    "AdaptiveBatchSizer",
    "Request",
    "RequestQueue",
    "TenantScheduler",
    "LoadSpec",
    "TenantLoad",
    "LatencyReport",
    "generate_arrivals",
    "generate_multi_tenant_arrivals",
    "sample_query_rows",
    "nearest_rank_percentile",
    "nearest_rank_percentiles",
    "grouped_nearest_rank_percentiles",
    "per_tenant_stats",
    "fairness_ratio",
]
