"""The sim-clock serving engine: request loop, dispatch, and hot-swap.

One :class:`ServingEngine` run replays an open-loop arrival schedule
against a snapshot on the simulated heterogeneous server:

- a **source process** enqueues each request — tagged with its tenant and
  priority class — at its arrival time, or sheds it when the
  :class:`~repro.serve.queue.TenantScheduler`'s admission control rejects
  or displaces it (lowest-priority work first, per-tenant shed
  accounting), and wakes any idle device worker;
- one **worker process per GPU** asks the scheduler for the next batch:
  strict priority across classes, weighted-fair deficit-round-robin
  across tenants within a class, up to ``min(cap, class depth)`` requests
  where ``cap`` comes from that *(device, class)* pair's
  :class:`~repro.serve.queue.AdaptiveBatchSizer` — each priority class
  drives its own sizer against its own SLO (``class_slo_ms``) — or a
  fixed size in ``sequential`` mode. The worker runs the real top-k
  numerics on the host, charges the simulated clock with the cost model's
  batch time for *this* device at *this* moment (speed profiles keep
  heterogeneity live during serving), stamps completion on every request
  in the batch, and feeds busy time back to the scheduler's utilization
  estimate (the graded ``admission_utilization`` shed gate).

Orthogonal to the batching mode, ``scoring`` selects the ranking path per
batch: ``"exact"`` (dense top-k over all ``L`` labels), ``"lsh"`` (the
batched multi-probe candidate pipeline), or ``"auto"`` — the crossover
policy. ``auto`` asks the device's cost model to price both paths
(:meth:`~repro.gpu.cost.GpuCostModel.inference_time` vs
:meth:`~repro.gpu.cost.GpuCostModel.lsh_inference_time` at the
predictor's *observed* candidate fraction) and runs whichever is cheaper,
charging the simulated clock with the chosen path's modeled time.

**Continuous learning.** Given a :class:`~repro.serve.store.SnapshotStore`,
a driver-level **swap manager** process closes the train → serve loop
under live traffic:

1. *Poll* — between batches it polls the store for versions newer than the
   one serving (``swap_check_every_s`` cadence, publish times on the sim
   clock, so a concurrently-trained schedule replays mid-serve).
2. *Pinning* — every request is admitted under the version active at its
   arrival and carries that pin; :meth:`TenantScheduler.pop_batch` stops at
   version boundaries, so an in-flight batch never mixes weights, and a
   swap never invalidates an admitted request.
3. *Warming* — the new snapshot is loaded + validated (a corrupt checksum
   or manifest skew raises :class:`~repro.exceptions.SnapshotError`, is
   counted as a ``swap.failed`` instant, and the prior version keeps
   serving), then staged off the dispatch path: model transfer plus
   :meth:`Predictor.rebuild_lsh`'s re-index + ``W_out.T`` re-cache, priced
   by :meth:`~repro.gpu.cost.GpuCostModel.lsh_rebuild_time` inside a
   driver-level ``serve.swap`` span. Devices keep dispatching the old
   version the whole time.
4. *Commit* — an atomic pointer flip between batches: new arrivals now pin
   to the new version (``swap.commit`` instant, ``swaps`` counter).
5. *Canary + rollback* — post-commit, the new and previous predictors are
   scored on a deterministic labeled probe block (host-side, zero
   simulated time); a recall@k drop beyond ``canary_recall_drop`` — or a
   windowed post-swap p99 beyond ``canary_latency_factor ×`` the pre-swap
   p99 — rolls the active pointer back, quarantines the bad version
   (``swap.rollback`` instant, ``rollbacks`` counter), and keeps serving
   the prior weights. The
   previous predictor is guarded from retirement until its canary
   resolves; retired versions free their predictors once their last pinned
   request completes.

**Elastic membership.** Given a
:class:`~repro.elastic.membership.ClusterMembership` (``membership=`` at
serve time), a driver-level **membership manager** process polls the
lifecycle timeline every ``membership_check_every_s`` sim seconds and
applies events between batches:

- ``throttle``/``recover`` change a device's dynamic speed scale — the
  next batch it prices is slower/faster, nothing else moves;
- ``fail``/``leave`` drop the device from the active set: its worker
  finishes the in-flight batch (sim timeouts are uninterruptible — the
  retirement drain), then parks; queued work re-routes to the survivors
  on their next pull;
- ``join`` provisions a fresh device (or re-admits a parked one) and the
  manager spawns a worker for it immediately — serving has no warm-start
  barrier, so joins take effect at the next dispatch.

With ``autoscale=True`` the same manager runs a queue-depth autoscaler
through the same membership object: depth at or above
``autoscale_high_depth × (1 + admitted)`` admits one device
(``membership.admit``, source ``"autoscaler"``); depth at or below
``autoscale_low_depth`` retires the most recent autoscaler admission
(never a baseline device, never below ``autoscale_min_devices``). Every
transition lands in telemetry as a ``membership.event`` instant plus the
``active_devices`` gauge, so ``repro analyze`` can attribute latency
spikes to the membership event that caused them.

Telemetry mirrors training: a ``serve.batch`` span per dispatched batch
(device compute, feeds the idle accountant), a retroactive
``serve.request`` span per request spanning enqueue → response, and the
driver-level ``serve.swap`` spans + swap/rollback counters that let
``repro analyze`` attribute any latency blip to the swap that caused it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ConfigurationError, ServeError, SnapshotError
from repro.gpu.cluster import MultiGPUServer
from repro.serve.config import SCORING_MODES, SERVE_MODES, ServingConfig
from repro.serve.loadgen import (
    LatencyReport,
    fairness_ratio,
    grouped_nearest_rank_percentiles,
    nearest_rank_percentile,
    per_tenant_stats,
)
from repro.serve.predictor import Predictor
from repro.serve.queue import (
    DEFAULT_TENANT,
    AdaptiveBatchSizer,
    Request,
    TenantScheduler,
)
from repro.serve.store import SnapshotStore
from repro.sim.environment import Environment
from repro.telemetry import NULL, Telemetry
from repro.telemetry.events import (
    COUNTER_ROLLBACKS,
    COUNTER_SHED,
    COUNTER_SWAP_FAILURES,
    COUNTER_SWAPS,
    EVENT_SHED,
    EVENT_SWAP_COMMIT,
    EVENT_SWAP_FAILED,
    EVENT_SWAP_ROLLBACK,
    GAUGE_BATCH_SIZE,
    SPAN_RUN,
    SPAN_SERVE_BATCH,
    SPAN_SERVE_REQUEST,
    SPAN_SERVE_SWAP,
)

__all__ = ["ServingEngine", "ServeResult", "SERVE_MODES", "SCORING_MODES"]

#: Queries probed (retrieval only) to seed the candidate-fraction estimate
#: when ``auto`` serving starts with no prior LSH observations.
_CALIBRATION_ROWS = 64


@dataclass
class ServeResult:
    """Everything one serving run produced."""

    mode: str
    requests: List[Request]
    report: LatencyReport
    #: Device id -> requests served there.
    per_device: Dict[int, int] = field(default_factory=dict)
    #: Queue high-water mark over the run.
    max_queue_depth: int = 0
    #: LSH recall@k vs the exact path (None when the exact path served).
    recall_at_k: Optional[float] = None
    k: int = 5
    #: The configured scoring policy ("exact", "lsh", or "auto").
    scoring: str = "exact"
    #: Scoring path -> batches that ran it (auto splits across both).
    scoring_batches: Dict[str, int] = field(default_factory=dict)
    #: Mean candidate fraction over the LSH-scored batches (None if none).
    mean_candidate_fraction: Optional[float] = None
    #: Requests shed by admission control (never completed).
    n_shed: int = 0
    #: Tenant -> {completed, throughput_rps, p50/p95/p99 ms, n_shed}.
    tenants: Dict[str, dict] = field(default_factory=dict)
    #: Priority class -> {completed, p99 ms, n_shed, slo_ms}.
    per_class: Dict[int, dict] = field(default_factory=dict)
    #: Max/min weight-normalized tenant throughput (None for one tenant).
    fairness: Optional[float] = None
    #: Tenant -> requests shed (sums to ``n_shed``).
    shed_by_tenant: Dict[str, int] = field(default_factory=dict)
    #: One record per swap attempt: committed swaps, rollbacks, failures.
    swaps: List[dict] = field(default_factory=list)
    #: Swaps that went live (including any later rolled back).
    n_swaps: int = 0
    #: Committed swaps rolled back by a canary.
    n_rollbacks: int = 0
    #: Published versions that failed validation and were skipped.
    n_swap_failures: int = 0
    #: Model version -> requests it scored.
    versions_served: Dict[int, int] = field(default_factory=dict)
    #: Requests scored by a version other than the one they were admitted
    #: under (the pinning invariant; must be zero).
    mis_versioned: int = 0
    #: The version serving when the run ended.
    active_version: Optional[int] = None
    #: One dict per delivered lifecycle event (elastic runs only).
    membership_events: List[dict] = field(default_factory=list)
    #: Delivered lifecycle events, applied + suppressed.
    n_membership_events: int = 0
    #: Active devices when the run ended (None for a static run).
    final_devices: Optional[int] = None
    #: Devices the queue-depth autoscaler admitted / retired.
    n_autoscale_admits: int = 0
    n_autoscale_retires: int = 0

    def headline_metrics(self) -> dict:
        """Flat finite-float metrics for the cross-run index.

        The serving counterpart of
        :func:`repro.telemetry.analyze.headline_metrics`: stable names,
        every value a finite float, optional facets (recall, fairness)
        present only when the run produced them.
        """
        out = {
            "n_requests": float(self.report.n_requests),
            "throughput_rps": float(self.report.throughput_rps),
            "latency_p50_ms": self.report.percentile(50) * 1e3,
            "latency_p95_ms": self.report.percentile(95) * 1e3,
            "latency_p99_ms": self.report.percentile(99) * 1e3,
            "mean_batch_size": float(self.report.mean_batch_size),
            "max_queue_depth": float(self.max_queue_depth),
            "n_shed": float(self.n_shed),
            "n_swaps": float(self.n_swaps),
            "n_rollbacks": float(self.n_rollbacks),
            "n_swap_failures": float(self.n_swap_failures),
            "mis_versioned": float(self.mis_versioned),
        }
        if self.recall_at_k is not None:
            out["recall_at_k"] = float(self.recall_at_k)
        if self.mean_candidate_fraction is not None:
            out["mean_candidate_fraction"] = float(self.mean_candidate_fraction)
        if self.fairness is not None:
            out["fairness"] = float(self.fairness)
        if self.final_devices is not None:
            out["n_membership_events"] = float(self.n_membership_events)
            out["final_devices"] = float(self.final_devices)
            out["n_autoscale_admits"] = float(self.n_autoscale_admits)
            out["n_autoscale_retires"] = float(self.n_autoscale_retires)
        return {k: v for k, v in out.items() if math.isfinite(v)}

    def as_dict(self) -> dict:
        """JSON-safe summary."""
        out = self.report.as_dict()
        out.update({
            "mode": self.mode,
            "per_device": {str(d): n for d, n in sorted(self.per_device.items())},
            "max_queue_depth": self.max_queue_depth,
            "k": self.k,
            "scoring": self.scoring,
            "scoring_batches": dict(sorted(self.scoring_batches.items())),
        })
        if self.recall_at_k is not None:
            out["recall_at_k"] = self.recall_at_k
        if self.mean_candidate_fraction is not None:
            out["mean_candidate_fraction"] = self.mean_candidate_fraction
        if self.tenants:
            out["tenants"] = {
                str(t): dict(stats) for t, stats in sorted(self.tenants.items())
            }
            out["per_class"] = {
                str(c): dict(stats)
                for c, stats in sorted(self.per_class.items())
            }
            if self.fairness is not None:
                out["fairness"] = self.fairness
            if self.shed_by_tenant:
                out["shed_by_tenant"] = {
                    str(t): n for t, n in sorted(self.shed_by_tenant.items())
                }
        if self.swaps or self.n_shed:
            out.update({
                "swaps": list(self.swaps),
                "n_swaps": self.n_swaps,
                "n_rollbacks": self.n_rollbacks,
                "n_swap_failures": self.n_swap_failures,
                "versions_served": {
                    str(v): n for v, n in sorted(self.versions_served.items())
                },
                "mis_versioned": self.mis_versioned,
                "active_version": self.active_version,
            })
        if self.final_devices is not None:
            out["membership"] = {
                "events": list(self.membership_events),
                "n_events": self.n_membership_events,
                "final_devices": self.final_devices,
                "n_autoscale_admits": self.n_autoscale_admits,
                "n_autoscale_retires": self.n_autoscale_retires,
            }
        return out


class ServingEngine:
    """Adaptive-batched sparse inference on the simulated server.

    Options arrive either as a prebuilt :class:`ServingConfig` (``config=``)
    or as keyword options validated through
    :meth:`ServingConfig.from_options` — the same deprecation/unknown-option
    layer ``repro.api.make_engine`` and the CLI use. Pass ``store=`` (and
    the ``base_version`` the constructor predictor corresponds to) to
    enable hot-swapping of newly published versions mid-run.
    """

    def __init__(
        self,
        predictor: Predictor,
        server: MultiGPUServer,
        *,
        config: Optional[ServingConfig] = None,
        store: Optional[SnapshotStore] = None,
        base_version: int = 0,
        telemetry: Optional[Telemetry] = None,
        **options,
    ) -> None:
        if config is None:
            config = ServingConfig.from_options(**options)
        elif options:
            raise ConfigurationError(
                f"pass either config= or keyword options, not both "
                f"(got {sorted(options)})"
            )
        elif not isinstance(config, ServingConfig):
            raise ConfigurationError(
                f"config must be a ServingConfig, got {type(config).__name__}"
            )
        self.config = config
        self.predictor = predictor
        self.server = server
        self.store = store
        self.base_version = int(base_version)
        # Mirrored views of the config (the stable attribute surface).
        self.mode = config.mode
        self.target_latency_s = config.target_latency_s
        self.b_min = config.b_min
        self.b_max = config.b_max
        self.beta = config.beta
        self.fixed_batch_size = config.fixed_batch_size
        self.scoring = config.scoring
        #: Back-compat view of the scoring policy (True only for fixed LSH).
        self.use_lsh = config.scoring == "lsh"
        self.telemetry: Telemetry = telemetry if telemetry is not None else NULL

    # -- the run -------------------------------------------------------------
    def serve(
        self,
        X_queries: sp.csr_matrix,
        arrival_times: np.ndarray,
        *,
        k: Optional[int] = None,
        row_indices: Optional[np.ndarray] = None,
        canary_labels: Optional[sp.csr_matrix] = None,
        tenants: Optional[np.ndarray] = None,
        priority_classes: Optional[np.ndarray] = None,
        membership=None,
    ) -> ServeResult:
        """Replay ``arrival_times`` over ``X_queries``; return the result.

        ``row_indices`` (default: round-robin over the query matrix) maps
        request *i* to a row of ``X_queries``. Numerics run on the host;
        the simulated clock advances by the cost model's per-batch time
        for whichever scoring path the policy picked. ``k`` defaults to the
        config's.

        ``tenants`` / ``priority_classes`` (aligned with arrivals) tag each
        request for the scheduler; defaults are one tenant, class 0 — the
        single-tenant degenerate case, which dispatches in plain FIFO
        order. Classes must be in ``[0, config.priority_classes)``.

        ``canary_labels`` (sparse, aligned row-for-row with ``X_queries``)
        arms the hot-swap recall canary: after each swap commits, labeled
        recall@k of the incoming version is compared against the outgoing
        one on the probe block, and a drop beyond
        ``config.canary_recall_drop`` triggers rollback. Without labels the
        recall canary is skipped (the latency canary still applies).

        ``membership`` (a
        :class:`~repro.elastic.membership.ClusterMembership` over *this*
        engine's server) turns the cluster elastic: lifecycle events from
        its timeline — and, with ``config.autoscale``, queue-depth
        admit/retire decisions — are applied between batches by a
        membership-manager process. The result gains
        ``membership_events`` / ``final_devices`` and their headline
        metrics.
        """
        cfg = self.config
        if membership is not None:
            from repro.elastic.membership import ClusterMembership

            if not isinstance(membership, ClusterMembership):
                raise ConfigurationError(
                    f"membership must be a ClusterMembership, "
                    f"got {type(membership).__name__}"
                )
            if membership.server is not self.server:
                raise ConfigurationError(
                    "membership is bound to a different server than this engine"
                )
        k = cfg.k if k is None else int(k)
        arrival_times = np.asarray(arrival_times, dtype=np.float64)
        n_requests = arrival_times.size
        if n_requests == 0:
            raise ConfigurationError("serve() needs at least one arrival")
        if np.any(np.diff(arrival_times) < 0):
            raise ConfigurationError("arrival_times must be non-decreasing")
        if row_indices is None:
            row_indices = np.arange(n_requests) % X_queries.shape[0]
        else:
            row_indices = np.asarray(row_indices)
            if row_indices.size != n_requests:
                raise ConfigurationError(
                    f"{row_indices.size} row indices for {n_requests} arrivals"
                )
            if row_indices.size and (
                row_indices.min() < 0 or row_indices.max() >= X_queries.shape[0]
            ):
                raise ConfigurationError("row index outside the query matrix")
        if canary_labels is not None:
            canary_labels = sp.csr_matrix(canary_labels)
            if canary_labels.shape[0] != X_queries.shape[0]:
                raise ConfigurationError(
                    f"canary_labels rows ({canary_labels.shape[0]}) must "
                    f"match X_queries rows ({X_queries.shape[0]})"
                )
        if tenants is None:
            tenant_tags = np.full(n_requests, DEFAULT_TENANT, dtype=object)
        else:
            tenant_tags = np.asarray(tenants, dtype=object)
            if tenant_tags.size != n_requests:
                raise ConfigurationError(
                    f"{tenant_tags.size} tenants for {n_requests} arrivals"
                )
        if priority_classes is None:
            class_tags = np.zeros(n_requests, dtype=np.int64)
        else:
            class_tags = np.asarray(priority_classes, dtype=np.int64)
            if class_tags.size != n_requests:
                raise ConfigurationError(
                    f"{class_tags.size} priority classes for "
                    f"{n_requests} arrivals"
                )
            if class_tags.size and (
                class_tags.min() < 0
                or class_tags.max() >= cfg.priority_classes
            ):
                raise ConfigurationError(
                    f"priority classes must be in "
                    f"[0, {cfg.priority_classes}); "
                    f"got range [{class_tags.min()}, {class_tags.max()}]"
                )
        if self.scoring in ("lsh", "auto") and not self.predictor._lsh_built:
            self.predictor.rebuild_lsh()
        if (
            self.scoring in ("lsh", "auto")
            and self.predictor.observed_candidate_fraction() is None
        ):
            # Seed the crossover signal deterministically from the head of
            # the query pool (retrieval only — no scoring work).
            self.predictor.calibrate_candidate_fraction(
                X_queries, max_rows=min(_CALIBRATION_ROWS, X_queries.shape[0])
            )

        env = Environment()
        tel = self.telemetry
        scheduler = TenantScheduler(
            n_priority_classes=cfg.priority_classes,
            weights=cfg.tenant_weights,
            max_depth=cfg.max_queue_depth,
            admission_utilization=cfg.admission_utilization,
            n_devices=self.server.n_gpus,
            quantum=cfg.wfq_quantum,
        )
        requests = [
            Request(
                req_id=i,
                row=int(row_indices[i]),
                t_arrival=float(t),
                tenant=str(tenant_tags[i]),
                priority_class=int(class_tags[i]),
            )
            for i, t in enumerate(arrival_times)
        ]
        # One sizer per (device, priority class): each class batches
        # against its own SLO on each device's own service-time feedback.
        sizers: Dict[tuple, AdaptiveBatchSizer] = {}

        def _sizer(device: int, priority_class: int) -> AdaptiveBatchSizer:
            key = (device, priority_class)
            sizer = sizers.get(key)
            if sizer is None:
                sizer = sizers[key] = AdaptiveBatchSizer(
                    b_min=self.b_min,
                    b_max=self.b_max,
                    beta=self.beta,
                    target_latency_s=cfg.class_target_latency_s(
                        priority_class
                    ),
                )
            return sizer

        per_device: Dict[int, int] = {g.device_id: 0 for g in self.server.gpus}
        batch_sizes: List[int] = []
        scoring_batches: Dict[str, int] = {}
        lsh_fractions: List[float] = []
        n_labels = self.predictor.arch.n_labels
        state = {"arrivals_done": False, "wakeup": env.event()}

        # -- hot-swap state ---------------------------------------------------
        # All versions with live pins or guard protection stay resident;
        # ``active`` is the version new arrivals are admitted under.
        predictors: Dict[int, Predictor] = {self.base_version: self.predictor}
        active = {"version": self.base_version}
        pins: Dict[int, int] = {self.base_version: 0}
        #: Versions the swap manager is mid-protocol on (rollback targets).
        protected: Set[int] = set()
        quarantined: Set[int] = set()
        versions_served: Dict[int, int] = {}
        swap_records: List[dict] = []
        counters = {"swaps": 0, "rollbacks": 0, "failures": 0}
        #: (t_done, latency) per completion, for the latency canary.
        completed: List[tuple] = []

        def _wake_all() -> None:
            """Fire-and-replace the shared wakeup event (re-arm pattern)."""
            event, state["wakeup"] = state["wakeup"], env.event()
            event.succeed()

        def _retire(version: int) -> None:
            """Free a predictor nothing can reference any more."""
            if (
                version != active["version"]
                and version not in protected
                and pins.get(version, 0) == 0
                and version in predictors
            ):
                del predictors[version]

        def source(env: Environment):
            for request in requests:
                delay = request.t_arrival - env.now
                if delay > 0:
                    yield env.timeout(delay)
                request.version = active["version"]
                shed = scheduler.push(request, now=env.now)
                if not request.shed:
                    pins[request.version] = pins.get(request.version, 0) + 1
                    _wake_all()
                if shed is not None:
                    tel.counter(COUNTER_SHED, 1)
                    tel.instant(
                        EVENT_SHED,
                        tenant=shed.tenant,
                        priority_class=shed.priority_class,
                        reason=shed.shed_reason,
                    )
                    if shed is not request:
                        # A queued request was displaced: release its pin.
                        pins[shed.version] -= 1
                        _retire(shed.version)
            state["arrivals_done"] = True
            _wake_all()
            return None

        def _price_lsh(gpu, pred: Predictor, work, speed: float) -> float:
            frac = pred.observed_candidate_fraction()
            return gpu.cost_model.lsh_inference_time(
                work,
                frac if frac is not None else 1.0,
                n_tables=pred.lsh_tables,
                n_bits=pred.lsh_bits,
                n_probes=pred.lsh_probes,
                speed=speed,
                n_active_gpus=self.server.n_gpus,
            )

        def worker(env: Environment, gpu):
            device = gpu.device_id
            per_device.setdefault(device, 0)
            while True:
                # A retired/failed device parks between batches: the
                # in-flight batch (if any) already completed, queued work
                # re-routes to the survivors, and a later rejoin wakes it.
                if membership is not None and not membership.is_active(device):
                    if _drained():
                        return None
                    yield state["wakeup"]
                    continue
                if scheduler.depth == 0:
                    if state["arrivals_done"]:
                        return None
                    yield state["wakeup"]
                    continue
                batch_class = scheduler.next_class()
                sizer = _sizer(device, batch_class)
                cap = (
                    sizer.cap if self.mode == "adaptive"
                    else self.fixed_batch_size
                )
                batch = scheduler.pop_batch(cap)
                version = batch[0].version
                pred = predictors[version]
                t_dispatch = env.now
                rows = np.array([r.row for r in batch])
                X_batch = X_queries[rows]
                work = pred.workload(X_batch)
                speed = gpu.speed_at(t_dispatch)
                # Pick the scoring path and its modeled cost *before* the
                # numerics run, from this device's cost model at this
                # instant — the crossover decision the ``serve.batch`` span
                # records.
                if self.scoring == "auto":
                    exact_service = gpu.cost_model.inference_time(
                        work, speed=speed, n_active_gpus=self.server.n_gpus
                    )
                    lsh_service = _price_lsh(gpu, pred, work, speed)
                    if lsh_service < exact_service:
                        chosen, service = "lsh", lsh_service
                    else:
                        chosen, service = "exact", exact_service
                elif self.scoring == "lsh":
                    chosen = "lsh"
                    service = _price_lsh(gpu, pred, work, speed)
                else:
                    chosen = "exact"
                    service = gpu.cost_model.inference_time(
                        work, speed=speed, n_active_gpus=self.server.n_gpus
                    )
                # Real numerics on the host via the chosen path and the
                # *pinned* version's weights; simulated time from that
                # path's modeled cost.
                if chosen == "lsh":
                    labels, counts = pred.lsh_stats(X_batch, k)
                    batch_fraction = (
                        float(counts.mean()) / n_labels if counts.size else 0.0
                    )
                    lsh_fractions.append(batch_fraction)
                else:
                    labels = pred.topk(X_batch, k)
                    batch_fraction = None
                span_args = dict(
                    size=len(batch), nnz=int(X_batch.nnz), scoring=chosen,
                    version=version, priority_class=batch_class,
                )
                if batch_fraction is not None:
                    span_args["candidate_fraction"] = batch_fraction
                with tel.span(SPAN_SERVE_BATCH, device=device, **span_args):
                    yield env.timeout(service)
                t_done = env.now
                gpu.record_busy(service, start=t_dispatch, tag="serve")
                scheduler.observe_busy(service)
                scoring_batches[chosen] = scoring_batches.get(chosen, 0) + 1
                for request in batch:
                    request.t_dispatch = t_dispatch
                    request.t_done = t_done
                    request.device = device
                    request.served_version = version
                    completed.append((t_done, t_done - request.t_arrival))
                    tel.record_span(
                        SPAN_SERVE_REQUEST,
                        request.t_arrival,
                        t_done - request.t_arrival,
                        queue_s=t_dispatch - request.t_arrival,
                        batch=len(batch),
                        device_id=device,
                        version=version,
                        tenant=request.tenant,
                        priority_class=request.priority_class,
                    )
                request_labels = np.asarray(labels)
                for j, request in enumerate(batch):
                    request.labels = request_labels[j].tolist()
                per_device[device] += len(batch)
                versions_served[version] = (
                    versions_served.get(version, 0) + len(batch)
                )
                pins[version] -= len(batch)
                _retire(version)
                batch_sizes.append(len(batch))
                if self.mode == "adaptive":
                    new_cap = sizer.observe(len(batch), t_done - t_dispatch)
                    tel.gauge(GAUGE_BATCH_SIZE, new_cap, device=device)

        def _drained() -> bool:
            return state["arrivals_done"] and scheduler.depth == 0

        def _canary_recall(pred: Predictor) -> float:
            """Labeled recall@k of ``pred`` on the deterministic probe
            block (host-side, zero simulated time)."""
            n_probe = min(cfg.canary_queries, X_queries.shape[0])
            top = pred.topk(X_queries[:n_probe], k)
            Y = canary_labels
            scores = []
            for i in range(n_probe):
                true = set(Y.indices[Y.indptr[i]:Y.indptr[i + 1]].tolist())
                if not true:
                    continue
                hits = len(true & set(top[i].tolist()))
                scores.append(hits / min(k, len(true)))
            return float(np.mean(scores)) if scores else 0.0

        def swap_manager(env: Environment, store: SnapshotStore):
            gpu0 = self.server.gpus[0]
            seen = self.base_version
            while not _drained():
                next_version = store.poll(after=seen, now=env.now)
                if next_version is None:
                    yield env.timeout(cfg.swap_check_every_s)
                    continue
                seen = next_version  # never retry a version, even on failure
                prev_version = active["version"]
                prev_pred = predictors[prev_version]
                # -- load + validate (host-side; failures never interrupt
                #    serving — the prior version stays active) --------------
                try:
                    snapshot = store.load(next_version)
                    new_pred = prev_pred.spawn(snapshot)
                except (SnapshotError, ServeError) as exc:
                    counters["failures"] += 1
                    tel.counter(COUNTER_SWAP_FAILURES, 1)
                    tel.instant(
                        EVENT_SWAP_FAILED,
                        version=next_version, error=str(exc),
                    )
                    swap_records.append({
                        "version_to": next_version,
                        "t": env.now,
                        "failed": True,
                        "error": str(exc),
                    })
                    continue
                # -- staged warming, off the dispatch path ------------------
                protected.add(prev_version)
                t_warm_start = env.now
                warm_s = gpu0.cost_model.model_transfer_time(
                    snapshot.state.nbytes
                )
                if self.scoring in ("lsh", "auto"):
                    new_pred.rebuild_lsh()
                    warm_s += gpu0.cost_model.lsh_rebuild_time(
                        n_labels,
                        self.predictor.arch.layer_dims[-2],
                        n_tables=new_pred.lsh_tables,
                        n_bits=new_pred.lsh_bits,
                        n_active_gpus=self.server.n_gpus,
                    )
                with tel.span(
                    SPAN_SERVE_SWAP,
                    version_from=prev_version, version_to=next_version,
                ):
                    yield env.timeout(warm_s)
                # -- atomic commit between batches --------------------------
                predictors[next_version] = new_pred
                pins.setdefault(next_version, 0)
                active["version"] = next_version
                counters["swaps"] += 1
                tel.counter(COUNTER_SWAPS, 1)
                tel.instant(
                    EVENT_SWAP_COMMIT,
                    version=next_version, previous=prev_version,
                    warm_s=warm_s,
                )
                record = {
                    "version_from": prev_version,
                    "version_to": next_version,
                    "t_warm_start": t_warm_start,
                    "t_commit": env.now,
                    "warm_s": warm_s,
                    "rolled_back": False,
                }
                swap_records.append(record)
                t_commit = env.now
                # -- post-swap canaries -------------------------------------
                rollback_reason = None
                if (
                    cfg.canary_recall_drop is not None
                    and canary_labels is not None
                ):
                    prev_recall = _canary_recall(prev_pred)
                    new_recall = _canary_recall(new_pred)
                    record["canary_recall_prev"] = prev_recall
                    record["canary_recall_new"] = new_recall
                    if new_recall < prev_recall - cfg.canary_recall_drop:
                        rollback_reason = (
                            f"canary recall@{k} dropped {prev_recall:.3f} -> "
                            f"{new_recall:.3f} (tolerance "
                            f"{cfg.canary_recall_drop})"
                        )
                if (
                    rollback_reason is None
                    and cfg.canary_latency_factor is not None
                ):
                    pre = [lat for t, lat in completed if t <= t_commit]
                    if len(pre) >= cfg.canary_min_samples:
                        target = len(completed) + cfg.canary_min_samples
                        while len(completed) < target and not _drained():
                            yield env.timeout(cfg.swap_check_every_s)
                        post = [lat for t, lat in completed if t > t_commit]
                        if len(post) >= cfg.canary_min_samples:
                            pre_p99 = nearest_rank_percentile(pre, 99)
                            post_p99 = nearest_rank_percentile(post, 99)
                            if post_p99 > cfg.canary_latency_factor * pre_p99:
                                rollback_reason = (
                                    f"post-swap p99 {post_p99:.6f}s beyond "
                                    f"{cfg.canary_latency_factor}x pre-swap "
                                    f"p99 {pre_p99:.6f}s"
                                )
                if rollback_reason is not None:
                    # Roll the pointer back; already-admitted requests stay
                    # pinned to the bad version (they drain against it —
                    # pinning outranks quarantine), but nothing new admits.
                    active["version"] = prev_version
                    quarantined.add(next_version)
                    record["rolled_back"] = True
                    record["rollback_reason"] = rollback_reason
                    counters["rollbacks"] += 1
                    tel.counter(COUNTER_ROLLBACKS, 1)
                    tel.instant(
                        EVENT_SWAP_ROLLBACK,
                        version=next_version, restored=prev_version,
                        reason=rollback_reason,
                    )
                    protected.discard(prev_version)
                    _retire(next_version)
                else:
                    protected.discard(prev_version)
                    _retire(prev_version)
            return None

        # -- elastic membership ----------------------------------------------
        #: Device ids with a worker process spawned (joins add to it).
        worker_ids: Set[int] = {g.device_id for g in self.server.gpus}
        autoscale_counts = {"admits": 0, "retires": 0}

        def _spawn_new_workers() -> None:
            for gpu in self.server.gpus:
                if gpu.device_id not in worker_ids:
                    worker_ids.add(gpu.device_id)
                    env.process(worker(env, gpu), name=f"serve-{gpu.name}")

        def membership_manager(env: Environment, membership):
            #: Stack of autoscaler-admitted device ids (retire newest first).
            admitted: List[int] = []
            while not _drained():
                applied = membership.poll(env.now)
                if cfg.autoscale:
                    depth = scheduler.depth
                    # Each further admission demands proportionally more
                    # backlog — hysteresis against per-tick flapping.
                    threshold = cfg.autoscale_high_depth * (1 + len(admitted))
                    if depth >= threshold:
                        event = membership.admit(env.now)
                        if event.applied:
                            admitted.append(event.device_id)
                            autoscale_counts["admits"] += 1
                            applied.append(event)
                    elif (
                        depth <= cfg.autoscale_low_depth
                        and admitted
                        and membership.n_active > cfg.autoscale_min_devices
                    ):
                        event = membership.retire(env.now, admitted[-1])
                        if event.applied:
                            admitted.pop()
                            autoscale_counts["retires"] += 1
                            applied.append(event)
                if applied:
                    _spawn_new_workers()
                    scheduler.set_n_devices(max(1, membership.n_active))
                    _wake_all()
                # Sleep until the next timeline event if it lands before
                # the autoscaler cadence — a sub-cadence event must not be
                # slept past (short sims run far below the default 1 ms).
                delay = cfg.membership_check_every_s
                next_t = membership.next_event_t()
                if next_t is not None and next_t > env.now:
                    delay = min(delay, next_t - env.now)
                yield env.timeout(delay)
            # Parked (inactive) workers check _drained() on wake — release
            # them so the run can end.
            _wake_all()
            return None

        tel.attach(
            env,
            algorithm=f"serve-{self.mode}",
            dataset=str(self.predictor.snapshot.meta.get("dataset", "queries")),
            n_devices=self.server.n_gpus,
            mode=self.mode,
            scoring=self.scoring,
            use_lsh=self.use_lsh,
            n_requests=n_requests,
            hot_swap=self.store is not None,
            elastic=membership is not None,
        )
        if membership is not None:
            membership.telemetry = tel
        try:
            with tel.span(SPAN_RUN, mode=self.mode, n_requests=n_requests):
                env.process(source(env), name="serve-source")
                for gpu in self.server.gpus:
                    env.process(worker(env, gpu), name=f"serve-{gpu.name}")
                if self.store is not None:
                    env.process(
                        swap_manager(env, self.store), name="serve-swap"
                    )
                if membership is not None:
                    env.process(
                        membership_manager(env, membership),
                        name="serve-membership",
                    )
                env.run()
        finally:
            tel.detach()

        served = [r for r in requests if not r.shed]
        unserved = [r.req_id for r in served if r.t_done is None]
        if unserved:
            raise ServeError(
                f"{len(unserved)} requests never completed "
                f"(first: {unserved[:5]}) — worker wakeup logic broke"
            )
        if not served:
            raise ServeError(
                "admission control shed every request; raise max_queue_depth"
            )
        mis_versioned = sum(
            1 for r in served if r.served_version != r.version
        )
        # Vectorized accounting: one pass to lift the timestamps out of the
        # request objects, then pure array math (bulk single-sort
        # percentiles) — no per-request Python in the report path.
        n_served = len(served)
        t_arr = np.fromiter((r.t_arrival for r in served), np.float64, n_served)
        t_done = np.fromiter((r.t_done for r in served), np.float64, n_served)
        t_disp = np.fromiter(
            (r.t_dispatch for r in served), np.float64, n_served
        )
        latencies = t_done - t_arr
        queue_delays = t_disp - t_arr
        makespan = float(t_done.max() - t_arr.min())
        multi_tenant = tenants is not None or priority_classes is not None
        tenant_stats: Dict[str, dict] = {}
        class_stats: Dict[int, dict] = {}
        fairness = None
        if multi_tenant:
            served_tenants = np.array(
                [r.tenant for r in served], dtype=object
            )
            served_classes = np.fromiter(
                (r.priority_class for r in served), np.int64, n_served
            )
            tenant_stats = per_tenant_stats(
                served_tenants,
                latencies,
                makespan_s=makespan,
                shed_by_tenant=scheduler.shed_by_tenant,
                classes=served_classes,
            )
            fairness = fairness_ratio(tenant_stats, cfg.tenant_weights)
            class_p99 = grouped_nearest_rank_percentiles(
                served_classes, latencies, (99.0,), cfg.priority_classes
            )
            class_counts = np.bincount(
                served_classes, minlength=cfg.priority_classes
            )
            for c in range(cfg.priority_classes):
                n_class = int(class_counts[c])
                n_class_shed = int(scheduler.shed_by_class.get(c, 0))
                if n_class == 0 and n_class_shed == 0:
                    continue
                class_stats[c] = {
                    "completed": n_class,
                    "latency_p99_ms": float(class_p99[c, 0]) * 1e3,
                    "n_shed": n_class_shed,
                    "slo_ms": cfg.class_target_latency_s(c) * 1e3,
                }
        report = LatencyReport(
            n_requests=n_served,
            makespan_s=makespan,
            latencies_s=latencies,
            queue_delays_s=queue_delays,
            batch_sizes=batch_sizes,
            n_shed=scheduler.n_shed,
            shed_by_tenant=dict(scheduler.shed_by_tenant),
            meta={
                "mode": self.mode,
                "scoring": self.scoring,
                "use_lsh": self.use_lsh,
            },
        )
        return ServeResult(
            mode=self.mode,
            requests=requests,
            report=report,
            per_device=per_device,
            max_queue_depth=scheduler.max_depth,
            recall_at_k=None,
            k=k,
            scoring=self.scoring,
            scoring_batches=scoring_batches,
            mean_candidate_fraction=(
                float(np.mean(lsh_fractions)) if lsh_fractions else None
            ),
            n_shed=scheduler.n_shed,
            tenants=tenant_stats,
            per_class=class_stats,
            fairness=fairness,
            shed_by_tenant=dict(scheduler.shed_by_tenant),
            swaps=swap_records,
            n_swaps=counters["swaps"],
            n_rollbacks=counters["rollbacks"],
            n_swap_failures=counters["failures"],
            versions_served=versions_served,
            mis_versioned=mis_versioned,
            active_version=active["version"],
            membership_events=(
                [
                    {
                        "t": e.t,
                        "kind": e.kind,
                        "device_id": e.device_id,
                        "factor": e.factor,
                        "source": e.source,
                        "applied": e.applied,
                        "note": e.note,
                    }
                    for e in membership.applied_events
                ]
                if membership is not None
                else []
            ),
            n_membership_events=(
                membership.n_events if membership is not None else 0
            ),
            final_devices=(
                membership.n_active if membership is not None else None
            ),
            n_autoscale_admits=autoscale_counts["admits"],
            n_autoscale_retires=autoscale_counts["retires"],
        )
