"""The sim-clock serving engine: request loop, dispatch, and telemetry.

One :class:`ServingEngine` run replays an open-loop arrival schedule
against a snapshot on the simulated heterogeneous server:

- a **source process** enqueues each request at its arrival time and wakes
  any idle device worker;
- one **worker process per GPU** pops up to ``min(cap, queue depth)``
  requests (``cap`` from that device's
  :class:`~repro.serve.queue.AdaptiveBatchSizer`, or a fixed size in
  ``sequential`` mode), runs the real top-k numerics on the host, charges
  the simulated clock with the cost model's batch time for *this* device
  at *this* moment (speed profiles keep heterogeneity live during
  serving), and stamps completion on every request in the batch.

Orthogonal to the batching mode, ``scoring`` selects the ranking path per
batch: ``"exact"`` (dense top-k over all ``L`` labels), ``"lsh"`` (the
batched multi-probe candidate pipeline), or ``"auto"`` — the crossover
policy. ``auto`` asks the device's cost model to price both paths
(:meth:`~repro.gpu.cost.GpuCostModel.inference_time` vs
:meth:`~repro.gpu.cost.GpuCostModel.lsh_inference_time` at the
predictor's *observed* candidate fraction) and runs whichever is cheaper,
charging the simulated clock with the chosen path's modeled time. The
decision, the fraction it used, and the path taken are recorded on every
``serve.batch`` span, so ``repro analyze`` can report the scoring split.

Free devices pull work the moment they finish — the paper's dynamic
dispatch-to-free-device rule, applied to inference. Telemetry mirrors
training: a ``serve.batch`` span per dispatched batch (device compute,
feeds the idle accountant) and a retroactive ``serve.request`` span per
request spanning enqueue → response, so ``repro analyze`` attributes
serving time with the same invariant as training runs.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ConfigurationError, ServeError
from repro.gpu.cluster import MultiGPUServer
from repro.serve.loadgen import LatencyReport
from repro.serve.predictor import Predictor
from repro.serve.queue import AdaptiveBatchSizer, Request, RequestQueue
from repro.sim.environment import Environment
from repro.telemetry import NULL, Telemetry
from repro.telemetry.events import (
    GAUGE_BATCH_SIZE,
    SPAN_RUN,
    SPAN_SERVE_BATCH,
    SPAN_SERVE_REQUEST,
)

__all__ = ["ServingEngine", "ServeResult", "SERVE_MODES", "SCORING_MODES"]

SERVE_MODES = ("sequential", "adaptive")
SCORING_MODES = ("exact", "lsh", "auto")

#: Queries probed (retrieval only) to seed the candidate-fraction estimate
#: when ``auto`` serving starts with no prior LSH observations.
_CALIBRATION_ROWS = 64


@dataclass
class ServeResult:
    """Everything one serving run produced."""

    mode: str
    requests: List[Request]
    report: LatencyReport
    #: Device id -> requests served there.
    per_device: Dict[int, int] = field(default_factory=dict)
    #: Queue high-water mark over the run.
    max_queue_depth: int = 0
    #: LSH recall@k vs the exact path (None when the exact path served).
    recall_at_k: Optional[float] = None
    k: int = 5
    #: The configured scoring policy ("exact", "lsh", or "auto").
    scoring: str = "exact"
    #: Scoring path -> batches that ran it (auto splits across both).
    scoring_batches: Dict[str, int] = field(default_factory=dict)
    #: Mean candidate fraction over the LSH-scored batches (None if none).
    mean_candidate_fraction: Optional[float] = None

    def as_dict(self) -> dict:
        """JSON-safe summary."""
        out = self.report.as_dict()
        out.update({
            "mode": self.mode,
            "per_device": {str(d): n for d, n in sorted(self.per_device.items())},
            "max_queue_depth": self.max_queue_depth,
            "k": self.k,
            "scoring": self.scoring,
            "scoring_batches": dict(sorted(self.scoring_batches.items())),
        })
        if self.recall_at_k is not None:
            out["recall_at_k"] = self.recall_at_k
        if self.mean_candidate_fraction is not None:
            out["mean_candidate_fraction"] = self.mean_candidate_fraction
        return out


class ServingEngine:
    """Adaptive-batched sparse inference on the simulated server."""

    def __init__(
        self,
        predictor: Predictor,
        server: MultiGPUServer,
        *,
        mode: str = "adaptive",
        target_latency_s: float = 2e-3,
        b_min: int = 1,
        b_max: int = 256,
        beta: float = 0.5,
        fixed_batch_size: int = 1,
        scoring: Optional[str] = None,
        use_lsh: bool = False,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if mode not in SERVE_MODES:
            raise ConfigurationError(
                f"mode must be one of {SERVE_MODES}, got {mode!r}"
            )
        if fixed_batch_size < 1:
            raise ConfigurationError(
                f"fixed_batch_size must be >= 1, got {fixed_batch_size}"
            )
        if use_lsh:
            warnings.warn(
                "use_lsh is deprecated; pass scoring='lsh' instead",
                DeprecationWarning,
                stacklevel=2,
            )
            if scoring is None:
                scoring = "lsh"
        if scoring is None:
            scoring = "exact"
        if scoring not in SCORING_MODES:
            raise ConfigurationError(
                f"scoring must be one of {SCORING_MODES}, got {scoring!r}"
            )
        self.predictor = predictor
        self.server = server
        self.mode = mode
        self.target_latency_s = float(target_latency_s)
        self.b_min = int(b_min)
        self.b_max = int(b_max)
        self.beta = float(beta)
        self.fixed_batch_size = int(fixed_batch_size)
        self.scoring = scoring
        #: Back-compat view of the scoring policy (True only for fixed LSH).
        self.use_lsh = scoring == "lsh"
        self.telemetry: Telemetry = telemetry if telemetry is not None else NULL

    # -- the run -------------------------------------------------------------
    def serve(
        self,
        X_queries: sp.csr_matrix,
        arrival_times: np.ndarray,
        *,
        k: int = 5,
        row_indices: Optional[np.ndarray] = None,
    ) -> ServeResult:
        """Replay ``arrival_times`` over ``X_queries``; return the result.

        ``row_indices`` (default: round-robin over the query matrix) maps
        request *i* to a row of ``X_queries``. Numerics run on the host;
        the simulated clock advances by the cost model's per-batch time
        for whichever scoring path the policy picked.
        """
        arrival_times = np.asarray(arrival_times, dtype=np.float64)
        n_requests = arrival_times.size
        if n_requests == 0:
            raise ConfigurationError("serve() needs at least one arrival")
        if np.any(np.diff(arrival_times) < 0):
            raise ConfigurationError("arrival_times must be non-decreasing")
        if row_indices is None:
            row_indices = np.arange(n_requests) % X_queries.shape[0]
        else:
            row_indices = np.asarray(row_indices)
            if row_indices.size != n_requests:
                raise ConfigurationError(
                    f"{row_indices.size} row indices for {n_requests} arrivals"
                )
            if row_indices.size and (
                row_indices.min() < 0 or row_indices.max() >= X_queries.shape[0]
            ):
                raise ConfigurationError("row index outside the query matrix")
        predictor = self.predictor
        if self.scoring in ("lsh", "auto") and not predictor._lsh_built:
            predictor.rebuild_lsh()
        if (
            self.scoring in ("lsh", "auto")
            and predictor.observed_candidate_fraction() is None
        ):
            # Seed the crossover signal deterministically from the head of
            # the query pool (retrieval only — no scoring work).
            predictor.calibrate_candidate_fraction(
                X_queries, max_rows=min(_CALIBRATION_ROWS, X_queries.shape[0])
            )

        env = Environment()
        tel = self.telemetry
        queue = RequestQueue()
        requests = [
            Request(req_id=i, row=int(row_indices[i]), t_arrival=float(t))
            for i, t in enumerate(arrival_times)
        ]
        sizers = {
            gpu.device_id: AdaptiveBatchSizer(
                b_min=self.b_min,
                b_max=self.b_max,
                beta=self.beta,
                target_latency_s=self.target_latency_s,
            )
            for gpu in self.server.gpus
        }
        per_device: Dict[int, int] = {g.device_id: 0 for g in self.server.gpus}
        batch_sizes: List[int] = []
        scoring_batches: Dict[str, int] = {}
        lsh_fractions: List[float] = []
        n_labels = predictor.arch.n_labels
        state = {"arrivals_done": False, "wakeup": env.event()}

        def _wake_all() -> None:
            """Fire-and-replace the shared wakeup event (re-arm pattern)."""
            event, state["wakeup"] = state["wakeup"], env.event()
            event.succeed()

        def source(env: Environment):
            for request in requests:
                delay = request.t_arrival - env.now
                if delay > 0:
                    yield env.timeout(delay)
                queue.push(request)
                _wake_all()
            state["arrivals_done"] = True
            _wake_all()
            return None

        def _price_lsh(gpu, work, speed: float) -> float:
            frac = predictor.observed_candidate_fraction()
            return gpu.cost_model.lsh_inference_time(
                work,
                frac if frac is not None else 1.0,
                n_tables=predictor.lsh_tables,
                n_bits=predictor.lsh_bits,
                n_probes=predictor.lsh_probes,
                speed=speed,
                n_active_gpus=self.server.n_gpus,
            )

        def worker(env: Environment, gpu):
            device = gpu.device_id
            sizer = sizers[device]
            while True:
                if queue.depth == 0:
                    if state["arrivals_done"]:
                        return None
                    yield state["wakeup"]
                    continue
                cap = (
                    sizer.cap if self.mode == "adaptive"
                    else self.fixed_batch_size
                )
                batch = queue.pop_batch(cap)
                t_dispatch = env.now
                rows = np.array([r.row for r in batch])
                X_batch = X_queries[rows]
                work = predictor.workload(X_batch)
                speed = gpu.speed_at(t_dispatch)
                # Pick the scoring path and its modeled cost *before* the
                # numerics run, from this device's cost model at this
                # instant — the crossover decision the ``serve.batch`` span
                # records.
                if self.scoring == "auto":
                    exact_service = gpu.cost_model.inference_time(
                        work, speed=speed, n_active_gpus=self.server.n_gpus
                    )
                    lsh_service = _price_lsh(gpu, work, speed)
                    if lsh_service < exact_service:
                        chosen, service = "lsh", lsh_service
                    else:
                        chosen, service = "exact", exact_service
                elif self.scoring == "lsh":
                    chosen = "lsh"
                    service = _price_lsh(gpu, work, speed)
                else:
                    chosen = "exact"
                    service = gpu.cost_model.inference_time(
                        work, speed=speed, n_active_gpus=self.server.n_gpus
                    )
                # Real numerics on the host via the chosen path; simulated
                # time from that path's modeled cost.
                if chosen == "lsh":
                    labels, counts = predictor.lsh_stats(X_batch, k)
                    batch_fraction = (
                        float(counts.mean()) / n_labels if counts.size else 0.0
                    )
                    lsh_fractions.append(batch_fraction)
                else:
                    labels = predictor.topk(X_batch, k)
                    batch_fraction = None
                span_args = dict(
                    size=len(batch), nnz=int(X_batch.nnz), scoring=chosen
                )
                if batch_fraction is not None:
                    span_args["candidate_fraction"] = batch_fraction
                with tel.span(SPAN_SERVE_BATCH, device=device, **span_args):
                    yield env.timeout(service)
                t_done = env.now
                gpu.record_busy(service, start=t_dispatch, tag="serve")
                scoring_batches[chosen] = scoring_batches.get(chosen, 0) + 1
                for request in batch:
                    request.t_dispatch = t_dispatch
                    request.t_done = t_done
                    request.device = device
                    tel.record_span(
                        SPAN_SERVE_REQUEST,
                        request.t_arrival,
                        t_done - request.t_arrival,
                        queue_s=t_dispatch - request.t_arrival,
                        batch=len(batch),
                        device_id=device,
                    )
                request_labels = np.asarray(labels)
                for j, request in enumerate(batch):
                    request.labels = request_labels[j].tolist()
                per_device[device] += len(batch)
                batch_sizes.append(len(batch))
                if self.mode == "adaptive":
                    new_cap = sizer.observe(len(batch), t_done - t_dispatch)
                    tel.gauge(GAUGE_BATCH_SIZE, new_cap, device=device)

        tel.attach(
            env,
            algorithm=f"serve-{self.mode}",
            dataset=str(self.predictor.snapshot.meta.get("dataset", "queries")),
            n_devices=self.server.n_gpus,
            mode=self.mode,
            scoring=self.scoring,
            use_lsh=self.use_lsh,
            n_requests=n_requests,
        )
        try:
            with tel.span(SPAN_RUN, mode=self.mode, n_requests=n_requests):
                env.process(source(env), name="serve-source")
                workers = [
                    env.process(worker(env, gpu), name=f"serve-{gpu.name}")
                    for gpu in self.server.gpus
                ]
                env.run()
        finally:
            tel.detach()

        unserved = [r.req_id for r in requests if r.t_done is None]
        if unserved:
            raise ServeError(
                f"{len(unserved)} requests never completed "
                f"(first: {unserved[:5]}) — worker wakeup logic broke"
            )
        latencies = np.array([r.latency_s for r in requests])
        queue_delays = np.array([r.queue_s for r in requests])
        makespan = max(r.t_done for r in requests) - min(
            r.t_arrival for r in requests
        )
        report = LatencyReport(
            n_requests=n_requests,
            makespan_s=makespan,
            latencies_s=latencies,
            queue_delays_s=queue_delays,
            batch_sizes=batch_sizes,
            meta={
                "mode": self.mode,
                "scoring": self.scoring,
                "use_lsh": self.use_lsh,
            },
        )
        return ServeResult(
            mode=self.mode,
            requests=requests,
            report=report,
            per_device=per_device,
            max_queue_depth=queue.max_depth,
            recall_at_k=None,
            k=k,
            scoring=self.scoring,
            scoring_batches=scoring_batches,
            mean_candidate_fraction=(
                float(np.mean(lsh_fractions)) if lsh_fractions else None
            ),
        )
