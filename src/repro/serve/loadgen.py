"""Open-loop load generation and latency reporting for the serving bench.

Arrival processes are **open-loop**: request times are drawn up front from
the arrival model and do not react to server backpressure — the standard
methodology for latency benchmarking (a closed loop would hide queueing
delay by slowing the offered load exactly when the server struggles).

Two arrival patterns:

- ``poisson`` — exponential inter-arrival gaps at a constant rate (the
  memoryless baseline);
- ``burst`` — alternating hot/cold phases around the same average rate:
  bursts arrive at ``burst_factor ×`` the base rate for ``burst_fraction``
  of the time, with the cold phase slowed to compensate. This is the
  diurnal-peak shape the adaptive batch sizer must absorb.

Percentiles use the nearest-rank definition (the p-th percentile is an
actually-observed latency, never an interpolation). The accounting path
is vectorized for million-request runs: one sort serves every percentile
of a distribution (:func:`nearest_rank_percentiles`), and one lexsort
serves every per-tenant percentile at once
(:func:`grouped_nearest_rank_percentiles`) — the bench never loops over
requests in Python.

Multi-tenant scenarios are described by a list of :class:`TenantLoad`
(one open-loop :class:`LoadSpec` per tenant plus its priority class);
:func:`generate_multi_tenant_arrivals` merges the per-tenant schedules
into one globally-sorted arrival array with aligned tenant/class arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import RngFactory

__all__ = [
    "LoadSpec",
    "TenantLoad",
    "generate_arrivals",
    "generate_multi_tenant_arrivals",
    "sample_query_rows",
    "nearest_rank_percentile",
    "nearest_rank_percentiles",
    "grouped_nearest_rank_percentiles",
    "per_tenant_stats",
    "fairness_ratio",
    "LatencyReport",
]

ARRIVAL_PATTERNS = ("poisson", "burst")


@dataclass(frozen=True)
class LoadSpec:
    """One open-loop load scenario."""

    n_requests: int
    rate_rps: float
    pattern: str = "poisson"
    #: Burst intensity: peak rate = ``burst_factor * rate_rps``.
    burst_factor: float = 4.0
    #: Fraction of requests arriving inside bursts.
    burst_fraction: float = 0.3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ConfigurationError(
                f"n_requests must be >= 1, got {self.n_requests}"
            )
        if self.rate_rps <= 0:
            raise ConfigurationError(
                f"rate_rps must be > 0, got {self.rate_rps}"
            )
        if self.pattern not in ARRIVAL_PATTERNS:
            raise ConfigurationError(
                f"pattern must be one of {ARRIVAL_PATTERNS}, got {self.pattern!r}"
            )
        if self.burst_factor <= 1.0:
            raise ConfigurationError(
                f"burst_factor must be > 1, got {self.burst_factor}"
            )
        if not (0.0 < self.burst_fraction < 1.0):
            raise ConfigurationError(
                f"burst_fraction must be in (0, 1), got {self.burst_fraction}"
            )


def generate_arrivals(spec: LoadSpec) -> np.ndarray:
    """Absolute arrival times (seconds, ascending) for ``spec``."""
    rng = RngFactory(spec.seed).get("serve-arrivals", spec.pattern)
    n = spec.n_requests
    if spec.pattern == "poisson":
        gaps = rng.exponential(scale=1.0 / spec.rate_rps, size=n)
        return np.cumsum(gaps)

    # Burst: a burst_fraction share of requests arrives at the hot rate;
    # the cold rate is solved so the *overall* average stays rate_rps:
    #   n / rate = n_hot / rate_hot + n_cold / rate_cold.
    n_hot = max(1, int(round(n * spec.burst_fraction)))
    n_cold = n - n_hot
    rate_hot = spec.rate_rps * spec.burst_factor
    if n_cold > 0:
        cold_time = n / spec.rate_rps - n_hot / rate_hot
        rate_cold = n_cold / cold_time
    else:
        rate_cold = rate_hot
    # Interleave phases in ~4 burst episodes so the sizer sees transitions.
    episodes = min(4, n_hot)
    hot_sizes = np.full(episodes, n_hot // episodes, dtype=int)
    hot_sizes[: n_hot % episodes] += 1
    cold_sizes = np.full(episodes, n_cold // episodes, dtype=int)
    cold_sizes[: n_cold % episodes] += 1
    gaps: List[np.ndarray] = []
    for hot, cold in zip(hot_sizes, cold_sizes):
        if cold:
            gaps.append(rng.exponential(scale=1.0 / rate_cold, size=cold))
        if hot:
            gaps.append(rng.exponential(scale=1.0 / rate_hot, size=hot))
    return np.cumsum(np.concatenate(gaps))


@dataclass(frozen=True)
class TenantLoad:
    """One tenant's slice of a multi-tenant scenario."""

    tenant: str
    spec: LoadSpec
    #: Priority class the tenant's requests are tagged with (0 = highest).
    priority_class: int = 0

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ConfigurationError("tenant name must be non-empty")
        if self.priority_class < 0:
            raise ConfigurationError(
                f"priority_class must be >= 0, got {self.priority_class}"
            )


def generate_multi_tenant_arrivals(
    loads: Sequence[TenantLoad],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge per-tenant open-loop schedules into one global arrival stream.

    Returns ``(times, tenants, classes)`` — aligned arrays sorted by
    arrival time (stable, so simultaneous arrivals keep the declared
    tenant order). Each tenant's arrivals come from its own
    :func:`generate_arrivals` draw, so a tenant's schedule is identical
    whether it runs solo or alongside neighbors — exactly what a
    noisy-neighbor comparison needs.
    """
    if not loads:
        raise ConfigurationError("need at least one TenantLoad")
    names = [ld.tenant for ld in loads]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate tenant names in {names}")
    per_tenant = [generate_arrivals(ld.spec) for ld in loads]
    times = np.concatenate(per_tenant)
    tenants = np.concatenate([
        np.full(arr.size, ld.tenant, dtype=object)
        for arr, ld in zip(per_tenant, loads)
    ])
    classes = np.concatenate([
        np.full(arr.size, ld.priority_class, dtype=np.int64)
        for arr, ld in zip(per_tenant, loads)
    ])
    order = np.argsort(times, kind="stable")
    return times[order], tenants[order], classes[order]


def sample_query_rows(
    n_rows: int, n_requests: int, *, seed: int = 0
) -> np.ndarray:
    """Row indices (with replacement) mapping requests to dataset samples."""
    if n_rows < 1:
        raise ConfigurationError(f"n_rows must be >= 1, got {n_rows}")
    rng = RngFactory(seed).get("serve-queries")
    return rng.integers(0, n_rows, size=n_requests)


def nearest_rank_percentile(
    values: Sequence[float], percentile: float
) -> float:
    """Nearest-rank percentile: the ceil(p·n)-th smallest observed value."""
    if not (0.0 < percentile <= 100.0):
        raise ConfigurationError(
            f"percentile must be in (0, 100], got {percentile}"
        )
    arr = np.sort(np.asarray(values, dtype=np.float64))
    if arr.size == 0:
        raise ConfigurationError("percentile of an empty sample")
    rank = int(np.ceil(percentile / 100.0 * arr.size))
    return float(arr[max(rank, 1) - 1])


def nearest_rank_percentiles(
    values: Sequence[float], percentiles: Sequence[float]
) -> np.ndarray:
    """All requested nearest-rank percentiles from **one** sort.

    Identical semantics to calling :func:`nearest_rank_percentile` per
    ``p``, but O(n log n + len(ps)) instead of a sort per percentile —
    the bulk path million-request reports go through.
    """
    arr = np.sort(np.asarray(values, dtype=np.float64))
    if arr.size == 0:
        raise ConfigurationError("percentile of an empty sample")
    ps = np.asarray(percentiles, dtype=np.float64)
    if ps.size and (ps.min() <= 0.0 or ps.max() > 100.0):
        raise ConfigurationError(
            f"percentiles must be in (0, 100], got {percentiles}"
        )
    ranks = np.ceil(ps / 100.0 * arr.size).astype(np.int64)
    return arr[np.maximum(ranks, 1) - 1]


def grouped_nearest_rank_percentiles(
    group_codes: np.ndarray,
    values: np.ndarray,
    percentiles: Sequence[float],
    n_groups: int,
) -> np.ndarray:
    """Nearest-rank percentiles per group from **one** lexsort.

    ``group_codes`` holds ints in ``[0, n_groups)`` aligned with
    ``values``; returns an ``(n_groups, len(percentiles))`` array whose
    row ``g`` matches ``nearest_rank_percentiles(values[codes == g], ps)``.
    Empty groups yield NaN rows. This is the vectorized per-tenant
    accounting path: no Python loop over requests, one sort total.
    """
    codes = np.asarray(group_codes, dtype=np.int64)
    vals = np.asarray(values, dtype=np.float64)
    if codes.shape != vals.shape:
        raise ConfigurationError(
            f"group_codes {codes.shape} and values {vals.shape} must align"
        )
    if n_groups < 1:
        raise ConfigurationError(f"n_groups must be >= 1, got {n_groups}")
    if codes.size and (codes.min() < 0 or codes.max() >= n_groups):
        raise ConfigurationError("group code outside [0, n_groups)")
    ps = np.asarray(percentiles, dtype=np.float64)
    if ps.size and (ps.min() <= 0.0 or ps.max() > 100.0):
        raise ConfigurationError(
            f"percentiles must be in (0, 100], got {percentiles}"
        )
    order = np.lexsort((vals, codes))
    sorted_codes = codes[order]
    sorted_vals = vals[order]
    group_ids = np.arange(n_groups, dtype=np.int64)
    starts = np.searchsorted(sorted_codes, group_ids, side="left")
    ends = np.searchsorted(sorted_codes, group_ids, side="right")
    sizes = ends - starts  # (n_groups,)
    ranks = np.ceil(ps[None, :] / 100.0 * sizes[:, None]).astype(np.int64)
    idx = starts[:, None] + np.maximum(ranks, 1) - 1
    out = np.full((n_groups, ps.size), np.nan)
    nonempty = sizes > 0
    out[nonempty] = sorted_vals[
        np.minimum(idx[nonempty], (ends[:, None] - 1)[nonempty])
    ]
    return out


def per_tenant_stats(
    tenants: Sequence[str],
    latencies_s: np.ndarray,
    *,
    makespan_s: float,
    shed_by_tenant: Optional[Dict[str, int]] = None,
    classes: Optional[np.ndarray] = None,
) -> Dict[str, dict]:
    """Per-tenant completion/latency/shed summary, fully vectorized.

    ``tenants`` aligns with ``latencies_s`` (completed requests only —
    shed requests never have latencies and arrive via ``shed_by_tenant``).
    """
    shed_by_tenant = dict(shed_by_tenant or {})
    tenant_arr = np.asarray(tenants, dtype=object)
    lats = np.asarray(latencies_s, dtype=np.float64)
    if tenant_arr.shape != lats.shape:
        raise ConfigurationError(
            f"tenants {tenant_arr.shape} and latencies {lats.shape} must align"
        )
    names, codes = np.unique(tenant_arr, return_inverse=True)
    pcts = grouped_nearest_rank_percentiles(
        codes, lats, (50.0, 95.0, 99.0), len(names)
    )
    counts = np.bincount(codes, minlength=len(names))
    stats: Dict[str, dict] = {}
    for g, name in enumerate(names):
        entry = {
            "completed": int(counts[g]),
            "throughput_rps": (
                float(counts[g] / makespan_s) if makespan_s > 0 else 0.0
            ),
            "latency_p50_ms": float(pcts[g, 0]) * 1e3,
            "latency_p95_ms": float(pcts[g, 1]) * 1e3,
            "latency_p99_ms": float(pcts[g, 2]) * 1e3,
            "n_shed": int(shed_by_tenant.pop(str(name), 0)),
        }
        if classes is not None:
            cls = np.asarray(classes)[tenant_arr == name]
            entry["priority_classes"] = sorted(
                int(c) for c in np.unique(cls)
            )
        stats[str(name)] = entry
    # Tenants that were shed out of existence still get a row — shed
    # requests must not vanish from accounting.
    for name, n in sorted(shed_by_tenant.items()):
        stats[str(name)] = {
            "completed": 0,
            "throughput_rps": 0.0,
            "latency_p50_ms": float("nan"),
            "latency_p95_ms": float("nan"),
            "latency_p99_ms": float("nan"),
            "n_shed": int(n),
        }
    return stats


def fairness_ratio(
    stats: Dict[str, dict],
    weights: Optional[Dict[str, float]] = None,
) -> Optional[float]:
    """Max/min weight-normalized tenant throughput (1.0 = perfectly fair).

    ``None`` for fewer than two tenants, ``inf`` when a tenant was starved
    to zero throughput while another completed work.
    """
    if len(stats) < 2:
        return None
    weights = weights or {}
    shares = [
        entry["throughput_rps"] / float(weights.get(name, 1.0))
        for name, entry in stats.items()
    ]
    lo, hi = min(shares), max(shares)
    if hi == 0.0:
        return None
    if lo == 0.0:
        return float("inf")
    return float(hi / lo)


@dataclass
class LatencyReport:
    """p50/p95/p99 + throughput summary of one serving run.

    **Shed semantics, pinned:** ``latencies_s`` holds *completed* requests
    only. A shed request never completes, never contributes a latency, and
    therefore never appears in any percentile or mean — it is accounted
    *only* through ``n_shed`` and the per-tenant ``shed_by_tenant`` map.
    ``n_requests`` counts completions; the offered load of a run is
    ``n_requests + n_shed``.
    """

    n_requests: int
    #: Wall-clock from first arrival to last response (simulated seconds).
    makespan_s: float
    latencies_s: np.ndarray
    queue_delays_s: np.ndarray
    batch_sizes: List[int] = field(default_factory=list)
    #: Requests rejected by admission control (capacity, utilization gate,
    #: or displacement); these never complete and are excluded from the
    #: latency distribution by construction.
    n_shed: int = 0
    #: Tenant -> requests shed; sums to ``n_shed`` on multi-tenant runs.
    shed_by_tenant: Dict[str, int] = field(default_factory=dict)
    #: Extra scenario identity carried into the JSON report.
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of makespan."""
        if self.makespan_s <= 0:
            return 0.0
        return self.n_requests / self.makespan_s

    def percentile(self, p: float) -> float:
        """Nearest-rank latency percentile in seconds (completed only)."""
        return nearest_rank_percentile(self.latencies_s, p)

    @property
    def mean_batch_size(self) -> float:
        """Average dispatched batch size (1.0 for sequential serving)."""
        if not self.batch_sizes:
            return 0.0
        return float(np.mean(self.batch_sizes))

    def as_dict(self) -> dict:
        """JSON-safe summary (what ``BENCH_serve.json`` stores)."""
        p50, p95, p99 = nearest_rank_percentiles(self.latencies_s, (50, 95, 99))
        out = {
            "n_requests": self.n_requests,
            "makespan_s": float(self.makespan_s),
            "throughput_rps": self.throughput_rps,
            "latency_p50_ms": float(p50) * 1e3,
            "latency_p95_ms": float(p95) * 1e3,
            "latency_p99_ms": float(p99) * 1e3,
            "latency_mean_ms": float(np.mean(self.latencies_s)) * 1e3,
            "queue_p95_ms": (
                nearest_rank_percentile(self.queue_delays_s, 95) * 1e3
                if len(self.queue_delays_s)
                else 0.0
            ),
            "n_batches": len(self.batch_sizes),
            "mean_batch_size": self.mean_batch_size,
            "n_shed": self.n_shed,
            **{str(k): v for k, v in self.meta.items()},
        }
        if self.shed_by_tenant:
            out["shed_by_tenant"] = {
                str(t): int(n) for t, n in sorted(self.shed_by_tenant.items())
            }
        return out
