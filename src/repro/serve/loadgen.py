"""Open-loop load generation and latency reporting for the serving bench.

Arrival processes are **open-loop**: request times are drawn up front from
the arrival model and do not react to server backpressure — the standard
methodology for latency benchmarking (a closed loop would hide queueing
delay by slowing the offered load exactly when the server struggles).

Two arrival patterns:

- ``poisson`` — exponential inter-arrival gaps at a constant rate (the
  memoryless baseline);
- ``burst`` — alternating hot/cold phases around the same average rate:
  bursts arrive at ``burst_factor ×`` the base rate for ``burst_fraction``
  of the time, with the cold phase slowed to compensate. This is the
  diurnal-peak shape the adaptive batch sizer must absorb.

Percentiles use the nearest-rank definition (the p-th percentile is an
actually-observed latency, never an interpolation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import RngFactory

__all__ = [
    "LoadSpec",
    "generate_arrivals",
    "sample_query_rows",
    "nearest_rank_percentile",
    "LatencyReport",
]

ARRIVAL_PATTERNS = ("poisson", "burst")


@dataclass(frozen=True)
class LoadSpec:
    """One open-loop load scenario."""

    n_requests: int
    rate_rps: float
    pattern: str = "poisson"
    #: Burst intensity: peak rate = ``burst_factor * rate_rps``.
    burst_factor: float = 4.0
    #: Fraction of requests arriving inside bursts.
    burst_fraction: float = 0.3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ConfigurationError(
                f"n_requests must be >= 1, got {self.n_requests}"
            )
        if self.rate_rps <= 0:
            raise ConfigurationError(
                f"rate_rps must be > 0, got {self.rate_rps}"
            )
        if self.pattern not in ARRIVAL_PATTERNS:
            raise ConfigurationError(
                f"pattern must be one of {ARRIVAL_PATTERNS}, got {self.pattern!r}"
            )
        if self.burst_factor <= 1.0:
            raise ConfigurationError(
                f"burst_factor must be > 1, got {self.burst_factor}"
            )
        if not (0.0 < self.burst_fraction < 1.0):
            raise ConfigurationError(
                f"burst_fraction must be in (0, 1), got {self.burst_fraction}"
            )


def generate_arrivals(spec: LoadSpec) -> np.ndarray:
    """Absolute arrival times (seconds, ascending) for ``spec``."""
    rng = RngFactory(spec.seed).get("serve-arrivals", spec.pattern)
    n = spec.n_requests
    if spec.pattern == "poisson":
        gaps = rng.exponential(scale=1.0 / spec.rate_rps, size=n)
        return np.cumsum(gaps)

    # Burst: a burst_fraction share of requests arrives at the hot rate;
    # the cold rate is solved so the *overall* average stays rate_rps:
    #   n / rate = n_hot / rate_hot + n_cold / rate_cold.
    n_hot = max(1, int(round(n * spec.burst_fraction)))
    n_cold = n - n_hot
    rate_hot = spec.rate_rps * spec.burst_factor
    if n_cold > 0:
        cold_time = n / spec.rate_rps - n_hot / rate_hot
        rate_cold = n_cold / cold_time
    else:
        rate_cold = rate_hot
    # Interleave phases in ~4 burst episodes so the sizer sees transitions.
    episodes = min(4, n_hot)
    hot_sizes = np.full(episodes, n_hot // episodes, dtype=int)
    hot_sizes[: n_hot % episodes] += 1
    cold_sizes = np.full(episodes, n_cold // episodes, dtype=int)
    cold_sizes[: n_cold % episodes] += 1
    gaps: List[np.ndarray] = []
    for hot, cold in zip(hot_sizes, cold_sizes):
        if cold:
            gaps.append(rng.exponential(scale=1.0 / rate_cold, size=cold))
        if hot:
            gaps.append(rng.exponential(scale=1.0 / rate_hot, size=hot))
    return np.cumsum(np.concatenate(gaps))


def sample_query_rows(
    n_rows: int, n_requests: int, *, seed: int = 0
) -> np.ndarray:
    """Row indices (with replacement) mapping requests to dataset samples."""
    if n_rows < 1:
        raise ConfigurationError(f"n_rows must be >= 1, got {n_rows}")
    rng = RngFactory(seed).get("serve-queries")
    return rng.integers(0, n_rows, size=n_requests)


def nearest_rank_percentile(
    values: Sequence[float], percentile: float
) -> float:
    """Nearest-rank percentile: the ceil(p·n)-th smallest observed value."""
    if not (0.0 < percentile <= 100.0):
        raise ConfigurationError(
            f"percentile must be in (0, 100], got {percentile}"
        )
    arr = np.sort(np.asarray(values, dtype=np.float64))
    if arr.size == 0:
        raise ConfigurationError("percentile of an empty sample")
    rank = int(np.ceil(percentile / 100.0 * arr.size))
    return float(arr[max(rank, 1) - 1])


@dataclass
class LatencyReport:
    """p50/p95/p99 + throughput summary of one serving run."""

    n_requests: int
    #: Wall-clock from first arrival to last response (simulated seconds).
    makespan_s: float
    latencies_s: np.ndarray
    queue_delays_s: np.ndarray
    batch_sizes: List[int] = field(default_factory=list)
    #: Requests rejected by admission control (queue at max depth); these
    #: never complete and are excluded from the latency distribution.
    n_shed: int = 0
    #: Extra scenario identity carried into the JSON report.
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of makespan."""
        if self.makespan_s <= 0:
            return 0.0
        return self.n_requests / self.makespan_s

    def percentile(self, p: float) -> float:
        """Nearest-rank latency percentile in seconds."""
        return nearest_rank_percentile(self.latencies_s, p)

    @property
    def mean_batch_size(self) -> float:
        """Average dispatched batch size (1.0 for sequential serving)."""
        if not self.batch_sizes:
            return 0.0
        return float(np.mean(self.batch_sizes))

    def as_dict(self) -> dict:
        """JSON-safe summary (what ``BENCH_serve.json`` stores)."""
        return {
            "n_requests": self.n_requests,
            "makespan_s": float(self.makespan_s),
            "throughput_rps": self.throughput_rps,
            "latency_p50_ms": self.percentile(50) * 1e3,
            "latency_p95_ms": self.percentile(95) * 1e3,
            "latency_p99_ms": self.percentile(99) * 1e3,
            "latency_mean_ms": float(np.mean(self.latencies_s)) * 1e3,
            "queue_p95_ms": (
                nearest_rank_percentile(self.queue_delays_s, 95) * 1e3
                if len(self.queue_delays_s)
                else 0.0
            ),
            "n_batches": len(self.batch_sizes),
            "mean_batch_size": self.mean_batch_size,
            "n_shed": self.n_shed,
            **{str(k): v for k, v in self.meta.items()},
        }
