"""Versioned model snapshots: the train → deploy hand-off format.

A snapshot is two sibling files sharing a stem:

- ``<stem>.snapshot.json`` — a strict-JSON header: format tag, version,
  the :class:`~repro.sparse.mlp.MLPArchitecture` dims, the flat-state
  parameter spec, an integrity checksum (parameter count + L2 norm), and
  free-form ``meta`` (dataset name, label count, training provenance);
- ``<stem>.snapshot.npz`` — the parameters themselves, written by
  :meth:`~repro.sparse.model_state.ModelState.save` (one float32 array per
  named parameter), so the round-trip is **bit-identical**.

The JSON header is the part other tooling reads (a registry, a dashboard, a
deploy script); the npz is opaque bulk. Loading validates format, version,
spec/architecture consistency, and the checksum before handing back a state,
raising :class:`~repro.exceptions.SnapshotError` on any mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.exceptions import SnapshotError
from repro.sparse.mlp import MLPArchitecture
from repro.sparse.model_state import ModelState
from repro.utils.serialization import load_json, save_json

__all__ = ["ModelSnapshot", "SNAPSHOT_FORMAT", "SNAPSHOT_VERSION"]

SNAPSHOT_FORMAT = "repro-model-snapshot"
SNAPSHOT_VERSION = 1

#: Relative tolerance for the header's L2-norm checksum. The npz round-trip
#: is bit-exact, so the norm recomputes to the identical float64 — the slack
#: only guards against a header edited by hand with lower-precision digits.
_NORM_RTOL = 1e-9


def _stem(path: Union[str, Path]) -> Path:
    """Normalize ``model``, ``model.snapshot.json``, or ``model.snapshot.npz``
    to the shared stem path ``model``."""
    path = Path(path)
    name = path.name
    for suffix in (".snapshot.json", ".snapshot.npz"):
        if name.endswith(suffix):
            return path.with_name(name[: -len(suffix)])
    return path


@dataclass
class ModelSnapshot:
    """A trained model plus everything needed to serve it."""

    arch: MLPArchitecture
    state: ModelState
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        expected = tuple((n, tuple(s)) for n, s in self.arch.parameter_spec())
        if self.state.spec != expected:
            raise SnapshotError(
                f"state spec {self.state.spec} does not match the "
                f"architecture's parameter spec {expected}"
            )

    # -- writing -------------------------------------------------------------
    def save(self, stem: Union[str, Path]) -> Path:
        """Write ``<stem>.snapshot.json`` + ``<stem>.snapshot.npz``.

        Returns the header path. ``stem`` may also be spelled with either
        snapshot suffix; it is stripped.
        """
        stem = _stem(stem)
        npz_path = stem.with_name(stem.name + ".snapshot.npz")
        header_path = stem.with_name(stem.name + ".snapshot.json")
        self.state.save(npz_path)
        header = {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "arch": {
                "n_features": self.arch.n_features,
                "n_labels": self.arch.n_labels,
                "hidden": list(self.arch.hidden),
            },
            "spec": [[name, list(shape)] for name, shape in self.state.spec],
            "checksum": {
                "n_params": self.state.n_params,
                "l2_norm": self.state.l2_norm(),
            },
            "arrays": npz_path.name,
            "meta": dict(self.meta),
        }
        return save_json(header_path, header)

    # -- reading -------------------------------------------------------------
    @classmethod
    def load(cls, stem: Union[str, Path]) -> "ModelSnapshot":
        """Load and validate a snapshot saved by :meth:`save`."""
        stem = _stem(stem)
        header_path = stem.with_name(stem.name + ".snapshot.json")
        if not header_path.exists():
            raise SnapshotError(f"no snapshot header at {header_path}")
        header = load_json(header_path)
        if not isinstance(header, dict) or header.get("format") != SNAPSHOT_FORMAT:
            raise SnapshotError(
                f"{header_path} is not a {SNAPSHOT_FORMAT} header"
            )
        version = header.get("version")
        if version != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"{header_path} has snapshot version {version!r}; this "
                f"library reads version {SNAPSHOT_VERSION}"
            )
        try:
            arch = MLPArchitecture(
                n_features=int(header["arch"]["n_features"]),
                n_labels=int(header["arch"]["n_labels"]),
                hidden=tuple(int(h) for h in header["arch"]["hidden"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(
                f"{header_path} has a malformed arch section: {exc}"
            ) from exc

        npz_path = header_path.with_name(str(header.get("arrays", "")))
        if not npz_path.name:
            npz_path = stem.with_name(stem.name + ".snapshot.npz")
        if not npz_path.exists():
            raise SnapshotError(f"snapshot arrays missing: {npz_path}")
        try:
            state = ModelState.load(npz_path)
        except SnapshotError:
            raise
        except Exception as exc:  # truncated/garbled npz → typed error
            raise SnapshotError(
                f"snapshot arrays at {npz_path} are unreadable: {exc}"
            ) from exc

        header_spec = tuple(
            (name, tuple(int(d) for d in shape))
            for name, shape in header.get("spec", [])
        )
        if header_spec != state.spec:
            raise SnapshotError(
                f"header spec {header_spec} disagrees with the arrays' spec "
                f"{state.spec} — mixed-up snapshot files?"
            )

        checksum = header.get("checksum", {})
        n_params = checksum.get("n_params")
        if n_params != state.n_params:
            raise SnapshotError(
                f"checksum n_params={n_params} but arrays hold "
                f"{state.n_params} parameters"
            )
        expected_norm = checksum.get("l2_norm")
        actual_norm = state.l2_norm()
        if expected_norm is None or abs(actual_norm - expected_norm) > (
            _NORM_RTOL * max(1.0, abs(expected_norm))
        ):
            raise SnapshotError(
                f"checksum L2 norm {expected_norm!r} does not match the "
                f"arrays' norm {actual_norm!r} — corrupted snapshot?"
            )
        meta = header.get("meta", {})
        return cls(arch=arch, state=state, meta=dict(meta) if meta else {})

    # -- convenience ---------------------------------------------------------
    @property
    def n_params(self) -> int:
        """Total scalar parameter count."""
        return self.state.n_params

    def describe(self) -> dict:
        """Header-shaped summary (without re-reading files)."""
        return {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "n_features": self.arch.n_features,
            "n_labels": self.arch.n_labels,
            "hidden": list(self.arch.hidden),
            "n_params": self.n_params,
            "meta": dict(self.meta),
        }
