"""Top-k label scoring for serving: exact dense path + LSH sparse path.

The exact path runs the snapshot's :class:`~repro.sparse.mlp.SparseMLP`
forward through the fused workspace kernels (same buffers, same BLAS
routines as training) and ranks all ``L`` labels with the deterministic
:func:`~repro.sparse.metrics.topk_indices`.

The LSH path is SLIDE turned inference-side: the output layer's weight
columns are indexed in SimHash tables, a query's last hidden activation
retrieves only the labels whose weights collide with it, and logits are
computed for those candidate columns alone — O(h · |candidates|) instead
of O(h · L) per query. The whole pipeline is the batched
:func:`repro.perf.lsh_topk.lsh_topk` kernel: one hash einsum for the
block, one binary search for every bucket, a bitmap-dedup CSR candidate
set, a flat gather-dot, and a segmented top-k. Rows whose retrieval
returns fewer than ``k`` candidates are padded with the lowest-id
unretrieved labels, so the output shape (and tie behaviour) stays
deterministic; :meth:`Predictor.topk_lsh_reference` retains the original
per-row loop as the semantic oracle the kernel is tested against.

Every LSH call also records the batch's mean candidate fraction
(:meth:`observed_candidate_fraction`) — the selectivity signal the
``auto`` serving mode feeds into
:meth:`~repro.gpu.cost.GpuCostModel.lsh_inference_time` to pick exact vs
LSH per batch. :meth:`Predictor.recall_at_k` reports how much of the
exact top-k the accelerated path keeps — the accuracy/latency dial the
serving bench sweeps.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.baselines.slide.lsh import SimHashLSH
from repro.exceptions import ConfigurationError, ServeError
from repro.gpu.cost import StepWorkload
from repro.perf.lsh_topk import lsh_topk, probe_candidates
from repro.perf.workspace import Workspace
from repro.serve.snapshot import ModelSnapshot
from repro.sparse.metrics import topk_indices
from repro.sparse.mlp import SparseMLP
from repro.sparse.ops import sampled_logits

__all__ = ["Predictor"]


class Predictor:
    """Scores sparse queries against one model snapshot."""

    def __init__(
        self,
        snapshot: ModelSnapshot,
        *,
        workspace: Optional[Workspace] = None,
        lsh_tables: int = 24,
        lsh_bits: int = 4,
        lsh_seed: int = 0,
        lsh_probes: int = 1,
        chunk: int = 2048,
    ) -> None:
        self.snapshot = snapshot
        self.arch = snapshot.arch
        self.state = snapshot.state
        self.mlp = SparseMLP(self.arch)
        self.workspace = workspace if workspace is not None else Workspace()
        if chunk < 1:
            raise ConfigurationError(f"chunk must be >= 1, got {chunk}")
        self.chunk = int(chunk)
        self._n_layers = len(self.arch.layer_dims) - 1
        self._out_name = f"W{self._n_layers}"
        self._bias_name = f"b{self._n_layers}"
        # LSH over the *output-layer* weight columns: one column per label,
        # dim = the last hidden width (what the query activation lives in).
        self._lsh = SimHashLSH(
            dim=self.arch.layer_dims[-2],
            n_tables=lsh_tables,
            n_bits=lsh_bits,
            seed=lsh_seed,
        )
        self.lsh_seed = int(lsh_seed)
        if not (1 <= lsh_probes <= self._lsh.max_probes()):
            raise ConfigurationError(
                f"lsh_probes must be in [1, {self._lsh.max_probes()}], "
                f"got {lsh_probes}"
            )
        self.lsh_probes = int(lsh_probes)
        self._lsh_built = False
        # Row-major transpose of the output weights — the gather stream of
        # the batched candidate scorer; rebuilt with the tables.
        self._W_out_T: Optional[np.ndarray] = None
        # EWMA of observed per-batch candidate fractions (auto-mode signal).
        self._frac_ewma: Optional[float] = None

    # -- plumbing ------------------------------------------------------------
    def _check_query(self, X: sp.csr_matrix) -> None:
        if not sp.issparse(X):
            raise ConfigurationError(
                f"queries must be a scipy sparse matrix, got {type(X)!r}"
            )
        if X.shape[1] != self.arch.n_features:
            raise ConfigurationError(
                f"queries have {X.shape[1]} features, model expects "
                f"{self.arch.n_features}"
            )

    def rebuild_lsh(self) -> None:
        """(Re)index the output layer (call after swapping in new weights)."""
        self._lsh.rebuild(self.state[self._out_name])
        self._W_out_T = np.ascontiguousarray(self.state[self._out_name].T)
        self._lsh_built = True

    def spawn(self, snapshot: ModelSnapshot) -> "Predictor":
        """A predictor for ``snapshot`` inheriting this one's configuration.

        The hot-swap constructor: same LSH geometry (tables/bits/probes/
        seed), same chunk size, and the *same workspace arena* — swapped-in
        models reuse the warm scratch buffers instead of growing a second
        arena. The candidate-fraction EWMA carries over too, so ``auto``
        scoring's crossover pricing stays continuous across a swap instead
        of re-calibrating from scratch. The new predictor's LSH tables are
        NOT built here — warming is the engine's job, off the dispatch path.
        """
        if snapshot.arch.layer_dims != self.arch.layer_dims:
            raise ServeError(
                f"cannot swap to a snapshot with layer dims "
                f"{snapshot.arch.layer_dims} on an engine built for "
                f"{self.arch.layer_dims}"
            )
        clone = Predictor(
            snapshot,
            workspace=self.workspace,
            lsh_tables=self._lsh.n_tables,
            lsh_bits=self._lsh.n_bits,
            lsh_seed=self.lsh_seed,
            lsh_probes=self.lsh_probes,
            chunk=self.chunk,
        )
        clone._frac_ewma = self._frac_ewma
        return clone

    def workload(self, X: sp.csr_matrix) -> StepWorkload:
        """The cost-model descriptor of scoring ``X`` (prices a batch)."""
        return StepWorkload(
            batch_size=X.shape[0],
            batch_nnz=int(X.nnz),
            layer_dims=tuple(self.arch.layer_dims),
        )

    @property
    def lsh_tables(self) -> int:
        """Number of SimHash tables in the candidate index."""
        return self._lsh.n_tables

    @property
    def lsh_bits(self) -> int:
        """Signature bits per table in the candidate index."""
        return self._lsh.n_bits

    # -- exact path ----------------------------------------------------------
    def score(self, X: sp.csr_matrix) -> np.ndarray:
        """Dense ``(n, L)`` logits through the fused workspace kernels."""
        self._check_query(X)
        return self.mlp.predict_batched(
            X, self.state, chunk=self.chunk, workspace=self.workspace
        )

    def topk(self, X: sp.csr_matrix, k: int) -> np.ndarray:
        """Exact top-``k`` label ids per query, best-first, tie-stable."""
        return topk_indices(self.score(X), k)

    # -- LSH-accelerated path -------------------------------------------------
    def hidden(self, X: sp.csr_matrix) -> np.ndarray:
        """Last hidden activation (the LSH query vectors) for ``X``."""
        if self._n_layers < 2:
            raise ServeError(
                "the LSH path needs at least one hidden layer"
            )
        self._check_query(X)
        # Truncated forward: stop at the last hidden layer — running the
        # (n, L) output GEMM here would pay the exact path's dominant cost
        # just to compute the vectors that let us skip it.
        cache = self.mlp.forward(
            X, self.state, self.workspace, upto=self._n_layers - 1
        )
        return cache.activations[-1]

    def topk_lsh(self, X: sp.csr_matrix, k: int) -> np.ndarray:
        """Top-``k`` via the batched LSH pipeline (see :meth:`lsh_stats`)."""
        return self.lsh_stats(X, k)[0]

    def lsh_stats(
        self, X: sp.csr_matrix, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(topk_ids, candidate_counts)`` from ONE forward + probe.

        Each row ranks only its retrieved candidates; rows with fewer than
        ``k`` candidates are padded with the lowest unretrieved label ids
        (scored last), keeping the result rectangular and deterministic.
        The counts are the per-row candidate-set sizes from the same probe
        — callers that need both (the serving bench, the crossover
        calibration) pay for a single hidden forward and retrieval.
        """
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if not self._lsh_built:
            self.rebuild_lsh()
        L = self.arch.n_labels
        k = min(k, L)
        n = X.shape[0]
        if n == 0:
            return (
                np.empty((0, k), dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        # The hidden block lives in a workspace buffer; the LSH kernel only
        # leases distinct (tag, dtype) scratch, so no defensive copy needed.
        H = self.hidden(X)
        out, counts = lsh_topk(
            self._lsh,
            H,
            self._W_out_T,
            self.state[self._bias_name],
            k,
            n_probes=self.lsh_probes,
            workspace=self.workspace,
        )
        self._observe_fraction(counts, L)
        return out, counts

    def topk_lsh_reference(self, X: sp.csr_matrix, k: int) -> np.ndarray:
        """The original per-row LSH loop — the batched kernel's oracle.

        Kept verbatim (dict-table lookups, per-row ``sampled_logits`` and
        1-row top-k) so ``tests/test_perf_lsh_topk.py`` can assert the
        vectorized pipeline is bit-identical on arbitrary snapshots. Slow
        by construction; never used by the serving engine.
        """
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if not self._lsh_built:
            self.rebuild_lsh()
        L = self.arch.n_labels
        k = min(k, L)
        n = X.shape[0]
        out = np.empty((n, k), dtype=np.int64)
        if n == 0:
            return out
        H = np.array(self.hidden(X), copy=True)
        W_out = self.state[self._out_name]
        b_out = self.state[self._bias_name]
        candidates = self._lsh.query_batch(H, n_probes=self.lsh_probes)
        for i, cand in enumerate(candidates):
            if cand.size < k:
                # Deterministic fill: lowest label ids not retrieved.
                missing = np.setdiff1d(
                    np.arange(min(L, k + cand.size), dtype=np.int64), cand
                )[: k - cand.size]
                logits = sampled_logits(H[i], W_out, b_out, cand)
                order = topk_indices(logits[None, :], cand.size)[0] if cand.size else []
                out[i, : cand.size] = cand[order]
                out[i, cand.size:] = missing
            else:
                logits = sampled_logits(H[i], W_out, b_out, cand)
                # cand is sorted ascending, so positional tie-break == the
                # lowest-label-id rule the exact path uses.
                best = topk_indices(logits[None, :], k)[0]
                out[i] = cand[best]
        return out

    def candidate_counts(self, X: sp.csr_matrix) -> np.ndarray:
        """Per-row LSH candidate-set sizes (retrieval selectivity).

        One forward + one vectorized probe — no scoring, no per-row loop.
        """
        if not self._lsh_built:
            self.rebuild_lsh()
        H = self.hidden(X)
        indptr, _ = probe_candidates(
            self._lsh, H, n_probes=self.lsh_probes, workspace=self.workspace
        )
        counts = np.diff(indptr)
        self._observe_fraction(counts, self.arch.n_labels)
        return counts

    # -- crossover signal -----------------------------------------------------
    def _observe_fraction(self, counts: np.ndarray, L: int) -> None:
        if counts.size == 0 or L == 0:
            return
        frac = float(counts.mean()) / L
        if self._frac_ewma is None:
            self._frac_ewma = frac
        else:
            self._frac_ewma = 0.5 * self._frac_ewma + 0.5 * frac

    def observed_candidate_fraction(self) -> Optional[float]:
        """EWMA of mean candidate fraction over past LSH probes (or None).

        This is what the serving engine's ``auto`` mode feeds into the cost
        model's :meth:`~repro.gpu.cost.GpuCostModel.lsh_inference_time`.
        """
        return self._frac_ewma

    def calibrate_candidate_fraction(
        self, X: sp.csr_matrix, *, max_rows: int = 64
    ) -> float:
        """Probe up to ``max_rows`` queries to seed the fraction estimate.

        Deterministic (first rows of ``X``), cheap (retrieval only, no
        scoring), and idempotent with the per-batch EWMA updates.
        """
        self.candidate_counts(X[: max(1, max_rows)])
        assert self._frac_ewma is not None
        return self._frac_ewma

    # -- recall reporting -----------------------------------------------------
    def recall_at_k(self, X: sp.csr_matrix, k: int) -> float:
        """Mean |LSH top-k ∩ exact top-k| / k over the query block."""
        if X.shape[0] == 0:
            return 1.0
        exact = self.topk(X, k)
        approx = self.topk_lsh(X, k)
        n, kk = exact.shape
        L = self.arch.n_labels
        # Membership as one sorted search over row-offset keys: label ids
        # live in [0, L), so row·L + id is unique per (row, id) and row
        # blocks stay disjoint — no per-row intersect1d loop.
        offsets = np.arange(n, dtype=np.int64)[:, None] * L
        exact_keys = np.sort(exact + offsets, axis=1).ravel()
        approx_keys = (approx + offsets).ravel()
        pos = np.searchsorted(exact_keys, approx_keys)
        pos = np.minimum(pos, exact_keys.size - 1)
        hits = int(np.count_nonzero(exact_keys[pos] == approx_keys))
        return hits / (n * kk)

    def predict_labels(
        self, X: sp.csr_matrix, k: int, *, use_lsh: bool = False
    ) -> np.ndarray:
        """Top-``k`` labels via the configured path (the engine's entry)."""
        return self.topk_lsh(X, k) if use_lsh else self.topk(X, k)
