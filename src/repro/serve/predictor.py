"""Top-k label scoring for serving: exact dense path + LSH sparse path.

The exact path runs the snapshot's :class:`~repro.sparse.mlp.SparseMLP`
forward through the fused workspace kernels (same buffers, same BLAS
routines as training) and ranks all ``L`` labels with the deterministic
:func:`~repro.sparse.metrics.topk_indices`.

The LSH path is SLIDE turned inference-side: the output layer's weight
columns are indexed in :class:`~repro.baselines.slide.sampler`-style
SimHash tables, a query's last hidden activation retrieves only the labels
whose weights collide with it, and logits are computed for those candidate
columns alone — O(h · |candidates|) instead of O(h · L) per query. Rows
whose retrieval returns fewer than ``k`` candidates are padded with the
lowest-id unretrieved labels, so the output shape (and tie behaviour) stays
deterministic. :meth:`Predictor.recall_at_k` reports how much of the exact
top-k the accelerated path keeps — the accuracy/latency dial the serving
bench sweeps.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.baselines.slide.lsh import SimHashLSH
from repro.exceptions import ConfigurationError, ServeError
from repro.gpu.cost import StepWorkload
from repro.perf.workspace import Workspace
from repro.serve.snapshot import ModelSnapshot
from repro.sparse.metrics import topk_indices
from repro.sparse.mlp import SparseMLP
from repro.sparse.ops import sampled_logits

__all__ = ["Predictor"]


class Predictor:
    """Scores sparse queries against one model snapshot."""

    def __init__(
        self,
        snapshot: ModelSnapshot,
        *,
        workspace: Optional[Workspace] = None,
        lsh_tables: int = 24,
        lsh_bits: int = 4,
        lsh_seed: int = 0,
        chunk: int = 2048,
    ) -> None:
        self.snapshot = snapshot
        self.arch = snapshot.arch
        self.state = snapshot.state
        self.mlp = SparseMLP(self.arch)
        self.workspace = workspace if workspace is not None else Workspace()
        if chunk < 1:
            raise ConfigurationError(f"chunk must be >= 1, got {chunk}")
        self.chunk = int(chunk)
        self._n_layers = len(self.arch.layer_dims) - 1
        self._out_name = f"W{self._n_layers}"
        self._bias_name = f"b{self._n_layers}"
        # LSH over the *output-layer* weight columns: one column per label,
        # dim = the last hidden width (what the query activation lives in).
        self._lsh = SimHashLSH(
            dim=self.arch.layer_dims[-2],
            n_tables=lsh_tables,
            n_bits=lsh_bits,
            seed=lsh_seed,
        )
        self._lsh_built = False

    # -- plumbing ------------------------------------------------------------
    def _check_query(self, X: sp.csr_matrix) -> None:
        if not sp.issparse(X):
            raise ConfigurationError(
                f"queries must be a scipy sparse matrix, got {type(X)!r}"
            )
        if X.shape[1] != self.arch.n_features:
            raise ConfigurationError(
                f"queries have {X.shape[1]} features, model expects "
                f"{self.arch.n_features}"
            )

    def rebuild_lsh(self) -> None:
        """(Re)index the output layer (call after swapping in new weights)."""
        self._lsh.rebuild(self.state[self._out_name])
        self._lsh_built = True

    def workload(self, X: sp.csr_matrix) -> StepWorkload:
        """The cost-model descriptor of scoring ``X`` (prices a batch)."""
        return StepWorkload(
            batch_size=X.shape[0],
            batch_nnz=int(X.nnz),
            layer_dims=tuple(self.arch.layer_dims),
        )

    # -- exact path ----------------------------------------------------------
    def score(self, X: sp.csr_matrix) -> np.ndarray:
        """Dense ``(n, L)`` logits through the fused workspace kernels."""
        self._check_query(X)
        return self.mlp.predict_batched(
            X, self.state, chunk=self.chunk, workspace=self.workspace
        )

    def topk(self, X: sp.csr_matrix, k: int) -> np.ndarray:
        """Exact top-``k`` label ids per query, best-first, tie-stable."""
        return topk_indices(self.score(X), k)

    # -- LSH-accelerated path -------------------------------------------------
    def hidden(self, X: sp.csr_matrix) -> np.ndarray:
        """Last hidden activation (the LSH query vectors) for ``X``."""
        self._check_query(X)
        cache = self.mlp.forward(X, self.state, self.workspace)
        if self._n_layers < 2:
            raise ServeError(
                "the LSH path needs at least one hidden layer"
            )
        # activations[-1] is the logits; [-2] the last post-ReLU hidden.
        return cache.activations[-2]

    def topk_lsh(self, X: sp.csr_matrix, k: int) -> np.ndarray:
        """Top-``k`` via LSH candidate retrieval + candidate-only logits.

        Each row ranks only its retrieved candidates; rows with fewer than
        ``k`` candidates are padded with the lowest unretrieved label ids
        (scored last), keeping the result rectangular and deterministic.
        """
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if not self._lsh_built:
            self.rebuild_lsh()
        L = self.arch.n_labels
        k = min(k, L)
        n = X.shape[0]
        out = np.empty((n, k), dtype=np.int64)
        if n == 0:
            return out
        # One forward to the last hidden layer for the whole block; the
        # hidden buffer must outlive the per-row loop, so copy it out of the
        # workspace (it is (n, h), small next to the (n, L) dense logits the
        # exact path would allocate).
        H = np.array(self.hidden(X), copy=True)
        W_out = self.state[self._out_name]
        b_out = self.state[self._bias_name]
        candidates = self._lsh.query_batch(H)
        for i, cand in enumerate(candidates):
            if cand.size < k:
                # Deterministic fill: lowest label ids not retrieved.
                missing = np.setdiff1d(
                    np.arange(min(L, k + cand.size), dtype=np.int64), cand
                )[: k - cand.size]
                logits = sampled_logits(H[i], W_out, b_out, cand)
                order = topk_indices(logits[None, :], cand.size)[0] if cand.size else []
                out[i, : cand.size] = cand[order]
                out[i, cand.size:] = missing
            else:
                logits = sampled_logits(H[i], W_out, b_out, cand)
                # cand is sorted ascending, so positional tie-break == the
                # lowest-label-id rule the exact path uses.
                best = topk_indices(logits[None, :], k)[0]
                out[i] = cand[best]
        return out

    def candidate_counts(self, X: sp.csr_matrix) -> np.ndarray:
        """Per-row LSH candidate-set sizes (retrieval selectivity)."""
        if not self._lsh_built:
            self.rebuild_lsh()
        H = np.array(self.hidden(X), copy=True)
        return np.array([c.size for c in self._lsh.query_batch(H)], dtype=np.int64)

    # -- recall reporting -----------------------------------------------------
    def recall_at_k(self, X: sp.csr_matrix, k: int) -> float:
        """Mean |LSH top-k ∩ exact top-k| / k over the query block."""
        if X.shape[0] == 0:
            return 1.0
        exact = self.topk(X, k)
        approx = self.topk_lsh(X, k)
        kk = exact.shape[1]
        hits = 0
        for row_exact, row_approx in zip(exact, approx):
            hits += np.intersect1d(row_exact, row_approx).size
        return hits / (exact.shape[0] * kk)

    def predict_labels(
        self, X: sp.csr_matrix, k: int, *, use_lsh: bool = False
    ) -> np.ndarray:
        """Top-``k`` labels via the configured path (the engine's entry)."""
        return self.topk_lsh(X, k) if use_lsh else self.topk(X, k)
