"""The versioned snapshot store: publish/subscribe between train and serve.

A :class:`SnapshotStore` is a directory of
:class:`~repro.serve.snapshot.ModelSnapshot` artifacts plus one strict-JSON
manifest (``store.json``). A training trainer *publishes* snapshots into it
(monotonic integer version ids, stamped with the simulated publish time);
a running :class:`~repro.serve.engine.ServingEngine` *polls* it between
batches and hot-swaps to newer versions without dropping a request.

Layout::

    store/
      store.json              <- the manifest (format tag, next id, entries)
      v000001.snapshot.json   <- per-version header (meta carries the id)
      v000001.snapshot.npz
      v000002.snapshot.json
      ...

The manifest is the index other tooling reads; every entry repeats the
integrity essentials (``n_params``, L2 norm) so a registry can audit the
store without opening the bulk files. Publishing is atomic at the manifest
level: artifacts are written first, then the manifest is replaced via a
temp-file rename, so a reader never observes an entry whose files are
missing. :meth:`SnapshotStore.load` cross-checks the version id recorded in
the snapshot header's ``meta`` against the manifest entry — the *version
skew* guard that catches store directories whose files were shuffled or
restored inconsistently — and every failure raises a typed
:class:`~repro.exceptions.SnapshotError`.

Publish times live on the simulated clock: :meth:`SnapshotStore.poll`
filters on ``published_s <= now``, so a serving run replays the training
session's publish schedule — a snapshot published at sim second 0.03 lands
mid-serve in a run whose arrivals span that window.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

from repro.exceptions import SnapshotError
from repro.serve.snapshot import ModelSnapshot
from repro.utils.serialization import load_json, save_json

__all__ = ["SnapshotStore", "StoreEntry", "STORE_FORMAT", "STORE_VERSION"]

STORE_FORMAT = "repro-snapshot-store"
STORE_VERSION = 1

#: The manifest file name inside a store directory.
MANIFEST_NAME = "store.json"


@dataclass
class StoreEntry:
    """One published version, as the manifest records it."""

    version: int
    stem: str
    #: Simulated publish time (the trainer's clock).
    published_s: float
    n_params: int
    l2_norm: float
    meta: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "version": self.version,
            "stem": self.stem,
            "published_s": self.published_s,
            "n_params": self.n_params,
            "l2_norm": self.l2_norm,
            "meta": dict(self.meta),
        }


class SnapshotStore:
    """Directory-backed versioned snapshot channel (publish / poll / load)."""

    def __init__(self, root: Union[str, Path], *, create: bool = True) -> None:
        self.root = Path(root)
        manifest = self.root / MANIFEST_NAME
        if manifest.exists():
            self._read_manifest()
        elif create:
            self.root.mkdir(parents=True, exist_ok=True)
            self._next_version = 1
            self._entries: List[StoreEntry] = []
            self._write_manifest()
        else:
            raise SnapshotError(f"no snapshot store at {self.root}")

    # -- manifest I/O --------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def _read_manifest(self) -> None:
        raw = load_json(self.manifest_path)
        if not isinstance(raw, dict) or raw.get("format") != STORE_FORMAT:
            raise SnapshotError(
                f"{self.manifest_path} is not a {STORE_FORMAT} manifest"
            )
        if raw.get("version") != STORE_VERSION:
            raise SnapshotError(
                f"{self.manifest_path} has store version "
                f"{raw.get('version')!r}; this library reads {STORE_VERSION}"
            )
        try:
            entries = [
                StoreEntry(
                    version=int(e["version"]),
                    stem=str(e["stem"]),
                    published_s=float(e["published_s"]),
                    n_params=int(e["n_params"]),
                    l2_norm=float(e["l2_norm"]),
                    meta=dict(e.get("meta", {})),
                )
                for e in raw.get("entries", [])
            ]
            next_version = int(raw["next_version"])
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(
                f"{self.manifest_path} is malformed: {exc}"
            ) from exc
        versions = [e.version for e in entries]
        if versions != sorted(versions) or len(set(versions)) != len(versions):
            raise SnapshotError(
                f"{self.manifest_path} entries are not strictly ascending: "
                f"{versions}"
            )
        if versions and next_version <= versions[-1]:
            raise SnapshotError(
                f"{self.manifest_path} next_version {next_version} does not "
                f"exceed the newest entry {versions[-1]}"
            )
        self._entries = entries
        self._next_version = next_version

    def _write_manifest(self) -> None:
        # Atomic replace: a concurrent reader sees the old manifest or the
        # new one, never a truncated file.
        payload = {
            "format": STORE_FORMAT,
            "version": STORE_VERSION,
            "next_version": self._next_version,
            "entries": [e.as_dict() for e in self._entries],
        }
        tmp = self.manifest_path.with_name(MANIFEST_NAME + ".tmp")
        save_json(tmp, payload)
        os.replace(tmp, self.manifest_path)

    def refresh(self) -> None:
        """Re-read the manifest (pick up entries published by another handle)."""
        self._read_manifest()

    # -- publishing ----------------------------------------------------------
    def publish(
        self, snapshot: ModelSnapshot, *, published_s: float = 0.0
    ) -> int:
        """Version ``snapshot`` into the store; returns the new version id.

        Ids are monotonic even across deletions (``next_version`` persists
        in the manifest). The snapshot header's ``meta`` gains a
        ``store_version`` field — the skew check :meth:`load` verifies.
        """
        if not (published_s >= 0.0):
            raise SnapshotError(
                f"published_s must be >= 0, got {published_s}"
            )
        last = self._entries[-1].published_s if self._entries else 0.0
        if published_s < last:
            raise SnapshotError(
                f"publish time {published_s} precedes the newest entry's "
                f"{last} — the store replays publishes in time order"
            )
        version = self._next_version
        stem = f"v{version:06d}"
        stamped = ModelSnapshot(
            arch=snapshot.arch,
            state=snapshot.state,
            meta={
                **snapshot.meta,
                "store_version": version,
                "published_s": published_s,
            },
        )
        stamped.save(self.root / stem)
        self._entries.append(StoreEntry(
            version=version,
            stem=stem,
            published_s=float(published_s),
            n_params=stamped.n_params,
            l2_norm=stamped.state.l2_norm(),
            meta={
                k: stamped.meta[k]
                for k in ("algorithm", "dataset")
                if k in stamped.meta
            },
        ))
        self._next_version = version + 1
        self._write_manifest()
        return version

    # -- reading -------------------------------------------------------------
    @property
    def entries(self) -> List[StoreEntry]:
        """Manifest entries, oldest first (a copy)."""
        return list(self._entries)

    def versions(self) -> List[int]:
        """All published version ids, ascending."""
        return [e.version for e in self._entries]

    def latest_version(self) -> Optional[int]:
        """The newest published version id (``None`` for an empty store)."""
        return self._entries[-1].version if self._entries else None

    def entry(self, version: int) -> StoreEntry:
        """The manifest entry for ``version``."""
        for e in self._entries:
            if e.version == version:
                return e
        raise SnapshotError(
            f"store {self.root} has no version {version}; "
            f"published: {self.versions()}"
        )

    def load(self, version: int) -> ModelSnapshot:
        """Load + validate one published version.

        On top of :meth:`ModelSnapshot.load`'s own checks (format, spec,
        checksum — a corrupted npz surfaces here), cross-validates the
        header's recorded ``store_version`` and parameter count against the
        manifest entry, so index/file skew cannot serve the wrong weights.
        """
        entry = self.entry(version)
        snapshot = ModelSnapshot.load(self.root / entry.stem)
        recorded = snapshot.meta.get("store_version")
        if recorded != entry.version:
            raise SnapshotError(
                f"version skew in {self.root}: manifest entry {entry.version} "
                f"points at {entry.stem}, whose header records store_version "
                f"{recorded!r}"
            )
        if snapshot.n_params != entry.n_params:
            raise SnapshotError(
                f"version {version} holds {snapshot.n_params} parameters but "
                f"the manifest recorded {entry.n_params}"
            )
        return snapshot

    def version_at(self, now: float) -> Optional[int]:
        """The version a subscriber starting at sim time ``now`` should run:
        the newest one already published (``published_s <= now``), falling
        back to the oldest version for a subscriber predating every publish.
        """
        if not self._entries:
            return None
        eligible = [e.version for e in self._entries if e.published_s <= now]
        return eligible[-1] if eligible else self._entries[0].version

    def poll(self, *, after: int, now: float) -> Optional[int]:
        """The newest version ``> after`` already published at sim ``now``.

        Re-reads the manifest first, so publishes from another store handle
        (or process) become visible. Returns ``None`` when there is nothing
        newer to swap to yet.
        """
        self.refresh()
        eligible = [
            e.version
            for e in self._entries
            if e.version > after and e.published_s <= now
        ]
        return eligible[-1] if eligible else None
