"""Dataset statistics: Table-I rows and nnz-variance diagnostics.

Besides the Table I summary, this module quantifies the paper's second
heterogeneity source: "the number of non-zero features varies significantly
among the training samples ... the effect is variation in processing across
batches" (§I). :func:`batch_nnz_profile` measures exactly that variation for
a given batch size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.data.batching import static_batches
from repro.data.dataset import SparseDataset, XMLTask

__all__ = ["table1_row", "table1", "batch_nnz_profile", "BatchNnzProfile"]


def table1_row(task: XMLTask) -> Dict[str, object]:
    """One Table-I row (same columns as the paper) for ``task``."""
    return task.describe()


def table1(tasks: Sequence[XMLTask]) -> list:
    """Table-I rows for several tasks, in order."""
    return [table1_row(task) for task in tasks]


@dataclass(frozen=True)
class BatchNnzProfile:
    """Distribution of per-batch non-zero counts at a fixed batch size."""

    batch_size: int
    n_batches: int
    mean_nnz: float
    std_nnz: float
    min_nnz: int
    max_nnz: int

    @property
    def relative_spread(self) -> float:
        """(max - min) / mean — how unequal identically-sized batches are."""
        return (self.max_nnz - self.min_nnz) / self.mean_nnz if self.mean_nnz else 0.0

    @property
    def coefficient_of_variation(self) -> float:
        """std / mean of batch nnz."""
        return self.std_nnz / self.mean_nnz if self.mean_nnz else 0.0


def batch_nnz_profile(
    dataset: SparseDataset, batch_size: int, *, seed: int = 0
) -> BatchNnzProfile:
    """Measure how batch nnz varies when ``dataset`` is cut into equal batches.

    Uses one shuffled epoch with ``drop_last`` so every batch has identical
    sample count — any nnz spread is purely the data's sparsity variance.
    """
    nnzs = np.array(
        [b.nnz for b in static_batches(dataset, batch_size, seed=seed, drop_last=True)],
        dtype=np.int64,
    )
    if nnzs.size == 0:
        raise ValueError(
            f"dataset of {dataset.n_samples} samples yields no full batches "
            f"of size {batch_size}"
        )
    return BatchNnzProfile(
        batch_size=batch_size,
        n_batches=int(nnzs.size),
        mean_nnz=float(nnzs.mean()),
        std_nnz=float(nnzs.std()),
        min_nnz=int(nnzs.min()),
        max_nnz=int(nnzs.max()),
    )
