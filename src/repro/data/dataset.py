"""Sparse multi-label dataset containers.

The paper trains on extreme multi-label classification (XML) data: each
sample has a highly sparse feature vector and a small set of relevant labels
out of an extremely large label space. We represent one split as CSR feature
and label matrices (:class:`SparseDataset`) and a full task as a train/test
pair (:class:`XMLTask`). Everything downstream — batching, the sparse MLP,
the metrics — consumes these containers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import DataFormatError

__all__ = ["SparseDataset", "XMLTask"]


def _as_csr(matrix: sp.spmatrix, name: str, dtype=np.float32) -> sp.csr_matrix:
    if not sp.issparse(matrix):
        raise DataFormatError(f"{name} must be a scipy sparse matrix, got {type(matrix)!r}")
    csr = matrix.tocsr().astype(dtype, copy=False)
    csr.sum_duplicates()
    csr.sort_indices()
    return csr


@dataclass
class SparseDataset:
    """One split of a sparse multi-label dataset.

    Attributes
    ----------
    X:
        ``(n_samples, n_features)`` CSR float32 feature matrix.
    Y:
        ``(n_samples, n_labels)`` CSR float32 binary label-indicator matrix.
        Every sample must have at least one label (XML convention; samples
        without labels cannot contribute to the loss).
    name:
        Human-readable split identifier used in logs and reports.
    """

    X: sp.csr_matrix
    Y: sp.csr_matrix
    name: str = "dataset"

    def __post_init__(self) -> None:
        self.X = _as_csr(self.X, "X")
        self.Y = _as_csr(self.Y, "Y")
        if self.X.shape[0] != self.Y.shape[0]:
            raise DataFormatError(
                f"{self.name}: X has {self.X.shape[0]} samples but Y has "
                f"{self.Y.shape[0]}"
            )
        labels_per_sample = np.diff(self.Y.indptr)
        if self.X.shape[0] and labels_per_sample.min() == 0:
            bad = int(np.argmin(labels_per_sample))
            raise DataFormatError(
                f"{self.name}: sample {bad} has no labels; every XML sample "
                "must carry at least one label"
            )
        if self.Y.nnz and (self.Y.data != 1.0).any():
            raise DataFormatError(
                f"{self.name}: Y must be a binary indicator matrix"
            )
        # Per-row non-zero counts, cached once: the batching hot path sums
        # these instead of re-slicing the CSR (Batch.nnz feeds the GPU cost
        # model on every dispatch), and the gather kernel reuses them as
        # segment lengths.
        self._row_nnz_x = np.diff(self.X.indptr)
        self._row_nnz_y = labels_per_sample

    # -- basic shape info ---------------------------------------------------
    @property
    def n_samples(self) -> int:
        """Number of samples in the split."""
        return self.X.shape[0]

    @property
    def n_features(self) -> int:
        """Dimensionality of the (sparse) feature space."""
        return self.X.shape[1]

    @property
    def n_labels(self) -> int:
        """Size of the label space."""
        return self.Y.shape[1]

    def __len__(self) -> int:
        return self.n_samples

    # -- sparsity descriptors -------------------------------------------------
    @property
    def avg_features_per_sample(self) -> float:
        """Mean non-zero features per sample (Table I column)."""
        if self.n_samples == 0:
            return 0.0
        return self.X.nnz / self.n_samples

    @property
    def avg_labels_per_sample(self) -> float:
        """Mean labels per sample (Table I column)."""
        if self.n_samples == 0:
            return 0.0
        return self.Y.nnz / self.n_samples

    def features_per_sample(self) -> np.ndarray:
        """Per-sample non-zero feature counts (drives batch-time variance)."""
        return self._row_nnz_x

    def labels_per_sample(self) -> np.ndarray:
        """Per-sample label counts."""
        return self._row_nnz_y

    @property
    def row_nnz_x(self) -> np.ndarray:
        """Cached per-row feature nnz (gather segment lengths)."""
        return self._row_nnz_x

    @property
    def row_nnz_y(self) -> np.ndarray:
        """Cached per-row label counts."""
        return self._row_nnz_y

    def nnz_of(self, indices: np.ndarray) -> int:
        """Total feature nnz of the given rows — O(len(indices)).

        Replaces the ``X[idx].nnz`` idiom: the cost model queries every
        batch's cardinality, and this answers from the cached per-row
        counts without touching the CSR arrays.
        """
        return int(self._row_nnz_x[np.asarray(indices)].sum())

    # -- subsetting --------------------------------------------------------
    def take(self, indices: Sequence[int], name: Optional[str] = None) -> "SparseDataset":
        """Row-subset the split (copying only the selected rows)."""
        idx = np.asarray(indices, dtype=np.int64)
        return SparseDataset(
            X=self.X[idx], Y=self.Y[idx], name=name or f"{self.name}[subset]"
        )

    def label_sets(self) -> list:
        """Per-sample label-id arrays (views into Y's index array)."""
        indptr, indices = self.Y.indptr, self.Y.indices
        return [indices[indptr[i]:indptr[i + 1]] for i in range(self.n_samples)]


@dataclass
class XMLTask:
    """A full XML classification task: train and test splits plus metadata.

    Mirrors one row of the paper's Table I. ``describe()`` produces exactly
    those columns.
    """

    train: SparseDataset
    test: SparseDataset
    name: str = "xml-task"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.train.n_features != self.test.n_features:
            raise DataFormatError(
                f"{self.name}: train/test feature dims differ "
                f"({self.train.n_features} vs {self.test.n_features})"
            )
        if self.train.n_labels != self.test.n_labels:
            raise DataFormatError(
                f"{self.name}: train/test label dims differ "
                f"({self.train.n_labels} vs {self.test.n_labels})"
            )

    @property
    def n_features(self) -> int:
        """Shared feature dimensionality."""
        return self.train.n_features

    @property
    def n_labels(self) -> int:
        """Shared label-space size."""
        return self.train.n_labels

    def describe(self) -> dict:
        """Table-I-style summary row for this task."""
        return {
            "dataset": self.name,
            "features": self.n_features,
            "classes": self.n_labels,
            "training samples": self.train.n_samples,
            "testing samples": self.test.n_samples,
            "avg features per sample": round(self.train.avg_features_per_sample, 1),
            "avg classes per sample": round(self.train.avg_labels_per_sample, 1),
        }
