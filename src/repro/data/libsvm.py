"""Multi-label libSVM format IO.

The paper stores training data "in the sparse libSVM format" (§V-A). The
Extreme Classification Repository uses the multi-label variant::

    <header: n_samples n_features n_labels>          (optional)
    l1,l2,...  f1:v1 f2:v2 ...

Each data line starts with a comma-separated label list followed by
whitespace-separated ``feature:value`` pairs. This module reads and writes
that format (with and without the XMLRepository header line), so genuine
repository files load unchanged and synthetic tasks can round-trip to disk.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, TextIO, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.data.dataset import SparseDataset
from repro.exceptions import DataFormatError

__all__ = ["read_libsvm", "write_libsvm"]

PathLike = Union[str, Path]


def _parse_header(line: str) -> Optional[Tuple[int, int, int]]:
    parts = line.split()
    if len(parts) != 3:
        return None
    try:
        n, d, l = (int(p) for p in parts)
    except ValueError:
        return None
    if n < 0 or d <= 0 or l <= 0:
        return None
    return n, d, l


def _parse_line(
    line: str, lineno: int
) -> Tuple[List[int], List[int], List[float]]:
    parts = line.split()
    if not parts:
        return [], [], []
    # Label field: either "1,7,42" or absent when a line starts with "f:v".
    labels: List[int] = []
    start = 0
    if ":" not in parts[0]:
        try:
            labels = [int(tok) for tok in parts[0].split(",") if tok != ""]
        except ValueError as exc:
            raise DataFormatError(
                f"line {lineno}: malformed label list {parts[0]!r}"
            ) from exc
        start = 1
    cols: List[int] = []
    vals: List[float] = []
    for token in parts[start:]:
        feat, _, value = token.partition(":")
        if not _:
            raise DataFormatError(
                f"line {lineno}: malformed feature token {token!r}"
            )
        try:
            cols.append(int(feat))
            vals.append(float(value))
        except ValueError as exc:
            raise DataFormatError(
                f"line {lineno}: malformed feature token {token!r}"
            ) from exc
    return labels, cols, vals


def read_libsvm(
    path: PathLike,
    *,
    n_features: Optional[int] = None,
    n_labels: Optional[int] = None,
    zero_based: bool = True,
    name: Optional[str] = None,
) -> SparseDataset:
    """Read a multi-label libSVM file into a :class:`SparseDataset`.

    If the file begins with an XMLRepository header (``n d L``), dimensions
    come from it; otherwise they are inferred (or taken from ``n_features`` /
    ``n_labels`` when provided). ``zero_based=False`` shifts ids down by one.
    """
    path = Path(path)
    rows_x: List[int] = []
    cols_x: List[int] = []
    vals_x: List[float] = []
    rows_y: List[int] = []
    cols_y: List[int] = []

    header: Optional[Tuple[int, int, int]] = None
    sample = 0
    with path.open() as handle:
        first = handle.readline()
        header = _parse_header(first)
        if header is None and first.strip():
            _consume_line(first, 1, sample, rows_x, cols_x, vals_x, rows_y, cols_y)
            sample += 1
        for lineno, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            _consume_line(line, lineno, sample, rows_x, cols_x, vals_x, rows_y, cols_y)
            sample += 1

    shift = 0 if zero_based else 1
    x_cols = np.asarray(cols_x, dtype=np.int64) - shift
    y_cols = np.asarray(cols_y, dtype=np.int64) - shift
    if (x_cols < 0).any() or (y_cols < 0).any():
        raise DataFormatError(
            f"{path}: negative feature/label id after zero_based={zero_based} shift"
        )

    if header is not None:
        _declared_n, d, l = header
    else:
        d = n_features if n_features is not None else (int(x_cols.max()) + 1 if len(x_cols) else 1)
        l = n_labels if n_labels is not None else (int(y_cols.max()) + 1 if len(y_cols) else 1)
    if n_features is not None:
        d = n_features
    if n_labels is not None:
        l = n_labels
    if len(x_cols) and int(x_cols.max()) >= d:
        raise DataFormatError(f"{path}: feature id {int(x_cols.max())} >= n_features {d}")
    if len(y_cols) and int(y_cols.max()) >= l:
        raise DataFormatError(f"{path}: label id {int(y_cols.max())} >= n_labels {l}")

    X = sp.csr_matrix(
        (np.asarray(vals_x, dtype=np.float32), (rows_x, x_cols)), shape=(sample, d)
    )
    Y = sp.csr_matrix(
        (np.ones(len(rows_y), dtype=np.float32), (rows_y, y_cols)), shape=(sample, l)
    )
    Y.sum_duplicates()
    if Y.nnz:
        Y.data[:] = 1.0
    return SparseDataset(X=X, Y=Y, name=name or path.stem)


def _consume_line(line, lineno, sample, rows_x, cols_x, vals_x, rows_y, cols_y):
    labels, cols, vals = _parse_line(line, lineno)
    if not labels:
        raise DataFormatError(f"line {lineno}: sample has no labels")
    for lab in labels:
        rows_y.append(sample)
        cols_y.append(lab)
    for c, v in zip(cols, vals):
        rows_x.append(sample)
        cols_x.append(c)
        vals_x.append(v)


def write_libsvm(
    dataset: SparseDataset,
    path: PathLike,
    *,
    header: bool = True,
    precision: int = 6,
) -> Path:
    """Write ``dataset`` in multi-label libSVM format (zero-based ids).

    With ``header=True`` (default) the XMLRepository ``n d L`` header line is
    emitted, which makes dimensions unambiguous on read-back.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    X, Y = dataset.X, dataset.Y
    with path.open("w") as handle:
        if header:
            handle.write(f"{dataset.n_samples} {dataset.n_features} {dataset.n_labels}\n")
        for i in range(dataset.n_samples):
            labels = Y.indices[Y.indptr[i]:Y.indptr[i + 1]]
            feats = X.indices[X.indptr[i]:X.indptr[i + 1]]
            vals = X.data[X.indptr[i]:X.indptr[i + 1]]
            label_field = ",".join(str(int(lab)) for lab in labels)
            feat_field = " ".join(
                f"{int(f)}:{v:.{precision}g}" for f, v in zip(feats, vals)
            )
            handle.write(f"{label_field} {feat_field}\n".rstrip() + "\n")
    return path
