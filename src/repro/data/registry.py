"""Named dataset configurations.

Two families exist:

- ``*-tiny`` — scaled-down synthetic analogues of the paper's datasets,
  sized so the full experiment suite runs on a laptop in minutes. The
  *ratios* that matter to the algorithms are preserved: Amazon-670k's label
  space is larger than its feature space with very few labels per sample;
  Delicious-200k is the opposite (features >> labels, dense label sets).
- ``*-small`` — larger versions for longer, higher-fidelity runs.

Absolute dimensionalities are reduced (documented per-config); per-sample
nnz means are reduced proportionally less so the tasks stay learnable.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.data.synthetic import SyntheticXMLConfig, generate_xml_task
from repro.data.dataset import XMLTask
from repro.exceptions import ConfigurationError

__all__ = ["DATASET_CONFIGS", "dataset_names", "get_config", "load_task"]


def _amazon670k_tiny(seed: int) -> SyntheticXMLConfig:
    # Amazon-670k: 135,909 features / 670,091 labels (labels ~4.9x features),
    # 490,449 train, avg 76 feat + 5 labels per sample. Scaled ~1/100 on
    # dims, labels kept > features; avg labels kept at 5.
    return SyntheticXMLConfig(
        name="amazon670k-tiny",
        n_features=1536,
        n_labels=6144,
        n_train=6144,
        n_test=1536,
        avg_features_per_sample=24.0,
        avg_labels_per_sample=5.0,
        label_zipf=1.1,
        feature_zipf=1.05,
        prototypes_per_label=10,
        signal_fraction=0.7,
        nnz_sigma=0.55,
        seed=seed,
    )


def _delicious200k_tiny(seed: int) -> SyntheticXMLConfig:
    # Delicious-200k: 782,585 features / 205,443 labels (features ~3.8x
    # labels), 196,606 train, avg 302 feat + 75 labels per sample. Scaled
    # with features > labels and much denser label sets (avg 12).
    return SyntheticXMLConfig(
        name="delicious200k-tiny",
        n_features=4096,
        n_labels=1024,
        n_train=6144,
        n_test=1536,
        avg_features_per_sample=64.0,
        avg_labels_per_sample=12.0,
        label_zipf=0.9,
        feature_zipf=1.1,
        prototypes_per_label=14,
        signal_fraction=0.65,
        nnz_sigma=0.5,
        seed=seed,
    )


def _amazon670k_small(seed: int) -> SyntheticXMLConfig:
    cfg = _amazon670k_tiny(seed)
    cfg.name = "amazon670k-small"
    cfg.n_features = 4096
    cfg.n_labels = 16384
    cfg.n_train = 24576
    cfg.n_test = 6144
    cfg.avg_features_per_sample = 48.0
    return cfg


def _delicious200k_small(seed: int) -> SyntheticXMLConfig:
    cfg = _delicious200k_tiny(seed)
    cfg.name = "delicious200k-small"
    cfg.n_features = 16384
    cfg.n_labels = 4096
    cfg.n_train = 24576
    cfg.n_test = 6144
    cfg.avg_features_per_sample = 128.0
    return cfg


def _micro(seed: int) -> SyntheticXMLConfig:
    # Minimal task for unit/integration tests: runs in well under a second.
    return SyntheticXMLConfig(
        name="micro",
        n_features=256,
        n_labels=64,
        n_train=512,
        n_test=128,
        avg_features_per_sample=12.0,
        avg_labels_per_sample=2.0,
        prototypes_per_label=6,
        seed=seed,
    )


def _amazon670k_bench(seed: int) -> SyntheticXMLConfig:
    # Benchmark-sized Amazon analogue: keeps labels > features and sparse
    # label sets (avg ~4) while staying small enough that the full Figure-4
    # grid (4 methods x 3 GPU counts x 2 datasets) runs in minutes on a CPU.
    return SyntheticXMLConfig(
        name="amazon670k-bench",
        n_features=768,
        n_labels=1536,
        n_train=8192,
        n_test=2048,
        avg_features_per_sample=20.0,
        avg_labels_per_sample=4.0,
        label_zipf=1.1,
        feature_zipf=1.05,
        prototypes_per_label=8,
        signal_fraction=0.7,
        nnz_sigma=0.55,
        seed=seed,
    )


def _delicious200k_bench(seed: int) -> SyntheticXMLConfig:
    # Benchmark-sized Delicious analogue: features > labels, dense label
    # sets (avg ~8).
    return SyntheticXMLConfig(
        name="delicious200k-bench",
        n_features=1536,
        n_labels=512,
        n_train=8192,
        n_test=2048,
        avg_features_per_sample=48.0,
        avg_labels_per_sample=8.0,
        label_zipf=0.9,
        feature_zipf=1.1,
        prototypes_per_label=12,
        signal_fraction=0.65,
        nnz_sigma=0.5,
        seed=seed,
    )


DATASET_CONFIGS: Dict[str, Callable[[int], SyntheticXMLConfig]] = {
    "micro": _micro,
    "amazon670k-bench": _amazon670k_bench,
    "delicious200k-bench": _delicious200k_bench,
    "amazon670k-tiny": _amazon670k_tiny,
    "delicious200k-tiny": _delicious200k_tiny,
    "amazon670k-small": _amazon670k_small,
    "delicious200k-small": _delicious200k_small,
}


def dataset_names() -> List[str]:
    """All registered dataset names."""
    return list(DATASET_CONFIGS)


def get_config(name: str, seed: int = 0) -> SyntheticXMLConfig:
    """The generator config for dataset ``name`` at ``seed``."""
    try:
        builder = DATASET_CONFIGS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown dataset {name!r}; available: {dataset_names()}"
        ) from None
    return builder(seed)


def load_task(name: str, seed: int = 0) -> XMLTask:
    """Generate the named synthetic XML task (deterministic in ``seed``)."""
    return generate_xml_task(get_config(name, seed))
