"""Data substrate: sparse multi-label datasets, generation, IO, batching.

- :mod:`repro.data.dataset` — :class:`SparseDataset` / :class:`XMLTask` containers.
- :mod:`repro.data.synthetic` — learnable synthetic XML task generator.
- :mod:`repro.data.libsvm` — multi-label libSVM read/write (XMLRepository format).
- :mod:`repro.data.batching` — batches, shuffling cursors, mega-batch accounting.
- :mod:`repro.data.stats` — Table-I rows and batch-nnz variance profiles.
- :mod:`repro.data.registry` — named scaled-down analogues of the paper's datasets.
"""

from repro.data.batching import Batch, BatchCursor, MegaBatchAccountant, static_batches
from repro.data.dataset import SparseDataset, XMLTask
from repro.data.libsvm import read_libsvm, write_libsvm
from repro.data.registry import dataset_names, get_config, load_task
from repro.data.stats import BatchNnzProfile, batch_nnz_profile, table1, table1_row
from repro.data.synthetic import SyntheticXMLConfig, generate_xml_task

__all__ = [
    "Batch",
    "BatchCursor",
    "MegaBatchAccountant",
    "static_batches",
    "SparseDataset",
    "XMLTask",
    "read_libsvm",
    "write_libsvm",
    "dataset_names",
    "get_config",
    "load_task",
    "BatchNnzProfile",
    "batch_nnz_profile",
    "table1",
    "table1_row",
    "SyntheticXMLConfig",
    "generate_xml_task",
]
