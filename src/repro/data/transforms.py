"""Dataset transforms: the preprocessing steps real XML pipelines need.

These make the library usable on *real* Extreme Classification Repository
files, not just the synthetic analogues:

- :func:`hash_features` — feature hashing (the "hashing trick"): project a
  huge sparse feature space (Amazon-670k has 135,909 features; Delicious
  782,585) down to a tractable dimensionality with a signed hash, so real
  repository files run on laptop-sized models;
- :func:`filter_rare_labels` — drop labels with fewer than ``min_count``
  training occurrences (and the samples left label-less), the standard XML
  cleanup;
- :func:`tfidf_transform` — TF-IDF re-weighting with L2 row normalization
  (the usual XML feature preprocessing when raw counts are stored);
- :func:`train_test_split` — deterministic random split for files that ship
  as a single matrix.

All transforms are pure: they return new datasets and never mutate inputs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

from repro.data.dataset import SparseDataset, XMLTask
from repro.exceptions import ConfigurationError, DataFormatError
from repro.utils.rng import make_rng

__all__ = [
    "hash_features",
    "filter_rare_labels",
    "tfidf_transform",
    "train_test_split",
]


def _hash_mix(values: np.ndarray, seed: int) -> np.ndarray:
    """Deterministic 64-bit integer mix (splitmix64 finalizer).

    All arithmetic is intentionally modulo 2^64; overflow warnings are
    suppressed because wraparound *is* the hash.
    """
    with np.errstate(over="ignore"):
        x = values.astype(np.uint64) + np.uint64(
            (seed * 0x9E3779B97F4A7C15) % 2**64
        )
        x ^= x >> np.uint64(30)
        x *= np.uint64(0xBF58476D1CE4E5B9)
        x ^= x >> np.uint64(27)
        x *= np.uint64(0x94D049BB133111EB)
        x ^= x >> np.uint64(31)
    return x


def hash_features(
    dataset: SparseDataset, n_buckets: int, *, seed: int = 0,
    signed: bool = True, name: str = None,
) -> SparseDataset:
    """Feature-hash ``dataset`` into ``n_buckets`` dimensions.

    Each original feature id maps to ``hash(id) % n_buckets``; with
    ``signed=True`` a second hash assigns ±1 signs so colliding features
    cancel in expectation (Weinberger et al.), preserving inner products
    approximately. Values colliding in the same bucket are summed.
    """
    if n_buckets < 1:
        raise ConfigurationError(f"n_buckets must be >= 1, got {n_buckets}")
    X = dataset.X.tocoo()
    mixed = _hash_mix(X.col.astype(np.uint64), seed)
    buckets = (mixed % np.uint64(n_buckets)).astype(np.int64)
    data = X.data.astype(np.float32, copy=True)
    if signed:
        signs = np.where(
            (_hash_mix(X.col.astype(np.uint64), seed + 1) >> np.uint64(63)) == 0,
            np.float32(1.0), np.float32(-1.0),
        )
        data *= signs
    hashed = sp.csr_matrix(
        (data, (X.row, buckets)), shape=(dataset.n_samples, n_buckets)
    )
    hashed.sum_duplicates()
    # Exact cancellations leave explicit zeros; drop them.
    hashed.eliminate_zeros()
    return SparseDataset(
        X=hashed, Y=dataset.Y.copy(),
        name=name or f"{dataset.name}[hashed{n_buckets}]",
    )


def filter_rare_labels(
    train: SparseDataset, test: SparseDataset, *, min_count: int = 2
) -> Tuple[SparseDataset, SparseDataset]:
    """Keep labels with >= ``min_count`` training occurrences.

    Label columns are re-indexed densely; samples whose label set becomes
    empty are dropped from both splits. Returns the filtered pair.
    """
    if min_count < 1:
        raise ConfigurationError(f"min_count must be >= 1, got {min_count}")
    counts = np.asarray(train.Y.sum(axis=0)).ravel()
    keep = np.flatnonzero(counts >= min_count)
    if keep.size == 0:
        raise DataFormatError(
            f"no label reaches min_count={min_count}; nothing would remain"
        )

    def apply(split: SparseDataset, tag: str) -> SparseDataset:
        Y = split.Y[:, keep].tocsr()
        rows = np.flatnonzero(np.diff(Y.indptr) > 0)
        return SparseDataset(
            X=split.X[rows], Y=Y[rows], name=f"{split.name}[{tag}]"
        )

    return apply(train, "filtered"), apply(test, "filtered")


def tfidf_transform(
    train: SparseDataset, test: SparseDataset
) -> Tuple[SparseDataset, SparseDataset]:
    """TF-IDF weighting fit on train, applied to both splits, L2-normalized.

    ``idf(f) = log((1 + N) / (1 + df(f))) + 1`` (the smooth variant), with
    document frequencies computed on the training split only — applying
    test-derived statistics would leak.
    """
    n = train.n_samples
    df = np.asarray((train.X != 0).sum(axis=0)).ravel()
    idf = (np.log((1.0 + n) / (1.0 + df)) + 1.0).astype(np.float32)
    idf_diag = sp.diags(idf)

    def apply(split: SparseDataset, tag: str) -> SparseDataset:
        X = (split.X @ idf_diag).tocsr().astype(np.float32)
        norms = np.sqrt(np.asarray(X.multiply(X).sum(axis=1))).ravel()
        norms[norms == 0.0] = 1.0
        X = (sp.diags((1.0 / norms).astype(np.float32)) @ X).tocsr()
        return SparseDataset(X=X, Y=split.Y.copy(), name=f"{split.name}[{tag}]")

    return apply(train, "tfidf"), apply(test, "tfidf")


def train_test_split(
    dataset: SparseDataset, *, test_fraction: float = 0.2, seed: int = 0,
    name: str = None,
) -> XMLTask:
    """Deterministic random split of one dataset into an :class:`XMLTask`."""
    if not (0.0 < test_fraction < 1.0):
        raise ConfigurationError(
            f"test_fraction must be in (0, 1), got {test_fraction}"
        )
    n = dataset.n_samples
    n_test = max(1, int(round(n * test_fraction)))
    if n_test >= n:
        raise ConfigurationError(
            f"split leaves no training samples (n={n}, test={n_test})"
        )
    order = make_rng(seed).permutation(n)
    test_idx = np.sort(order[:n_test])
    train_idx = np.sort(order[n_test:])
    task_name = name or f"{dataset.name}[split]"
    return XMLTask(
        train=dataset.take(train_idx, name=f"{task_name}/train"),
        test=dataset.take(test_idx, name=f"{task_name}/test"),
        name=task_name,
    )
