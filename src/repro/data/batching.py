"""Batch construction and dynamic batch dispensing.

Two consumers exist:

- Static trainers (synchronous SGD, Elastic SGD) partition an epoch into
  fixed-size batches up front — :func:`static_batches`.
- Adaptive SGD's *dynamic scheduler* requests a batch of a caller-chosen size
  whenever a GPU frees up — :class:`BatchCursor.next_batch(size)` — because
  per-GPU batch sizes change at every mega-batch boundary (Algorithm 1).

Both paths shuffle per epoch with a dedicated generator stream and never
copy the underlying CSR data beyond the row slices a batch needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np
import scipy.sparse as sp

from repro.data.dataset import SparseDataset
from repro.exceptions import ConfigurationError
from repro.perf.gather import RowGatherer
from repro.utils.rng import make_rng

__all__ = ["Batch", "BatchCursor", "static_batches", "MegaBatchAccountant"]


@dataclass(frozen=True)
class Batch:
    """A training batch: row-sliced features/labels plus provenance.

    ``nnz`` (non-zero feature count) is what the GPU cost model keys on —
    sparse kernels are sensitive to input cardinality (§I). Batch builders
    precompute it from the dataset's cached per-row counts so reading it
    never triggers a sparse-slice side effect.
    """

    X: sp.csr_matrix
    Y: sp.csr_matrix
    indices: np.ndarray
    #: Sequence number of the batch within the run (dispatch order).
    sequence: int = -1
    #: Non-zero feature count (drives sparse-kernel cost); derived from X
    #: when the builder does not supply it.
    nnz: int = -1

    def __post_init__(self) -> None:
        if self.nnz < 0:
            object.__setattr__(self, "nnz", int(self.X.nnz))

    @property
    def size(self) -> int:
        """Number of samples in the batch."""
        return self.X.shape[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Batch(size={self.size}, nnz={self.nnz}, seq={self.sequence})"


class BatchCursor:
    """Shuffling cursor over a dataset that serves variable-size batches.

    The cursor walks a per-epoch random permutation of sample indices; when a
    request crosses the epoch boundary it reshuffles and continues, so batch
    sizes need not divide the dataset. ``epochs_completed`` exposes the
    *statistical-efficiency* x-axis (full passes over the data).
    """

    def __init__(self, dataset: SparseDataset, seed: int = 0) -> None:
        if dataset.n_samples == 0:
            raise ConfigurationError("cannot build a BatchCursor over an empty dataset")
        self.dataset = dataset
        self._rng = make_rng(seed)
        self._order = self._rng.permutation(dataset.n_samples)
        self._pos = 0
        self._samples_served = 0
        self._sequence = 0
        # Per-cursor gather kernels with reusable output buffers; replaces
        # dataset.X[idx] / dataset.Y[idx] fancy indexing on every dispatch.
        self._gather_x = RowGatherer(dataset.X)
        self._gather_y = RowGatherer(dataset.Y)

    @property
    def samples_served(self) -> int:
        """Total samples handed out so far."""
        return self._samples_served

    @property
    def epochs_completed(self) -> float:
        """Fractional number of full passes over the training data."""
        return self._samples_served / self.dataset.n_samples

    @property
    def batches_served(self) -> int:
        """Number of batches dispensed."""
        return self._sequence

    def _take(self, count: int) -> np.ndarray:
        out = np.empty(count, dtype=np.int64)
        filled = 0
        while filled < count:
            available = len(self._order) - self._pos
            if available == 0:
                self._order = self._rng.permutation(self.dataset.n_samples)
                self._pos = 0
                available = len(self._order)
            take = min(count - filled, available)
            out[filled:filled + take] = self._order[self._pos:self._pos + take]
            self._pos += take
            filled += take
        return out

    def next_batch(self, size: int) -> Batch:
        """Serve the next ``size`` samples as a batch (reshuffling as needed)."""
        if size < 1:
            raise ConfigurationError(f"batch size must be >= 1, got {size}")
        idx = self._take(int(size))
        batch = Batch(
            X=self._gather_x.gather(idx),
            Y=self._gather_y.gather(idx),
            indices=idx,
            sequence=self._sequence,
            nnz=self.dataset.nnz_of(idx),
        )
        self._sequence += 1
        self._samples_served += batch.size
        return batch


def static_batches(
    dataset: SparseDataset,
    batch_size: int,
    *,
    seed: int = 0,
    drop_last: bool = False,
) -> Iterator[Batch]:
    """One shuffled epoch of fixed-size batches (classic mini-batch SGD)."""
    if batch_size < 1:
        raise ConfigurationError(f"batch size must be >= 1, got {batch_size}")
    order = make_rng(seed).permutation(dataset.n_samples)
    gather_x = RowGatherer(dataset.X)
    gather_y = RowGatherer(dataset.Y)
    for seq, start in enumerate(range(0, dataset.n_samples, batch_size)):
        idx = order[start:start + batch_size]
        if drop_last and len(idx) < batch_size:
            return
        yield Batch(
            X=gather_x.gather(idx),
            Y=gather_y.gather(idx),
            indices=idx,
            sequence=seq,
            nnz=dataset.nnz_of(idx),
        )


class MegaBatchAccountant:
    """Tracks the sample budget of the current mega-batch.

    The paper controls dynamic scheduling "by fixing the number of training
    samples processed between two model merging stages — we call these
    samples a mega-batch" (§III). The accountant answers two questions the
    scheduler asks before each dispatch: *how many samples remain* in the
    current mega-batch, and *is the mega-batch done*.
    """

    def __init__(self, mega_batch_size: int) -> None:
        if mega_batch_size < 1:
            raise ConfigurationError(
                f"mega-batch size must be >= 1, got {mega_batch_size}"
            )
        self.mega_batch_size = int(mega_batch_size)
        self._consumed = 0
        self._completed = 0

    @property
    def consumed(self) -> int:
        """Samples dispatched within the current mega-batch."""
        return self._consumed

    @property
    def remaining(self) -> int:
        """Samples left in the current mega-batch's budget."""
        return self.mega_batch_size - self._consumed

    @property
    def mega_batches_completed(self) -> int:
        """Number of completed mega-batches (merge stages performed)."""
        return self._completed

    @property
    def exhausted(self) -> bool:
        """True when no budget remains and merging should run."""
        return self._consumed >= self.mega_batch_size

    def clamp(self, requested: int) -> int:
        """Largest batch size <= ``requested`` that fits the remaining budget."""
        return max(1, min(int(requested), self.remaining)) if self.remaining > 0 else 0

    def charge(self, n_samples: int) -> None:
        """Record ``n_samples`` as dispatched."""
        if n_samples < 1:
            raise ConfigurationError(f"cannot charge {n_samples} samples")
        if n_samples > self.remaining:
            raise ConfigurationError(
                f"dispatch of {n_samples} exceeds remaining mega-batch budget "
                f"({self.remaining})"
            )
        self._consumed += int(n_samples)

    def roll_over(self) -> None:
        """Start the next mega-batch (budget resets)."""
        if not self.exhausted:
            raise ConfigurationError(
                "roll_over() before the mega-batch budget was exhausted"
            )
        self._consumed = 0
        self._completed += 1
