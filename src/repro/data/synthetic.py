"""Synthetic XML dataset generator.

The paper evaluates on Amazon-670k and Delicious-200k from the Extreme
Classification Repository — gigabyte-scale proprietary-download datasets we
do not have here. This module generates scaled-down synthetic analogues that
preserve the properties the paper's mechanisms actually react to:

1. **Sparse, power-law features.** Per-sample non-zero counts follow a
   clipped lognormal around the target mean, and feature ids follow a Zipf
   popularity law — so the *number of non-zeros varies significantly across
   batches*, which is the second heterogeneity source in §I.
2. **Sparse, skewed multi-labels** with Zipf popularity and a configurable
   mean count per sample (5 for Amazon-670k, 75 for Delicious-200k).
3. **Learnable structure.** Each label owns a small set of *prototype*
   features; a sample's features are a mixture of its labels' prototypes and
   background noise. A linear/MLP model can therefore actually learn the
   task, so accuracy-vs-time curves rise the way the paper's do.

The generator is fully deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.data.dataset import SparseDataset, XMLTask
from repro.exceptions import ConfigurationError
from repro.utils.rng import RngFactory
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_probability,
)

__all__ = ["SyntheticXMLConfig", "generate_xml_task", "zipf_probabilities"]


def zipf_probabilities(n: int, exponent: float) -> np.ndarray:
    """Normalized Zipf(popularity rank) probabilities over ``n`` items."""
    if n < 1:
        raise ConfigurationError(f"need at least one item, got {n}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-float(exponent))
    return weights / weights.sum()


@dataclass
class SyntheticXMLConfig:
    """Parameters of the synthetic XML task generator.

    The defaults produce a small but structured task; the named registry
    configs (:mod:`repro.data.registry`) scale them to mimic Table I.
    """

    n_features: int = 2048
    n_labels: int = 512
    n_train: int = 4096
    n_test: int = 1024
    avg_features_per_sample: float = 32.0
    avg_labels_per_sample: float = 3.0
    #: Zipf exponent for label popularity (1.0 ~ natural tag skew).
    label_zipf: float = 1.05
    #: Zipf exponent for background-feature popularity.
    feature_zipf: float = 1.05
    #: Prototype features owned by each label (the learnable signal).
    prototypes_per_label: int = 12
    #: Fraction of a sample's non-zeros drawn from its labels' prototypes.
    signal_fraction: float = 0.7
    #: Lognormal sigma controlling the spread of per-sample nnz counts.
    nnz_sigma: float = 0.5
    #: Co-occurring labels are drawn from each label's neighborhood of this size.
    label_neighborhood: int = 8
    name: str = "synthetic-xml"
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("n_features", self.n_features)
        check_positive("n_labels", self.n_labels)
        check_positive("n_train", self.n_train)
        check_positive("n_test", self.n_test)
        check_in_range(
            "avg_features_per_sample", self.avg_features_per_sample, 1, self.n_features
        )
        check_in_range(
            "avg_labels_per_sample", self.avg_labels_per_sample, 1, self.n_labels
        )
        check_positive("prototypes_per_label", self.prototypes_per_label)
        check_probability("signal_fraction", self.signal_fraction)
        check_positive("nnz_sigma", self.nnz_sigma)
        check_positive("label_neighborhood", self.label_neighborhood)


def _sample_counts(
    rng: np.random.Generator, n: int, mean: float, sigma: float, upper: int
) -> np.ndarray:
    """Clipped lognormal counts with the requested mean (>=1)."""
    # For lognormal, E[X] = exp(mu + sigma^2/2); solve mu for the target mean.
    mu = np.log(mean) - 0.5 * sigma * sigma
    counts = rng.lognormal(mean=mu, sigma=sigma, size=n)
    return np.clip(np.rint(counts), 1, upper).astype(np.int64)


def _build_prototypes(
    rng: np.random.Generator, cfg: SyntheticXMLConfig
) -> np.ndarray:
    """(n_labels, prototypes_per_label) feature ids, Zipf-weighted draws."""
    probs = zipf_probabilities(cfg.n_features, cfg.feature_zipf)
    # A random rank->feature permutation decouples popularity from id order.
    perm = rng.permutation(cfg.n_features)
    draws = rng.choice(
        cfg.n_features,
        size=(cfg.n_labels, cfg.prototypes_per_label),
        p=probs,
    )
    return perm[draws]


def _generate_split(
    rng: np.random.Generator,
    cfg: SyntheticXMLConfig,
    n_samples: int,
    prototypes: np.ndarray,
    label_probs: np.ndarray,
    label_perm: np.ndarray,
    split_name: str,
) -> SparseDataset:
    n_labels, n_features = cfg.n_labels, cfg.n_features
    feat_probs = zipf_probabilities(n_features, cfg.feature_zipf)
    feat_perm = rng.permutation(n_features)

    label_counts = _sample_counts(
        rng, n_samples, cfg.avg_labels_per_sample, cfg.nnz_sigma,
        upper=min(n_labels, max(1, int(cfg.avg_labels_per_sample * 8))),
    )
    feature_counts = _sample_counts(
        rng, n_samples, cfg.avg_features_per_sample, cfg.nnz_sigma,
        upper=min(n_features, max(1, int(cfg.avg_features_per_sample * 8))),
    )

    # --- labels: a Zipf-drawn primary plus neighbors of the primary -------
    primaries = label_perm[rng.choice(n_labels, size=n_samples, p=label_probs)]
    extra_total = int(label_counts.sum() - n_samples)
    # Neighbor offsets in [1, label_neighborhood]; wrap around the id space.
    offsets = rng.integers(1, cfg.label_neighborhood + 1, size=max(extra_total, 1))

    y_rows = np.empty(int(label_counts.sum()), dtype=np.int64)
    y_cols = np.empty_like(y_rows)
    pos = 0
    off_pos = 0
    for i in range(n_samples):
        k = int(label_counts[i])
        y_rows[pos:pos + k] = i
        y_cols[pos] = primaries[i]
        if k > 1:
            neigh = (primaries[i] + offsets[off_pos:off_pos + k - 1]) % n_labels
            y_cols[pos + 1:pos + k] = neigh
            off_pos += k - 1
        pos += k
    Y = sp.csr_matrix(
        (np.ones(len(y_rows), dtype=np.float32), (y_rows, y_cols)),
        shape=(n_samples, n_labels),
    )
    Y.sum_duplicates()
    Y.data[:] = 1.0  # duplicates collapse back to an indicator

    # --- features: prototype signal + Zipf background ---------------------
    signal_counts = np.minimum(
        np.rint(feature_counts * cfg.signal_fraction).astype(np.int64),
        feature_counts,
    )
    noise_counts = feature_counts - signal_counts

    proto_k = prototypes.shape[1]
    total_signal = int(signal_counts.sum())
    total_noise = int(noise_counts.sum())

    # Vectorized draws, then scatter into rows.
    proto_slot = rng.integers(0, proto_k, size=max(total_signal, 1))
    noise_draw = feat_perm[
        rng.choice(n_features, size=max(total_noise, 1), p=feat_probs)
    ]

    x_rows = np.empty(total_signal + total_noise, dtype=np.int64)
    x_cols = np.empty_like(x_rows)
    pos = s_pos = n_pos = 0
    for i in range(n_samples):
        ks, kn = int(signal_counts[i]), int(noise_counts[i])
        if ks:
            x_rows[pos:pos + ks] = i
            x_cols[pos:pos + ks] = prototypes[
                primaries[i], proto_slot[s_pos:s_pos + ks]
            ]
            s_pos += ks
            pos += ks
        if kn:
            x_rows[pos:pos + kn] = i
            x_cols[pos:pos + kn] = noise_draw[n_pos:n_pos + kn]
            n_pos += kn
            pos += kn

    # TF-IDF-like positive magnitudes.
    values = rng.lognormal(mean=0.0, sigma=0.4, size=len(x_rows)).astype(np.float32)
    X = sp.csr_matrix((values, (x_rows, x_cols)), shape=(n_samples, n_features))
    X.sum_duplicates()
    # L2-normalize rows (standard XML preprocessing) — keeps logits bounded.
    row_norms = np.sqrt(np.asarray(X.multiply(X).sum(axis=1))).ravel()
    row_norms[row_norms == 0.0] = 1.0
    inv = sp.diags(1.0 / row_norms).astype(np.float32)
    X = (inv @ X).tocsr().astype(np.float32)

    return SparseDataset(X=X, Y=Y, name=split_name)


def generate_xml_task(cfg: SyntheticXMLConfig) -> XMLTask:
    """Generate a full train/test XML task from ``cfg`` (deterministic)."""
    factory = RngFactory(cfg.seed).child("synthetic", cfg.name)
    structure_rng = factory.get("structure")

    prototypes = _build_prototypes(structure_rng, cfg)
    label_probs = zipf_probabilities(cfg.n_labels, cfg.label_zipf)
    label_perm = structure_rng.permutation(cfg.n_labels)

    train = _generate_split(
        factory.get("train"), cfg, cfg.n_train, prototypes, label_probs,
        label_perm, f"{cfg.name}/train",
    )
    test = _generate_split(
        factory.get("test"), cfg, cfg.n_test, prototypes, label_probs,
        label_perm, f"{cfg.name}/test",
    )
    return XMLTask(
        train=train,
        test=test,
        name=cfg.name,
        metadata={"config": cfg, "seed": cfg.seed},
    )
