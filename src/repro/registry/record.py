"""Builders that turn run artifacts into registered run directories.

Each ``record_*`` function lays out one run directory under the registry
root — ``manifest.json`` (identity, spec/config, git state, sim-clock
timestamps), ``report.json`` (headline metrics), ``metrics.jsonl``
(per-step samples), and the telemetry trace — then indexes it in
``runs.db``. Registration happens *after* artifacts land so a crashed run
never leaves a dangling index row.

Registration is opt-in: :func:`default_registry` resolves an explicit
``--registry`` path, then the ``REPRO_REGISTRY`` environment variable, and
otherwise returns ``None`` (the ``repro runs`` verbs additionally fall
back to ``.repro-runs`` so a bare ``repro runs ls`` works in a directory
where runs were registered with defaults).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import math
import os
import subprocess
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

from repro.harness.store import save_trace
from repro.harness.traces import TrainingTrace
from repro.registry.index import RUNS_DIRNAME, RunRegistry
from repro.telemetry import Telemetry
from repro.telemetry.export import write_jsonl
from repro.utils.serialization import save_json, to_jsonable

__all__ = [
    "ENV_REGISTRY",
    "DEFAULT_REGISTRY_ROOT",
    "default_registry",
    "new_run_id",
    "git_state",
    "build_manifest",
    "flatten_metrics",
    "record_train_run",
    "record_serve_runs",
    "record_bench_run",
    "record_experiment",
]

#: Environment variable naming the registry root when no flag is passed.
ENV_REGISTRY = "REPRO_REGISTRY"

#: Where the ``repro runs`` verbs look when neither flag nor env is set.
DEFAULT_REGISTRY_ROOT = ".repro-runs"

#: The telemetry archive filename inside a run directory. Named so that
#: ``load_trace_data(run_dir)`` resolves it (the loader's directory probe).
TELEMETRY_NAME = "telemetry.jsonl"

_RUN_COUNTER = itertools.count()


def default_registry(
    path=None, *, create: bool = True, fallback: bool = False
) -> Optional[RunRegistry]:
    """Resolve the registry: explicit ``path`` → ``$REPRO_REGISTRY`` → None.

    With ``fallback=True`` (the read-side ``repro runs`` verbs), an unset
    environment falls through to ``.repro-runs`` instead of ``None`` so
    the default write-side root is also the default read-side root.
    """
    if path is None:
        path = os.environ.get(ENV_REGISTRY) or None
    if path is None and fallback:
        path = DEFAULT_REGISTRY_ROOT
    if path is None:
        return None
    return RunRegistry(path, create=create)


def new_run_id(
    kind: str, *, algorithm: str = "", dataset: str = "", seed: int = 0
) -> str:
    """A stable, sortable run id: ``<kind>-<YYYYmmdd-HHMMSS>-<digest8>``.

    The digest folds in wall time (ns), pid, and a process-local counter,
    so concurrent registrations from separate processes (or a tight loop
    in one) never collide while the prefix stays human-scannable.
    """
    now_ns = time.time_ns()
    stamp = time.strftime("%Y%m%d-%H%M%S", time.localtime(now_ns / 1e9))
    seedstr = (
        f"{kind}|{algorithm}|{dataset}|{seed}|{now_ns}|{os.getpid()}|"
        f"{next(_RUN_COUNTER)}"
    )
    digest = hashlib.sha256(seedstr.encode("utf-8")).hexdigest()[:8]
    return f"{kind}-{stamp}-{digest}"


def git_state(cwd=None) -> Dict[str, object]:
    """``{"git_commit": sha, "git_dirty": bool}``; ``{}`` outside a repo."""
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
        porcelain = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout
    except (OSError, subprocess.SubprocessError):
        return {}
    return {"git_commit": commit, "git_dirty": bool(porcelain.strip())}


def _report_safe(obj):
    """Deep-convert ``obj`` for strict JSON: non-finite → None, rest via
    :func:`to_jsonable`, last-resort ``repr``."""
    if isinstance(obj, Mapping):
        return {str(k): _report_safe(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_report_safe(v) for v in obj]
    if isinstance(obj, bool):
        return obj
    if isinstance(obj, float):
        return float(obj) if math.isfinite(obj) else None
    if isinstance(obj, int):
        return int(obj)
    try:
        return _report_safe(to_jsonable(obj)) if not isinstance(obj, str) else obj
    except (TypeError, ValueError):
        return repr(obj)


def flatten_metrics(obj, prefix: str = "") -> Dict[str, float]:
    """Flatten nested numeric leaves into ``a/b/c -> float`` pairs.

    Non-finite values and non-numeric leaves are dropped (the index's
    metrics table only holds values a baseline median can consume);
    sequences are skipped — per-step series belong in ``metrics.jsonl``.
    """
    out: Dict[str, float] = {}
    if isinstance(obj, Mapping):
        for key, value in obj.items():
            name = f"{prefix}/{key}" if prefix else str(key)
            out.update(flatten_metrics(value, name))
    elif isinstance(obj, bool):
        if prefix:
            out[prefix] = float(obj)
    elif isinstance(obj, (int, float)):
        value = float(obj)
        if prefix and math.isfinite(value):
            out[prefix] = value
    return out


def build_manifest(
    kind: str,
    run_id: str,
    *,
    algorithm: str = "",
    dataset: str = "",
    n_devices: int = 0,
    seed: int = 0,
    sim_duration_s: float = 0.0,
    trace_path: str = "",
    spec=None,
    config=None,
    extra: Optional[Mapping] = None,
) -> Dict[str, object]:
    """The ``manifest.json`` payload: identity + provenance for one run."""
    manifest: Dict[str, object] = {
        "run_id": run_id,
        "kind": kind,
        "algorithm": algorithm,
        "dataset": dataset,
        "n_devices": int(n_devices),
        "seed": int(seed),
        "created_s": time.time(),
        "sim_duration_s": float(sim_duration_s),
        "path": f"{RUNS_DIRNAME}/{run_id}",
        "trace_path": trace_path,
    }
    manifest.update(git_state())
    if spec is not None:
        manifest["spec"] = _report_safe(spec)
    if config is not None:
        manifest["config"] = _report_safe(config)
    if extra:
        manifest.update({str(k): _report_safe(v) for k, v in extra.items()})
    return manifest


def _write_run_files(
    registry: RunRegistry,
    run_dir: Path,
    manifest: Mapping,
    headline: Mapping[str, float],
    report_extra: Optional[Mapping] = None,
) -> None:
    save_json(run_dir / "manifest.json", _report_safe(manifest))
    report = {
        "run_id": manifest["run_id"],
        "kind": manifest["kind"],
        "algorithm": manifest.get("algorithm", ""),
        "metrics": dict(sorted(headline.items())),
    }
    if report_extra:
        report.update(_report_safe(report_extra))
    save_json(run_dir / "report.json", report)


def _trace_headline(trace: TrainingTrace) -> Dict[str, float]:
    out = {
        "duration_s": trace.total_time,
        "epochs": trace.total_epochs,
        "final_accuracy": trace.final_accuracy,
        "best_accuracy": trace.best_accuracy,
    }
    if trace.points:
        out["updates"] = float(trace.points[-1].updates)
        out["samples"] = float(trace.points[-1].samples)
    membership = getattr(trace, "metadata", {}).get("membership")
    if isinstance(membership, Mapping):
        # Elastic runs carry the event count + final device set even when
        # no telemetry recorder was attached.
        out["n_membership_events"] = float(membership.get("n_events", 0))
        out["final_devices"] = float(membership.get("final_devices", 0))
    return {k: v for k, v in out.items() if math.isfinite(v)}


def record_train_run(
    registry: RunRegistry,
    trace: TrainingTrace,
    *,
    telemetry: Optional[Telemetry] = None,
    telemetry_path: Optional[str] = None,
    telemetry_run: int = 0,
    spec=None,
    tags: Sequence[str] = (),
    extra: Optional[Mapping] = None,
) -> str:
    """Register one training run; returns its run_id.

    The trace saves under the run directory as ``train_trace.{json,npz}``
    and per-checkpoint samples stream to ``metrics.jsonl``. A live
    ``telemetry`` recorder archives to ``telemetry.jsonl`` in the run
    directory; alternatively ``telemetry_path`` (registry-relative) points
    at an archive shared with sibling runs of a grid, with
    ``telemetry_run`` naming this run's index inside it.
    """
    seed = int(trace.metadata.get("init_seed", 0) or 0)
    run_id = new_run_id(
        "train", algorithm=trace.algorithm, dataset=trace.dataset, seed=seed
    )
    run_dir = registry.run_dir(run_id)
    run_dir.mkdir(parents=True, exist_ok=True)

    save_trace(trace, run_dir / "train_trace")
    with open(run_dir / "metrics.jsonl", "w", encoding="utf-8") as fh:
        for point in trace.points:
            fh.write(
                json.dumps(
                    {
                        "time_s": point.time_s,
                        "epochs": point.epochs,
                        "updates": point.updates,
                        "samples": point.samples,
                        "accuracy": _finite_or_none(point.accuracy),
                        "loss": _finite_or_none(point.loss),
                    },
                    sort_keys=True,
                    allow_nan=False,
                )
                + "\n"
            )

    trace_rel = telemetry_path or ""
    headline: Dict[str, float] = {}
    if telemetry is not None:
        if telemetry_path is None:
            write_jsonl(telemetry, run_dir / TELEMETRY_NAME)
            trace_rel = f"{RUNS_DIRNAME}/{run_id}/{TELEMETRY_NAME}"
        from repro.telemetry.analyze import headline_metrics
        from repro.telemetry.trace_data import TraceData

        data = TraceData.from_telemetry(telemetry)
        if 0 <= telemetry_run < len(data.runs):
            headline.update(headline_metrics(data.runs[telemetry_run]))
    headline.update(_trace_headline(trace))

    manifest = build_manifest(
        "train",
        run_id,
        algorithm=trace.algorithm,
        dataset=trace.dataset,
        n_devices=trace.n_devices,
        seed=seed,
        sim_duration_s=trace.total_time,
        trace_path=trace_rel,
        spec=spec,
        extra=dict(
            {"trace_run_index": telemetry_run} if trace_rel else {},
            **dict(extra or {}),
        ),
    )
    _write_run_files(registry, run_dir, manifest, headline)
    registry.register(manifest, headline, tags=tags)
    return run_id


def record_serve_runs(
    registry: RunRegistry,
    results: Mapping[str, "object"],
    *,
    telemetry: Optional[Telemetry] = None,
    run_indices: Optional[Mapping[str, int]] = None,
    spec=None,
    tags: Sequence[str] = (),
    extra: Optional[Mapping] = None,
) -> List[str]:
    """Register one run per serving mode; returns the run_ids in order.

    ``results`` maps mode name -> :class:`~repro.serve.engine.ServeResult`.
    A shared ``telemetry`` recorder (the CLI serves every mode into one)
    archives once — into the first run's directory — and later runs index
    that archive with their own ``trace_run_index``. ``run_indices``
    overrides the default enumeration order when serve calls and results
    don't line up one-to-one (e.g. the tenants path registers only the
    contended run, which is telemetry run 1).
    """
    run_ids: List[str] = []
    archive_rel = ""
    for i, (mode, result) in enumerate(results.items()):
        run_index = run_indices[mode] if run_indices else i
        run_id = new_run_id("serve", algorithm=f"serve-{mode}")
        run_dir = registry.run_dir(run_id)
        run_dir.mkdir(parents=True, exist_ok=True)

        if telemetry is not None and not archive_rel:
            write_jsonl(telemetry, run_dir / TELEMETRY_NAME)
            archive_rel = f"{RUNS_DIRNAME}/{run_id}/{TELEMETRY_NAME}"

        headline = result.headline_metrics()
        report = result.as_dict()
        with open(run_dir / "metrics.jsonl", "w", encoding="utf-8") as fh:
            for device, count in sorted(result.per_device.items()):
                fh.write(
                    json.dumps(
                        {"device": device, "requests": count},
                        sort_keys=True,
                    )
                    + "\n"
                )

        manifest = build_manifest(
            "serve",
            run_id,
            algorithm=f"serve-{mode}",
            n_devices=len(result.per_device),
            sim_duration_s=float(result.report.makespan_s),
            trace_path=archive_rel,
            spec=spec,
            extra=dict(
                {"mode": mode, "trace_run_index": run_index},
                **dict(extra or {}),
            ),
        )
        _write_run_files(
            registry, run_dir, manifest, headline, report_extra={"serve": report}
        )
        registry.register(manifest, headline, tags=tags)
        run_ids.append(run_id)
    return run_ids


def record_bench_run(
    registry: RunRegistry,
    name: str,
    results: Mapping,
    *,
    status: str = "green",
    tags: Sequence[str] = (),
    extra: Optional[Mapping] = None,
) -> str:
    """Register one bench invocation (tagged ``bench:<name>``).

    ``results`` is the bench's results dict; its numeric leaves flatten
    into the metrics table (``sections/gather/speedup`` style), making the
    index the history the CI gates take their baselines from. Pass
    ``status="red"`` when the gate failed so the run is excluded from
    future baselines.
    """
    run_id = new_run_id("bench", algorithm=name)
    run_dir = registry.run_dir(run_id)
    run_dir.mkdir(parents=True, exist_ok=True)
    manifest = build_manifest(
        "bench", run_id, algorithm=name, extra=extra
    )
    metrics = flatten_metrics(results)
    _write_run_files(
        registry, run_dir, manifest, metrics, report_extra={"results": results}
    )
    registry.register(
        manifest, metrics, status=status, tags=(f"bench:{name}", *tags)
    )
    return run_id


def record_experiment(
    registry: RunRegistry,
    results: Mapping,
    *,
    spec=None,
    telemetry: Optional[Telemetry] = None,
    tags: Sequence[str] = (),
) -> List[str]:
    """Register every ``(algorithm, n_gpus) -> trace`` run of a grid.

    The shared ``telemetry`` recorder (one run per grid entry, in grid
    order) archives into the first run's directory; siblings point there.
    """
    run_ids: List[str] = []
    archive_rel: Optional[str] = None
    for i, ((algorithm, n_gpus), trace) in enumerate(results.items()):
        run_id = record_train_run(
            registry,
            trace,
            telemetry=telemetry,
            telemetry_path=archive_rel,
            telemetry_run=i,
            spec=spec,
            tags=tags,
            extra={"grid_index": i},
        )
        if telemetry is not None and archive_rel is None:
            archive_rel = f"{RUNS_DIRNAME}/{run_id}/{TELEMETRY_NAME}"
        run_ids.append(run_id)
    return run_ids


def _finite_or_none(value: float) -> Optional[float]:
    value = float(value)
    return value if math.isfinite(value) else None
