"""History-based regression baselines for the bench gates.

The checked-in ``BENCH_*.json`` files pin a single hand-refreshed
expectation; the registry gives the gates the fleet's actual trajectory
instead. :func:`history_baseline` takes the **median of the last
``window`` green runs** of a metric (robust to one outlier run in either
direction) and falls back to the checked-in value whenever the index has
fewer than ``min_runs`` prior greens — so a fresh clone, a wiped CI cache,
or a brand-new bench section gates exactly as before.

Red runs never enter the window: a run whose own gate failed would
otherwise ratchet the baseline down and mask the regression it detected.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.registry.index import RunRegistry

__all__ = ["BASELINE_WINDOW", "BaselineResolution", "history_baseline"]

#: Green runs per bench tag that form the rolling baseline window; ``gc``
#: protects this many newest greens per ``bench:<name>`` tag.
BASELINE_WINDOW = 5


@dataclass(frozen=True)
class BaselineResolution:
    """Where a gate's expected value came from."""

    #: Metric name as indexed (e.g. ``sections/gather/speedup``).
    metric: str
    #: The resolved expectation (``None`` when neither history nor a
    #: fallback could supply one).
    value: Optional[float]
    #: ``"history"`` (median of the window) or ``"fallback"``.
    source: str
    #: Green runs that contributed (0 for fallback).
    n: int
    #: The contributing run_ids, oldest first.
    run_ids: Tuple[str, ...] = ()

    def describe(self) -> str:
        """One line for gate output: where the number came from."""
        if self.source == "history":
            return (
                f"index history (median of {self.n} green run(s): "
                f"{', '.join(self.run_ids)})"
            )
        return "fallback (checked-in baseline)"


def history_baseline(
    registry: Optional[RunRegistry],
    metric: str,
    *,
    bench: Optional[str] = None,
    window: int = BASELINE_WINDOW,
    min_runs: int = 2,
    fallback: Optional[float] = None,
) -> BaselineResolution:
    """Resolve a gate's expected value for ``metric``.

    With a registry holding at least ``min_runs`` green runs of the metric
    (scoped to tag ``bench:<bench>`` when given), the expectation is the
    median of the newest ``window`` of them; otherwise ``fallback``. The
    current run must be registered *after* its gate runs, so a run never
    contributes to its own baseline.
    """
    if registry is not None:
        tag = f"bench:{bench}" if bench else None
        history: List[Tuple[str, float]] = registry.metric_history(
            metric, tag=tag, status="green", limit=window
        )
        if len(history) >= max(1, min_runs):
            return BaselineResolution(
                metric=metric,
                value=statistics.median(v for _, v in history),
                source="history",
                n=len(history),
                run_ids=tuple(run_id for run_id, _ in history),
            )
    return BaselineResolution(
        metric=metric, value=fallback, source="fallback", n=0
    )
