"""Cross-run observability: the per-run artifact layout + SQLite index.

The paper's claims are longitudinal — time-to-accuracy, adaptivity, and
tail-latency numbers only mean something *across* runs — so every train,
serve, and bench invocation can register itself here: a per-run directory
(``manifest.json`` with spec/config/git-state/sim-clock timestamps,
``report.json`` headline metrics, per-step ``metrics.jsonl``, and the
telemetry trace) indexed in one searchable SQLite database (``runs.db``)
with a stable run id, tags, and a flattened metrics table.

Three layers:

- :mod:`repro.registry.index` — :class:`RunRegistry`, the versioned SQLite
  schema (migrations applied on open), queries, and ``gc``;
- :mod:`repro.registry.record` — builders that turn a training trace, a
  :class:`~repro.serve.engine.ServeResult`, or a bench results dict into a
  registered run directory;
- :mod:`repro.registry.baseline` — history-based regression baselines
  (median of the last *N* green runs, checked-in ``BENCH_*.json`` as the
  seed/fallback) for the CI gates.

Surfaced on the CLI as ``repro runs ls/show/diff/history/gc`` plus
``--registry`` flags on ``repro train/serve/trace`` and the script benches.
"""

from repro.registry.baseline import (
    BASELINE_WINDOW,
    BaselineResolution,
    history_baseline,
)
from repro.registry.index import SCHEMA_VERSION, RunRecord, RunRegistry
from repro.registry.record import (
    default_registry,
    flatten_metrics,
    git_state,
    new_run_id,
    record_bench_run,
    record_experiment,
    record_serve_runs,
    record_train_run,
)

__all__ = [
    "BASELINE_WINDOW",
    "BaselineResolution",
    "RunRecord",
    "RunRegistry",
    "SCHEMA_VERSION",
    "default_registry",
    "flatten_metrics",
    "git_state",
    "history_baseline",
    "new_run_id",
    "record_bench_run",
    "record_experiment",
    "record_serve_runs",
    "record_train_run",
]
