"""The SQLite cross-run index: schema, migrations, queries, and gc.

One database file (``runs.db``) sits at the registry root next to the
per-run directories (``runs/<run_id>/``). Every row is a registered run;
the full manifest rides along as a JSON column so ``runs show`` needs no
directory read, while headline metrics are flattened into a queryable
``metrics`` table for history/baseline queries.

Schema versioning uses ``PRAGMA user_version`` and is applied on open, so
an index written by an older checkout upgrades in place:

- **v0** — fresh/empty database (no tables yet).
- **v1** — the initial layout: ``runs`` without a ``status`` column and no
  ``tags`` table (every run was implicitly green and untagged).
- **v2** (current) — ``runs.status`` (``green``/``red``, drives baseline
  eligibility) and the ``tags`` table (``bench:<name>``, ``baseline``,
  ``pinned``, ...).

Concurrency: every operation opens its own short-lived connection with a
busy timeout, and registration is a DELETE+INSERT of the run's rows inside
one transaction — two processes registering the same run_id are
last-writer-safe, and registering distinct runs never conflicts.
"""

from __future__ import annotations

import json
import math
import shutil
import sqlite3
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError, DataFormatError

__all__ = ["SCHEMA_VERSION", "DB_NAME", "RUNS_DIRNAME", "RunRecord", "RunRegistry"]

#: Current ``PRAGMA user_version``; bump alongside a migration entry.
SCHEMA_VERSION = 2

DB_NAME = "runs.db"
RUNS_DIRNAME = "runs"

#: Tags that unconditionally protect a run from ``gc``.
PROTECTED_TAGS = ("baseline", "pinned")


@dataclass
class RunRecord:
    """One indexed run: the ``runs`` row plus its tags and metrics."""

    run_id: str
    kind: str
    algorithm: str = ""
    dataset: str = ""
    n_devices: int = 0
    seed: int = 0
    status: str = "green"
    created_s: float = 0.0
    sim_duration_s: float = 0.0
    path: str = ""
    trace_path: str = ""
    git_commit: str = ""
    git_dirty: bool = False
    manifest: Dict = field(default_factory=dict)
    tags: Tuple[str, ...] = ()
    metrics: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict:
        return {
            "run_id": self.run_id,
            "kind": self.kind,
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "n_devices": self.n_devices,
            "seed": self.seed,
            "status": self.status,
            "created_s": self.created_s,
            "sim_duration_s": self.sim_duration_s,
            "path": self.path,
            "trace_path": self.trace_path,
            "git_commit": self.git_commit,
            "git_dirty": self.git_dirty,
            "tags": sorted(self.tags),
            "metrics": dict(sorted(self.metrics.items())),
            "manifest": self.manifest,
        }


def _create_v1(conn: sqlite3.Connection) -> None:
    """The v1 layout (kept verbatim so the v1→v2 migration is testable)."""
    conn.executescript(
        """
        CREATE TABLE IF NOT EXISTS runs (
            run_id TEXT PRIMARY KEY,
            kind TEXT NOT NULL,
            algorithm TEXT NOT NULL DEFAULT '',
            dataset TEXT NOT NULL DEFAULT '',
            n_devices INTEGER NOT NULL DEFAULT 0,
            seed INTEGER NOT NULL DEFAULT 0,
            created_s REAL NOT NULL DEFAULT 0.0,
            sim_duration_s REAL NOT NULL DEFAULT 0.0,
            path TEXT NOT NULL DEFAULT '',
            trace_path TEXT NOT NULL DEFAULT '',
            git_commit TEXT NOT NULL DEFAULT '',
            git_dirty INTEGER NOT NULL DEFAULT 0,
            manifest TEXT NOT NULL DEFAULT '{}'
        );
        CREATE TABLE IF NOT EXISTS metrics (
            run_id TEXT NOT NULL,
            name TEXT NOT NULL,
            value REAL NOT NULL,
            PRIMARY KEY (run_id, name)
        );
        CREATE INDEX IF NOT EXISTS idx_runs_kind ON runs (kind, created_s);
        CREATE INDEX IF NOT EXISTS idx_metrics_name ON metrics (name);
        """
    )


def _migrate_v1_to_v2(conn: sqlite3.Connection) -> None:
    """v2 adds ``runs.status`` and the ``tags`` table."""
    cols = [row[1] for row in conn.execute("PRAGMA table_info(runs)")]
    if "status" not in cols:
        conn.execute(
            "ALTER TABLE runs ADD COLUMN status TEXT NOT NULL DEFAULT 'green'"
        )
    conn.executescript(
        """
        CREATE TABLE IF NOT EXISTS tags (
            run_id TEXT NOT NULL,
            tag TEXT NOT NULL,
            PRIMARY KEY (run_id, tag)
        );
        CREATE INDEX IF NOT EXISTS idx_tags_tag ON tags (tag);
        """
    )


#: schema migrations, applied in order from the on-disk user_version.
_MIGRATIONS = (
    (1, _create_v1),
    (2, _migrate_v1_to_v2),
)


class RunRegistry:
    """Per-run artifact directories plus the SQLite cross-run index.

    ``root`` holds ``runs.db`` and ``runs/<run_id>/`` directories. Opening
    a registry applies any pending schema migrations; ``create=False``
    raises if the root has no index yet (used by read-only CLI verbs so a
    typo'd path fails loudly instead of minting an empty database).
    """

    def __init__(self, root, *, create: bool = True) -> None:
        self.root = Path(root)
        self.db_path = self.root / DB_NAME
        if not create and not self.db_path.exists():
            raise ConfigurationError(
                f"no run registry at {self.root} (missing {DB_NAME}); "
                f"register a run first or pass the right --registry"
            )
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / RUNS_DIRNAME).mkdir(exist_ok=True)
        with self._connect() as conn:
            self._migrate(conn)

    # -- connection / schema -------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.db_path, timeout=30.0)
        conn.row_factory = sqlite3.Row
        return conn

    @staticmethod
    def _migrate(conn: sqlite3.Connection) -> None:
        version = conn.execute("PRAGMA user_version").fetchone()[0]
        if version > SCHEMA_VERSION:
            raise DataFormatError(
                f"runs.db schema v{version} is newer than this checkout's "
                f"v{SCHEMA_VERSION}; upgrade the repo to read it"
            )
        for target, step in _MIGRATIONS:
            if version < target:
                step(conn)
                conn.execute(f"PRAGMA user_version = {target}")
                version = target
        conn.commit()

    def schema_version(self) -> int:
        with self._connect() as conn:
            return conn.execute("PRAGMA user_version").fetchone()[0]

    # -- paths ---------------------------------------------------------------

    def run_dir(self, run_id: str) -> Path:
        """The artifact directory for ``run_id`` (created by the caller)."""
        return self.root / RUNS_DIRNAME / run_id

    # -- write side ----------------------------------------------------------

    def register(
        self,
        manifest: Mapping,
        metrics: Optional[Mapping[str, float]] = None,
        *,
        status: str = "green",
        tags: Iterable[str] = (),
    ) -> str:
        """Index a run. ``manifest`` must carry ``run_id`` and ``kind``.

        Re-registering an existing ``run_id`` replaces its row, metrics,
        and tags atomically (last writer wins). Non-finite metric values
        are rejected — they would poison baseline medians downstream.
        """
        run_id = str(manifest.get("run_id", "")).strip()
        kind = str(manifest.get("kind", "")).strip()
        if not run_id or not kind:
            raise ConfigurationError(
                "manifest must carry non-empty 'run_id' and 'kind'"
            )
        if status not in ("green", "red"):
            raise ConfigurationError(
                f"run status must be 'green' or 'red', got {status!r}"
            )
        clean_metrics: Dict[str, float] = {}
        for name, value in dict(metrics or {}).items():
            value = float(value)
            if not math.isfinite(value):
                raise DataFormatError(
                    f"metric {name!r} for run {run_id} is non-finite ({value!r})"
                )
            clean_metrics[str(name)] = value
        tag_list = sorted({str(t) for t in tags if str(t)})
        manifest_json = json.dumps(
            dict(manifest), sort_keys=True, allow_nan=False, default=str
        )
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            conn.execute("DELETE FROM metrics WHERE run_id = ?", (run_id,))
            conn.execute("DELETE FROM tags WHERE run_id = ?", (run_id,))
            conn.execute(
                """
                INSERT OR REPLACE INTO runs (
                    run_id, kind, algorithm, dataset, n_devices, seed,
                    status, created_s, sim_duration_s, path, trace_path,
                    git_commit, git_dirty, manifest
                ) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                """,
                (
                    run_id,
                    kind,
                    str(manifest.get("algorithm", "")),
                    str(manifest.get("dataset", "")),
                    int(manifest.get("n_devices", 0) or 0),
                    int(manifest.get("seed", 0) or 0),
                    status,
                    float(manifest.get("created_s", 0.0) or 0.0),
                    float(manifest.get("sim_duration_s", 0.0) or 0.0),
                    str(manifest.get("path", "")),
                    str(manifest.get("trace_path", "")),
                    str(manifest.get("git_commit", "")),
                    1 if manifest.get("git_dirty") else 0,
                    manifest_json,
                ),
            )
            conn.executemany(
                "INSERT INTO metrics (run_id, name, value) VALUES (?, ?, ?)",
                [(run_id, n, v) for n, v in sorted(clean_metrics.items())],
            )
            conn.executemany(
                "INSERT INTO tags (run_id, tag) VALUES (?, ?)",
                [(run_id, t) for t in tag_list],
            )
            conn.commit()
        return run_id

    def set_status(self, run_id: str, status: str) -> None:
        if status not in ("green", "red"):
            raise ConfigurationError(
                f"run status must be 'green' or 'red', got {status!r}"
            )
        with self._connect() as conn:
            cur = conn.execute(
                "UPDATE runs SET status = ? WHERE run_id = ?", (status, run_id)
            )
            conn.commit()
        if cur.rowcount == 0:
            raise ConfigurationError(f"unknown run_id {run_id!r}")

    def add_tags(self, run_id: str, tags: Iterable[str]) -> None:
        if not self.contains(run_id):
            raise ConfigurationError(f"unknown run_id {run_id!r}")
        with self._connect() as conn:
            conn.executemany(
                "INSERT OR IGNORE INTO tags (run_id, tag) VALUES (?, ?)",
                [(run_id, str(t)) for t in tags if str(t)],
            )
            conn.commit()

    # -- read side -----------------------------------------------------------

    def contains(self, run_id: str) -> bool:
        with self._connect() as conn:
            row = conn.execute(
                "SELECT 1 FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
        return row is not None

    def _record(self, conn: sqlite3.Connection, row: sqlite3.Row) -> RunRecord:
        run_id = row["run_id"]
        tags = tuple(
            r[0]
            for r in conn.execute(
                "SELECT tag FROM tags WHERE run_id = ? ORDER BY tag", (run_id,)
            )
        )
        metrics = {
            r[0]: r[1]
            for r in conn.execute(
                "SELECT name, value FROM metrics WHERE run_id = ? ORDER BY name",
                (run_id,),
            )
        }
        try:
            manifest = json.loads(row["manifest"])
        except (TypeError, ValueError):
            manifest = {}
        return RunRecord(
            run_id=run_id,
            kind=row["kind"],
            algorithm=row["algorithm"],
            dataset=row["dataset"],
            n_devices=row["n_devices"],
            seed=row["seed"],
            status=row["status"],
            created_s=row["created_s"],
            sim_duration_s=row["sim_duration_s"],
            path=row["path"],
            trace_path=row["trace_path"],
            git_commit=row["git_commit"],
            git_dirty=bool(row["git_dirty"]),
            manifest=manifest,
            tags=tags,
            metrics=metrics,
        )

    def get(self, run_id: str) -> RunRecord:
        with self._connect() as conn:
            row = conn.execute(
                "SELECT * FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
            if row is None:
                raise ConfigurationError(
                    f"unknown run_id {run_id!r} in registry {self.root}"
                )
            return self._record(conn, row)

    def list(
        self,
        *,
        kind: Optional[str] = None,
        tag: Optional[str] = None,
        status: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[RunRecord]:
        """Indexed runs, newest-first, optionally filtered."""
        sql = "SELECT runs.* FROM runs"
        where, params = [], []
        if tag is not None:
            sql += " JOIN tags ON tags.run_id = runs.run_id"
            where.append("tags.tag = ?")
            params.append(tag)
        if kind is not None:
            where.append("runs.kind = ?")
            params.append(kind)
        if status is not None:
            where.append("runs.status = ?")
            params.append(status)
        if where:
            sql += " WHERE " + " AND ".join(where)
        sql += " ORDER BY runs.created_s DESC, runs.run_id DESC"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        with self._connect() as conn:
            rows = conn.execute(sql, params).fetchall()
            return [self._record(conn, row) for row in rows]

    def metric_history(
        self,
        name: str,
        *,
        kind: Optional[str] = None,
        tag: Optional[str] = None,
        status: Optional[str] = "green",
        limit: Optional[int] = None,
    ) -> List[Tuple[str, float]]:
        """``(run_id, value)`` pairs for metric ``name``, oldest → newest.

        Defaults to green runs only — red runs are excluded from baselines.
        ``limit`` keeps the *newest* ``limit`` entries (still returned in
        chronological order, ready for sparklines and medians).
        """
        sql = (
            "SELECT runs.run_id, metrics.value, runs.created_s FROM metrics"
            " JOIN runs ON runs.run_id = metrics.run_id"
        )
        where, params = ["metrics.name = ?"], [name]
        if tag is not None:
            sql += " JOIN tags ON tags.run_id = runs.run_id"
            where.append("tags.tag = ?")
            params.append(tag)
        if kind is not None:
            where.append("runs.kind = ?")
            params.append(kind)
        if status is not None:
            where.append("runs.status = ?")
            params.append(status)
        sql += " WHERE " + " AND ".join(where)
        sql += " ORDER BY runs.created_s DESC, runs.run_id DESC"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        with self._connect() as conn:
            rows = conn.execute(sql, params).fetchall()
        return [(row[0], row[1]) for row in reversed(rows)]

    def metric_names(
        self, *, kind: Optional[str] = None, tag: Optional[str] = None
    ) -> List[str]:
        sql = "SELECT DISTINCT metrics.name FROM metrics"
        where, params = [], []
        if kind is not None:
            sql += " JOIN runs ON runs.run_id = metrics.run_id"
            where.append("runs.kind = ?")
            params.append(kind)
        if tag is not None:
            sql += " JOIN tags ON tags.run_id = metrics.run_id"
            where.append("tags.tag = ?")
            params.append(tag)
        if where:
            sql += " WHERE " + " AND ".join(where)
        sql += " ORDER BY metrics.name"
        with self._connect() as conn:
            return [row[0] for row in conn.execute(sql, params)]

    def resolve_trace(self, run_id: str) -> Path:
        """Absolute path of the telemetry trace indexed for ``run_id``."""
        record = self.get(run_id)
        if not record.trace_path:
            raise ConfigurationError(
                f"run {run_id} has no telemetry trace indexed"
            )
        path = Path(record.trace_path)
        if not path.is_absolute():
            path = self.root / path
        if not path.exists():
            raise DataFormatError(
                f"run {run_id} points at missing trace {path}"
            )
        return path

    # -- gc ------------------------------------------------------------------

    def _trace_owner(self, trace_path: str) -> Optional[str]:
        """The run_id whose directory holds ``trace_path``, if any.

        Grid experiments and multi-mode serve registrations archive one
        shared telemetry file into the *first* sibling's directory; every
        other sibling's ``trace_path`` points into it.
        """
        if not trace_path:
            return None
        path = Path(trace_path)
        if not path.is_absolute():
            path = self.root / path
        try:
            rel = path.resolve().relative_to(
                (self.root / RUNS_DIRNAME).resolve()
            )
        except ValueError:
            return None
        return rel.parts[0] if rel.parts else None

    def gc(
        self,
        *,
        keep: int = 20,
        dry_run: bool = False,
        baseline_window: Optional[int] = None,
    ) -> List[str]:
        """Delete old runs, keeping the newest ``keep`` per kind.

        Never deletes a run that could be referenced as a CI baseline:
        runs tagged ``baseline`` or ``pinned``, and — per ``bench:<name>``
        tag — the newest ``baseline_window`` *green* runs of every indexed
        metric (section-filtered bench invocations mean the runs carrying
        one metric's history can be older than the tag's newest runs; the
        gates take their median per metric, so protection matches). A run
        whose directory holds the telemetry archive a surviving sibling's
        ``trace_path`` points into survives too. Returns the deleted (or,
        with ``dry_run``, deletable) run_ids, oldest first.
        """
        if keep < 0:
            raise ConfigurationError(f"gc keep must be >= 0, got {keep}")
        if baseline_window is None:
            from repro.registry.baseline import BASELINE_WINDOW

            baseline_window = BASELINE_WINDOW
        protected = set()
        for tag in PROTECTED_TAGS:
            protected.update(r.run_id for r in self.list(tag=tag))
        with self._connect() as conn:
            bench_tags = [
                row[0]
                for row in conn.execute(
                    "SELECT DISTINCT tag FROM tags WHERE tag LIKE 'bench:%'"
                )
            ]
        for tag in bench_tags:
            recent = self.list(tag=tag, status="green", limit=baseline_window)
            protected.update(r.run_id for r in recent)
            for name in self.metric_names(tag=tag):
                protected.update(
                    run_id
                    for run_id, _ in self.metric_history(
                        name, tag=tag, status="green", limit=baseline_window
                    )
                )

        all_records = self.list()
        doomed: List[RunRecord] = []
        by_kind: Dict[str, List[RunRecord]] = {}
        for record in all_records:
            by_kind.setdefault(record.kind, []).append(record)
        for records in by_kind.values():  # newest-first within each kind
            for record in records[keep:]:
                if record.run_id not in protected:
                    doomed.append(record)

        # A survivor's telemetry archive may live in a doomed sibling's
        # directory (shared-archive registration stores it once, in the
        # first sibling); un-doom archive owners until stable — a rescued
        # run's own trace_path may chain to another doomed owner.
        doomed_ids = {r.run_id for r in doomed}
        changed = True
        while changed:
            changed = False
            for record in all_records:
                if record.run_id in doomed_ids:
                    continue
                owner = self._trace_owner(record.trace_path)
                if owner and owner != record.run_id and owner in doomed_ids:
                    doomed_ids.discard(owner)
                    changed = True
        doomed = [r for r in doomed if r.run_id in doomed_ids]
        doomed.sort(key=lambda r: (r.created_s, r.run_id))
        if dry_run:
            return [r.run_id for r in doomed]
        with self._connect() as conn:
            for record in doomed:
                conn.execute(
                    "DELETE FROM metrics WHERE run_id = ?", (record.run_id,)
                )
                conn.execute(
                    "DELETE FROM tags WHERE run_id = ?", (record.run_id,)
                )
                conn.execute(
                    "DELETE FROM runs WHERE run_id = ?", (record.run_id,)
                )
            conn.commit()
        for record in doomed:
            run_dir = self.run_dir(record.run_id)
            if run_dir.is_dir():
                shutil.rmtree(run_dir, ignore_errors=True)
        return [r.run_id for r in doomed]
