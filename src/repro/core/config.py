"""Hyperparameter configuration for Adaptive SGD (and its derivations).

§V-A fixes how every knob is derived, and this module encodes those rules so
experiments only choose ``b_max`` and the base learning rate:

- "The initial batch size — set to ``b_max`` — is chosen such that the GPU
  memory (and utilization) are maximized."
- "``b_min`` is set to a value 8 times smaller than ``b_max``" —
  :attr:`AdaptiveSGDConfig.b_min` defaults to ``b_max // 8``.
- "the batch size scaling parameter ``β`` to half of ``b_min``".
- "The learning rates for the other batch sizes are determined based on the
  linear scaling rule" — :func:`linear_scaled_lr`.
- Mega-batch: "the size of 100 batches" (of ``b_max``).
- Merge constants: ``γ = 0.9`` (momentum), ``δ = 0.1`` (perturbation factor),
  ``pert_thr = 0.1`` (L2-norm-per-parameter threshold).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.utils.validation import check_positive, check_probability

__all__ = ["AdaptiveSGDConfig", "linear_scaled_lr"]


def linear_scaled_lr(base_lr: float, base_batch: int, batch: int) -> float:
    """Linear LR scaling rule [Goyal et al.]: ``lr ∝ batch size``."""
    check_positive("base_lr", base_lr)
    check_positive("base_batch", base_batch)
    check_positive("batch", batch)
    return base_lr * (batch / base_batch)


@dataclass
class AdaptiveSGDConfig:
    """Full hyperparameter set of the Adaptive SGD algorithm.

    Only ``b_max`` and ``base_lr`` are mandatory; everything else follows
    the paper's derivation rules when left at ``None``/default.
    """

    #: Maximum (and initial) per-GPU batch size — sized to fill GPU memory.
    b_max: int = 256
    #: Learning rate tuned for ``b_max`` (grid powers of 10 in the paper).
    base_lr: float = 0.1
    #: Minimum batch size; default ``b_max // 8`` (paper rule).
    b_min: Optional[int] = None
    #: Batch-size scaling step; default ``b_min / 2`` (paper rule).
    beta: Optional[float] = None
    #: Mega-batch expressed in batches of ``b_max``; paper uses 100.
    mega_batch_batches: int = 100
    #: Merge momentum γ (paper: 0.9 "according to the literature").
    gamma: float = 0.9
    #: Perturbation factor δ (paper default 0.1).
    delta: float = 0.1
    #: Regularization threshold on L2-norm-per-parameter (paper default 0.1).
    pert_thr: float = 0.1
    #: Enable Algorithm 1 (ablations switch this off).
    enable_batch_scaling: bool = True
    #: Enable Algorithm 2's perturbation (ablations switch this off).
    enable_perturbation: bool = True
    #: Renormalize the perturbed weights back to sum 1. The paper-literal
    #: pseudocode leaves them denormalized and relies on the regularization
    #: gate to bound the impact; at this reproduction's small model
    #: dimensionality that gate never closes, so the inflation compounds —
    #: see :func:`repro.core.merging.compute_merge_weights`. Default True;
    #: set False for the paper-literal behavior (ablated in the benches).
    renormalize_perturbation: bool = True
    #: Merge-weight rule: "paper" (u_i, or b_i when update counts tie),
    #: "updates_times_batch" (the §III-B late-stage alternative), or
    #: "uniform" (plain elastic averaging — used for ablation).
    merge_weighting: str = "paper"

    def __post_init__(self) -> None:
        check_positive("b_max", self.b_max)
        check_positive("base_lr", self.base_lr)
        check_positive("mega_batch_batches", self.mega_batch_batches)
        check_probability("gamma", self.gamma)
        check_probability("delta", self.delta)
        check_positive("pert_thr", self.pert_thr)
        if self.b_min is None:
            self.b_min = max(1, self.b_max // 8)
        if self.b_min < 1 or self.b_min > self.b_max:
            raise ConfigurationError(
                f"b_min must be in [1, b_max={self.b_max}], got {self.b_min}"
            )
        if self.beta is None:
            self.beta = max(1.0, self.b_min / 2.0)
        if self.beta <= 0:
            raise ConfigurationError(f"beta must be > 0, got {self.beta}")
        if self.merge_weighting not in ("paper", "updates_times_batch", "uniform"):
            raise ConfigurationError(
                f"unknown merge_weighting {self.merge_weighting!r}"
            )

    @property
    def mega_batch_size(self) -> int:
        """Mega-batch sample budget: ``mega_batch_batches × b_max``."""
        return self.mega_batch_batches * self.b_max

    def lr_for_batch(self, batch: int) -> float:
        """Learning rate for an arbitrary batch size via linear scaling."""
        return linear_scaled_lr(self.base_lr, self.b_max, batch)

    @property
    def expected_updates_per_gpu(self) -> float:
        """Steady-state updates per GPU per mega-batch if all run at b_max."""
        return float(self.mega_batch_batches)

    @classmethod
    def for_server(
        cls,
        server,
        layer_dims: Sequence[int],
        avg_nnz_per_sample: float,
        *,
        base_lr: float = 0.1,
        utilization: float = 0.9,
        cap: Optional[int] = None,
        **overrides,
    ) -> "AdaptiveSGDConfig":
        """Derive ``b_max`` from device memory, as the paper does (§V-A).

        "The initial batch size — set to b_max — is chosen such that the GPU
        memory (and utilization) are maximized." The memory-limited batch is
        computed per device (:meth:`repro.gpu.device.VirtualGPU
        .max_batch_size`) and the *smallest* across the server is taken so
        every GPU can hold a ``b_max`` batch; ``utilization`` leaves
        headroom. For models far smaller than device memory the limit is
        astronomically large — pass ``cap`` (e.g. a fraction of the training
        set) to bound it. Everything else follows the standard derivation
        rules unless overridden.
        """
        if not (0.0 < utilization <= 1.0):
            raise ConfigurationError(
                f"utilization must be in (0, 1], got {utilization}"
            )
        dims = tuple(int(d) for d in layer_dims)
        n_params = sum(
            dims[i] * dims[i + 1] + dims[i + 1] for i in range(len(dims) - 1)
        )
        model_bytes = 4 * n_params
        per_gpu = [
            gpu.max_batch_size(dims, model_bytes, avg_nnz_per_sample)
            for gpu in server.gpus
        ]
        b_max = max(1, int(min(per_gpu) * utilization))
        if cap is not None:
            b_max = min(b_max, int(cap))
        return cls(b_max=b_max, base_lr=base_lr, **overrides)
