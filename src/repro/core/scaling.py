"""Algorithm 1 — Batch Size Scaling.

Executed at every mega-batch boundary. Given each GPU's number of model
updates ``u_i`` during the last mega-batch, the batch size of every GPU that
deviates from the mean update count ``µ̃`` is moved linearly toward parity:

- faster GPUs (``u_i > µ̃``) get **larger** batches:
  ``b_i ← b_i + β (u_i − µ̃)`` — as long as the result stays ≤ ``b_max``;
- slower GPUs (``u_i < µ̃``) get **smaller** batches:
  ``b_i ← b_i − β (µ̃ − u_i)`` — as long as the result stays ≥ ``b_min``;
- each accepted change rescales that GPU's learning rate by the **linear
  scaling rule**: ``lr_i ← lr_i · b_new / b_old``.

The goal is a steady state where every GPU performs the same number of
replica updates per mega-batch, eliminating replica staleness (§III-A).

Implementation note: the paper's update is real-valued; batches are integer
sample counts. We evaluate the bound checks on the exact real value (as the
pseudocode does) and round the accepted value to the nearest integer, using
the *realized* integer ratio in the learning-rate update so the linear
scaling rule holds exactly for the batch size actually used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "ScalingDecision",
    "scale_batch_sizes",
    "MembershipRescale",
    "rescale_for_membership",
]


@dataclass(frozen=True)
class ScalingDecision:
    """Outcome of one Algorithm-1 invocation."""

    batch_sizes: Tuple[int, ...]
    learning_rates: Tuple[float, ...]
    #: Per-GPU flag: did this GPU's batch size change?
    changed: Tuple[bool, ...]
    #: Mean update count µ̃ the decision was based on.
    mean_updates: float

    @property
    def any_changed(self) -> bool:
        """Whether Algorithm 1 modified any GPU's batch size."""
        return any(self.changed)


def scale_batch_sizes(
    batch_sizes: Sequence[int],
    learning_rates: Sequence[float],
    updates: Sequence[int],
    *,
    b_min: int,
    b_max: int,
    beta: float,
) -> ScalingDecision:
    """Run Algorithm 1 and return the new per-GPU batch sizes and LRs.

    Parameters mirror the pseudocode: current ``b_i``/``lr_i``, the update
    counts ``u_i`` from the finished mega-batch, the bounds, and ``β``.
    """
    n = len(batch_sizes)
    if n == 0:
        raise ConfigurationError("scale_batch_sizes needs at least one GPU")
    if not (len(learning_rates) == len(updates) == n):
        raise ConfigurationError(
            f"length mismatch: {n} batch sizes, {len(learning_rates)} LRs, "
            f"{len(updates)} update counts"
        )
    if not (1 <= b_min <= b_max):
        raise ConfigurationError(f"need 1 <= b_min <= b_max, got [{b_min}, {b_max}]")
    if beta <= 0:
        raise ConfigurationError(f"beta must be > 0, got {beta}")
    for i, (b, lr, u) in enumerate(zip(batch_sizes, learning_rates, updates)):
        if not (b_min <= b <= b_max):
            raise ConfigurationError(
                f"GPU {i}: batch size {b} outside [{b_min}, {b_max}]"
            )
        if lr <= 0:
            raise ConfigurationError(f"GPU {i}: learning rate {lr} must be > 0")
        if u < 0:
            raise ConfigurationError(f"GPU {i}: update count {u} must be >= 0")

    # Line 1: average model updates across GPUs.
    mu = float(np.mean(np.asarray(updates, dtype=np.float64)))

    new_b: List[int] = []
    new_lr: List[float] = []
    changed: List[bool] = []
    for b, lr, u in zip(batch_sizes, learning_rates, updates):
        proposal = None
        if u > mu and b + beta * (u - mu) <= b_max:
            proposal = b + beta * (u - mu)          # lines 3-5
        elif u < mu and b - beta * (mu - u) >= b_min:
            proposal = b - beta * (mu - u)          # lines 6-8
        if proposal is None:
            new_b.append(int(b))
            new_lr.append(float(lr))
            changed.append(False)
            continue
        b_new = int(round(proposal))
        # Rounding must not escape the bounds the check was made against.
        b_new = min(max(b_new, b_min), b_max)
        if b_new == b:
            new_b.append(int(b))
            new_lr.append(float(lr))
            changed.append(False)
            continue
        new_b.append(b_new)
        new_lr.append(float(lr) * (b_new / b))      # linear scaling rule
        changed.append(True)
    return ScalingDecision(
        batch_sizes=tuple(new_b),
        learning_rates=tuple(new_lr),
        changed=tuple(changed),
        mean_updates=mu,
    )


@dataclass(frozen=True)
class MembershipRescale:
    """Outcome of one Dynamic-Mini-batch membership rescale.

    ``batch_sizes`` / ``learning_rates`` are the surviving devices' new
    controls (same order as the inputs). ``join_batch_size`` /
    ``join_learning_rate`` are the controls a joining replica starts with
    (meaningful only when ``n_joining > 0`` was requested).
    """

    batch_sizes: Tuple[int, ...]
    learning_rates: Tuple[float, ...]
    join_batch_size: int
    join_learning_rate: float
    #: Whether any surviving device's batch size actually moved.
    changed: bool


def rescale_for_membership(
    batch_sizes: Sequence[int],
    learning_rates: Sequence[float],
    *,
    n_before: int,
    n_joining: int = 0,
    b_min: int,
    b_max: int,
    join_ramp: float = 0.5,
) -> MembershipRescale:
    """Dynamic-Mini-batch rescale on a membership change (arXiv/1904.12043).

    When the active device set changes from ``n_before`` devices to
    ``len(batch_sizes) + n_joining``, the run continues instead of
    restarting: each *surviving* device's batch size is scaled by
    ``n_before / n_after`` (keeping the cluster's aggregate mega-batch
    contribution roughly constant while preserving the per-device ratios
    Algorithm 1 has adapted), with the learning rate following the linear
    scaling rule on the *realized* integer ratio — exactly as
    :func:`scale_batch_sizes` does.

    A *joining* replica warm-starts from the global model and ramps: it
    enters at ``join_ramp`` of the survivors' mean rescaled batch size
    (clamped to ``[b_min, b_max]``), with its learning rate linearly scaled
    from the survivors' mean. Algorithm 1 then grows it toward parity over
    subsequent mega-batches — the smooth re-entry the Dynamic-Mini-batch
    paper prescribes in place of a cold restart.
    """
    n_survivors = len(batch_sizes)
    if n_survivors == 0:
        raise ConfigurationError("membership rescale needs >= 1 surviving device")
    if len(learning_rates) != n_survivors:
        raise ConfigurationError(
            f"length mismatch: {n_survivors} batch sizes, "
            f"{len(learning_rates)} learning rates"
        )
    if n_before < 1:
        raise ConfigurationError(f"n_before must be >= 1, got {n_before}")
    if n_joining < 0:
        raise ConfigurationError(f"n_joining must be >= 0, got {n_joining}")
    if not (1 <= b_min <= b_max):
        raise ConfigurationError(f"need 1 <= b_min <= b_max, got [{b_min}, {b_max}]")
    if not (0.0 < join_ramp <= 1.0):
        raise ConfigurationError(f"join_ramp must be in (0, 1], got {join_ramp}")
    for i, (b, lr) in enumerate(zip(batch_sizes, learning_rates)):
        if not (b_min <= b <= b_max):
            raise ConfigurationError(
                f"survivor {i}: batch size {b} outside [{b_min}, {b_max}]"
            )
        if lr <= 0:
            raise ConfigurationError(f"survivor {i}: learning rate {lr} must be > 0")

    n_after = n_survivors + n_joining
    ratio = n_before / n_after
    new_b: List[int] = []
    new_lr: List[float] = []
    changed = False
    for b, lr in zip(batch_sizes, learning_rates):
        b_new = min(max(int(round(b * ratio)), b_min), b_max)
        if b_new == b:
            new_b.append(int(b))
            new_lr.append(float(lr))
            continue
        new_b.append(b_new)
        new_lr.append(float(lr) * (b_new / b))      # linear scaling rule
        changed = True

    target = float(np.mean(np.asarray(new_b, dtype=np.float64)))
    join_b = min(max(int(round(join_ramp * target)), b_min), b_max)
    mean_lr = float(np.mean(np.asarray(new_lr, dtype=np.float64)))
    join_lr = mean_lr * (join_b / target) if target > 0 else mean_lr
    return MembershipRescale(
        batch_sizes=tuple(new_b),
        learning_rates=tuple(new_lr),
        join_batch_size=join_b,
        join_learning_rate=float(join_lr),
        changed=changed,
    )
