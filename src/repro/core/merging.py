"""Algorithm 2 — Normalized Model Merging.

At each mega-batch boundary the global model is rebuilt from the replicas:

1. **Normalization weights** (lines 1-3): if every GPU performed the same
   number of updates, weight replicas by batch size — larger batches give
   more accurate gradients; otherwise weight by update count — replicas that
   advanced further carry more signal (warmup-like wide exploration).
2. **Perturbation** (lines 4-7): when *all* replicas are well-regularized
   (L2-norm per parameter below ``pert_thr``), boost the most-updated
   replica's weight by ``(1+δ)`` and damp the least-updated by ``(1−δ)``.
   This deliberately denormalizes the weights; the regularization gate
   bounds the resulting amplification.
3. **Momentum update** (lines 8-9): ``w' = Σ αᵢ wᵢ + γ (w − w_p)``; the
   previous global model enters through the momentum difference term.

Tie-breaking (not specified by the pseudocode): ``argmax``/``argmin`` take
the first maximal and the *last* minimal index, so when several replicas tie
the perturbation never boosts and damps the same replica (which would apply
a spurious ``(1−δ²)`` shrink); with equal weights the +δ/−δ pair then keeps
the weight sum exactly 1. With a single GPU there is no pair to perturb and
the step is skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, ModelStateError
from repro.sparse.model_state import ModelState, weighted_average

__all__ = ["MergeWeights", "MergeResult", "compute_merge_weights", "merge_models"]


@dataclass(frozen=True)
class MergeWeights:
    """Normalized (and possibly perturbed) per-replica weights."""

    alphas: Tuple[float, ...]
    #: Which normalization branch ran: "batch_size" (equal updates) or "updates".
    branch: str
    #: Whether the perturbation step fired (Figure 6b's quantity).
    perturbed: bool
    #: Index whose weight was boosted (None when not perturbed).
    boosted: Optional[int] = None
    #: Index whose weight was damped (None when not perturbed).
    damped: Optional[int] = None


@dataclass
class MergeResult:
    """Outcome of one Algorithm-2 invocation."""

    global_model: ModelState
    weights: MergeWeights
    #: Max replica L2-norm-per-parameter observed (regularization measure).
    max_l2_per_param: float


def compute_merge_weights(
    batch_sizes: Sequence[int],
    updates: Sequence[int],
    replica_l2_per_param: Sequence[float],
    *,
    pert_thr: float,
    delta: float,
    enable_perturbation: bool = True,
    weighting: str = "paper",
    renormalize: bool = False,
) -> MergeWeights:
    """Lines 1-7 of Algorithm 2: normalization weights plus perturbation.

    ``weighting`` selects the normalization rule: ``"paper"`` is the
    pseudocode (updates, falling back to batch sizes on ties);
    ``"updates_times_batch"`` is the §III-B late-stage alternative
    (``αᵢ ∝ uᵢ · bᵢ``); ``"uniform"`` gives plain elastic averaging and
    exists for ablations.

    ``renormalize`` controls what happens after the perturbation step.
    ``False`` is the paper-literal pseudocode: the weights are left
    denormalized (``Σα = 1 + δ(α_r − α_s)``), with the regularization gate
    meant "to restrict the eventual impact of denormalization". At this
    reproduction's scaled-down model dimensionality the literal gate
    (L2-norm/params < ``pert_thr``) essentially never closes, so the ~0.5%
    per-merge inflation compounds across a run's many merges and measurably
    degrades late accuracy (see the perturbation ablation bench).
    ``renormalize=True`` rescales the perturbed weights back to sum 1 —
    preserving the intended *relative* boost of the most-updated replica
    while bounding exactly the effect the gate was designed to bound.
    """
    n = len(batch_sizes)
    if n == 0:
        raise ConfigurationError("merging requires at least one replica")
    if not (len(updates) == len(replica_l2_per_param) == n):
        raise ConfigurationError(
            f"length mismatch: {n} batch sizes, {len(updates)} updates, "
            f"{len(replica_l2_per_param)} norms"
        )
    b = np.asarray(batch_sizes, dtype=np.float64)
    u = np.asarray(updates, dtype=np.float64)
    if (b <= 0).any():
        raise ConfigurationError(f"batch sizes must be positive: {batch_sizes}")
    if (u < 0).any():
        raise ConfigurationError(f"update counts must be >= 0: {updates}")

    equal_updates = bool(np.all(u == u[0]))
    if weighting == "uniform":
        alphas = np.full(n, 1.0 / n)
        branch = "uniform"
    elif weighting == "updates_times_batch":
        prod = u * b
        total = prod.sum()
        alphas = prod / total if total > 0 else np.full(n, 1.0 / n)
        branch = "updates_times_batch"
    elif weighting == "paper":
        if equal_updates:
            alphas = b / b.sum()                      # line 2
            branch = "batch_size"
        else:
            alphas = u / u.sum()                      # line 3
            branch = "updates"
    else:
        raise ConfigurationError(f"unknown weighting {weighting!r}")

    perturbed = False
    boosted = damped = None
    norms = np.asarray(replica_l2_per_param, dtype=np.float64)
    if (
        enable_perturbation
        and n >= 2
        and bool(np.all(norms < pert_thr))           # line 4 gate
    ):
        r = int(np.argmax(u))                        # first maximal index
        s = int(n - 1 - np.argmin(u[::-1]))          # last minimal index
        if r != s:
            alphas = alphas.copy()
            alphas[r] *= 1.0 + delta                 # line 6
            alphas[s] *= 1.0 - delta
            if renormalize:
                alphas /= alphas.sum()
            perturbed = True
            boosted, damped = r, s
    return MergeWeights(
        alphas=tuple(float(a) for a in alphas),
        branch=branch,
        perturbed=perturbed,
        boosted=boosted,
        damped=damped,
    )


def merge_models(
    replicas: Sequence[ModelState],
    weights: MergeWeights,
    global_model: ModelState,
    prev_global: ModelState,
    *,
    gamma: float,
    reduced: Optional[ModelState] = None,
) -> MergeResult:
    """Lines 8-9 of Algorithm 2: the momentum-smoothed global update.

    ``w' ← Σ αᵢ wᵢ + γ (w − w_p)``, then ``w_p ← w`` and ``w ← w'`` — both
    performed in place on the passed states. ``reduced`` optionally supplies
    a precomputed ``Σ αᵢ wᵢ`` (e.g. from the simulated all-reduce) so the
    weighted average is not recomputed.
    """
    if not replicas:
        raise ConfigurationError("merge_models requires at least one replica")
    if len(replicas) != len(weights.alphas):
        raise ModelStateError(
            f"{len(replicas)} replicas but {len(weights.alphas)} weights"
        )
    if not (0.0 <= gamma < 1.0):
        raise ConfigurationError(f"gamma must be in [0, 1), got {gamma}")
    merged = (
        reduced
        if reduced is not None
        else weighted_average(replicas, weights.alphas)
    )
    max_norm = max(r.l2_norm_per_param() for r in replicas)

    # w' = merged + gamma * (w - w_p), computed without extra temporaries:
    new_vector = merged.vector.copy()
    new_vector += np.float32(gamma) * (global_model.vector - prev_global.vector)
    prev_global.copy_from(global_model)              # w_p <- w
    global_model.vector[...] = new_vector            # w   <- w'
    return MergeResult(
        global_model=global_model,
        weights=weights,
        max_l2_per_param=float(max_norm),
    )
