"""Adaptive SGD — the paper's primary contribution.

- :mod:`repro.core.config` — hyperparameters and the §V-A derivation rules.
- :mod:`repro.core.scaling` — Algorithm 1 (batch size scaling).
- :mod:`repro.core.merging` — Algorithm 2 (normalized model merging).
- :mod:`repro.core.scheduler` — the dynamic scheduler component.
- :mod:`repro.core.adaptive` — the full trainer on the simulated cluster.
- :mod:`repro.core.stability` — steady-state/oscillation detection.
- :mod:`repro.core.staleness` — staleness bounds and tracking.
"""

from repro.core.adaptive import AdaptiveSGDTrainer
from repro.core.config import AdaptiveSGDConfig, linear_scaled_lr
from repro.core.merging import (
    MergeResult,
    MergeWeights,
    compute_merge_weights,
    merge_models,
)
from repro.core.scaling import ScalingDecision, scale_batch_sizes
from repro.core.scheduler import BoundaryReport, DynamicScheduler
from repro.core.stability import ScalingGovernor, StabilityDetector, StabilityState
from repro.core.staleness import StalenessRecord, StalenessTracker, staleness_bound
from repro.core.theory import (
    effective_learning_rate,
    equivalent_batch_envelope,
    stale_sync_error_bound,
    updates_balance_index,
)

__all__ = [
    "AdaptiveSGDTrainer",
    "AdaptiveSGDConfig",
    "linear_scaled_lr",
    "MergeResult",
    "MergeWeights",
    "compute_merge_weights",
    "merge_models",
    "ScalingDecision",
    "scale_batch_sizes",
    "BoundaryReport",
    "DynamicScheduler",
    "ScalingGovernor",
    "StabilityDetector",
    "StabilityState",
    "StalenessRecord",
    "StalenessTracker",
    "staleness_bound",
    "effective_learning_rate",
    "equivalent_batch_envelope",
    "stale_sync_error_bound",
    "updates_balance_index",
]
