"""Replica-staleness bounds and measurement.

§III-A argues that ``b_min``/``b_max`` "impose bounds on replica staleness,
allowing the application of convergence results from stale synchronous SGD".
The intuition: within one mega-batch of ``M`` samples on ``n`` GPUs, a GPU
running at ``b_min`` can perform at most ``M/b_min`` updates while one at
``b_max`` performs at least its dispatched share — so the spread in update
counts (the *staleness* between replicas at merge time) is bounded by a
function of ``M``, ``b_min``, ``b_max`` and ``n`` alone, independent of how
skewed the GPU speeds are.

:func:`staleness_bound` computes that analytical bound;
:class:`StalenessTracker` measures the realized spread so experiments can
verify the bound empirically (property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["staleness_bound", "StalenessTracker", "StalenessRecord"]


def staleness_bound(
    mega_batch_size: int, b_min: int, b_max: int, n_gpus: int
) -> float:
    """Worst-case spread in per-mega-batch update counts across GPUs.

    Worst case: one GPU absorbs the whole mega-batch in ``b_min``-sized
    batches (``ceil(M/b_min)`` updates — every batch consumes at least
    ``b_min`` samples except a possible final remainder) while another GPU
    receives nothing. A single GPU has no staleness by definition.
    """
    if mega_batch_size < 1:
        raise ConfigurationError(f"mega_batch_size must be >= 1, got {mega_batch_size}")
    if not (1 <= b_min <= b_max):
        raise ConfigurationError(f"need 1 <= b_min <= b_max, got [{b_min}, {b_max}]")
    if n_gpus < 1:
        raise ConfigurationError(f"n_gpus must be >= 1, got {n_gpus}")
    if n_gpus == 1:
        return 0.0
    return float(np.ceil(mega_batch_size / b_min))


@dataclass(frozen=True)
class StalenessRecord:
    """Observed update-count spread at one merge boundary."""

    mega_batch_index: int
    updates: tuple
    spread: int

    @property
    def max_updates(self) -> int:
        """Most updates any replica performed."""
        return max(self.updates)

    @property
    def min_updates(self) -> int:
        """Fewest updates any replica performed."""
        return min(self.updates)


class StalenessTracker:
    """Collects per-mega-batch update counts and their spread."""

    def __init__(self) -> None:
        self._records: List[StalenessRecord] = []

    def observe(self, mega_batch_index: int, updates: Sequence[int]) -> StalenessRecord:
        """Record the update counts of one merge boundary."""
        if not updates:
            raise ConfigurationError("observe() requires at least one update count")
        ups = tuple(int(u) for u in updates)
        record = StalenessRecord(
            mega_batch_index=int(mega_batch_index),
            updates=ups,
            spread=max(ups) - min(ups),
        )
        self._records.append(record)
        return record

    @property
    def records(self) -> List[StalenessRecord]:
        """All observations, in order."""
        return list(self._records)

    def max_spread(self) -> int:
        """Largest staleness observed so far (0 when nothing recorded)."""
        return max((r.spread for r in self._records), default=0)

    def mean_spread(self) -> float:
        """Average staleness across boundaries (0.0 when empty)."""
        if not self._records:
            return 0.0
        return float(np.mean([r.spread for r in self._records]))
