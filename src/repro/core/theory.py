"""Analytical characterization of batch size scaling (§III-A).

The paper argues its bounds make the algorithm analyzable: "Assuming an
equal number of model updates across GPUs, the convergence behavior of SGD
with batch size scaling is within the range of elastic model averaging with
a batch size between b_min and b_max. When the number of updates varies,
these thresholds impose bounds on replica staleness, allowing the
application of convergence results from stale synchronous SGD [11], [14]."

This module makes those statements computable:

- :func:`equivalent_batch_envelope` — the ``[b_min', b_max']`` elastic-SGD
  equivalence range actually *realized* by a run (from its batch-size
  history), always nested inside the configured ``[b_min, b_max]``;
- :func:`stale_sync_error_bound` — the standard SSP-style convergence-error
  scaling ``O(sqrt((s + 1) / T))`` for ``T`` updates at staleness ``s``
  (Ho et al. NIPS'13 / Lian et al. ICML'18 shape), used to *compare*
  configurations, not to predict absolute error;
- :func:`effective_learning_rate` — the sample-weighted mean learning rate
  a heterogeneous fleet actually applied (explains the Delicious deviation
  D2 in EXPERIMENTS.md);
- :func:`updates_balance_index` — Jain's fairness index over per-GPU update
  counts: 1.0 = perfect parity (Algorithm 1's goal state).
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "equivalent_batch_envelope",
    "stale_sync_error_bound",
    "effective_learning_rate",
    "updates_balance_index",
]


def equivalent_batch_envelope(
    batch_size_history: Sequence[Sequence[int]],
) -> Tuple[int, int]:
    """The elastic-SGD equivalence range realized by a run.

    Returns ``(min, max)`` over every per-GPU batch size the run ever used.
    By Algorithm 1's guards this is always contained in the configured
    ``[b_min, b_max]`` (property-tested), which is exactly the §III-A
    equivalence claim.
    """
    if not batch_size_history:
        raise ConfigurationError("empty batch size history")
    flat = [int(b) for sizes in batch_size_history for b in sizes]
    if not flat:
        raise ConfigurationError("batch size history has empty rows")
    return min(flat), max(flat)


def stale_sync_error_bound(total_updates: int, staleness: float) -> float:
    """SSP-shape convergence-error scale ``sqrt((s + 1) / T)``.

    Stale-synchronous-parallel analyses bound the optimality gap after ``T``
    updates with bounded staleness ``s`` by ``O(sqrt((s + 1) / T))``. The
    constant is problem-dependent, so only *ratios* between configurations
    are meaningful — e.g. how much staleness Algorithm 1 must remove to
    offset a throughput loss.
    """
    if total_updates < 1:
        raise ConfigurationError(f"total_updates must be >= 1, got {total_updates}")
    if staleness < 0:
        raise ConfigurationError(f"staleness must be >= 0, got {staleness}")
    return math.sqrt((staleness + 1.0) / total_updates)


def effective_learning_rate(
    batch_sizes: Sequence[int],
    learning_rates: Sequence[float],
) -> float:
    """Sample-weighted mean learning rate across a heterogeneous fleet.

    Each GPU applies ``lr_i`` to gradients from ``b_i`` samples; the merged
    model's effective step per sample is the ``b_i``-weighted mean of the
    ``lr_i`` (with the linear scaling rule this is also ``base_lr ·
    Σb_i² / (b_max · Σb_i)`` — strictly below ``base_lr`` whenever any
    batch shrank, quantifying deviation D2).
    """
    if not batch_sizes or len(batch_sizes) != len(learning_rates):
        raise ConfigurationError(
            f"need matching non-empty inputs, got {len(batch_sizes)} sizes "
            f"and {len(learning_rates)} rates"
        )
    b = np.asarray(batch_sizes, dtype=np.float64)
    lr = np.asarray(learning_rates, dtype=np.float64)
    if (b <= 0).any() or (lr <= 0).any():
        raise ConfigurationError("batch sizes and learning rates must be > 0")
    return float((b * lr).sum() / b.sum())


def updates_balance_index(updates: Sequence[int]) -> float:
    """Jain's fairness index over per-GPU update counts.

    ``(Σu)² / (n · Σu²)`` — equals 1.0 at perfect parity (Algorithm 1's
    steady state) and ``1/n`` when a single GPU does all the work.
    """
    if not updates:
        raise ConfigurationError("updates must be non-empty")
    u = np.asarray(updates, dtype=np.float64)
    if (u < 0).any():
        raise ConfigurationError(f"update counts must be >= 0: {updates}")
    total_sq = float(u.sum()) ** 2
    denom = len(u) * float((u * u).sum())
    if denom == 0.0:
        return 1.0  # nobody did anything; vacuously balanced
    return total_sq / denom
