"""Steady-state and oscillation detection for batch size scaling.

§III-A: "By default, the algorithm is executed after every mega-batch.
However, if stability is achieved or the system enters an oscillatory
state, the frequency at which scaling is performed can be increased." (We
read "frequency ... increased" as the scaling *interval* being increased —
i.e. scaling runs less often — since re-scaling an already-stable or
thrashing system every mega-batch is exactly what the sentence is avoiding.)

:class:`StabilityDetector` classifies the recent batch-size history of every
GPU; :class:`ScalingGovernor` turns the classification into "should
Algorithm 1 run at this boundary?" with exponential back-off while the
system remains stable/oscillatory and an immediate reset once it drifts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["StabilityState", "StabilityDetector", "ScalingGovernor"]


@dataclass(frozen=True)
class StabilityState:
    """Classification of the recent batch-size trajectory."""

    stable: bool
    oscillatory: bool

    @property
    def settled(self) -> bool:
        """Either condition that allows stretching the scaling interval."""
        return self.stable or self.oscillatory


class StabilityDetector:
    """Classifies per-GPU batch-size histories over a sliding window.

    - **stable**: every GPU's batch size stayed within ``tolerance`` (as a
      fraction of ``b_max``) of its window mean;
    - **oscillatory**: some GPU's batch size keeps moving but its *direction
      of change* flips in at least ``flip_fraction`` of consecutive steps —
      the classic thrash around a fixed point.
    """

    def __init__(
        self,
        n_gpus: int,
        b_max: int,
        *,
        window: int = 5,
        tolerance: float = 0.05,
        flip_fraction: float = 0.6,
    ) -> None:
        if n_gpus < 1:
            raise ConfigurationError(f"n_gpus must be >= 1, got {n_gpus}")
        if window < 2:
            raise ConfigurationError(f"window must be >= 2, got {window}")
        if not (0.0 < tolerance < 1.0):
            raise ConfigurationError(f"tolerance must be in (0,1), got {tolerance}")
        if not (0.0 < flip_fraction <= 1.0):
            raise ConfigurationError(
                f"flip_fraction must be in (0,1], got {flip_fraction}"
            )
        self.n_gpus = n_gpus
        self.b_max = b_max
        self.window = window
        self.tolerance = tolerance
        self.flip_fraction = flip_fraction
        self._history: List[Deque[int]] = [
            deque(maxlen=window) for _ in range(n_gpus)
        ]

    def observe(self, batch_sizes: Sequence[int]) -> None:
        """Record the batch sizes chosen at a mega-batch boundary."""
        if len(batch_sizes) != self.n_gpus:
            raise ConfigurationError(
                f"expected {self.n_gpus} batch sizes, got {len(batch_sizes)}"
            )
        for gpu, b in enumerate(batch_sizes):
            self._history[gpu].append(int(b))

    def classify(self) -> StabilityState:
        """Classify the current window (needs a full window; else neither)."""
        if any(len(h) < self.window for h in self._history):
            return StabilityState(stable=False, oscillatory=False)
        tol = self.tolerance * self.b_max
        stable = True
        oscillatory = False
        for history in self._history:
            arr = np.asarray(history, dtype=np.float64)
            if np.abs(arr - arr.mean()).max() > tol:
                stable = False
            deltas = np.diff(arr)
            moving = deltas[deltas != 0]
            # Need at least three moves before calling a pattern "thrash";
            # a single reversal is ordinary adjustment, not oscillation.
            if len(moving) >= 3:
                flips = np.sum(np.sign(moving[1:]) != np.sign(moving[:-1]))
                if flips / (len(moving) - 1) >= self.flip_fraction:
                    oscillatory = True
        return StabilityState(stable=stable, oscillatory=oscillatory)


class ScalingGovernor:
    """Decides at each boundary whether Algorithm 1 should run.

    While the detector reports a settled system, the interval between
    scaling invocations doubles (capped at ``max_interval``); any
    non-settled classification resets it to every boundary.
    """

    def __init__(
        self, detector: StabilityDetector, *, max_interval: int = 8
    ) -> None:
        if max_interval < 1:
            raise ConfigurationError(f"max_interval must be >= 1, got {max_interval}")
        self.detector = detector
        self.max_interval = max_interval
        self._interval = 1
        self._since_last = 0

    @property
    def interval(self) -> int:
        """Current number of mega-batches between scaling invocations."""
        return self._interval

    def should_scale(self, batch_sizes: Sequence[int]) -> bool:
        """Record this boundary's batch sizes and decide whether to scale."""
        self.detector.observe(batch_sizes)
        state = self.detector.classify()
        if state.settled:
            self._interval = min(self._interval * 2, self.max_interval)
        else:
            self._interval = 1
        self._since_last += 1
        if self._since_last >= self._interval:
            self._since_last = 0
            return True
        return False
