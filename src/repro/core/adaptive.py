"""Adaptive SGD — the paper's contribution, end to end.

One mega-batch proceeds exactly as in Figure 2:

1. Every GPU manager downloads the current global model (host→device
   transfer, priced by the cost model) — "only at the beginning of a
   mega-batch" (§IV).
2. Managers loop: ask the dynamic scheduler for a batch (cut at *their*
   current batch size), advance the simulation clock by the device's
   data-dependent step time, apply the real numeric SGD update to their
   replica, and report the completion. Faster GPUs simply come back for
   more batches — that *is* dynamic scheduling.
3. When the mega-batch's sample budget is exhausted, managers converge on
   the merge barrier. The merge runs as a simulated multi-stream ring
   all-reduce (time) whose numeric result feeds Algorithm 2 (normalized,
   perturbed, momentum-smoothed global update). Algorithm 1 then rescales
   every GPU's batch size and learning rate for the next mega-batch.
4. Test accuracy is measured (host-side, clock excluded) and the trace
   extended with the adaptivity telemetry of Figures 6a/6b.

Elastic membership (``membership=`` option): the same loop runs against a
:class:`~repro.elastic.membership.ClusterMembership` whose timeline may
remove, throttle, or add devices mid-run. The granularity is the *step*:
managers poll the event stream between batches (a sim timeout cannot be
interrupted), so a throttle takes effect on the next dispatch and a
departing device always finishes its in-flight batch first. At each merge
barrier the driver then settles accounting — a leaver's in-flight update
still merges with correct normalization, a failed replica's is discarded
exactly once (``UpdateLedger``), Algorithm 1 scales only the surviving
slots — and admits parked ``join`` events at the warm-start point: the new
replica copies the freshly merged global model and enters with the
Dynamic-Mini-batch ramped batch size/LR from
:func:`repro.core.scaling.rescale_for_membership`. With ``membership=None``
the code path is unchanged (bit-identical traces).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.comm.allreduce import AllReduceAlgorithm
from repro.comm.ring import RingAllReduce
from repro.core.config import AdaptiveSGDConfig
from repro.core.merging import compute_merge_weights, merge_models
from repro.core.scheduler import DynamicScheduler
from repro.core.staleness import StalenessTracker
from repro.data.dataset import XMLTask
from repro.gpu.cluster import MultiGPUServer
from repro.gpu.cost import StepWorkload
from repro.harness.trainer_base import TrainerBase
from repro.harness.traces import TrainingTrace
from repro.sim.environment import Environment
from repro.sparse.model_state import ModelState
from repro.sparse.optimizer import sgd_step
from repro.telemetry.events import (
    COUNTER_UPDATES,
    GAUGE_ACTIVE_DEVICES,
    GAUGE_STALENESS,
    SPAN_ALLREDUCE,
    SPAN_MERGE,
    SPAN_STEP,
    SPAN_TRANSFER,
)
from repro.utils.validation import resolve_renamed_kwargs

__all__ = ["AdaptiveSGDTrainer"]


class AdaptiveSGDTrainer(TrainerBase):
    """Adaptive elastic model averaging SGD for heterogeneous multi-GPUs."""

    algorithm = "Adaptive SGD"

    def __init__(
        self,
        task: XMLTask,
        server: MultiGPUServer,
        config: AdaptiveSGDConfig,
        *,
        allreduce: Optional[AllReduceAlgorithm] = None,
        governor: bool = False,
        membership=None,
        **kwargs,
    ) -> None:
        resolve_renamed_kwargs(
            kwargs, {"use_governor": "governor"}, type(self).__name__
        )
        governor = kwargs.pop("governor", governor)
        super().__init__(task, server, config, **kwargs)
        # HeteroGPU's production merge: multi-stream ring with one stream
        # per GPU (the empirically optimal partition count, §IV).
        self.allreduce = allreduce or RingAllReduce(n_streams=server.n_gpus)
        self.governor = bool(governor)
        self.staleness = StalenessTracker()
        if membership is not None:
            from repro.elastic.membership import ClusterMembership
            from repro.exceptions import ConfigurationError

            if not isinstance(membership, ClusterMembership):
                raise ConfigurationError(
                    "membership must be a ClusterMembership, got "
                    f"{type(membership).__name__}"
                )
            if membership.server is not server:
                raise ConfigurationError(
                    "membership was built for a different server instance"
                )
        self.membership = membership

    @property
    def use_governor(self) -> bool:
        """Deprecated alias for :attr:`governor`."""
        return self.governor

    # -- the training loop ------------------------------------------------------
    def _execute(self, env: Environment, time_budget_s: float) -> TrainingTrace:
        n = self.server.n_gpus
        membership = self.membership
        if membership is not None:
            membership.telemetry = self.telemetry
        layer_dims = tuple(self.arch.layer_dims)
        scheduler = DynamicScheduler(
            self.task.train,
            self.config,
            n,
            seed=self.data_seed,
            use_governor=self.governor,
            telemetry=self.telemetry,
        )
        global_model = self.initial_state()
        prev_global = global_model.copy()
        replicas: List[ModelState] = [global_model.copy() for _ in range(n)]
        grads: List[ModelState] = [self.mlp.zeros_state() for _ in range(n)]
        model_bytes = global_model.nbytes
        # Scratch rows for the merge collective's w_i * v_i contributions —
        # one allocation for the whole run instead of n per mega-batch.
        reduce_work = np.empty((n, global_model.n_params), dtype=np.float32)

        trace = self.new_trace(n)
        trace.metadata["config"] = self.config
        trace.metadata["allreduce"] = self.allreduce.name

        total_updates = 0
        loss_sum = 0.0
        loss_count = 0
        active = {"count": 0}

        tel = self.telemetry

        def manager(gpu_id: int):
            nonlocal loss_sum, loss_count, total_updates
            gpu = self.server.gpus[gpu_id]
            active["count"] += 1
            try:
                # Replica download at the start of the mega-batch.
                with tel.span(SPAN_TRANSFER, device=gpu_id, nbytes=model_bytes):
                    yield env.timeout(gpu.model_transfer_time(model_bytes))
                while True:
                    if membership is not None:
                        # Step-granular lifecycle: apply due events (joins
                        # stay parked for the boundary) and bow out if this
                        # device just left or failed.
                        membership.poll(env.now, admit_joins=False)
                        if not membership.is_active(gpu_id):
                            return gpu_id
                    batch = scheduler.try_dispatch(gpu_id)
                    if batch is None:
                        return gpu_id
                    work = StepWorkload(batch.size, batch.nnz, layer_dims)
                    dt = gpu.step_time(
                        work, env.now, n_active_gpus=max(1, active["count"])
                    )
                    with tel.span(
                        SPAN_STEP, device=gpu_id,
                        size=batch.size, nnz=batch.nnz,
                    ):
                        yield env.timeout(dt)
                        gpu.record_busy(dt, start=env.now - dt)
                        loss, grad = self.mlp.loss_and_grad(
                            batch, replicas[gpu_id], grad_out=grads[gpu_id],
                            workspace=self.workspace,
                        )
                        sgd_step(
                            replicas[gpu_id], grad,
                            scheduler.learning_rates[gpu_id],
                        )
                    scheduler.record_completion(gpu_id)
                    tel.counter(COUNTER_UPDATES, 1, device=gpu_id)
                    loss_sum += loss
                    loss_count += 1
                    total_updates += 1
            finally:
                active["count"] -= 1

        def driver():
            nonlocal loss_sum, loss_count, reduce_work
            # Checkpoint 0: the shared initial model and initial controls.
            self.record_device_controls(
                scheduler.batch_sizes, scheduler.learning_rates
            )
            self.record_checkpoint(
                trace, env, epochs=0.0, updates=0, samples=0,
                state=global_model, loss=float("nan"),
            )
            while env.now < time_budget_s:
                if membership is not None:
                    spawned = [
                        i for i in range(scheduler.n_gpus)
                        if membership.is_active(i)
                    ]
                else:
                    spawned = list(range(n))
                workers = [
                    env.process(manager(i), name=f"gpu-manager-{i}")
                    for i in spawned
                ]
                yield env.all_of(workers)

                # ---- membership settlement at the barrier ----------------
                all_updates = tuple(scheduler.updates)
                if membership is not None:
                    membership.poll(env.now, admit_joins=False)
                    failed, departed, _ = membership.take_sync()
                    # Exactly-once merge accounting: every replica that ran
                    # this mega-batch offered its update; a failed replica's
                    # offer is discarded, everyone else's merges (a graceful
                    # leaver still merges with correct normalization).
                    for i in spawned:
                        token = membership.ledger.offer(i, all_updates[i])
                        membership.ledger.resolve(token, merged=i not in failed)
                else:
                    failed, departed = set(), set()
                merge_ids = [i for i in spawned if i not in failed]

                # ---- merge stage (Algorithm 2) --------------------------
                updates = tuple(all_updates[i] for i in merge_ids)
                self.staleness.observe(len(trace.batch_size_history), updates)
                tel.gauge(GAUGE_STALENESS, max(updates) - min(updates))
                with tel.span(SPAN_MERGE, branch=None) as merge_span:
                    weights = compute_merge_weights(
                        [scheduler.batch_sizes[i] for i in merge_ids],
                        updates,
                        [replicas[i].l2_norm_per_param() for i in merge_ids],
                        pert_thr=self.config.pert_thr,
                        delta=self.config.delta,
                        enable_perturbation=self.config.enable_perturbation,
                        weighting=self.config.merge_weighting,
                        renormalize=self.config.renormalize_perturbation,
                    )
                    merge_span.args["branch"] = weights.branch
                    timing = self.allreduce.time_seconds(
                        model_bytes, self.server.topology
                    )
                    with tel.span(
                        SPAN_ALLREDUCE,
                        algorithm=self.allreduce.name,
                        nbytes=model_bytes,
                        **timing.to_args(),
                    ):
                        if timing.total_s > 0:
                            yield env.timeout(timing.total_s)
                        reduced_vec = self.allreduce.reduce(
                            [replicas[i].vector for i in merge_ids],
                            weights.alphas,
                            work=reduce_work[: len(merge_ids)],
                        )
                    reduced = ModelState.from_vector(
                        global_model.spec, reduced_vec
                    )
                    merge_models(
                        [replicas[i] for i in merge_ids], weights,
                        global_model, prev_global,
                        gamma=self.config.gamma, reduced=reduced,
                    )

                # ---- batch size scaling (Algorithm 1) + bookkeeping ------
                if membership is not None:
                    for i in failed:
                        scheduler.deactivate(i, discard=True)
                    for i in departed:
                        scheduler.deactivate(i)
                report = scheduler.mega_batch_boundary()
                self.record_device_controls(
                    report.batch_sizes_after, scheduler.learning_rates
                )
                trace.batch_size_history.append(report.batch_sizes_before)
                trace.perturbation_history.append(weights.perturbed)
                trace.merge_branch_history.append(weights.branch)
                trace.staleness_history.append(max(updates) - min(updates))

                # ---- membership epoch: admit joins, re-derive controls ---
                if membership is not None:
                    admitted = membership.poll(env.now, admit_joins=True)
                    joined = [
                        e.device_id for e in admitted
                        if e.kind == "join" and e.applied
                    ]
                    membership.take_sync()
                    if failed or departed or joined:
                        survivors = [
                            i for i in spawned
                            if i not in failed and i not in departed
                        ]
                        self.apply_membership_rescale(
                            scheduler,
                            survivors=survivors,
                            joined=joined,
                            n_before=len(spawned),
                        )
                        # Joining replicas warm-start from the global model
                        # just merged (the copy below covers rejoins too).
                        while len(replicas) < scheduler.n_gpus:
                            replicas.append(global_model.copy())
                            grads.append(self.mlp.zeros_state())
                        if scheduler.n_gpus > reduce_work.shape[0]:
                            reduce_work = np.empty(
                                (scheduler.n_gpus, global_model.n_params),
                                dtype=np.float32,
                            )
                    tel.gauge(GAUGE_ACTIVE_DEVICES, float(membership.n_active))

                # Replicas restart from the merged global model.
                for replica in replicas:
                    replica.copy_from(global_model)

                mean_loss = loss_sum / loss_count if loss_count else float("nan")
                loss_sum = 0.0
                loss_count = 0
                self.record_checkpoint(
                    trace, env,
                    epochs=scheduler.epochs_completed,
                    updates=total_updates,
                    samples=scheduler.samples_dispatched,
                    state=global_model,
                    loss=mean_loss,
                )
            if membership is not None:
                membership.ledger.assert_drained()
                trace.metadata["membership"] = membership.summary()
            return trace

        env.run_until_complete(env.process(driver(), name="adaptive-driver"))
        return trace
