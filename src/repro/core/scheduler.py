"""The dynamic scheduler — HeteroGPU's central coordination component.

§IV: "The most common task of the dynamic scheduler is to assign data
batches of different size to the GPU managers... these require the number of
model replica updates executed by every GPU manager — which are recorded by
the scheduler when batches are dispatched."

The scheduler owns:

- the shuffling :class:`~repro.data.batching.BatchCursor` over the training
  set (batches are cut on demand at each GPU's *current* batch size);
- the :class:`~repro.data.batching.MegaBatchAccountant` fixing how many
  samples flow between merges;
- per-GPU batch sizes, learning rates, and update counts;
- the Algorithm-1 invocation at each boundary, moderated by the
  :class:`~repro.core.stability.ScalingGovernor`.

It performs **no** model math — merging runs in the GPU managers/trainer —
mirroring the paper's "relatively low utilized component" design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.config import AdaptiveSGDConfig
from repro.core.scaling import ScalingDecision, scale_batch_sizes
from repro.core.stability import ScalingGovernor, StabilityDetector
from repro.data.batching import Batch, BatchCursor, MegaBatchAccountant
from repro.data.dataset import SparseDataset
from repro.exceptions import ScheduleError
from repro.telemetry import NULL, Telemetry
from repro.telemetry.events import EVENT_DISPATCH

__all__ = ["DynamicScheduler", "BoundaryReport"]


@dataclass(frozen=True)
class BoundaryReport:
    """What happened at one mega-batch boundary."""

    mega_batch_index: int
    updates: Tuple[int, ...]
    batch_sizes_before: Tuple[int, ...]
    batch_sizes_after: Tuple[int, ...]
    learning_rates_after: Tuple[float, ...]
    scaling_ran: bool
    scaling_changed: bool


class DynamicScheduler:
    """Dispatches batches one-by-one to whichever GPU asks next."""

    def __init__(
        self,
        dataset: SparseDataset,
        config: AdaptiveSGDConfig,
        n_gpus: int,
        *,
        seed: int = 0,
        use_governor: bool = True,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if n_gpus < 1:
            raise ScheduleError(f"n_gpus must be >= 1, got {n_gpus}")
        self.config = config
        self.telemetry = telemetry if telemetry is not None else NULL
        self.n_gpus = n_gpus
        self.cursor = BatchCursor(dataset, seed=seed)
        self.accountant = MegaBatchAccountant(config.mega_batch_size)
        self.batch_sizes: List[int] = [config.b_max] * n_gpus
        self.learning_rates: List[float] = [config.base_lr] * n_gpus
        self.updates: List[int] = [0] * n_gpus
        self._dispatched_open: List[int] = [0] * n_gpus
        self._active: List[bool] = [True] * n_gpus
        # Set once membership ever changes; the governor's fixed-width
        # stability window is bypassed from then on.
        self._elastic = False
        self._governor: Optional[ScalingGovernor] = (
            ScalingGovernor(StabilityDetector(n_gpus, config.b_max))
            if use_governor
            else None
        )
        self._boundaries: List[BoundaryReport] = []

    # -- dispatch path ---------------------------------------------------------
    def try_dispatch(self, gpu_id: int) -> Optional[Batch]:
        """Next batch for ``gpu_id`` at its current batch size, or ``None``.

        ``None`` means the mega-batch budget is exhausted: the GPU manager
        should proceed to the merge barrier. The batch handed out is clamped
        so the mega-batch's sample budget is never exceeded (the final batch
        of a mega-batch may therefore be smaller than ``b_i``).
        """
        self._check_gpu(gpu_id)
        if not self._active[gpu_id]:
            return None
        size = self.accountant.clamp(self.batch_sizes[gpu_id])
        if size == 0:
            return None
        batch = self.cursor.next_batch(size)
        self.accountant.charge(batch.size)
        self._dispatched_open[gpu_id] += 1
        if self.telemetry.enabled:
            self.telemetry.instant(
                EVENT_DISPATCH, device=gpu_id, size=batch.size, nnz=batch.nnz
            )
        return batch

    def record_completion(self, gpu_id: int) -> None:
        """A GPU manager finished its batch: count one replica update."""
        self._check_gpu(gpu_id)
        if self._dispatched_open[gpu_id] <= 0:
            raise ScheduleError(
                f"GPU {gpu_id} reported a completion with no open dispatch"
            )
        self._dispatched_open[gpu_id] -= 1
        self.updates[gpu_id] += 1

    # -- boundary path ---------------------------------------------------------
    def mega_batch_boundary(self) -> BoundaryReport:
        """Close the mega-batch: run Algorithm 1, reset counters.

        Must be called only once all dispatched batches completed (the GPU
        managers sit at the merge barrier).
        """
        if any(self._dispatched_open):
            raise ScheduleError(
                f"boundary with unfinished dispatches: {self._dispatched_open}"
            )
        if not self.accountant.exhausted:
            raise ScheduleError(
                f"boundary before budget exhausted ({self.accountant.remaining} left)"
            )
        before = tuple(self.batch_sizes)
        updates = tuple(self.updates)

        scaling_ran = False
        scaling_changed = False
        if self.config.enable_batch_scaling:
            active = [i for i in range(self.n_gpus) if self._active[i]]
            # The governor's stability window assumes a fixed device set, so
            # on an elastic cluster (any slot inactive) Algorithm 1 always
            # runs: a membership epoch is exactly when controls must move.
            run_now = (
                self._governor.should_scale(self.batch_sizes)
                if self._governor is not None and not self._elastic
                else True
            )
            if run_now and active:
                decision: ScalingDecision = scale_batch_sizes(
                    [self.batch_sizes[i] for i in active],
                    [self.learning_rates[i] for i in active],
                    [updates[i] for i in active],
                    b_min=self.config.b_min,
                    b_max=self.config.b_max,
                    beta=self.config.beta,
                )
                for slot, i in enumerate(active):
                    self.batch_sizes[i] = decision.batch_sizes[slot]
                    self.learning_rates[i] = decision.learning_rates[slot]
                scaling_ran = True
                scaling_changed = decision.any_changed

        report = BoundaryReport(
            mega_batch_index=self.accountant.mega_batches_completed,
            updates=updates,
            batch_sizes_before=before,
            batch_sizes_after=tuple(self.batch_sizes),
            learning_rates_after=tuple(self.learning_rates),
            scaling_ran=scaling_ran,
            scaling_changed=scaling_changed,
        )
        self._boundaries.append(report)
        self.updates = [0] * self.n_gpus
        self.accountant.roll_over()
        return report

    # -- membership path -------------------------------------------------------
    def is_active(self, gpu_id: int) -> bool:
        """Whether the slot may be dispatched to (elastic membership)."""
        self._check_gpu(gpu_id)
        return self._active[gpu_id]

    @property
    def active_ids(self) -> Tuple[int, ...]:
        return tuple(i for i in range(self.n_gpus) if self._active[i])

    def deactivate(self, gpu_id: int, *, discard: bool = False) -> int:
        """Remove a slot from dispatch (device left or failed).

        Must be called at the merge barrier — the departing manager has
        completed its in-flight batch, so no dispatch is open. With
        ``discard=True`` (a *failed* replica) the slot's update count for
        the closing mega-batch is zeroed so Algorithm 1 never sees work
        that was thrown away; the count removed is returned. A graceful
        *leave* keeps its updates: they merged.
        """
        self._check_gpu(gpu_id)
        if self._dispatched_open[gpu_id]:
            raise ScheduleError(
                f"cannot deactivate GPU {gpu_id} with "
                f"{self._dispatched_open[gpu_id]} open dispatches"
            )
        self._active[gpu_id] = False
        self._elastic = True
        discarded = 0
        if discard:
            discarded = self.updates[gpu_id]
            self.updates[gpu_id] = 0
        return discarded

    def activate(
        self, gpu_id: int, *, batch_size: int, learning_rate: float
    ) -> None:
        """Admit a slot to dispatch (device joined or re-joined).

        ``gpu_id == n_gpus`` grows the scheduler by one slot (a freshly
        provisioned device); otherwise an existing inactive slot re-enters.
        The controls come from the Dynamic-Mini-batch rescale
        (:func:`repro.core.scaling.rescale_for_membership`).
        """
        if not (self.config.b_min <= batch_size <= self.config.b_max):
            raise ScheduleError(
                f"join batch size {batch_size} outside "
                f"[{self.config.b_min}, {self.config.b_max}]"
            )
        if learning_rate <= 0:
            raise ScheduleError(f"join learning rate must be > 0, got {learning_rate}")
        self._elastic = True
        if gpu_id == self.n_gpus:
            self.n_gpus += 1
            self.batch_sizes.append(int(batch_size))
            self.learning_rates.append(float(learning_rate))
            self.updates.append(0)
            self._dispatched_open.append(0)
            self._active.append(True)
            return
        self._check_gpu(gpu_id)
        if self._active[gpu_id]:
            raise ScheduleError(f"GPU {gpu_id} is already active")
        self._active[gpu_id] = True
        self.batch_sizes[gpu_id] = int(batch_size)
        self.learning_rates[gpu_id] = float(learning_rate)

    def set_controls(self, gpu_id: int, *, batch_size: int, learning_rate: float) -> None:
        """Overwrite one slot's controls (membership-epoch re-derivation)."""
        self._check_gpu(gpu_id)
        if not (self.config.b_min <= batch_size <= self.config.b_max):
            raise ScheduleError(
                f"batch size {batch_size} outside "
                f"[{self.config.b_min}, {self.config.b_max}]"
            )
        if learning_rate <= 0:
            raise ScheduleError(f"learning rate must be > 0, got {learning_rate}")
        self.batch_sizes[gpu_id] = int(batch_size)
        self.learning_rates[gpu_id] = float(learning_rate)

    # -- introspection --------------------------------------------------------
    @property
    def boundaries(self) -> List[BoundaryReport]:
        """All boundary reports so far."""
        return list(self._boundaries)

    @property
    def epochs_completed(self) -> float:
        """Training-set passes dispatched so far."""
        return self.cursor.epochs_completed

    @property
    def samples_dispatched(self) -> int:
        """Total samples dispatched so far."""
        return self.cursor.samples_served

    def _check_gpu(self, gpu_id: int) -> None:
        if not (0 <= gpu_id < self.n_gpus):
            raise ScheduleError(
                f"gpu_id {gpu_id} out of range [0, {self.n_gpus})"
            )
