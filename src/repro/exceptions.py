"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so that callers can
catch everything produced by this package with a single ``except`` clause
while still being able to discriminate by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid hyperparameter or experiment configuration was supplied."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulation reached an inconsistent state."""


class ScheduleError(SimulationError):
    """The dynamic scheduler violated one of its dispatch invariants."""


class DataFormatError(ReproError, ValueError):
    """A dataset file or in-memory dataset failed validation."""


class ModelStateError(ReproError, ValueError):
    """Model replicas are incompatible (shape, dtype, or layout mismatch)."""


class SnapshotError(ReproError, ValueError):
    """A model snapshot failed validation (format, version, or integrity)."""


class ServeError(ReproError, RuntimeError):
    """The inference engine reached an inconsistent serving state."""


class CommunicationError(ReproError, RuntimeError):
    """A collective (all-reduce) operation was invoked with invalid inputs."""


class MembershipError(ReproError, RuntimeError):
    """The elastic membership layer violated a lifecycle invariant."""


class ConvergenceWarning(UserWarning):
    """Emitted when a trainer detects divergence or numeric instability."""
