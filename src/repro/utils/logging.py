"""Library logging setup.

The library logs under the ``"repro"`` namespace and never configures the
root logger (standard library etiquette). :func:`enable_console_logging` is a
convenience for scripts and examples.
"""

from __future__ import annotations

import logging
from typing import Optional

__all__ = ["get_logger", "enable_console_logging"]

_ROOT_NAME = "repro"

# Libraries must not emit 'no handler' warnings when the app doesn't
# configure logging.
logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return the library logger, optionally for a subcomponent.

    ``get_logger("core.scheduler")`` -> logger ``repro.core.scheduler``.
    """
    if name is None:
        return logging.getLogger(_ROOT_NAME)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def enable_console_logging(level: int = logging.INFO) -> logging.Handler:
    """Attach a stderr handler to the library logger (for scripts/examples).

    Returns the handler so callers can detach it. Calling twice replaces the
    previous console handler rather than duplicating output.
    """
    logger = logging.getLogger(_ROOT_NAME)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_console", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler()
    handler._repro_console = True  # type: ignore[attr-defined]
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
    )
    logger.addHandler(handler)
    logger.setLevel(level)
    return handler
