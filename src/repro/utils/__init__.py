"""Shared utilities: deterministic RNG streams, validation, timing, tables.

Submodules
----------
- :mod:`repro.utils.rng` — keyed, reproducible random streams.
- :mod:`repro.utils.validation` — one-line argument checks.
- :mod:`repro.utils.timer` — host-process stage timing.
- :mod:`repro.utils.tables` — text rendering of tables/series.
- :mod:`repro.utils.serialization` — JSON/NPZ artifact IO.
- :mod:`repro.utils.logging` — namespaced library logging.
"""

from repro.utils.rng import RngFactory, derive_seed, make_rng, spawn
from repro.utils.tables import format_kv, format_series, format_table
from repro.utils.timer import StageTimer, Stopwatch

__all__ = [
    "RngFactory",
    "derive_seed",
    "make_rng",
    "spawn",
    "format_kv",
    "format_series",
    "format_table",
    "StageTimer",
    "Stopwatch",
]
