"""Lightweight wall-clock instrumentation for the (real) host process.

The virtual cluster has its own clock (:mod:`repro.sim`); this module times
the *host* Python process, following the profiling-first workflow from the
scientific-Python optimization guide: measure before optimizing. Trainers use
:class:`StageTimer` to attribute host time to stages (forward, backward,
merge, ...) so hot spots are visible without an external profiler.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

__all__ = ["StageTimer", "Stopwatch"]


@dataclass
class Stopwatch:
    """Accumulating stopwatch (perf_counter based).

    ``start``/``stop`` may be called repeatedly; ``elapsed`` is the running
    total across intervals. Stopping a non-running watch is an error so tests
    catch unbalanced instrumentation.
    """

    elapsed: float = 0.0
    _started_at: float = field(default=-1.0, repr=False)

    @property
    def running(self) -> bool:
        """Whether the stopwatch is currently started."""
        return self._started_at >= 0.0

    def start(self) -> None:
        """Begin a timing interval."""
        if self.running:
            raise RuntimeError("Stopwatch.start() called while already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        """End the current interval and return the total elapsed time."""
        if not self.running:
            raise RuntimeError("Stopwatch.stop() called while not running")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = -1.0
        return self.elapsed

    def reset(self) -> None:
        """Zero the accumulated time (must not be running)."""
        if self.running:
            raise RuntimeError("Stopwatch.reset() called while running")
        self.elapsed = 0.0


class StageTimer:
    """Named-stage timer: ``with timer.stage("backward"): ...``.

    Accumulates host seconds per stage name. The report is a plain dict so
    it can be logged, asserted on in tests, or merged across runs.
    """

    def __init__(self) -> None:
        self._stages: Dict[str, Stopwatch] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time the enclosed block under ``name`` (re-entrant per name: no)."""
        watch = self._stages.setdefault(name, Stopwatch())
        watch.start()
        try:
            yield
        finally:
            watch.stop()

    def seconds(self, name: str) -> float:
        """Total host seconds accumulated under ``name`` (0.0 if unseen)."""
        watch = self._stages.get(name)
        return watch.elapsed if watch is not None else 0.0

    def report(self) -> Dict[str, float]:
        """Mapping of stage name to accumulated host seconds."""
        return {name: watch.elapsed for name, watch in self._stages.items()}

    def total(self) -> float:
        """Sum of all stage times."""
        return sum(watch.elapsed for watch in self._stages.values())
