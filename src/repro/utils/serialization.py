"""Serialization of experiment artifacts (traces, configs, results).

Artifacts are saved as JSON for metadata plus ``.npz`` for bulk arrays, so
results survive library-version changes and can be inspected with standard
tools. NumPy scalars/arrays are converted to built-in types on the way out.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Mapping, Union

import numpy as np

__all__ = ["to_jsonable", "save_json", "load_json", "save_arrays", "load_arrays"]

PathLike = Union[str, Path]


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-serializable built-ins.

    Handles dataclasses, numpy scalars/arrays, mappings, sets, and sequences.
    Unknown objects raise ``TypeError`` — silent stringification would let
    corrupted artifacts pass unnoticed.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: to_jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, Mapping):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(v) for v in obj]
    raise TypeError(f"cannot serialize object of type {type(obj).__name__}: {obj!r}")


def save_json(path: PathLike, obj: Any, *, indent: int = 2) -> Path:
    """Write ``obj`` (converted via :func:`to_jsonable`) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_jsonable(obj), indent=indent) + "\n")
    return path


def load_json(path: PathLike) -> Any:
    """Read JSON from ``path``."""
    return json.loads(Path(path).read_text())


def save_arrays(path: PathLike, arrays: Dict[str, np.ndarray]) -> Path:
    """Save named arrays to a compressed ``.npz`` at ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)
    return path


def load_arrays(path: PathLike) -> Dict[str, np.ndarray]:
    """Load a ``.npz`` produced by :func:`save_arrays` into a dict."""
    with np.load(Path(path)) as data:
        return {key: data[key] for key in data.files}
