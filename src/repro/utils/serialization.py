"""Serialization of experiment artifacts (traces, configs, results).

Artifacts are saved as JSON for metadata plus ``.npz`` for bulk arrays, so
results survive library-version changes and can be inspected with standard
tools. NumPy scalars/arrays are converted to built-in types on the way out.
"""

from __future__ import annotations

import dataclasses
import json
import math
from pathlib import Path, PurePath
from typing import Any, Dict, Mapping, Union

import numpy as np

__all__ = ["to_jsonable", "save_json", "load_json", "save_arrays", "load_arrays"]

PathLike = Union[str, Path]


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-serializable built-ins.

    Handles dataclasses, numpy scalars/arrays, paths, mappings, sets, and
    sequences. Unknown objects raise ``TypeError`` — silent stringification
    would let corrupted artifacts pass unnoticed. Non-finite floats raise
    ``ValueError``: bare ``NaN``/``Infinity`` tokens are invalid JSON, so an
    artifact header carrying one would not round-trip through a strict
    parser (the telemetry exporters deep-clean them to ``null``; artifact
    metadata must instead be cleaned — or dropped — at the call site).
    """
    if isinstance(obj, float):
        if not math.isfinite(obj):
            raise ValueError(
                f"non-finite float {obj!r} is not strict-JSON serializable; "
                "replace it with None (or drop the field) before saving"
            )
        return obj
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return to_jsonable(float(obj))
    if isinstance(obj, np.ndarray):
        return to_jsonable(obj.tolist())
    if isinstance(obj, PurePath):
        return str(obj)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: to_jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, Mapping):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(v) for v in obj]
    raise TypeError(f"cannot serialize object of type {type(obj).__name__}: {obj!r}")


def save_json(path: PathLike, obj: Any, *, indent: int = 2) -> Path:
    """Write ``obj`` (converted via :func:`to_jsonable`) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(to_jsonable(obj), indent=indent, allow_nan=False) + "\n"
    )
    return path


def load_json(path: PathLike) -> Any:
    """Read JSON from ``path``."""
    return json.loads(Path(path).read_text())


def save_arrays(path: PathLike, arrays: Dict[str, np.ndarray]) -> Path:
    """Save named arrays to a compressed ``.npz`` at ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)
    return path


def load_arrays(path: PathLike) -> Dict[str, np.ndarray]:
    """Load a ``.npz`` produced by :func:`save_arrays` into a dict."""
    with np.load(Path(path)) as data:
        return {key: data[key] for key in data.files}
