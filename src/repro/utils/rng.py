"""Deterministic random-number management.

Every stochastic component in the library draws from a generator produced by
this module. The design follows NumPy's ``SeedSequence`` spawning discipline:
a single experiment seed fans out into statistically independent child
streams, one per component (dataset generation, model initialization, each
virtual GPU's jitter process, LSH tables, ...). This makes whole experiments
reproducible bit-for-bit from one integer while keeping the streams
uncorrelated — the standard practice for parallel stochastic simulation.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Union

import numpy as np

__all__ = ["RngFactory", "make_rng", "spawn", "derive_seed"]

SeedLike = Union[int, np.random.SeedSequence, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Create a PCG64 :class:`numpy.random.Generator` from ``seed``.

    ``None`` yields OS entropy (non-reproducible); an ``int`` or
    ``SeedSequence`` yields a deterministic stream.
    """
    return np.random.default_rng(seed)


def spawn(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` independent generators from a single ``seed``.

    The children are derived via ``SeedSequence.spawn`` so the streams are
    independent regardless of how many are requested.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of streams: {n}")
    if isinstance(seed, np.random.SeedSequence):
        ss = seed
    else:
        ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def derive_seed(seed: SeedLike, *keys: Union[int, str]) -> int:
    """Derive a stable 63-bit child seed from ``seed`` and a key path.

    Unlike :func:`spawn`, the derivation is *keyed*: the same
    ``(seed, keys)`` pair always maps to the same child seed and distinct
    key paths map to (overwhelmingly likely) distinct seeds. Useful when a
    component needs a seed rather than a live generator, e.g. to store in a
    config that is serialized and later replayed.
    """
    entropy: list[int] = []
    if seed is not None:
        if isinstance(seed, np.random.SeedSequence):
            entropy.extend(int(x) for x in np.atleast_1d(seed.entropy))
        else:
            entropy.append(int(seed))
    for key in keys:
        if isinstance(key, str):
            # Stable string hashing (Python's hash() is salted per process).
            acc = 1469598103934665603  # FNV-1a 64-bit offset basis
            for byte in key.encode("utf-8"):
                acc = ((acc ^ byte) * 1099511628211) & 0xFFFFFFFFFFFFFFFF
            entropy.append(acc)
        else:
            entropy.append(int(key))
    ss = np.random.SeedSequence(entropy)
    return int(ss.generate_state(1, dtype=np.uint64)[0] >> 1)


class RngFactory:
    """A keyed factory of independent random generators.

    A factory is constructed once per experiment from the experiment seed.
    Components request their stream by name::

        factory = RngFactory(seed=42)
        data_rng = factory.get("data")
        gpu_rngs = [factory.get("gpu", i) for i in range(4)]

    Requesting the same key path twice returns generators with identical
    initial state, so component construction order cannot change results.
    """

    def __init__(self, seed: SeedLike = 0) -> None:
        self._seed = seed

    @property
    def seed(self) -> SeedLike:
        """The root seed this factory derives every stream from."""
        return self._seed

    def get(self, *keys: Union[int, str]) -> np.random.Generator:
        """Return the generator for the stream named by ``keys``."""
        if not keys:
            raise ValueError("RngFactory.get requires at least one key")
        return make_rng(derive_seed(self._seed, *keys))

    def child(self, *keys: Union[int, str]) -> "RngFactory":
        """Return a sub-factory rooted at ``keys`` (for nested components)."""
        return RngFactory(derive_seed(self._seed, *keys))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RngFactory(seed={self._seed!r})"
