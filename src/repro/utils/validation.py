"""Small argument-validation helpers shared across the library.

These helpers raise :class:`repro.exceptions.ConfigurationError` with
uniform, actionable messages. They exist so hot paths can validate inputs in
one line without each module reinventing the checks (and so tests can assert
on a single error type).
"""

from __future__ import annotations

import math
import warnings
from typing import Any, Dict, Mapping, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "check_positive",
    "check_nonnegative",
    "check_in_range",
    "check_probability",
    "check_integer",
    "check_one_of",
    "check_finite_array",
    "resolve_renamed_kwargs",
]


def resolve_renamed_kwargs(
    kwargs: Dict[str, Any],
    renames: Mapping[str, str],
    owner: str,
    *,
    stacklevel: int = 3,
) -> Dict[str, Any]:
    """Rewrite deprecated keyword spellings in place, with a warning.

    For each ``old -> new`` entry: passing ``old`` emits a
    ``DeprecationWarning`` and moves the value under ``new``; passing both
    spellings is a ``ConfigurationError``. Returns ``kwargs``.
    """
    for old, new in renames.items():
        if old not in kwargs:
            continue
        if new in kwargs:
            raise ConfigurationError(
                f"{owner}: got both {old!r} (deprecated) and {new!r}"
            )
        warnings.warn(
            f"{owner}: keyword {old!r} is deprecated, use {new!r}",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
        kwargs[new] = kwargs.pop(old)
    return kwargs


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; return it."""
    if not (value > 0):
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def check_nonnegative(name: str, value: float) -> float:
    """Require ``value >= 0``; return it."""
    if not (value >= 0):
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(
    name: str,
    value: float,
    lo: float = -math.inf,
    hi: float = math.inf,
    *,
    inclusive: bool = True,
) -> float:
    """Require ``lo <= value <= hi`` (or strict when ``inclusive=False``)."""
    ok = (lo <= value <= hi) if inclusive else (lo < value < hi)
    if not ok:
        bracket = "[]" if inclusive else "()"
        raise ConfigurationError(
            f"{name} must be in {bracket[0]}{lo}, {hi}{bracket[1]}, got {value!r}"
        )
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``; return it."""
    return check_in_range(name, value, 0.0, 1.0)


def check_integer(name: str, value: Any) -> int:
    """Require an integral value (bool excluded); return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    return int(value)


def check_one_of(name: str, value: Any, options: Sequence[Any]) -> Any:
    """Require ``value`` to be one of ``options``; return it."""
    if value not in options:
        raise ConfigurationError(
            f"{name} must be one of {list(options)!r}, got {value!r}"
        )
    return value


def check_finite_array(name: str, array: np.ndarray) -> np.ndarray:
    """Require every element of ``array`` to be finite; return it."""
    if not np.all(np.isfinite(array)):
        bad = int(np.size(array) - np.count_nonzero(np.isfinite(array)))
        raise ConfigurationError(
            f"{name} contains {bad} non-finite element(s) (nan/inf)"
        )
    return array
