"""ASCII line charts: terminal renderings of the paper's figures.

:func:`ascii_plot` draws one or more ``(x, y)`` series on a character
canvas with axes, tick labels, and a legend — so the benches can show the
actual *shape* of Figure 4/5/6 curves in any terminal or CI log, not just
sample lists. Pure stdlib + numpy, no plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ascii_plot", "sparkline"]

#: Glyphs assigned to series, in order.
_MARKERS = "*o+x#@%&"
_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], *, width: Optional[int] = None) -> str:
    """A one-line unicode sparkline of ``values`` (empty input -> '')."""
    vals = np.asarray(list(values), dtype=float)
    if vals.size == 0:
        return ""
    if width is not None and vals.size > width > 0:
        idx = np.linspace(0, vals.size - 1, width).round().astype(int)
        vals = vals[idx]
    lo, hi = float(np.nanmin(vals)), float(np.nanmax(vals))
    if not np.isfinite(lo) or not np.isfinite(hi):
        return "?" * vals.size
    span = hi - lo
    if span == 0:
        return _SPARK_LEVELS[0] * vals.size
    levels = ((vals - lo) / span * (len(_SPARK_LEVELS) - 1)).round().astype(int)
    return "".join(_SPARK_LEVELS[level] for level in levels)


def _format_tick(value: float) -> str:
    return f"{value:.3g}"


def ascii_plot(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    *,
    width: int = 64,
    height: int = 16,
    title: Optional[str] = None,
    xlabel: str = "x",
    ylabel: str = "y",
) -> str:
    """Render named ``(x, y)`` series as an ASCII chart.

    Points are plotted on a shared axis range with linear interpolation
    between samples, one marker glyph per series, and a legend. Series with
    no points are listed in the legend as "(no data)".
    """
    if width < 16 or height < 4:
        raise ValueError(f"canvas too small: {width}x{height}")
    populated = {
        name: np.asarray(points, dtype=float)
        for name, points in series.items()
        if len(points) > 0
    }
    lines: List[str] = []
    if title:
        lines.append(title)
    if not populated:
        lines.append("(no data)")
        return "\n".join(lines)

    all_x = np.concatenate([p[:, 0] for p in populated.values()])
    all_y = np.concatenate([p[:, 1] for p in populated.values()])
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    canvas = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        return int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))

    def to_row(y: float) -> int:
        return (height - 1) - int(
            round((y - y_lo) / (y_hi - y_lo) * (height - 1))
        )

    for index, (name, points) in enumerate(populated.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        order = np.argsort(points[:, 0], kind="stable")
        pts = points[order]
        # Interpolate along columns so curves read as lines, not dots.
        cols = [to_col(x) for x in pts[:, 0]]
        for (c0, (x0, y0)), (c1, (x1, y1)) in zip(
            zip(cols, pts), zip(cols[1:], pts[1:])
        ):
            span = max(c1 - c0, 1)
            for c in range(c0, c1 + 1):
                t = (c - c0) / span
                y = y0 + t * (y1 - y0)
                canvas[to_row(y)][c] = marker
        for c, (_, y) in zip(cols, pts):
            canvas[to_row(y)][c] = marker

    gutter = max(len(_format_tick(y_hi)), len(_format_tick(y_lo)))
    for r, row in enumerate(canvas):
        if r == 0:
            label = _format_tick(y_hi).rjust(gutter)
        elif r == height - 1:
            label = _format_tick(y_lo).rjust(gutter)
        else:
            label = " " * gutter
        lines.append(f"{label} |{''.join(row)}")
    x_axis = f"{' ' * gutter} +{'-' * width}"
    lines.append(x_axis)
    left = _format_tick(x_lo)
    right = _format_tick(x_hi)
    middle = xlabel.center(width - len(left) - len(right))
    lines.append(f"{' ' * gutter}  {left}{middle}{right}")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}"
        for i, name in enumerate(populated)
    )
    empties = [name for name, pts in series.items() if len(pts) == 0]
    if empties:
        legend += "   " + "   ".join(f"({name}: no data)" for name in empties)
    lines.append(f"{ylabel}: {legend}")
    return "\n".join(lines)
