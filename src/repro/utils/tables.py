"""Plain-text table and series rendering for benchmark/report output.

The benchmark harness reproduces the paper's tables and figures as text:
tables become aligned ASCII grids, figures become per-series rows of
``(x, y)`` samples. Keeping the renderer dependency-free means benches can
print paper-style artifacts in any terminal or CI log.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional, Sequence

__all__ = [
    "format_table",
    "format_series",
    "format_kv",
    "format_sparkline",
    "format_timeline",
]

#: Eight-level block ramp for sparklines (U+2581..U+2588).
SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def _cell(value: Any, floatfmt: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    title: Optional[str] = None,
    floatfmt: str = ".4g",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Floats are formatted with ``floatfmt``; all other values via ``str``.
    Returns the table as a single string (no trailing newline).
    """
    str_rows = [[_cell(v, floatfmt) for v in row] for row in rows]
    ncols = len(headers)
    for i, row in enumerate(str_rows):
        if len(row) != ncols:
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {ncols}: {row!r}"
            )
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in str_rows)) if str_rows else len(headers[c])
        for c in range(ncols)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[tuple]],
    *,
    title: Optional[str] = None,
    xlabel: str = "x",
    ylabel: str = "y",
    floatfmt: str = ".4g",
    max_points: Optional[int] = None,
) -> str:
    """Render named ``(x, y)`` series — the text analogue of a figure.

    ``series`` maps a curve label (e.g. ``"Adaptive SGD (4 GPUs)"``) to its
    samples. When ``max_points`` is given, each curve is decimated evenly to
    at most that many points so long training traces stay readable.
    """
    lines = []
    if title:
        lines.append(title)
    for name, points in series.items():
        pts = list(points)
        if max_points is not None and len(pts) > max_points:
            step = (len(pts) - 1) / (max_points - 1)
            pts = [pts[round(i * step)] for i in range(max_points)]
        lines.append(f"  {name}  [{xlabel} -> {ylabel}]")
        rendered = ", ".join(
            f"({_cell(x, floatfmt)}, {_cell(y, floatfmt)})" for x, y in pts
        )
        lines.append(f"    {rendered}")
    return "\n".join(lines)


def format_timeline(
    lanes: Mapping[str, Sequence[tuple]],
    *,
    start: float,
    end: float,
    width: int = 64,
    title: Optional[str] = None,
    fill: str = ".",
    legend: Optional[Mapping[str, str]] = None,
) -> str:
    """Render labeled interval lanes as an ASCII timeline.

    ``lanes`` maps a lane label (e.g. ``"gpu0"``) to ``(t0, t1, glyph)``
    intervals on a shared ``[start, end]`` axis. Each lane becomes one row
    of ``width`` characters; uncovered columns show ``fill`` (idle). Later
    intervals overwrite earlier ones, so callers can layer nested spans
    (merge then all-reduce) in emission order. ``legend`` maps glyphs to
    descriptions for the footer line.
    """
    if width < 8:
        raise ValueError(f"timeline width must be >= 8, got {width}")
    if len(fill) != 1:
        raise ValueError(f"fill must be one character, got {fill!r}")
    span = end - start
    lines = []
    if title:
        lines.append(title)
    label_width = max((len(str(label)) for label in lanes), default=0)
    for label, intervals in lanes.items():
        row = [fill] * width
        for t0, t1, glyph in intervals:
            if span <= 0:
                c0, c1 = 0, width
            else:
                c0 = int((t0 - start) / span * width)
                c1 = int((t1 - start) / span * width)
                if c1 <= c0:
                    c1 = c0 + 1  # zero-width intervals still leave a mark
            c0 = max(0, min(c0, width - 1))
            c1 = max(c0 + 1, min(c1, width))
            glyph_char = (glyph or fill)[0]
            for c in range(c0, c1):
                row[c] = glyph_char
        lines.append(f"{str(label).ljust(label_width)} |{''.join(row)}|")
    axis_left = f"{start:.4g}s"
    axis_right = f"{end:.4g}s"
    pad = width - len(axis_left) - len(axis_right)
    lines.append(
        f"{' ' * label_width}  {axis_left}{' ' * max(1, pad)}{axis_right}"
    )
    if legend:
        lines.append(
            "   ".join(f"{glyph}={name}" for glyph, name in legend.items())
            + f"   {fill}=idle"
        )
    return "\n".join(lines)


def format_sparkline(
    values: Sequence[float], *, width: Optional[int] = None
) -> str:
    """Render ``values`` as a one-line block-character sparkline.

    Values are min-max scaled onto the 8-level block ramp; a constant (or
    single-value) series renders as the middle block so it reads as "flat"
    rather than "empty". ``width`` caps the output by striding through the
    series (always keeping the last value — the most recent run is the one
    the reader is looking for).
    """
    values = [float(v) for v in values]
    if not values:
        return ""
    if width is not None and width > 0 and len(values) > width:
        stride = len(values) / width
        picked = [values[int(i * stride)] for i in range(width - 1)]
        picked.append(values[-1])
        values = picked
    lo, hi = min(values), max(values)
    if hi <= lo:
        return SPARK_BLOCKS[len(SPARK_BLOCKS) // 2] * len(values)
    top = len(SPARK_BLOCKS) - 1
    return "".join(
        SPARK_BLOCKS[int(round((v - lo) / (hi - lo) * top))] for v in values
    )


def format_kv(pairs: Mapping[str, Any], *, floatfmt: str = ".4g") -> str:
    """Render a mapping as aligned ``key : value`` lines."""
    if not pairs:
        return ""
    width = max(len(str(k)) for k in pairs)
    return "\n".join(
        f"{str(k).ljust(width)} : {_cell(v, floatfmt)}" for k, v in pairs.items()
    )
