"""Discrete-event simulation engine (simpy-lite, built from scratch).

This package provides the virtual timeline on which the HeteroGPU cluster
runs: generator-based processes, one-shot events, timeouts, composite
conditions, counted resources, FIFO stores, and time-series monitors. The
scheduler is single-threaded and fully deterministic — equal-time events fire
in creation order — so every simulated experiment replays identically.
"""

from repro.sim.environment import Environment, Process
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.monitor import Monitor, MonitorSet
from repro.sim.resources import Resource, Store

__all__ = [
    "Environment",
    "Process",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Monitor",
    "MonitorSet",
    "Resource",
    "Store",
]
