"""Shared-resource primitives built on the event engine.

- :class:`Resource` — a counted semaphore with FIFO granting; models a device
  that can execute at most ``capacity`` concurrent tasks (a GPU's compute
  queue, a link, the CUDA launch lock).
- :class:`Store` — an unbounded FIFO of items with blocking ``get``; the
  dynamic scheduler uses one per GPU manager as its inbox.

Both hand out plain :class:`~repro.sim.events.Event` objects so processes
interact with them via ``yield``, exactly like timeouts.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.exceptions import SimulationError
from repro.sim.environment import Environment
from repro.sim.events import Event

__all__ = ["Resource", "Store"]


class Resource:
    """Counted FIFO semaphore.

    ``request()`` returns an event that fires when a slot is granted;
    ``release()`` frees a slot and wakes the next waiter. Releasing more than
    was acquired raises — that always indicates a scheduling bug.
    """

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"Resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = int(capacity)
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Number of processes waiting for a slot."""
        return len(self._waiters)

    def request(self) -> Event:
        """Event that fires once a slot is granted to the caller."""
        event = Event(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Free one slot; grants it to the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError("Resource.release() without a matching request")
        if self._waiters:
            # Hand the slot directly to the next waiter: usage stays constant.
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1


class Store:
    """Unbounded FIFO item queue with blocking ``get``.

    ``put(item)`` is immediate. ``get()`` returns an event whose value is the
    next item; if the store is empty the event stays pending until a producer
    puts. Waiting getters are served in FIFO order.
    """

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def waiting(self) -> int:
        """Number of blocked ``get`` requests."""
        return len(self._getters)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest blocked getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event whose value will be the next item (FIFO)."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event
