"""The discrete-event simulation environment and process machinery.

:class:`Environment` owns the virtual clock and the pending-event heap.
:class:`Process` wraps a Python generator: the generator ``yield``s events
(typically :class:`~repro.sim.events.Timeout` or resource requests) and is
resumed with the event's value when it fires; ``return value`` ends the
process and triggers it as an event with that value — so processes compose
(a process can ``yield`` another process).

This is a from-scratch simpy-lite sized for the HeteroGPU simulation: a
single-threaded, deterministic scheduler with (time, priority, sequence)
ordering so equal-time events always fire in creation order.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.exceptions import SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout, NORMAL

__all__ = ["Environment", "Process"]

ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running simulation process (itself an event: fires at termination).

    Created via :meth:`Environment.process`. The wrapped generator must yield
    :class:`Event` instances; yielding anything else is a programming error
    surfaced as :class:`~repro.exceptions.SimulationError`.
    """

    def __init__(self, env: "Environment", generator: ProcessGenerator,
                 name: Optional[str] = None) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"Environment.process() requires a generator, got {generator!r}"
            )
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off on the next scheduler step at the current time.
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)  # type: ignore[union-attr]
        bootstrap._triggered = True
        env._schedule(bootstrap, delay=0.0, priority=NORMAL)

    @property
    def is_alive(self) -> bool:
        """Whether the process has not yet terminated."""
        return not self._triggered

    def _run_callbacks(self) -> None:
        super()._run_callbacks()
        if self._exception is not None and not self._defused:
            # A dead process nobody was waiting on: abort the simulation
            # loudly rather than silently dropping it. (Bare events and
            # conditions may carry failures without escalation — they are
            # data; a process is control flow.)
            raise SimulationError(
                f"process {self.name!r} crashed at t={self.env.now:g} with "
                f"nobody waiting: {self._exception!r}"
            ) from self._exception

    def _resume(self, trigger: Event) -> None:
        """Advance the generator with the value (or exception) of ``trigger``."""
        try:
            if trigger._exception is not None:
                # Throwing a failure into a waiting generator consumes it:
                # the failure is now this process's to handle or re-raise.
                trigger._defused = True
                target = self._generator.throw(trigger._exception)
            else:
                target = self._generator.send(trigger._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            # Process died with an unhandled exception: propagate to waiters;
            # if nobody is waiting when the event fires, the simulation aborts
            # (see _run_callbacks).
            self.fail(exc)
            return
        if not isinstance(target, Event):
            error = SimulationError(
                f"process {self.name!r} yielded a non-event: {target!r}"
            )
            self.fail(error)
            return
        if target.processed:
            # Already fired: resume on the next step at the current time.
            rearm = Event(self.env)
            rearm._triggered = True
            rearm._value = target._value
            rearm._exception = target._exception
            rearm.callbacks.append(self._resume)  # type: ignore[union-attr]
            self.env._schedule(rearm, delay=0.0, priority=NORMAL)
        else:
            assert target.callbacks is not None
            target.callbacks.append(self._resume)


class Environment:
    """Owner of the virtual clock and the event heap.

    Typical driver::

        env = Environment()

        def worker(env):
            yield env.timeout(1.5)
            return "done"

        proc = env.process(worker(env))
        env.run()
        assert env.now == 1.5 and proc.value == "done"
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._heap: List[tuple] = []
        self._sequence = count()

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    # -- event construction -------------------------------------------------
    def event(self) -> Event:
        """A fresh pending event, to be triggered manually."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: Optional[str] = None) -> Process:
        """Start ``generator`` as a process; returns its termination event."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event firing when all of ``events`` have fired."""
        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event firing when the first of ``events`` fires."""
        return AnyOf(self, list(events))

    # -- scheduling --------------------------------------------------------
    def _schedule(self, event: Event, delay: float, priority: int) -> None:
        heapq.heappush(
            self._heap, (self._now + delay, priority, next(self._sequence), event)
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        when, _priority, _seq, event = heapq.heappop(self._heap)
        if when < self._now:  # pragma: no cover - guarded by construction
            raise SimulationError("time went backwards")
        self._now = when
        event._run_callbacks()

    def run(self, until: Optional[float] = None) -> float:
        """Run until the schedule drains or the clock reaches ``until``.

        Returns the final simulated time. With ``until`` set, the clock is
        advanced exactly to ``until`` even if the next event lies beyond it.
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"run(until={until}) is in the past (now={self._now})"
            )
        while self._heap:
            if until is not None and self.peek() > until:
                break
            self.step()
        if until is not None:
            self._now = max(self._now, float(until))
        return self._now

    def run_until_complete(self, process: Process) -> Any:
        """Run until ``process`` terminates; return its value."""
        while process.is_alive:
            if not self._heap:
                raise SimulationError(
                    f"deadlock: schedule drained but {process.name!r} is alive"
                )
            self.step()
        return process.value
