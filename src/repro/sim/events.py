"""Core event primitives for the discrete-event engine.

The engine follows the classic process-interaction style (as popularized by
SimPy): an :class:`Event` is a one-shot occurrence with a value and a list of
callbacks; processes are Python generators that ``yield`` events and are
resumed when those events fire. This module defines the event types; the
scheduler lives in :mod:`repro.sim.environment`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional, Sequence

from repro.exceptions import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.environment import Environment

__all__ = ["Event", "Timeout", "AllOf", "AnyOf"]

# Scheduling priorities: lower runs first at equal simulation time.
URGENT = 0  # internal bookkeeping (condition events)
NORMAL = 1  # ordinary events


class Event:
    """A one-shot occurrence on the simulation timeline.

    Lifecycle: *pending* -> *triggered* (scheduled onto the event queue with a
    value) -> *processed* (callbacks ran). Events may succeed with a value or
    fail with an exception; a failed event re-raises inside any process that
    is waiting on it.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False
        #: Set once some consumer took responsibility for a failure.
        self._defused = False

    @property
    def triggered(self) -> bool:
        """Whether the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (only meaningful once triggered)."""
        return self._triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The event's payload (raises if the event failed)."""
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value`` at the current time."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._triggered = True
        self._value = value
        self.env._schedule(self, delay=0.0, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event as failed; waiters will see ``exception`` raised."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() requires an exception, got {exception!r}")
        self._triggered = True
        self._exception = exception
        self.env._schedule(self, delay=0.0, priority=priority)
        return self

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None, "event processed twice"
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "processed" if self.processed else (
            "triggered" if self._triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = float(delay)
        self._triggered = True
        self._value = value
        env._schedule(self, delay=self.delay, priority=NORMAL)


class _Condition(Event):
    """Base for composite events over a fixed set of child events.

    Children that already fired by construction time are folded in
    immediately; the rest register callbacks. Subclasses implement
    :meth:`_on_child` to update completion state.
    """

    def __init__(self, env: "Environment", events: Sequence[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        for event in self._events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")
        self._pending = len(self._events)
        self._initial_check()
        for event in self._events:
            if self._triggered:
                break
            if event.processed:
                self._on_child(event)
            else:
                assert event.callbacks is not None
                event.callbacks.append(self._on_child)

    def _initial_check(self) -> None:
        """Hook run before children are examined (e.g. empty-set handling)."""

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires once every child event has fired; value is the list of values."""

    def _initial_check(self) -> None:
        if self._pending == 0:
            self.succeed([], priority=URGENT)

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            event._defused = True  # the condition re-raises it for us
            self.fail(event._exception, priority=URGENT)  # type: ignore[arg-type]
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([e._value for e in self._events], priority=URGENT)


class AnyOf(_Condition):
    """Fires as soon as any child fires; value is ``(index, value)``."""

    def _initial_check(self) -> None:
        if self._pending == 0:
            raise SimulationError("AnyOf requires at least one event")

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            event._defused = True  # the condition re-raises it for us
            self.fail(event._exception, priority=URGENT)  # type: ignore[arg-type]
            return
        self.succeed((self._events.index(event), event._value), priority=URGENT)
