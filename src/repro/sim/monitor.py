"""Time-series probes for simulation state.

A :class:`Monitor` records ``(time, value)`` samples for one named quantity
(queue depth, batch size, GPU utilization, ...). :class:`MonitorSet` groups
monitors for an experiment and exports everything as arrays for analysis or
serialization. Sampling is explicit — components call ``record`` at the
moments that matter — which keeps the engine itself observation-free.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sim.environment import Environment

__all__ = ["Monitor", "MonitorSet", "IdleAccountant"]


class IdleAccountant:
    """Busy/idle interval bookkeeping for a set of keyed lanes.

    Components report closed busy intervals (``observe(key, start, end)``)
    — e.g. one per ``step.compute`` span on a device — and the accountant
    accumulates, per key, total busy time and total *idle* time: the gaps
    between consecutive busy intervals. Back-to-back intervals contribute
    zero idle; an interval starting before the previous one ended clamps
    the gap at zero rather than going negative.

    Keeping this next to :class:`Monitor` lets trace analysis read idle
    time directly off a recording instead of re-deriving it from the span
    stream.
    """

    def __init__(self) -> None:
        #: key -> [first_start, last_end, busy_total, idle_total, n_intervals]
        self._lanes: Dict[object, List[float]] = {}

    def observe(self, key, start: float, end: float) -> None:
        """Account one busy interval ``[start, end]`` on lane ``key``.

        Intervals must be reported in non-decreasing ``start`` order per
        key (the natural order of a sequential device process).
        """
        start = float(start)
        end = float(end)
        if end < start:
            raise ValueError(
                f"busy interval ends before it starts: [{start}, {end}]"
            )
        lane = self._lanes.get(key)
        if lane is None:
            self._lanes[key] = [start, end, end - start, 0.0, 1]
            return
        lane[3] += max(0.0, start - lane[1])  # gap since the previous interval
        lane[1] = max(lane[1], end)
        lane[2] += end - start
        lane[4] += 1

    def keys(self) -> List[object]:
        """Lanes observed so far, in first-observation order."""
        return list(self._lanes)

    def __contains__(self, key) -> bool:
        return key in self._lanes

    def busy_time(self, key) -> float:
        """Total busy seconds on ``key`` (0.0 for an unobserved lane)."""
        lane = self._lanes.get(key)
        return lane[2] if lane is not None else 0.0

    def idle_time(self, key) -> float:
        """Total gap seconds between consecutive busy intervals on ``key``."""
        lane = self._lanes.get(key)
        return lane[3] if lane is not None else 0.0

    def as_records(self) -> List[Dict[str, object]]:
        """One JSON-friendly dict per lane, in first-observation order."""
        return [
            {
                "device": key,
                "first_ts": lane[0],
                "last_ts": lane[1],
                "busy_s": lane[2],
                "idle_s": lane[3],
                "intervals": int(lane[4]),
            }
            for key, lane in self._lanes.items()
        ]


class Monitor:
    """Append-only ``(time, value)`` series tied to an environment clock."""

    def __init__(self, env: Environment, name: str) -> None:
        self.env = env
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def __len__(self) -> int:
        return len(self._times)

    def record(self, value: float, time: Optional[float] = None) -> None:
        """Append a sample at ``time`` (default: the clock's current time)."""
        self._times.append(self.env.now if time is None else float(time))
        self._values.append(float(value))

    @property
    def times(self) -> np.ndarray:
        """Sample times as a float array."""
        return np.asarray(self._times, dtype=np.float64)

    @property
    def values(self) -> np.ndarray:
        """Sample values as a float array."""
        return np.asarray(self._values, dtype=np.float64)

    def last(self) -> Tuple[float, float]:
        """The most recent ``(time, value)`` sample."""
        if not self._times:
            raise IndexError(f"monitor {self.name!r} has no samples")
        return self._times[-1], self._values[-1]

    def time_average(
        self, until: Optional[float] = None, *, default: Optional[float] = None
    ) -> float:
        """Time-weighted average treating the series as a step function.

        Each value holds from its sample time to the next sample (or
        ``until``, default: the last sample time). Samples recorded after
        ``until`` are excluded, and the last included value is weighted only
        up to ``until``. An empty series raises ``ValueError`` unless
        ``default`` is given, in which case it is returned instead.
        """
        times = self.times
        values = self.values
        if times.size == 0:
            if default is not None:
                return float(default)
            raise ValueError(f"monitor {self.name!r} has no samples")
        end = times[-1] if until is None else float(until)
        # Truncate to the samples visible at `end`; `end` before the first
        # sample degenerates to the first value (the step extends backwards).
        k = int(np.searchsorted(times, end, side="right"))
        if k <= 1 or end <= times[0]:
            return float(values[0]) if k <= 1 else float(values[k - 1])
        times = times[:k]
        values = values[:k]
        edges = np.append(times, max(end, times[-1]))
        widths = np.diff(edges)
        total = widths.sum()
        if total == 0.0:
            return float(values[-1])
        return float(np.dot(widths, values) / total)


class MonitorSet:
    """A keyed collection of monitors sharing one environment."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._monitors: Dict[str, Monitor] = {}
        #: Per-device busy/idle accounting (fed by the telemetry recorder
        #: with ``step.compute`` spans; consumed by trace analysis).
        self.idle = IdleAccountant()

    def __contains__(self, name: str) -> bool:
        return name in self._monitors

    def __getitem__(self, name: str) -> Monitor:
        """Get-or-create the monitor called ``name``."""
        monitor = self._monitors.get(name)
        if monitor is None:
            monitor = Monitor(self.env, name)
            self._monitors[name] = monitor
        return monitor

    def names(self) -> List[str]:
        """All monitor names, in creation order."""
        return list(self._monitors)

    def as_arrays(self) -> Dict[str, np.ndarray]:
        """Flatten to ``{name}_times`` / ``{name}_values`` arrays for NPZ IO."""
        out: Dict[str, np.ndarray] = {}
        for name, monitor in self._monitors.items():
            out[f"{name}_times"] = monitor.times
            out[f"{name}_values"] = monitor.values
        return out

    def to_frame(self) -> Dict[str, np.ndarray]:
        """Long-format columns: ``monitor`` / ``time`` / ``value``.

        All series are concatenated into three aligned columns (one row per
        sample) — the tabular shape the telemetry exporters and external
        dataframe tooling consume.
        """
        names: List[str] = []
        times: List[np.ndarray] = []
        values: List[np.ndarray] = []
        for name, monitor in self._monitors.items():
            names.extend([name] * len(monitor))
            times.append(monitor.times)
            values.append(monitor.values)
        return {
            "monitor": np.asarray(names, dtype=object),
            "time": (
                np.concatenate(times) if times
                else np.empty(0, dtype=np.float64)
            ),
            "value": (
                np.concatenate(values) if values
                else np.empty(0, dtype=np.float64)
            ),
        }

    def to_records(self) -> List[Dict[str, object]]:
        """:meth:`to_frame` as a list of per-sample dicts (JSON-friendly)."""
        frame = self.to_frame()
        return [
            {"monitor": str(m), "time": float(t), "value": float(v)}
            for m, t, v in zip(frame["monitor"], frame["time"], frame["value"])
        ]

    def dump_jsonl(self, path) -> "Path":
        """Write one JSON object per sample to ``path``; returns the path.

        Non-finite values are serialized as ``null`` so the output is strict
        JSON Lines.
        """
        import json
        import math
        from pathlib import Path

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as fh:
            for record in self.to_records():
                value = record["value"]
                if isinstance(value, float) and not math.isfinite(value):
                    record["value"] = None
                fh.write(json.dumps(record, allow_nan=False) + "\n")
        return path
