"""Cluster membership: applying a lifecycle timeline to a live server.

:class:`ClusterMembership` is the runtime half of the elastic subsystem. It
owns the *active set* — which installed devices may be given work right now
— and advances it by pulling events from a
:class:`~repro.elastic.timeline.MembershipTimeline` cursor as the sim clock
moves. Trainers and the serving engine stop iterating the server's static
gpu list and instead ask membership: ``is_active(device_id)`` /
``active_ids`` / ``active_gpus()``.

Lifecycle semantics applied here:

- ``throttle`` / ``recover`` — the device's dynamic
  :meth:`~repro.gpu.device.VirtualGPU.set_speed_scale` multiplier changes;
  it stays in the active set.
- ``fail`` / ``leave`` — the device exits the active set. The two differ
  only in merge accounting (recorded for the trainer via
  :meth:`take_sync`): a leaver's in-flight update still merges, a failer's
  is discarded. Either transition is **suppressed** (recorded, not
  applied) if it would shrink the active set below ``min_active`` — the
  "active set never empty while work is in flight" invariant the property
  tests pin.
- ``join`` — an unknown device id is provisioned (a fresh
  :class:`~repro.gpu.device.VirtualGPU` with a seeded speed profile,
  installed via :meth:`~repro.gpu.cluster.MultiGPUServer.add_gpu`, which
  re-derives the interconnect); a known-but-inactive id re-enters with its
  throttle scale reset. Training admits joins only at mega-batch
  boundaries (the warm-start point — pass ``admit_joins=False`` from
  device managers and flush with ``admit_joins=True`` from the driver);
  serving admits them immediately.

Provisioned ids are kept contiguous: a join for an id that is neither
installed nor the next free slot is provisioned at the next slot and the
requested id recorded as ``alias`` — downstream arrays index by device id.

Merge accounting lives in :class:`UpdateLedger`: every update a device
*offers* toward a merge must be resolved — merged or discarded — exactly
once, across arbitrary churn schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.elastic.timeline import (
    MembershipEvent,
    MembershipTimeline,
    make_churn_timeline,
)
from repro.exceptions import ConfigurationError, MembershipError
from repro.gpu.cluster import MultiGPUServer
from repro.gpu.device import VirtualGPU
from repro.gpu.profiles import SpeedProfile
from repro.telemetry import NULL
from repro.telemetry.events import EVENT_MEMBERSHIP, GAUGE_ACTIVE_DEVICES
from repro.utils.rng import make_rng, derive_seed

__all__ = ["AppliedEvent", "UpdateLedger", "ClusterMembership"]


@dataclass(frozen=True)
class AppliedEvent:
    """The record of one delivered event: what happened when it arrived."""

    t: float
    kind: str
    device_id: int
    factor: Optional[float]
    source: str
    #: False when a lifecycle guard suppressed the transition.
    applied: bool
    note: str = ""


class UpdateLedger:
    """Exactly-once merge accounting for offered replica updates.

    Each mega-batch, every device that held a replica *offers* its update
    count; at the boundary the trainer resolves each offer as **merged**
    (the replica participated in Algorithm 2's normalization) or
    **discarded** (a failed replica). Resolving twice, or leaving an offer
    unresolved at :meth:`assert_drained`, raises
    :class:`~repro.exceptions.MembershipError` — the invariant the
    derandomized property tests sweep arbitrary churn schedules against.
    """

    def __init__(self) -> None:
        self._next_token = 0
        self._open: Dict[int, Tuple[int, int]] = {}  # token -> (device, updates)
        self.n_offered = 0
        self.n_merged = 0
        self.n_discarded = 0
        self.updates_merged = 0
        self.updates_discarded = 0

    def offer(self, device_id: int, n_updates: int) -> int:
        if n_updates < 0:
            raise MembershipError(
                f"device {device_id} offered a negative update count: {n_updates}"
            )
        token = self._next_token
        self._next_token += 1
        self._open[token] = (int(device_id), int(n_updates))
        self.n_offered += 1
        return token

    def resolve(self, token: int, *, merged: bool) -> None:
        if token not in self._open:
            raise MembershipError(
                f"offer token {token} already resolved (or never offered): "
                "each offered update must be merged or discarded exactly once"
            )
        _, n_updates = self._open.pop(token)
        if merged:
            self.n_merged += 1
            self.updates_merged += n_updates
        else:
            self.n_discarded += 1
            self.updates_discarded += n_updates

    @property
    def n_outstanding(self) -> int:
        return len(self._open)

    def assert_drained(self) -> None:
        if self._open:
            devices = sorted(d for d, _ in self._open.values())
            raise MembershipError(
                f"{len(self._open)} offered updates never resolved "
                f"(devices {devices})"
            )


class ClusterMembership:
    """The active-set state machine driving a server from a timeline.

    ``timeline`` may be a :class:`MembershipTimeline`, a churn preset name
    (resolved via :func:`~repro.elastic.timeline.make_churn_timeline` with
    ``duration_s``), or ``None`` for a static cluster that only the serving
    autoscaler mutates.
    """

    def __init__(
        self,
        server: MultiGPUServer,
        timeline: Optional[object] = None,
        *,
        duration_s: Optional[float] = None,
        seed: int = 0,
        min_active: int = 1,
        telemetry=None,
    ) -> None:
        if min_active < 1:
            raise ConfigurationError(f"min_active must be >= 1, got {min_active}")
        if isinstance(timeline, str):
            if duration_s is None:
                raise ConfigurationError(
                    "a churn preset name needs duration_s to place its events"
                )
            timeline = make_churn_timeline(
                timeline,
                n_devices=server.n_gpus,
                duration_s=duration_s,
                seed=seed,
            )
        elif timeline is None:
            timeline = MembershipTimeline()
        elif not isinstance(timeline, MembershipTimeline):
            raise ConfigurationError(
                f"timeline must be a MembershipTimeline or preset name, "
                f"got {type(timeline).__name__}"
            )
        self.server = server
        self.timeline = timeline
        self.min_active = min_active
        self.seed = seed
        self.telemetry = telemetry if telemetry is not None else NULL
        self._cursor = timeline.cursor()
        self._active: Set[int] = set(server.device_ids)
        self._pending_joins: List[MembershipEvent] = []
        self._failed_since_sync: Set[int] = set()
        self._departed_since_sync: Set[int] = set()
        self._joined_since_sync: List[int] = []
        self.ledger = UpdateLedger()
        self.applied_events: List[AppliedEvent] = []
        self.n_suppressed = 0
        self._join_rng = make_rng(derive_seed(seed, "elastic", "join-profiles"))

    # -- active-set queries --------------------------------------------------
    @property
    def active_ids(self) -> Tuple[int, ...]:
        return tuple(sorted(self._active))

    @property
    def n_active(self) -> int:
        return len(self._active)

    def is_active(self, device_id: int) -> bool:
        return device_id in self._active

    def active_gpus(self) -> List[VirtualGPU]:
        """Active devices, in slot order (the dynamic gpu list)."""
        return [g for g in self.server.gpus if g.device_id in self._active]

    # -- event delivery ------------------------------------------------------
    def poll(self, t: float, *, admit_joins: bool = True) -> List[AppliedEvent]:
        """Apply every event due at sim time ``t``; return what was applied.

        With ``admit_joins=False`` (device managers mid-mega-batch), due
        ``join`` events are parked; a later poll with ``admit_joins=True``
        (the driver, at a boundary) flushes them first — so joins take
        effect exactly at the warm-start point.
        """
        applied: List[AppliedEvent] = []
        if admit_joins and self._pending_joins:
            pending, self._pending_joins = self._pending_joins, []
            for event in pending:
                applied.append(self._apply(event, t))
        for event in self._cursor.due(t):
            if event.kind == "join" and not admit_joins:
                self._pending_joins.append(event)
                continue
            applied.append(self._apply(event, t))
        return applied

    def events_pending(self) -> int:
        """Undelivered timeline events plus parked joins."""
        return self._cursor.remaining + len(self._pending_joins)

    def next_event_t(self) -> Optional[float]:
        """Sim time of the next undelivered timeline event.

        Parked joins are already due (they flush on the next admitting
        poll), so they answer ``0.0``; ``None`` means the timeline is
        drained. Pollers use this to sleep exactly until the next event
        instead of burning a fixed cadence.
        """
        if self._pending_joins:
            return 0.0
        return self._cursor.peek_t()

    # -- autoscaler hooks ----------------------------------------------------
    def admit(
        self, t: float, device_id: Optional[int] = None, *, source: str = "autoscaler"
    ) -> AppliedEvent:
        """Synthesize a ``join`` (serving autoscaler scale-up)."""
        if device_id is None:
            inactive = [
                g.device_id
                for g in self.server.gpus
                if g.device_id not in self._active
            ]
            device_id = inactive[0] if inactive else self.server.n_gpus
        return self._apply(
            MembershipEvent(max(t, 0.0), "join", device_id, source=source), t
        )

    def retire(
        self, t: float, device_id: int, *, source: str = "autoscaler"
    ) -> AppliedEvent:
        """Synthesize a graceful ``leave`` (serving autoscaler scale-down)."""
        return self._apply(
            MembershipEvent(max(t, 0.0), "leave", device_id, source=source), t
        )

    # -- trainer synchronization --------------------------------------------
    def take_sync(self) -> Tuple[Set[int], Set[int], List[int]]:
        """Membership deltas since the last boundary: (failed, left, joined).

        Clears the accumulators — each transition is reported to the
        consumer exactly once, mirroring the ledger's exactly-once rule.
        """
        failed = self._failed_since_sync
        departed = self._departed_since_sync
        joined = self._joined_since_sync
        self._failed_since_sync = set()
        self._departed_since_sync = set()
        self._joined_since_sync = []
        return failed, departed, joined

    # -- summaries -----------------------------------------------------------
    @property
    def n_events(self) -> int:
        """Delivered lifecycle events (applied + suppressed)."""
        return len(self.applied_events)

    def summary(self) -> Dict[str, object]:
        by_kind: Dict[str, int] = {}
        for e in self.applied_events:
            if e.applied:
                by_kind[e.kind] = by_kind.get(e.kind, 0) + 1
        return {
            "n_events": self.n_events,
            "n_applied": sum(by_kind.values()),
            "n_suppressed": self.n_suppressed,
            "by_kind": by_kind,
            "final_devices": self.n_active,
            "updates_merged": self.ledger.updates_merged,
            "updates_discarded": self.ledger.updates_discarded,
        }

    # -- internals -----------------------------------------------------------
    def _provision(self, requested_id: int) -> VirtualGPU:
        installed = set(self.server.device_ids)
        device_id = (
            requested_id if requested_id not in installed else self.server.n_gpus
        )
        if device_id != self.server.n_gpus:
            # Keep ids contiguous: downstream arrays index by device id.
            device_id = self.server.n_gpus
        template = self.server.gpus[0]
        profile = SpeedProfile(
            base=float(self._join_rng.uniform(0.75, 1.0)),
            seed=derive_seed(self.seed, "elastic", "join-profile", device_id),
        )
        gpu = VirtualGPU(
            device_id=device_id,
            profile=profile,
            cost_model=template.cost_model,
            memory_bytes=template.memory_bytes,
        )
        self.server.add_gpu(gpu)
        return gpu

    def _record(self, record: AppliedEvent) -> AppliedEvent:
        self.applied_events.append(record)
        if not record.applied:
            self.n_suppressed += 1
        if self.telemetry.enabled:
            args = {
                "kind": record.kind,
                "source": record.source,
                "applied": record.applied,
            }
            if record.factor is not None:
                args["factor"] = record.factor
            if record.note:
                args["note"] = record.note
            self.telemetry.instant(
                EVENT_MEMBERSHIP, device=record.device_id, **args
            )
            self.telemetry.gauge(GAUGE_ACTIVE_DEVICES, float(self.n_active))
        return record

    def _suppress(self, event: MembershipEvent, t: float, note: str) -> AppliedEvent:
        return self._record(
            AppliedEvent(
                t=t,
                kind=event.kind,
                device_id=event.device_id,
                factor=event.factor,
                source=event.source,
                applied=False,
                note=note,
            )
        )

    def _apply(self, event: MembershipEvent, t: float) -> AppliedEvent:
        kind, dev = event.kind, event.device_id
        installed = set(self.server.device_ids)
        note = ""
        if kind in ("throttle", "recover"):
            if dev not in self._active:
                return self._suppress(event, t, "device not active")
            factor = event.factor if kind == "throttle" else 1.0
            self.server.device(dev).set_speed_scale(factor)
        elif kind in ("fail", "leave"):
            if dev not in self._active:
                return self._suppress(event, t, "device not active")
            if len(self._active) <= self.min_active:
                return self._suppress(
                    event, t, f"would shrink active set below {self.min_active}"
                )
            self._active.discard(dev)
            if kind == "fail":
                self._failed_since_sync.add(dev)
                self._departed_since_sync.discard(dev)
            else:
                self._departed_since_sync.add(dev)
        elif kind == "join":
            if dev in self._active:
                return self._suppress(event, t, "device already active")
            if dev in installed:
                self.server.device(dev).set_speed_scale(1.0)
                joined_id = dev
                note = "rejoin"
            else:
                gpu = self._provision(dev)
                joined_id = gpu.device_id
                if joined_id != dev:
                    note = f"alias for requested id {dev}"
            self._active.add(joined_id)
            self._joined_since_sync.append(joined_id)
            # A rejoin cancels a pending departure record for the same id.
            self._failed_since_sync.discard(joined_id)
            self._departed_since_sync.discard(joined_id)
            dev = joined_id
        return self._record(
            AppliedEvent(
                t=t,
                kind=kind,
                device_id=dev,
                factor=event.factor,
                source=event.source,
                applied=True,
                note=note,
            )
        )
