"""Elastic cluster membership: device lifecycle as a first-class event stream.

The subsystem has two halves:

- :mod:`repro.elastic.timeline` — the schedule: immutable, time-sorted
  ``join``/``leave``/``fail``/``throttle``/``recover`` events, composable by
  hand or generated from the seeded churn presets in
  :data:`repro.gpu.profiles.CHURN_PRESETS`.
- :mod:`repro.elastic.membership` — the runtime: a cursor-driven active-set
  state machine over a :class:`~repro.gpu.cluster.MultiGPUServer`, plus the
  exactly-once :class:`~repro.elastic.membership.UpdateLedger` merge
  accounting.

Consumed by the adaptive trainer (``membership=`` option), the serving
engine (``membership=`` + queue-depth autoscaler), and the CLI
(``repro train/serve --churn <preset>``). See DESIGN.md §14.
"""

from repro.elastic.membership import AppliedEvent, ClusterMembership, UpdateLedger
from repro.elastic.timeline import (
    EVENT_KINDS,
    MembershipEvent,
    MembershipTimeline,
    TimelineCursor,
    make_churn_timeline,
)

__all__ = [
    "EVENT_KINDS",
    "MembershipEvent",
    "MembershipTimeline",
    "TimelineCursor",
    "make_churn_timeline",
    "AppliedEvent",
    "ClusterMembership",
    "UpdateLedger",
]
