"""Device-lifecycle event stream: the ``MembershipTimeline``.

The elastic layer models cluster membership as a *deterministic, sim-clock
event stream*. A timeline is an immutable, time-sorted sequence of
:class:`MembershipEvent` records — ``join`` / ``leave`` / ``fail`` /
``throttle`` / ``recover`` — built either by hand (composable schedules via
:meth:`MembershipTimeline.merge`) or from a seeded churn preset
(:func:`make_churn_timeline`, presets declared in
:mod:`repro.gpu.profiles`).

Consumers never iterate the timeline directly; they pull events through a
:class:`TimelineCursor`, which delivers each event **exactly once, in
timestamp order**, as the simulation clock advances past it. That contract
(pinned by the derandomized property tests) is what lets the trainer, the
serving engine, and the telemetry layer all consume one schedule without
double-applying or reordering lifecycle transitions.

Event semantics (enforced downstream by
:class:`repro.elastic.membership.ClusterMembership`):

``join``
    A device is provisioned (or re-activated) and enters the active set.
``leave``
    Graceful departure: the device's in-flight update still merges with
    correct normalization before it is removed.
``fail``
    Abrupt loss: the device's in-flight update is discarded exactly once.
``throttle``
    The device stays active but its effective speed is multiplied by
    ``factor`` (0 < factor <= 1) — e.g. thermal or power capping.
``recover``
    The device's speed factor returns to 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.utils.rng import make_rng, derive_seed

__all__ = [
    "EVENT_KINDS",
    "MembershipEvent",
    "MembershipTimeline",
    "TimelineCursor",
    "make_churn_timeline",
]

#: Valid lifecycle transitions, in the order the docs discuss them.
EVENT_KINDS = ("join", "leave", "fail", "throttle", "recover")


@dataclass(frozen=True)
class MembershipEvent:
    """One device-lifecycle transition at sim time ``t``.

    ``factor`` is only meaningful for ``throttle`` events (the speed
    multiplier applied to the device); every other kind must leave it
    ``None``. ``source`` records who scheduled the event — ``"timeline"``
    for authored/preset schedules, ``"autoscaler"`` for events the serving
    autoscaler synthesizes against queue depth.
    """

    t: float
    kind: str
    device_id: int
    factor: Optional[float] = None
    source: str = "timeline"

    def __post_init__(self) -> None:
        if not (isinstance(self.t, (int, float)) and math.isfinite(self.t)):
            raise ConfigurationError(f"event time must be finite, got {self.t!r}")
        if self.t < 0:
            raise ConfigurationError(f"event time must be >= 0, got {self.t}")
        if self.kind not in EVENT_KINDS:
            raise ConfigurationError(
                f"unknown event kind {self.kind!r}; expected one of {EVENT_KINDS}"
            )
        if self.device_id < 0 or self.device_id != int(self.device_id):
            raise ConfigurationError(
                f"device_id must be a non-negative integer, got {self.device_id!r}"
            )
        if self.kind == "throttle":
            if self.factor is None or not math.isfinite(self.factor):
                raise ConfigurationError(
                    f"throttle events require a finite factor, got {self.factor!r}"
                )
            if not (0.0 < self.factor <= 1.0):
                raise ConfigurationError(
                    f"throttle factor must be in (0, 1], got {self.factor}"
                )
        elif self.factor is not None:
            raise ConfigurationError(
                f"{self.kind!r} events must not carry a factor (got {self.factor})"
            )


class MembershipTimeline:
    """An immutable, time-sorted schedule of membership events.

    Construction sorts by timestamp with a *stable* sort, so events at the
    same instant keep their authoring order — composing two timelines with
    :meth:`merge` is therefore deterministic.
    """

    def __init__(self, events: Iterable[MembershipEvent] = ()) -> None:
        evs = list(events)
        for e in evs:
            if not isinstance(e, MembershipEvent):
                raise ConfigurationError(
                    f"timeline entries must be MembershipEvent, got {type(e).__name__}"
                )
        self._events: Tuple[MembershipEvent, ...] = tuple(
            sorted(evs, key=lambda e: e.t)
        )

    @property
    def events(self) -> Tuple[MembershipEvent, ...]:
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[MembershipEvent]:
        return iter(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MembershipTimeline({len(self._events)} events)"

    def merge(self, other: "MembershipTimeline") -> "MembershipTimeline":
        """Compose two schedules into one (stable time order preserved)."""
        return MembershipTimeline(self._events + tuple(other))

    def scaled(self, time_scale: float) -> "MembershipTimeline":
        """A copy with every timestamp multiplied by ``time_scale``."""
        if not (math.isfinite(time_scale) and time_scale > 0):
            raise ConfigurationError(
                f"time_scale must be finite and > 0, got {time_scale}"
            )
        return MembershipTimeline(
            MembershipEvent(e.t * time_scale, e.kind, e.device_id, e.factor, e.source)
            for e in self._events
        )

    def counts(self) -> Dict[str, int]:
        """Events per kind — the ``{"fail": 1, "join": 2, ...}`` summary."""
        out: Dict[str, int] = {}
        for e in self._events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def cursor(self) -> "TimelineCursor":
        return TimelineCursor(self)


class TimelineCursor:
    """Consumes a timeline: each event is delivered exactly once, in order.

    ``due(t)`` returns (and permanently consumes) every not-yet-delivered
    event with timestamp ``<= t``. Calls with a smaller ``t`` than a
    previous call simply return nothing — the cursor never rewinds, so no
    event can be delivered twice, and because the timeline is time-sorted
    the concatenation of all ``due`` results is in timestamp order.
    """

    def __init__(self, timeline: MembershipTimeline) -> None:
        self._events = timeline.events
        self._pos = 0

    @property
    def delivered(self) -> int:
        return self._pos

    @property
    def remaining(self) -> int:
        return len(self._events) - self._pos

    def peek_t(self) -> Optional[float]:
        """Timestamp of the next undelivered event, or ``None`` if drained."""
        if self._pos >= len(self._events):
            return None
        return self._events[self._pos].t

    def due(self, t: float) -> Tuple[MembershipEvent, ...]:
        if not (isinstance(t, (int, float)) and math.isfinite(t)):
            raise ConfigurationError(f"cursor time must be finite, got {t!r}")
        start = self._pos
        while self._pos < len(self._events) and self._events[self._pos].t <= t:
            self._pos += 1
        return self._events[start:self._pos]


def _preset_spec(profile: str) -> dict:
    from repro.gpu.profiles import CHURN_PRESETS

    if profile not in CHURN_PRESETS:
        raise ConfigurationError(
            f"unknown churn profile {profile!r}; "
            f"expected one of {sorted(CHURN_PRESETS)}"
        )
    return CHURN_PRESETS[profile]


def _window_t(rng, duration_s: float, lo: float, hi: float) -> float:
    return float(duration_s * rng.uniform(lo, hi))


def make_churn_timeline(
    profile: str,
    *,
    n_devices: int,
    duration_s: float,
    seed: int = 0,
) -> MembershipTimeline:
    """Build a seeded churn timeline from a named preset.

    Presets are declared in :data:`repro.gpu.profiles.CHURN_PRESETS` (see
    that module's docstring table for per-preset event rates). Generation
    is deterministic in ``(profile, n_devices, duration_s, seed)``: event
    times are jittered inside fixed fractional windows of ``duration_s``
    and targets are drawn from a seeded permutation of the initial device
    set. Joining devices get fresh ids ``n_devices, n_devices + 1, ...``.

    The generator never schedules more abrupt departures (``fail`` +
    ``leave``) than ``n_devices - 1``, so a preset can never empty the
    cluster on its own; :class:`~repro.elastic.membership.ClusterMembership`
    additionally suppresses any hand-authored event that would.

    ``spot-churn`` always yields >= 1 fail, >= 1 join, and >= 1 throttle
    strictly inside the run — the mix the elastic bench gate exercises.
    """
    if n_devices < 1:
        raise ConfigurationError(f"n_devices must be >= 1, got {n_devices}")
    if not (math.isfinite(duration_s) and duration_s > 0):
        raise ConfigurationError(
            f"duration_s must be finite and > 0, got {duration_s}"
        )
    spec = _preset_spec(profile)
    rng = make_rng(derive_seed(seed, "churn", profile, n_devices))
    perm = [int(i) for i in rng.permutation(n_devices)]
    events: list[MembershipEvent] = []
    next_join_id = n_devices
    departures = 0
    max_departures = n_devices - 1

    n_fail = int(spec.get("fails", 0))
    n_join = int(spec.get("joins", 0))
    n_leave = int(spec.get("leaves", 0))
    if spec.get("scale_with_devices"):
        extra = max(0, (n_devices - 2) // 2)
        n_fail += extra
        n_join += extra
    factor = float(spec.get("throttle_factor", 1.0))
    recover = bool(spec.get("recover", True))

    # Abrupt losses first (early in the run), replacements mid-run.
    for i in range(n_fail):
        if departures >= max_departures:
            break
        target = perm[departures % n_devices]
        events.append(
            MembershipEvent(_window_t(rng, duration_s, 0.2, 0.38), "fail", target)
        )
        departures += 1
    for _ in range(n_join):
        events.append(
            MembershipEvent(
                _window_t(rng, duration_s, 0.42, 0.6), "join", next_join_id
            )
        )
        next_join_id += 1
    for _ in range(n_leave):
        if departures >= max_departures + n_join:
            break
        target = perm[departures % n_devices]
        events.append(
            MembershipEvent(_window_t(rng, duration_s, 0.62, 0.78), "leave", target)
        )
        departures += 1

    throttles = spec.get("throttles", 0)
    if throttles == "all":
        throttle_targets = list(range(n_devices))
    else:
        start = departures % n_devices
        throttle_targets = [
            perm[(start + i) % n_devices] for i in range(int(throttles))
        ]
    for target in throttle_targets:
        t0 = _window_t(rng, duration_s, 0.5, 0.62)
        events.append(MembershipEvent(t0, "throttle", target, factor=factor))
        if recover:
            t1 = min(t0 + 0.22 * duration_s, 0.9 * duration_s)
            events.append(MembershipEvent(max(t1, t0), "recover", target))
    return MembershipTimeline(events)
