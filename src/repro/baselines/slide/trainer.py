"""The SLIDE baseline: LSH-sampled, per-sample CPU training.

SLIDE [Chen et al.] argues "smart algorithms over hardware acceleration":
per-sample SGD where the softmax is computed only over the LSH-retrieved
active labels, parallelized Hogwild-style across CPU threads. The paper
includes it as the CPU comparator (Figure 5): it achieves the best
*statistical* efficiency (one model update per sample — orders of magnitude
more updates per epoch than batched GPU SGD) but the worst *hardware*
efficiency, so every GPU configuration beats it on time-to-accuracy.

Simulation split, as everywhere in this library: the numerics are real
(true SimHash retrieval, sampled softmax, sparse updates); only the clock is
virtual (the :class:`~repro.gpu.device.VirtualCPU` prices each sample's
active-set-dependent flop count across threads, plus periodic LSH-rebuild
time). Hogwild's lock-free semantics are modeled by applying the per-sample
updates sequentially — the empirically observed near-collision-free regime
SLIDE operates in.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.slide.lsh import SimHashLSH
from repro.baselines.slide.sampler import ActiveLabelSampler
from repro.core.config import AdaptiveSGDConfig
from repro.data.dataset import XMLTask
from repro.exceptions import ConfigurationError
from repro.gpu.cluster import MultiGPUServer
from repro.harness.trainer_base import TrainerBase
from repro.harness.traces import TrainingTrace
from repro.perf.gather import RowGatherer
from repro.perf.slide_kernel import slide_chunk_step
from repro.perf.workspace import Workspace, spmm_into
from repro.sim.environment import Environment
from repro.sparse.ops import estimate_step_flops
from repro.telemetry.events import (
    COUNTER_UPDATES,
    SPAN_LSH_REBUILD,
    SPAN_STEP,
)
from repro.utils.rng import RngFactory

__all__ = ["SlideTrainer"]


class SlideTrainer(TrainerBase):
    """LSH-based sampled-softmax SGD on the (virtual) multicore CPU."""

    algorithm = "SLIDE"

    #: Per-sample learning rates above this destabilize sampled-softmax
    #: training (the underestimated partition function over-boosts true
    #: labels when retrieval is weak); the default LR clips the linear-scaling value here. SLIDE
    #: tunes its rate independently of the batched methods.
    LR_STABILITY_CEILING = 2e-2

    def __init__(
        self,
        task: XMLTask,
        server: MultiGPUServer,
        config: AdaptiveSGDConfig,
        *,
        lr: Optional[float] = None,
        n_tables: int = 32,
        n_bits: Optional[int] = None,
        rebuild_every: int = 1024,
        min_active: Optional[int] = None,
        max_active: Optional[int] = None,
        chunk_samples: int = 256,
        **kwargs,
    ) -> None:
        super().__init__(task, server, config, **kwargs)
        # Per-sample LR: linear scaling rule (batch size 1), clipped to the
        # sampled-softmax stability ceiling.
        self.lr = (
            float(lr)
            if lr is not None
            else min(config.base_lr / config.b_max, self.LR_STABILITY_CEILING)
        )
        if self.lr <= 0:
            raise ConfigurationError(f"lr must be > 0, got {self.lr}")
        if rebuild_every < 1:
            raise ConfigurationError(
                f"rebuild_every must be >= 1, got {rebuild_every}"
            )
        # LSH defaults follow SLIDE's regime: many tables with wide buckets
        # (retrieval quality is what keeps the sampled softmax stable).
        L = task.n_labels
        self.n_tables = n_tables
        self.n_bits = (
            n_bits
            if n_bits is not None
            else max(4, int(np.ceil(np.log2(max(L, 2)))) - 4)
        )
        self.rebuild_every = int(rebuild_every)
        self.min_active = min_active if min_active is not None else max(32, L // 24)
        self.max_active = max_active if max_active is not None else max(128, L // 6)
        self.chunk_samples = int(chunk_samples)

    # -- simulated costs -------------------------------------------------------
    def _rebuild_time(self) -> float:
        """Seconds to rehash every output neuron across all threads."""
        cpu = self.server.cpu
        flops = (
            2.0
            * self.arch.hidden[-1]
            * self.n_bits
            * self.n_tables
            * self.arch.n_labels
        )
        params = cpu.cost_model.params
        effective = 1.0 + params.thread_efficiency * (cpu.n_threads - 1)
        return flops / (params.flops_per_s_per_core * effective)

    # -- training loop ---------------------------------------------------------
    def _execute(self, env: Environment, time_budget_s: float) -> TrainingTrace:
        cfg = self.config
        cpu = self.server.cpu
        state = self.initial_state()
        W1, b1 = state["W1"], state["b1"]
        W2, b2 = state[f"W{len(self.arch.hidden) + 1}"], state[
            f"b{len(self.arch.hidden) + 1}"
        ]
        if len(self.arch.hidden) != 1:
            raise ConfigurationError(
                "SlideTrainer implements the paper's 3-layer model "
                f"(exactly one hidden layer); got hidden={self.arch.hidden}"
            )
        h_dim = self.arch.hidden[0]
        train = self.task.train
        lsh = SimHashLSH(
            h_dim, n_tables=self.n_tables, n_bits=self.n_bits,
            seed=self.data_seed,
        )
        lsh.rebuild(W2)
        sampler = ActiveLabelSampler(
            self.arch.n_labels, lsh,
            min_active=self.min_active, max_active=self.max_active,
            seed=self.data_seed,
        )
        order_rng = RngFactory(self.data_seed).get("slide-order")
        order = order_rng.permutation(train.n_samples)
        pos = 0

        trace = self.new_trace(n_devices=1)
        trace.metadata["config"] = cfg
        trace.metadata.update(
            n_tables=self.n_tables, n_bits=self.n_bits, lr=self.lr,
            min_active=self.min_active, max_active=self.max_active,
        )

        X, Y = train.X, train.Y
        layer_dims = tuple(self.arch.layer_dims)
        gather_x = RowGatherer(X)
        row_nnz_y = train.row_nnz_y
        workspace = self.workspace

        samples_done = 0
        since_rebuild = 0
        loss_sum, loss_count = 0.0, 0
        samples_per_checkpoint = cfg.mega_batch_size

        def take_rows(count: int) -> np.ndarray:
            """Next ``count`` rows of the shuffled order (wrapping an epoch)."""
            nonlocal pos, order
            out = np.empty(count, dtype=np.int64)
            filled = 0
            while filled < count:
                take = min(count - filled, len(order) - pos)
                out[filled:filled + take] = order[pos:pos + take]
                pos += take
                filled += take
                if pos >= len(order):
                    order = order_rng.permutation(train.n_samples)
                    pos = 0
            return out

        def train_chunk(rows: np.ndarray) -> float:
            """One vectorized chunk of per-sample updates; returns (loss, nnz).

            The numerics live in :func:`repro.perf.slide_kernel.slide_chunk_step`:
            every sample's gradient is evaluated at the chunk-start weights
            (SLIDE's Hogwild stale-read regime) and applied in one batched
            sampled-softmax update.
            """
            Xc = gather_x.gather(rows)
            H1 = workspace.buffer("slide-h1", rows.size, h_dim)
            spmm_into(Xc, W1, H1)
            H1 += b1
            np.maximum(H1, 0.0, out=H1)
            label_sets = [
                Y.indices[Y.indptr[r]:Y.indptr[r + 1]] for r in rows
            ]
            actives = sampler.sample_batch(H1, label_sets)
            loss = slide_chunk_step(
                Xc, H1, row_nnz_y[rows], actives,
                W1, b1, W2, b2, self.lr, workspace=workspace,
            )
            return loss, Xc.nnz

        def driver():
            nonlocal samples_done, since_rebuild, loss_sum, loss_count
            tel = self.telemetry
            self.record_device_controls([self.chunk_samples], [self.lr])
            self.record_checkpoint(
                trace, env, epochs=0.0, updates=0, samples=0,
                state=state, loss=float("nan"),
            )
            next_checkpoint = samples_per_checkpoint
            while env.now < time_budget_s:
                # Chunk boundaries align with both the checkpoint cadence and
                # the LSH rebuild cadence, so rebuilds happen at exactly the
                # same sample counts as the per-sample reference loop.
                chunk = min(
                    self.chunk_samples,
                    next_checkpoint - samples_done,
                    self.rebuild_every - since_rebuild,
                )
                rows = take_rows(chunk)
                # The CPU is SLIDE's single compute device: device=0.
                with tel.span(SPAN_STEP, device=0, size=chunk, nnz=None) as sp:
                    chunk_loss, nnz_total = train_chunk(rows)
                    sp.args["nnz"] = int(nnz_total)
                    loss_sum += chunk_loss
                    loss_count += chunk
                    since_rebuild += chunk
                    samples_done += chunk
                    # Price the chunk: mean per-sample flops across the chunk.
                    flops = estimate_step_flops(
                        1, max(1, nnz_total // max(chunk, 1)), layer_dims,
                        active_labels=self.max_active,
                    )
                    per_sample = (
                        flops["sparse"] + flops["dense"] + flops["update"]
                    )
                    dt = cpu.samples_time(per_sample, chunk)
                    cpu.record_busy(dt)
                    yield env.timeout(dt)
                # SLIDE applies one model update per sample.
                tel.counter(COUNTER_UPDATES, chunk, device=0)

                if since_rebuild >= self.rebuild_every:
                    since_rebuild = 0
                    with tel.span(
                        SPAN_LSH_REBUILD, device=0,
                        n_tables=self.n_tables, n_bits=self.n_bits,
                    ):
                        lsh.rebuild(W2)
                        yield env.timeout(self._rebuild_time())

                if samples_done >= next_checkpoint:
                    next_checkpoint += samples_per_checkpoint
                    self.record_device_controls([self.chunk_samples], [self.lr])
                    self.record_checkpoint(
                        trace, env,
                        epochs=samples_done / train.n_samples,
                        updates=samples_done,
                        samples=samples_done,
                        state=state,
                        loss=loss_sum / max(loss_count, 1),
                    )
                    loss_sum, loss_count = 0.0, 0
            return trace

        env.run_until_complete(env.process(driver(), name="slide-driver"))
        return trace
