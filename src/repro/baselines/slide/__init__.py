"""SLIDE — LSH-based sampled-softmax CPU training (the paper's CPU baseline).

- :mod:`repro.baselines.slide.lsh` — SimHash LSH tables over output neurons.
- :mod:`repro.baselines.slide.sampler` — per-sample active-label selection.
- :mod:`repro.baselines.slide.trainer` — the per-sample Hogwild-style trainer.
"""

from repro.baselines.slide.lsh import SimHashLSH
from repro.baselines.slide.sampler import ActiveLabelSampler
from repro.baselines.slide.trainer import SlideTrainer

__all__ = ["SimHashLSH", "ActiveLabelSampler", "SlideTrainer"]
