"""Active-label selection for SLIDE's sampled softmax.

For each training sample the active set is the union of

1. the sample's **true labels** (always included — they anchor the loss),
2. the labels the **LSH index retrieves** for the hidden activation
   (high-inner-product "competitors" whose probabilities matter most), and
3. uniformly random **negative fill** up to ``min_active`` (keeps gradient
   estimates sane when the LSH buckets come back nearly empty).

The set is capped at ``max_active`` by uniformly subsampling the retrieved
portion (true labels are never dropped).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.baselines.slide.lsh import SimHashLSH
from repro.exceptions import ConfigurationError
from repro.utils.rng import RngFactory

__all__ = ["ActiveLabelSampler"]


class ActiveLabelSampler:
    """Builds per-sample active label sets."""

    def __init__(
        self,
        n_labels: int,
        lsh: SimHashLSH,
        *,
        min_active: int = 32,
        max_active: int = 256,
        seed: int = 0,
    ) -> None:
        if n_labels < 1:
            raise ConfigurationError(f"n_labels must be >= 1, got {n_labels}")
        if not (1 <= min_active <= max_active):
            raise ConfigurationError(
                f"need 1 <= min_active <= max_active, got "
                f"[{min_active}, {max_active}]"
            )
        self.n_labels = n_labels
        self.lsh = lsh
        self.min_active = min(min_active, n_labels)
        self.max_active = min(max_active, n_labels)
        self._rng = RngFactory(seed).get("active-sampler")

    def sample(self, hidden: np.ndarray, true_labels: np.ndarray) -> np.ndarray:
        """Active label ids for one sample (unique, true labels first)."""
        true_labels = np.asarray(true_labels, dtype=np.int64)
        if true_labels.size == 0:
            raise ConfigurationError("a sample must have at least one true label")
        return self._assemble(self.lsh.query(hidden), true_labels)

    def sample_batch(
        self, hidden: np.ndarray, label_sets: Sequence[np.ndarray]
    ) -> List[np.ndarray]:
        """Active sets for a ``(n, dim)`` block of hidden activations.

        LSH signatures are computed in one batched projection; subsampling
        and negative fill consume the RNG in row order, so the result is
        identical to calling :meth:`sample` per row.
        """
        if hidden.ndim != 2 or hidden.shape[0] != len(label_sets):
            raise ConfigurationError(
                f"hidden block {hidden.shape} does not match "
                f"{len(label_sets)} label sets"
            )
        retrieved_all = self.lsh.query_batch(hidden)
        out: List[np.ndarray] = []
        for retrieved, labels in zip(retrieved_all, label_sets):
            labels = np.asarray(labels, dtype=np.int64)
            if labels.size == 0:
                raise ConfigurationError(
                    "a sample must have at least one true label"
                )
            out.append(self._assemble(retrieved, labels))
        return out

    def _assemble(
        self, retrieved: np.ndarray, true_labels: np.ndarray
    ) -> np.ndarray:
        """Cap/fill one retrieval into the final active set."""
        # Drop the true labels from the retrieved pool (kept separately).
        retrieved = retrieved[~np.isin(retrieved, true_labels)]

        budget = self.max_active - true_labels.size
        if budget < 0:
            # Degenerate: more true labels than the cap — keep them all.
            return np.unique(true_labels)
        if retrieved.size > budget:
            keep = self._rng.choice(retrieved.size, size=budget, replace=False)
            retrieved = retrieved[keep]

        active_count = true_labels.size + retrieved.size
        if active_count < self.min_active:
            # Negative fill: uniform labels outside the current set.
            need = self.min_active - active_count
            fill = self._rng.integers(0, self.n_labels, size=3 * need + 8)
            current = np.concatenate((true_labels, retrieved))
            fill = fill[~np.isin(fill, current)]
            fill = np.unique(fill)[:need]
            retrieved = np.concatenate((retrieved, fill))
        return np.concatenate((np.unique(true_labels), retrieved))
