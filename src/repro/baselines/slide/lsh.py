"""SimHash locality-sensitive hashing over output-layer neurons.

SLIDE's core trick: instead of computing the softmax over the full (huge)
label space, hash the output-layer weight vectors into LSH tables and, for
each sample, retrieve only the labels whose weights have high inner product
with the hidden activation — those dominate the softmax anyway.

We implement **SimHash** (signed random projections): a label ``j`` with
weight column ``w_j ∈ R^h`` gets, in each of ``n_tables`` tables, a
``n_bits``-bit signature ``sign(R w_j)``. A query activation retrieves the
union of its buckets across tables. SimHash collision probability grows
with cosine similarity, so retrieved labels are the high-activation ones.

**Multi-probe**: a query may additionally probe the buckets reached by
flipping its least-confident signature bits (the projections closest to the
hyperplane — exactly the bits most likely to disagree with a near
neighbour). Probing ``P`` buckets per table buys the recall of ``~P×`` more
tables at the hashing cost of one, which is what lets the inference path
run few, highly selective tables (large ``n_bits``) without losing the
moderate-similarity candidates.

Tables are rebuilt periodically (weights drift during training); the
rebuild cost is charged to the simulated clock by the trainer. Each rebuild
also keeps a *flat* sorted-array view of the buckets (one concatenated
``(table << n_bits) | code`` key space) so batched kernels can resolve
every (query, table, probe) bucket with a single ``searchsorted`` instead
of per-row dict lookups — see :mod:`repro.perf.lsh_topk`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import RngFactory

__all__ = ["SimHashLSH"]


class SimHashLSH:
    """Signed-random-projection LSH index over the columns of a matrix."""

    def __init__(
        self,
        dim: int,
        *,
        n_tables: int = 8,
        n_bits: int = 9,
        seed: int = 0,
    ) -> None:
        if dim < 1:
            raise ConfigurationError(f"dim must be >= 1, got {dim}")
        if n_tables < 1:
            raise ConfigurationError(f"n_tables must be >= 1, got {n_tables}")
        if not (1 <= n_bits <= 30):
            raise ConfigurationError(f"n_bits must be in [1, 30], got {n_bits}")
        self.dim = dim
        self.n_tables = n_tables
        self.n_bits = n_bits
        rng = RngFactory(seed).get("simhash-projections")
        # (n_tables, n_bits, dim) Gaussian projections, fixed for the run.
        self._proj = rng.normal(size=(n_tables, n_bits, dim)).astype(np.float32)
        self._powers = (1 << np.arange(n_bits)).astype(np.int64)
        # Per table: bucket-code -> array of item ids.
        self._tables: Optional[List[Dict[int, np.ndarray]]] = None
        # Flat view (one array over all tables) for the batched kernels:
        # sorted unique (table << n_bits) | code keys, bucket offsets into
        # the concatenated item array, and that item array.
        self._flat_codes: Optional[np.ndarray] = None
        self._flat_offsets: Optional[np.ndarray] = None
        self._flat_items: Optional[np.ndarray] = None
        self._n_items = 0
        self.rebuilds = 0

    @property
    def is_built(self) -> bool:
        """Whether :meth:`rebuild` has populated the tables."""
        return self._tables is not None

    @property
    def n_items(self) -> int:
        """Number of indexed items (0 before the first rebuild)."""
        return self._n_items

    def max_probes(self) -> int:
        """Largest supported ``n_probes``: the base bucket + every 1-bit flip."""
        return self.n_bits + 1

    def _check_probes(self, n_probes: int) -> None:
        if not (1 <= n_probes <= self.max_probes()):
            raise ConfigurationError(
                f"n_probes must be in [1, {self.max_probes()}], got {n_probes}"
            )

    def _codes(self, vectors: np.ndarray) -> np.ndarray:
        """Bucket codes for ``vectors`` (n, dim) → (n_tables, n)."""
        # (T, K, d) @ (d, n) -> (T, K, n); sign bits packed little-endian.
        proj = np.einsum("tkd,nd->tkn", self._proj, vectors, optimize=True)
        bits = proj > 0.0
        return np.einsum("tkn,k->tn", bits.astype(np.int64), self._powers)

    def probe_codes(self, vectors: np.ndarray, n_probes: int = 1) -> np.ndarray:
        """Bucket codes to probe for ``vectors`` — ``(n_tables, n_probes, n)``.

        Probe 0 is the query's own signature; probe ``p >= 1`` flips the
        signature bit whose projection has the ``p``-th smallest magnitude
        (the least confident bit — the standard multi-probe heuristic).
        """
        self._check_probes(n_probes)
        if vectors.ndim != 2 or vectors.shape[1] != self.dim:
            raise ConfigurationError(
                f"query block must be (n, {self.dim}), got {vectors.shape}"
            )
        proj = np.einsum("tkd,nd->tkn", self._proj, vectors, optimize=True)
        bits = proj > 0.0
        codes = np.einsum("tkn,k->tn", bits.astype(np.int64), self._powers)
        if n_probes == 1:
            return codes[:, None, :]
        # Ascending |projection|: flip order = confidence order. Stable sort
        # keeps the flip sequence deterministic under exact margin ties.
        flip_order = np.argsort(np.abs(proj), axis=1, kind="stable")
        out = np.empty(
            (self.n_tables, n_probes, vectors.shape[0]), dtype=np.int64
        )
        out[:, 0, :] = codes
        for p in range(1, n_probes):
            flip = np.take_along_axis(
                flip_order, np.full_like(flip_order[:, :1, :], p - 1), axis=1
            )[:, 0, :]
            out[:, p, :] = codes ^ self._powers[flip]
        return out

    def rebuild(self, weights: np.ndarray) -> None:
        """(Re)index ``weights`` — shape ``(dim, n_items)``, column per item."""
        if weights.ndim != 2 or weights.shape[0] != self.dim:
            raise ConfigurationError(
                f"weights must be ({self.dim}, n_items), got {weights.shape}"
            )
        items = weights.shape[1]
        codes = self._codes(np.ascontiguousarray(weights.T))  # (T, n)
        tables: List[Dict[int, np.ndarray]] = []
        flat_codes: List[np.ndarray] = []
        flat_counts: List[np.ndarray] = []
        flat_items: List[np.ndarray] = []
        for t in range(self.n_tables):
            order = np.argsort(codes[t], kind="stable")
            sorted_codes = codes[t][order]
            # Group contiguous runs of equal codes into buckets.
            boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
            starts = np.concatenate(([0], boundaries))
            stops = np.concatenate((boundaries, [items]))
            table = {
                int(sorted_codes[a]): order[a:b]
                for a, b in zip(starts, stops)
            }
            tables.append(table)
            # Flat view: keys are (t << n_bits) | code, globally sorted
            # because t ascends outside and codes ascend inside each table.
            flat_codes.append(sorted_codes[starts] | (t << self.n_bits))
            flat_counts.append(stops - starts)
            flat_items.append(order.astype(np.int64, copy=False))
        self._tables = tables
        self._flat_codes = np.concatenate(flat_codes)
        counts = np.concatenate(flat_counts)
        offsets = np.empty(counts.size + 1, dtype=np.int64)
        offsets[0] = 0
        np.cumsum(counts, out=offsets[1:])
        self._flat_offsets = offsets
        self._flat_items = np.concatenate(flat_items)
        self._n_items = items
        self.rebuilds += 1

    def flat_tables(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The flat bucket view: ``(sorted keys, offsets, item ids)``.

        Keys are ``(table << n_bits) | code``; bucket ``i`` holds
        ``items[offsets[i]:offsets[i + 1]]``. This is what
        :func:`repro.perf.lsh_topk.probe_candidates` binary-searches.
        """
        if self._flat_codes is None:
            raise ConfigurationError("flat_tables() before rebuild()")
        return self._flat_codes, self._flat_offsets, self._flat_items

    def query(self, vector: np.ndarray, *, n_probes: int = 1) -> np.ndarray:
        """Item ids colliding with ``vector`` in any probed bucket
        (sorted, unique)."""
        if self._tables is None:
            raise ConfigurationError("query() before rebuild()")
        if vector.shape != (self.dim,):
            raise ConfigurationError(
                f"query vector must have shape ({self.dim},), got {vector.shape}"
            )
        codes = self.probe_codes(vector[None, :], n_probes)[:, :, 0]  # (T, P)
        return self._lookup(codes)

    def query_batch(
        self, vectors: np.ndarray, *, n_probes: int = 1
    ) -> List[np.ndarray]:
        """Per-row retrieval for a ``(n, dim)`` query block.

        All signature projections run as one einsum over the block (the
        expensive part); only the bucket lookups remain per-row. Row *i* of
        the result equals ``query(vectors[i])``. (The serving path uses the
        fully vectorized :func:`repro.perf.lsh_topk.probe_candidates`
        instead, which returns the same sets in CSR form.)
        """
        if self._tables is None:
            raise ConfigurationError("query_batch() before rebuild()")
        codes = self.probe_codes(vectors, n_probes)  # (T, P, n)
        return [self._lookup(codes[:, :, i]) for i in range(vectors.shape[0])]

    def _lookup(self, codes: np.ndarray) -> np.ndarray:
        """Union of the bucket hits for one sample's ``(T, P)`` probe codes."""
        hits = [
            self._tables[t].get(int(code))
            for t in range(self.n_tables)
            for code in codes[t]
        ]
        hits = [h for h in hits if h is not None]
        if not hits:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(hits))
