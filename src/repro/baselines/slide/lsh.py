"""SimHash locality-sensitive hashing over output-layer neurons.

SLIDE's core trick: instead of computing the softmax over the full (huge)
label space, hash the output-layer weight vectors into LSH tables and, for
each sample, retrieve only the labels whose weights have high inner product
with the hidden activation — those dominate the softmax anyway.

We implement **SimHash** (signed random projections): a label ``j`` with
weight column ``w_j ∈ R^h`` gets, in each of ``n_tables`` tables, a
``n_bits``-bit signature ``sign(R w_j)``. A query activation retrieves the
union of its buckets across tables. SimHash collision probability grows
with cosine similarity, so retrieved labels are the high-activation ones.

Tables are rebuilt periodically (weights drift during training); the
rebuild cost is charged to the simulated clock by the trainer.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import RngFactory

__all__ = ["SimHashLSH"]


class SimHashLSH:
    """Signed-random-projection LSH index over the columns of a matrix."""

    def __init__(
        self,
        dim: int,
        *,
        n_tables: int = 8,
        n_bits: int = 9,
        seed: int = 0,
    ) -> None:
        if dim < 1:
            raise ConfigurationError(f"dim must be >= 1, got {dim}")
        if n_tables < 1:
            raise ConfigurationError(f"n_tables must be >= 1, got {n_tables}")
        if not (1 <= n_bits <= 30):
            raise ConfigurationError(f"n_bits must be in [1, 30], got {n_bits}")
        self.dim = dim
        self.n_tables = n_tables
        self.n_bits = n_bits
        rng = RngFactory(seed).get("simhash-projections")
        # (n_tables, n_bits, dim) Gaussian projections, fixed for the run.
        self._proj = rng.normal(size=(n_tables, n_bits, dim)).astype(np.float32)
        self._powers = (1 << np.arange(n_bits)).astype(np.int64)
        # Per table: bucket-code -> array of item ids.
        self._tables: Optional[List[Dict[int, np.ndarray]]] = None
        self._n_items = 0
        self.rebuilds = 0

    @property
    def is_built(self) -> bool:
        """Whether :meth:`rebuild` has populated the tables."""
        return self._tables is not None

    def _codes(self, vectors: np.ndarray) -> np.ndarray:
        """Bucket codes for ``vectors`` (n, dim) → (n_tables, n)."""
        # (T, K, d) @ (d, n) -> (T, K, n); sign bits packed little-endian.
        proj = np.einsum("tkd,nd->tkn", self._proj, vectors, optimize=True)
        bits = proj > 0.0
        return np.einsum("tkn,k->tn", bits.astype(np.int64), self._powers)

    def rebuild(self, weights: np.ndarray) -> None:
        """(Re)index ``weights`` — shape ``(dim, n_items)``, column per item."""
        if weights.ndim != 2 or weights.shape[0] != self.dim:
            raise ConfigurationError(
                f"weights must be ({self.dim}, n_items), got {weights.shape}"
            )
        items = weights.shape[1]
        codes = self._codes(np.ascontiguousarray(weights.T))  # (T, n)
        tables: List[Dict[int, np.ndarray]] = []
        for t in range(self.n_tables):
            order = np.argsort(codes[t], kind="stable")
            sorted_codes = codes[t][order]
            # Group contiguous runs of equal codes into buckets.
            boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
            starts = np.concatenate(([0], boundaries))
            stops = np.concatenate((boundaries, [items]))
            table = {
                int(sorted_codes[a]): order[a:b]
                for a, b in zip(starts, stops)
            }
            tables.append(table)
        self._tables = tables
        self._n_items = items
        self.rebuilds += 1

    def query(self, vector: np.ndarray) -> np.ndarray:
        """Item ids colliding with ``vector`` in any table (sorted, unique)."""
        if self._tables is None:
            raise ConfigurationError("query() before rebuild()")
        if vector.shape != (self.dim,):
            raise ConfigurationError(
                f"query vector must have shape ({self.dim},), got {vector.shape}"
            )
        codes = self._codes(vector[None, :])[:, 0]  # (T,)
        return self._lookup(codes)

    def query_batch(self, vectors: np.ndarray) -> List[np.ndarray]:
        """Per-row retrieval for a ``(n, dim)`` query block.

        All signature projections run as one einsum over the block (the
        expensive part); only the bucket lookups remain per-row. Row *i* of
        the result equals ``query(vectors[i])``.
        """
        if self._tables is None:
            raise ConfigurationError("query_batch() before rebuild()")
        if vectors.ndim != 2 or vectors.shape[1] != self.dim:
            raise ConfigurationError(
                f"query block must be (n, {self.dim}), got {vectors.shape}"
            )
        codes = self._codes(vectors)  # (T, n)
        return [self._lookup(codes[:, i]) for i in range(vectors.shape[0])]

    def _lookup(self, codes: np.ndarray) -> np.ndarray:
        """Union of the bucket hits for one sample's per-table codes."""
        hits = [
            self._tables[t].get(int(codes[t])) for t in range(self.n_tables)
        ]
        hits = [h for h in hits if h is not None]
        if not hits:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(hits))
