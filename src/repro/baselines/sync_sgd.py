"""TensorFlow-style synchronous gradient aggregation (mirrored strategy).

The paper's TensorFlow baseline extends the SLIDE testbed's single-GPU code
"to multi-GPUs ... with the mirrored strategy" (§V-A): every batch, each GPU
computes a partial gradient on its shard of the global batch against an
identical replica, the gradients are all-reduced, and every replica applies
the aggregated gradient — **a global synchronization after every batch**.

The two causes of its slow time-to-accuracy called out in §V-B are modeled
explicitly: (1) a per-step framework overhead factor (the TF runtime is a
general-purpose graph executor, slower per epoch than the specialized
HeteroGPU kernels) plus a single-stream all-reduce *per step*; and (2) the
per-batch global update itself, which makes every step pay the straggler
barrier that Elastic/Adaptive amortize over a mega-batch.

Both TensorFlow distribution strategies the paper tried are implemented:
``strategy="mirrored"`` (replicas on every GPU, gradients all-reduced
device-to-device — the variant the paper reports because it "proves
superior") and ``strategy="central_storage"`` (the model lives on the host;
every step ships gradients up over PCIe, aggregates on the CPU, and ships
the updated model back down — slower, kept for the strategy comparison).
"""

from __future__ import annotations

from typing import List

from repro.comm.allreduce import AllReduceAlgorithm
from repro.comm.tree import TreeAllReduce
from repro.core.config import AdaptiveSGDConfig
from repro.data.batching import BatchCursor
from repro.data.dataset import XMLTask
from repro.gpu.cluster import MultiGPUServer
from repro.gpu.cost import StepWorkload
from repro.harness.trainer_base import TrainerBase
from repro.harness.traces import TrainingTrace
from repro.sim.environment import Environment
from repro.sparse.model_state import ModelState, weighted_average
from repro.sparse.optimizer import sgd_step
from repro.telemetry.events import (
    COUNTER_UPDATES,
    SPAN_ALLREDUCE,
    SPAN_MERGE,
    SPAN_STEP,
)

__all__ = ["SyncSGDTrainer"]


class SyncSGDTrainer(TrainerBase):
    """Per-batch synchronous gradient aggregation (TF-mirrored analogue)."""

    algorithm = "TensorFlow"

    STRATEGIES = ("mirrored", "central_storage")

    def __init__(
        self,
        task: XMLTask,
        server: MultiGPUServer,
        config: AdaptiveSGDConfig,
        *,
        allreduce: AllReduceAlgorithm = None,
        framework_overhead: float = 1.35,
        strategy: str = "mirrored",
        **kwargs,
    ) -> None:
        super().__init__(task, server, config, **kwargs)
        # Mirrored NCCL-style aggregation: single-stream collective.
        self.allreduce = allreduce or TreeAllReduce()
        if framework_overhead < 1.0:
            raise ValueError(
                f"framework_overhead must be >= 1, got {framework_overhead}"
            )
        self.framework_overhead = float(framework_overhead)
        if strategy not in self.STRATEGIES:
            raise ValueError(
                f"strategy must be one of {self.STRATEGIES}, got {strategy!r}"
            )
        self.strategy = strategy

    def _sync_time(self, model_bytes: int) -> float:
        """Per-step synchronization cost under the selected strategy."""
        if self.strategy == "mirrored":
            return self.allreduce.time_seconds(
                model_bytes, self.server.topology
            ).total_s
        # Central storage: gradients host-ward + updated model device-ward,
        # serialized through the host link, plus a host-side aggregation
        # pass over the parameter vector per contributing GPU.
        n = self.server.n_gpus
        gpu0 = self.server.gpus[0]
        transfer = (n + 1) * gpu0.model_transfer_time(model_bytes)
        cpu_params = self.server.cpu.cost_model.params
        aggregate = (
            n * (model_bytes / 4.0) / cpu_params.flops_per_s_per_core
        )
        return transfer + aggregate

    def _execute(self, env: Environment, time_budget_s: float) -> TrainingTrace:
        n = self.server.n_gpus
        cfg = self.config
        layer_dims = tuple(self.arch.layer_dims)
        # Mirrored strategy: the global batch (b_max) is sharded over GPUs.
        shard = max(1, cfg.b_max // n)
        cursor = BatchCursor(self.task.train, seed=self.data_seed)

        model = self.initial_state()
        grads: List[ModelState] = [self.mlp.zeros_state() for _ in range(n)]
        model_bytes = model.nbytes

        trace = self.new_trace(n)
        trace.metadata["config"] = cfg
        trace.metadata["framework_overhead"] = self.framework_overhead
        trace.metadata["strategy"] = self.strategy

        total_updates = 0
        samples_per_checkpoint = cfg.mega_batch_size

        tel = self.telemetry

        def gpu_step(gpu_id: int, batch):
            """One shard's gradient computation (a simulation process)."""
            gpu = self.server.gpus[gpu_id]
            work = StepWorkload(batch.size, batch.nnz, layer_dims)
            dt = gpu.step_time(work, env.now, n_active_gpus=n)
            dt *= self.framework_overhead
            with tel.span(
                SPAN_STEP, device=gpu_id, size=batch.size, nnz=batch.nnz
            ):
                yield env.timeout(dt)
                gpu.record_busy(dt, start=env.now - dt)
                out = self.mlp.loss_and_grad(
                    batch, model, grad_out=grads[gpu_id],
                    workspace=self.workspace,
                )
            tel.counter(COUNTER_UPDATES, 1, device=gpu_id)
            return out

        def driver():
            nonlocal total_updates
            self.record_device_controls([shard] * n, [cfg.base_lr] * n)
            self.record_checkpoint(
                trace, env, epochs=0.0, updates=0, samples=0,
                state=model, loss=float("nan"),
            )
            loss_sum, loss_count = 0.0, 0
            next_checkpoint = samples_per_checkpoint
            while env.now < time_budget_s:
                shards = [cursor.next_batch(shard) for _ in range(n)]
                steps = [
                    env.process(gpu_step(i, shards[i]), name=f"tf-shard-{i}")
                    for i in range(n)
                ]
                # Per-batch barrier: the step takes as long as its slowest shard.
                results = yield env.all_of(steps)
                # Per-batch gradient synchronization (strategy-dependent).
                with tel.span(SPAN_MERGE, strategy=self.strategy):
                    sync = self._sync_time(model_bytes)
                    with tel.span(
                        SPAN_ALLREDUCE,
                        algorithm=self.allreduce.name
                        if self.strategy == "mirrored" else "host-aggregate",
                        nbytes=model_bytes,
                        total_s=sync,
                    ):
                        if sync > 0:
                            yield env.timeout(sync)
                    # Average the shard gradients (they cover equal sample
                    # counts) and apply the identical update on every
                    # (mirrored) replica.
                    grad = weighted_average(
                        [g for _, g in results], [1.0 / n] * n
                    )
                    sgd_step(model, grad, cfg.base_lr)
                total_updates += 1
                loss_sum += sum(loss for loss, _ in results) / n
                loss_count += 1

                if cursor.samples_served >= next_checkpoint:
                    next_checkpoint += samples_per_checkpoint
                    self.record_device_controls(
                        [shard] * n, [cfg.base_lr] * n
                    )
                    self.record_checkpoint(
                        trace, env,
                        epochs=cursor.epochs_completed,
                        updates=total_updates,
                        samples=cursor.samples_served,
                        state=model,
                        loss=loss_sum / max(loss_count, 1),
                    )
                    loss_sum, loss_count = 0.0, 0
            return trace

        env.run_until_complete(env.process(driver(), name="tf-driver"))
        return trace
