"""The paper's comparison set, reimplemented from scratch.

- :mod:`repro.baselines.sync_sgd` — TensorFlow-mirrored gradient aggregation.
- :mod:`repro.baselines.elastic` — Elastic SGD (K-step model averaging).
- :mod:`repro.baselines.crossbow` — CROSSBOW synchronous model averaging.
- :mod:`repro.baselines.slide` — SLIDE (LSH sampled softmax on CPU).
- :mod:`repro.baselines.minibatch` — single-GPU mini-batch SGD reference.
- :mod:`repro.baselines.async_sgd` — asynchronous SGD (spectrum endpoint).
"""

from repro.baselines.async_sgd import AsyncSGDTrainer
from repro.baselines.crossbow import CrossbowTrainer
from repro.baselines.elastic import ElasticSGDTrainer
from repro.baselines.minibatch import MiniBatchSGDTrainer
from repro.baselines.slide import ActiveLabelSampler, SimHashLSH, SlideTrainer
from repro.baselines.sync_sgd import SyncSGDTrainer

__all__ = [
    "AsyncSGDTrainer",
    "CrossbowTrainer",
    "ElasticSGDTrainer",
    "MiniBatchSGDTrainer",
    "ActiveLabelSampler",
    "SimHashLSH",
    "SlideTrainer",
    "SyncSGDTrainer",
]
