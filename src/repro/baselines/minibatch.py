"""Plain single-GPU mini-batch SGD.

The degenerate single-device case every multi-GPU method collapses to
(§V-B: "When the testing configuration has a single GPU, all the methods
become mini-batch SGD"). Used as the reference curve, in examples, and in
tests that check the multi-GPU trainers reduce to it.
"""

from __future__ import annotations

from repro.core.config import AdaptiveSGDConfig
from repro.data.batching import BatchCursor
from repro.data.dataset import XMLTask
from repro.gpu.cluster import MultiGPUServer
from repro.gpu.cost import StepWorkload
from repro.harness.trainer_base import TrainerBase
from repro.harness.traces import TrainingTrace
from repro.sim.environment import Environment
from repro.sparse.optimizer import sgd_step
from repro.telemetry.events import COUNTER_UPDATES, SPAN_STEP

__all__ = ["MiniBatchSGDTrainer"]


class MiniBatchSGDTrainer(TrainerBase):
    """Sequential mini-batch SGD on the server's first GPU."""

    algorithm = "Mini-batch SGD"

    def __init__(
        self,
        task: XMLTask,
        server: MultiGPUServer,
        config: AdaptiveSGDConfig,
        **kwargs,
    ) -> None:
        super().__init__(task, server, config, **kwargs)

    def _execute(self, env: Environment, time_budget_s: float) -> TrainingTrace:
        cfg = self.config
        gpu = self.server.gpus[0]
        layer_dims = tuple(self.arch.layer_dims)
        cursor = BatchCursor(self.task.train, seed=self.data_seed)
        state = self.initial_state()
        grad = self.mlp.zeros_state()
        trace = self.new_trace(n_devices=1)
        trace.metadata["config"] = cfg

        def driver():
            self.record_device_controls([cfg.b_max], [cfg.base_lr])
            self.record_checkpoint(
                trace, env, epochs=0.0, updates=0, samples=0,
                state=state, loss=float("nan"),
            )
            updates = 0
            loss_sum, loss_count = 0.0, 0
            next_checkpoint = cfg.mega_batch_size
            tel = self.telemetry
            while env.now < time_budget_s:
                batch = cursor.next_batch(cfg.b_max)
                work = StepWorkload(batch.size, batch.nnz, layer_dims)
                dt = gpu.step_time(work, env.now, n_active_gpus=1)
                with tel.span(
                    SPAN_STEP, device=0, size=batch.size, nnz=batch.nnz
                ):
                    yield env.timeout(dt)
                    gpu.record_busy(dt, start=env.now - dt)
                    loss, g = self.mlp.loss_and_grad(
                        batch, state, grad_out=grad, workspace=self.workspace
                    )
                    sgd_step(state, g, cfg.base_lr)
                tel.counter(COUNTER_UPDATES, 1, device=0)
                updates += 1
                loss_sum += loss
                loss_count += 1
                if cursor.samples_served >= next_checkpoint:
                    next_checkpoint += cfg.mega_batch_size
                    self.record_device_controls([cfg.b_max], [cfg.base_lr])
                    self.record_checkpoint(
                        trace, env,
                        epochs=cursor.epochs_completed,
                        updates=updates,
                        samples=cursor.samples_served,
                        state=state,
                        loss=loss_sum / max(loss_count, 1),
                    )
                    loss_sum, loss_count = 0.0, 0
            return trace

        env.run_until_complete(env.process(driver(), name="minibatch-driver"))
        return trace
