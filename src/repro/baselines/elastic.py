"""Elastic SGD — elastic model averaging / K-step averaging baseline.

§II-§III: "Elastic model averaging imposes a strict requirement that every
GPU has to process the same number of batches with the same size between two
model averaging stages." All GPUs train at ``b_max``; each processes its
fixed share of the mega-batch; merging waits for the **slowest** GPU (the
straggler problem Adaptive SGD removes). The merge itself uses the same
HeteroGPU update rule as Adaptive SGD — equal-weight averaging plus the
momentum term — which is why the two coincide on a single GPU (Figure 4's
shared curve).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.comm.allreduce import AllReduceAlgorithm
from repro.comm.ring import RingAllReduce
from repro.core.config import AdaptiveSGDConfig
from repro.core.merging import MergeWeights, merge_models
from repro.data.batching import BatchCursor
from repro.data.dataset import XMLTask
from repro.gpu.cluster import MultiGPUServer
from repro.gpu.cost import StepWorkload
from repro.harness.trainer_base import TrainerBase
from repro.harness.traces import TrainingTrace
from repro.sim.environment import Environment
from repro.sparse.model_state import ModelState
from repro.sparse.optimizer import sgd_step
from repro.telemetry.events import (
    COUNTER_UPDATES,
    GAUGE_STALENESS,
    SPAN_ALLREDUCE,
    SPAN_MERGE,
    SPAN_STEP,
    SPAN_TRANSFER,
)

__all__ = ["ElasticSGDTrainer"]


class ElasticSGDTrainer(TrainerBase):
    """K-step elastic model averaging with static, equal batch assignment."""

    algorithm = "Elastic SGD"

    def __init__(
        self,
        task: XMLTask,
        server: MultiGPUServer,
        config: AdaptiveSGDConfig,
        *,
        allreduce: AllReduceAlgorithm = None,
        **kwargs,
    ) -> None:
        super().__init__(task, server, config, **kwargs)
        self.allreduce = allreduce or RingAllReduce(n_streams=server.n_gpus)

    def _execute(self, env: Environment, time_budget_s: float) -> TrainingTrace:
        n = self.server.n_gpus
        cfg = self.config
        layer_dims = tuple(self.arch.layer_dims)
        # Static assignment: every GPU runs the same number of b_max batches
        # per mega-batch.
        batches_per_gpu = max(1, round(cfg.mega_batch_batches / n))

        cursor = BatchCursor(self.task.train, seed=self.data_seed)
        global_model = self.initial_state()
        prev_global = global_model.copy()
        replicas: List[ModelState] = [global_model.copy() for _ in range(n)]
        grads = [self.mlp.zeros_state() for _ in range(n)]
        model_bytes = global_model.nbytes
        reduce_work = np.empty((n, global_model.n_params), dtype=np.float32)
        uniform = MergeWeights(
            alphas=tuple(1.0 / n for _ in range(n)),
            branch="uniform",
            perturbed=False,
        )

        trace = self.new_trace(n)
        trace.metadata["config"] = cfg
        total_updates = 0
        loss_acc = {"sum": 0.0, "count": 0}

        tel = self.telemetry

        def worker(gpu_id: int):
            nonlocal total_updates
            gpu = self.server.gpus[gpu_id]
            with tel.span(SPAN_TRANSFER, device=gpu_id, nbytes=model_bytes):
                yield env.timeout(gpu.model_transfer_time(model_bytes))
            for _ in range(batches_per_gpu):
                # Static partitioning: batch size never adapts.
                batch = cursor.next_batch(cfg.b_max)
                work = StepWorkload(batch.size, batch.nnz, layer_dims)
                dt = gpu.step_time(work, env.now, n_active_gpus=n)
                with tel.span(
                    SPAN_STEP, device=gpu_id, size=batch.size, nnz=batch.nnz
                ):
                    yield env.timeout(dt)
                    gpu.record_busy(dt, start=env.now - dt)
                    loss, grad = self.mlp.loss_and_grad(
                        batch, replicas[gpu_id], grad_out=grads[gpu_id],
                        workspace=self.workspace,
                    )
                    sgd_step(replicas[gpu_id], grad, cfg.base_lr)
                tel.counter(COUNTER_UPDATES, 1, device=gpu_id)
                loss_acc["sum"] += loss
                loss_acc["count"] += 1
                total_updates += 1
            return gpu_id

        def driver():
            self.record_device_controls([cfg.b_max] * n, [cfg.base_lr] * n)
            self.record_checkpoint(
                trace, env, epochs=0.0, updates=0, samples=0,
                state=global_model, loss=float("nan"),
            )
            while env.now < time_budget_s:
                workers = [
                    env.process(worker(i), name=f"elastic-worker-{i}")
                    for i in range(n)
                ]
                # The merge barrier: wait for the slowest GPU.
                yield env.all_of(workers)
                tel.gauge(GAUGE_STALENESS, 0)
                with tel.span(SPAN_MERGE, branch="uniform"):
                    timing = self.allreduce.time_seconds(
                        model_bytes, self.server.topology
                    )
                    with tel.span(
                        SPAN_ALLREDUCE,
                        algorithm=self.allreduce.name,
                        nbytes=model_bytes,
                        **timing.to_args(),
                    ):
                        if timing.total_s > 0:
                            yield env.timeout(timing.total_s)
                        reduced_vec = self.allreduce.reduce(
                            [r.vector for r in replicas], uniform.alphas,
                            work=reduce_work,
                        )
                    merge_models(
                        replicas, uniform, global_model, prev_global,
                        gamma=cfg.gamma,
                        reduced=ModelState.from_vector(
                            global_model.spec, reduced_vec
                        ),
                    )
                self.record_device_controls(
                    [cfg.b_max] * n, [cfg.base_lr] * n
                )
                trace.batch_size_history.append(tuple([cfg.b_max] * n))
                trace.perturbation_history.append(False)
                trace.merge_branch_history.append("uniform")
                trace.staleness_history.append(0)
                for replica in replicas:
                    replica.copy_from(global_model)
                mean_loss = (
                    loss_acc["sum"] / loss_acc["count"]
                    if loss_acc["count"]
                    else float("nan")
                )
                loss_acc["sum"] = 0.0
                loss_acc["count"] = 0
                self.record_checkpoint(
                    trace, env,
                    epochs=cursor.epochs_completed,
                    updates=total_updates,
                    samples=cursor.samples_served,
                    state=global_model,
                    loss=mean_loss,
                )
            return trace

        env.run_until_complete(env.process(driver(), name="elastic-driver"))
        return trace
