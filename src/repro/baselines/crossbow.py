"""CROSSBOW-style synchronous model averaging (SMA) baseline.

CROSSBOW [Koliousis et al., PVLDB'19] trains one *learner* per GPU and keeps
a central average model; every batch, each learner applies its gradient
**plus a correction toward the central model**, and the central model
absorbs the aggregate correction (the synchronous variant of elastic
averaging / EASGD). §V-B of our paper: "The model update in CROSSBOW
includes the deviation of the local replica from the global model" and notes
its "sensitive global model update that can lead to divergent local
replicas" — poor accuracy on Amazon-670k, instability on Delicious-200k.

Per step, with learners ``w_i``, central model ``z`` and elasticity ``mu``::

    c_i = mu * (w_i - z)
    w_i <- w_i - lr * grad_i - c_i
    z   <- z + sum_i c_i

The paper reimplements CROSSBOW inside HeteroGPU (the original lacks sparse
support), so step costs use the same kernels as Elastic/Adaptive, with a
per-batch synchronization barrier plus a per-batch collective to exchange
corrections.
"""

from __future__ import annotations

from typing import List

from repro.comm.allreduce import AllReduceAlgorithm
from repro.comm.ring import RingAllReduce
from repro.core.config import AdaptiveSGDConfig
from repro.data.batching import BatchCursor
from repro.data.dataset import XMLTask
from repro.gpu.cluster import MultiGPUServer
from repro.gpu.cost import StepWorkload
from repro.harness.trainer_base import TrainerBase
from repro.harness.traces import TrainingTrace
from repro.sim.environment import Environment
from repro.sparse.model_state import ModelState
from repro.telemetry.events import (
    COUNTER_UPDATES,
    SPAN_ALLREDUCE,
    SPAN_MERGE,
    SPAN_STEP,
)
from repro.utils.validation import check_in_range, resolve_renamed_kwargs

__all__ = ["CrossbowTrainer"]


class CrossbowTrainer(TrainerBase):
    """Synchronous model averaging with per-learner correction terms."""

    algorithm = "CROSSBOW"

    def __init__(
        self,
        task: XMLTask,
        server: MultiGPUServer,
        config: AdaptiveSGDConfig,
        *,
        elasticity: float = 0.1,
        allreduce: AllReduceAlgorithm = None,
        **kwargs,
    ) -> None:
        resolve_renamed_kwargs(
            kwargs, {"mu": "elasticity"}, type(self).__name__
        )
        elasticity = kwargs.pop("elasticity", elasticity)
        super().__init__(task, server, config, **kwargs)
        check_in_range("elasticity", elasticity, 0.0, 1.0)
        self.elasticity = float(elasticity)
        self.allreduce = allreduce or RingAllReduce(n_streams=server.n_gpus)

    @property
    def mu(self) -> float:
        """Deprecated alias for :attr:`elasticity` (the EASGD ``mu``)."""
        return self.elasticity

    def _execute(self, env: Environment, time_budget_s: float) -> TrainingTrace:
        n = self.server.n_gpus
        cfg = self.config
        layer_dims = tuple(self.arch.layer_dims)
        cursor = BatchCursor(self.task.train, seed=self.data_seed)

        central = self.initial_state()
        learners: List[ModelState] = [central.copy() for _ in range(n)]
        grads = [self.mlp.zeros_state() for _ in range(n)]
        model_bytes = central.nbytes

        trace = self.new_trace(n)
        trace.metadata["config"] = cfg
        trace.metadata["mu"] = self.elasticity

        total_updates = 0
        samples_per_checkpoint = cfg.mega_batch_size
        tel = self.telemetry

        def learner_step(gpu_id: int, batch):
            gpu = self.server.gpus[gpu_id]
            work = StepWorkload(batch.size, batch.nnz, layer_dims)
            dt = gpu.step_time(work, env.now, n_active_gpus=n)
            with tel.span(
                SPAN_STEP, device=gpu_id, size=batch.size, nnz=batch.nnz
            ):
                yield env.timeout(dt)
                gpu.record_busy(dt, start=env.now - dt)
                out = self.mlp.loss_and_grad(
                    batch, learners[gpu_id], grad_out=grads[gpu_id],
                    workspace=self.workspace,
                )
            tel.counter(COUNTER_UPDATES, 1, device=gpu_id)
            return out

        def driver():
            nonlocal total_updates
            self.record_device_controls([cfg.b_max] * n, [cfg.base_lr] * n)
            self.record_checkpoint(
                trace, env, epochs=0.0, updates=0, samples=0,
                state=central, loss=float("nan"),
            )
            loss_sum, loss_count = 0.0, 0
            next_checkpoint = samples_per_checkpoint
            while env.now < time_budget_s:
                batches = [cursor.next_batch(cfg.b_max) for _ in range(n)]
                steps = [
                    env.process(learner_step(i, batches[i]), name=f"xbow-{i}")
                    for i in range(n)
                ]
                results = yield env.all_of(steps)
                with tel.span(SPAN_MERGE, branch="sma"):
                    # Correction exchange: one collective over the learners.
                    timing = self.allreduce.time_seconds(
                        model_bytes, self.server.topology
                    )
                    with tel.span(
                        SPAN_ALLREDUCE,
                        algorithm=self.allreduce.name,
                        nbytes=model_bytes,
                        **timing.to_args(),
                    ):
                        if timing.total_s > 0:
                            yield env.timeout(timing.total_s)

                    # SMA update: gradients + elastic corrections, central.
                    for i, (loss, grad) in enumerate(results):
                        w = learners[i]
                        # c_i = mu (w_i - z); applied to learner and center.
                        correction = w.vector - central.vector
                        correction *= self.elasticity
                        w.add_scaled(grad, -cfg.base_lr)
                        w.vector -= correction
                        central.vector += correction
                        total_updates += 1
                        loss_sum += loss
                        loss_count += 1

                if cursor.samples_served >= next_checkpoint:
                    next_checkpoint += samples_per_checkpoint
                    self.record_device_controls(
                        [cfg.b_max] * n, [cfg.base_lr] * n
                    )
                    self.record_checkpoint(
                        trace, env,
                        epochs=cursor.epochs_completed,
                        updates=total_updates,
                        samples=cursor.samples_served,
                        state=central,
                        loss=loss_sum / max(loss_count, 1),
                    )
                    loss_sum, loss_count = 0.0, 0
            return trace

        env.run_until_complete(env.process(driver(), name="xbow-driver"))
        return trace
