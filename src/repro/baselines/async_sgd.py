"""Asynchronous SGD (Hogwild-across-GPUs) — supplementary baseline.

§II describes asynchronous SGD as the no-synchronization extreme of the
elastic-averaging spectrum: every GPU computes a gradient against the
current shared model and applies it immediately, with no barrier. The
gradient is therefore *stale* by however many updates other GPUs landed
while it was being computed — the staleness emerges naturally from the
event ordering in the simulation. The paper notes that "if performed over a
large number of epochs, asynchronous SGD can result in poor convergence";
this trainer exists to reproduce that spectrum endpoint and for the
extended analyses (it is not part of Figure 4's comparison set).
"""

from __future__ import annotations

from repro.core.config import AdaptiveSGDConfig
from repro.data.batching import BatchCursor
from repro.data.dataset import XMLTask
from repro.gpu.cluster import MultiGPUServer
from repro.gpu.cost import StepWorkload
from repro.harness.trainer_base import TrainerBase
from repro.harness.traces import TrainingTrace
from repro.sim.environment import Environment
from repro.sparse.optimizer import sgd_step
from repro.telemetry.events import COUNTER_UPDATES, SPAN_STEP

__all__ = ["AsyncSGDTrainer"]


class AsyncSGDTrainer(TrainerBase):
    """Barrier-free shared-model SGD across all GPUs."""

    algorithm = "Async SGD"

    def __init__(
        self,
        task: XMLTask,
        server: MultiGPUServer,
        config: AdaptiveSGDConfig,
        **kwargs,
    ) -> None:
        super().__init__(task, server, config, **kwargs)

    def _execute(self, env: Environment, time_budget_s: float) -> TrainingTrace:
        n = self.server.n_gpus
        cfg = self.config
        layer_dims = tuple(self.arch.layer_dims)
        cursor = BatchCursor(self.task.train, seed=self.data_seed)
        shared = self.initial_state()
        grads = [self.mlp.zeros_state() for _ in range(n)]

        trace = self.new_trace(n)
        trace.metadata["config"] = cfg
        counters = {"updates": 0, "loss_sum": 0.0, "loss_count": 0}
        stop = {"flag": False}

        tel = self.telemetry

        def worker(gpu_id: int):
            gpu = self.server.gpus[gpu_id]
            while not stop["flag"]:
                batch = cursor.next_batch(cfg.b_max)
                # Snapshot semantics: the gradient is computed against the
                # model as of dispatch time...
                snapshot = shared.copy()
                work = StepWorkload(batch.size, batch.nnz, layer_dims)
                dt = gpu.step_time(work, env.now, n_active_gpus=n)
                with tel.span(
                    SPAN_STEP, device=gpu_id, size=batch.size, nnz=batch.nnz
                ):
                    yield env.timeout(dt)
                    gpu.record_busy(dt, start=env.now - dt)
                    loss, grad = self.mlp.loss_and_grad(
                        batch, snapshot, grad_out=grads[gpu_id],
                        workspace=self.workspace,
                    )
                    # ...and applied to whatever the shared model is *now* —
                    # that gap is the staleness.
                    sgd_step(shared, grad, cfg.base_lr)
                tel.counter(COUNTER_UPDATES, 1, device=gpu_id)
                counters["updates"] += 1
                counters["loss_sum"] += loss
                counters["loss_count"] += 1
            return gpu_id

        def driver():
            self.record_device_controls([cfg.b_max] * n, [cfg.base_lr] * n)
            self.record_checkpoint(
                trace, env, epochs=0.0, updates=0, samples=0,
                state=shared, loss=float("nan"),
            )
            workers = [
                env.process(worker(i), name=f"async-worker-{i}") for i in range(n)
            ]
            next_checkpoint = cfg.mega_batch_size
            while env.now < time_budget_s:
                # Poll at checkpoint granularity without a global barrier.
                while (
                    cursor.samples_served < next_checkpoint
                    and env.now < time_budget_s
                ):
                    yield env.timeout(time_budget_s / 1000.0)
                next_checkpoint = cursor.samples_served + cfg.mega_batch_size
                mean_loss = (
                    counters["loss_sum"] / counters["loss_count"]
                    if counters["loss_count"]
                    else float("nan")
                )
                counters["loss_sum"] = 0.0
                counters["loss_count"] = 0
                self.record_device_controls(
                    [cfg.b_max] * n, [cfg.base_lr] * n
                )
                self.record_checkpoint(
                    trace, env,
                    epochs=cursor.epochs_completed,
                    updates=counters["updates"],
                    samples=cursor.samples_served,
                    state=shared,
                    loss=mean_loss,
                )
            stop["flag"] = True
            return trace

        env.run_until_complete(env.process(driver(), name="async-driver"))
        return trace
