"""Local (per-replica) SGD update rules.

Replica updates inside a mega-batch are plain SGD steps — the momentum the
paper uses lives at the *global merge* (Algorithm 2, §III-B), not in the
per-GPU updates. A heavy-ball :class:`MomentumSGD` is provided as well for
the single-device baselines and ablations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.sparse.model_state import ModelState

__all__ = ["sgd_step", "MomentumSGD"]


def sgd_step(state: ModelState, grad: ModelState, lr: float) -> None:
    """In-place vanilla SGD: ``state -= lr * grad``."""
    if not (lr > 0):
        raise ConfigurationError(f"learning rate must be > 0, got {lr}")
    state.add_scaled(grad, -float(lr))


class MomentumSGD:
    """Heavy-ball SGD: ``v = gamma*v + grad; state -= lr*v`` (in place).

    The velocity buffer is lazily allocated with the first step's spec and
    reused thereafter (no per-step allocation).
    """

    def __init__(self, gamma: float = 0.9) -> None:
        if not (0.0 <= gamma < 1.0):
            raise ConfigurationError(f"momentum gamma must be in [0, 1), got {gamma}")
        self.gamma = float(gamma)
        self._velocity: Optional[ModelState] = None

    def step(self, state: ModelState, grad: ModelState, lr: float) -> None:
        """Apply one momentum update in place."""
        if not (lr > 0):
            raise ConfigurationError(f"learning rate must be > 0, got {lr}")
        if self._velocity is None:
            self._velocity = grad.copy()
        else:
            self._velocity.scale(self.gamma)
            self._velocity.add_scaled(grad, 1.0)
        state.add_scaled(self._velocity, -float(lr))

    def reset(self) -> None:
        """Drop the velocity (e.g. after a hard model overwrite)."""
        self._velocity = None
