"""Weight initialization for the sparse MLP.

The paper states (§V-A): "The initial values of the model weights are
randomly drawn from a normal distribution with standard deviation equal to
the number of units in every layer." Taken literally that std (e.g. 670,091
for the output layer) produces immediately-overflowing logits, so we read it
as the standard convention it abbreviates — std *scaled by* the layer's unit
count, i.e. ``1/sqrt(fan_in)`` (LeCun/He-style). Both interpretations are
implemented; ``scheme="paper_literal"`` exists for completeness and is
exercised by tests but not used in experiments.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.sparse.model_state import ModelState
from repro.utils.rng import RngFactory

__all__ = ["initialize", "INIT_SCHEMES"]

INIT_SCHEMES = ("fan_in", "he", "paper_literal")


def initialize(
    state: ModelState,
    *,
    seed: int = 0,
    scheme: str = "fan_in",
    bias_value: float = 0.0,
) -> ModelState:
    """Fill ``state`` in place with scheme-scaled normal draws; return it.

    Weight matrices (2-D parameters) get scaled normal noise; biases (1-D)
    get ``bias_value``. The RNG stream is keyed per parameter name, so two
    replicas initialized with the same seed are bit-identical regardless of
    parameter iteration order — the paper requires "all the algorithms are
    initialized with the same model".
    """
    if scheme not in INIT_SCHEMES:
        raise ConfigurationError(
            f"unknown init scheme {scheme!r}; options: {INIT_SCHEMES}"
        )
    factory = RngFactory(seed).child("init")
    for name, shape in state.spec:
        view = state[name]
        if len(shape) >= 2:
            fan_in = int(shape[0])
            if scheme == "fan_in":
                std = 1.0 / np.sqrt(fan_in)
            elif scheme == "he":
                std = np.sqrt(2.0 / fan_in)
            else:  # paper_literal
                std = float(fan_in)
            rng = factory.get(name)
            view[...] = rng.normal(0.0, std, size=shape).astype(np.float32)
        else:
            view[...] = np.float32(bias_value)
    return state
