"""XML evaluation metrics.

The paper reports **top-1 accuracy** on the test set: the fraction of test
samples whose highest-scoring predicted label is one of their true labels
(identical to precision@1 in the XML literature). P@3 and P@5 — the other
standard XML metrics — are provided for completeness and used by the
extended analyses.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.exceptions import DataFormatError

__all__ = ["topk_indices", "precision_at_k", "top1_accuracy"]


def topk_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Top-``k`` label ids per row, best-first, deterministic under ties.

    Ties are broken toward the **lowest label id** — the same order a stable
    argsort of ``-scores`` produces — on both execution paths, so the O(L)
    ``argpartition`` fast path and the full-sort path return identical ids.
    (Bare ``argpartition`` picks an arbitrary subset of the labels tied at
    the k-th score, which would make LSH-vs-exact recall reports flap.)
    """
    scores = np.asarray(scores)
    if scores.ndim != 2:
        raise DataFormatError(f"scores must be 2-D, got shape {scores.shape}")
    n, L = scores.shape
    k = int(k)
    if k < 1:
        raise DataFormatError(f"k must be a positive integer, got {k}")
    k = min(k, L)
    if k == L:
        # Every column is requested: the partition step would be a no-op
        # pass over all L columns, so go straight to the full ranking.
        return np.argsort(-scores, axis=1, kind="stable")

    # Partition finds the k-th largest *value* per row; the deterministic
    # member set is then "every score above it, plus the lowest-id ties".
    part = np.argpartition(scores, L - k, axis=1)[:, L - k:]
    thresh = np.take_along_axis(scores, part, axis=1).min(axis=1, keepdims=True)
    above = scores > thresh
    n_above = above.sum(axis=1, keepdims=True)
    tie = scores == thresh
    tie_rank = np.cumsum(tie, axis=1)  # 1-based rank of each tie, id-ascending
    keep = above | (tie & (tie_rank <= k - n_above))
    # Row-major nonzero → ids ascend within each row; exactly k kept per row.
    topk = np.nonzero(keep)[1].reshape(n, k)
    kept_scores = np.take_along_axis(scores, topk, axis=1)
    order = np.argsort(-kept_scores, axis=1, kind="stable")
    return np.take_along_axis(topk, order, axis=1)


def precision_at_k(
    scores: np.ndarray,
    Y: sp.csr_matrix,
    ks: Sequence[int] = (1, 3, 5),
    *,
    Y_bool: sp.csr_matrix = None,
) -> Dict[int, float]:
    """Precision@k for each k in ``ks``.

    ``P@k = mean_i |topk(scores_i) ∩ true_i| / k``. Uses ``argpartition`` so
    the cost is O(L) per sample rather than a full sort over the (huge in
    XML) label space. ``Y_bool`` optionally supplies a precomputed
    ``Y.astype(bool)`` — repeated evaluators (the per-checkpoint accuracy
    probe) cache it once per split instead of re-casting the whole label
    matrix on every call.
    """
    n, L = scores.shape
    if Y.shape != (n, L):
        raise DataFormatError(
            f"labels shape {Y.shape} does not match scores shape {scores.shape}"
        )
    ks = sorted(set(int(k) for k in ks))
    if not ks or ks[0] < 1:
        raise DataFormatError(f"ks must be positive integers, got {ks}")
    kmax = min(ks[-1], L)
    topk = topk_indices(scores, kmax)  # (n, kmax) best-first, tie-stable

    # Membership test against the sparse truth without densifying Y.
    if Y_bool is None:
        Y_bool = Y.astype(bool)
    rows = np.repeat(np.arange(n), kmax)
    flat = topk.ravel()
    # CSR membership: for each (row, label) pair check Y[row, label] != 0.
    hits_flat = np.asarray(Y_bool[rows, flat]).ravel()
    hits = hits_flat.reshape(n, kmax)

    out: Dict[int, float] = {}
    for k in ks:
        kk = min(k, kmax)
        out[k] = float(hits[:, :kk].sum() / (n * kk)) if n else 0.0
    return out


def top1_accuracy(
    scores: np.ndarray, Y: sp.csr_matrix, *, Y_bool: sp.csr_matrix = None
) -> float:
    """The paper's headline metric: P@1 on the given scores."""
    return precision_at_k(scores, Y, ks=(1,), Y_bool=Y_bool)[1]
