"""XML evaluation metrics.

The paper reports **top-1 accuracy** on the test set: the fraction of test
samples whose highest-scoring predicted label is one of their true labels
(identical to precision@1 in the XML literature). P@3 and P@5 — the other
standard XML metrics — are provided for completeness and used by the
extended analyses.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.exceptions import DataFormatError

__all__ = ["precision_at_k", "top1_accuracy"]


def precision_at_k(
    scores: np.ndarray,
    Y: sp.csr_matrix,
    ks: Sequence[int] = (1, 3, 5),
    *,
    Y_bool: sp.csr_matrix = None,
) -> Dict[int, float]:
    """Precision@k for each k in ``ks``.

    ``P@k = mean_i |topk(scores_i) ∩ true_i| / k``. Uses ``argpartition`` so
    the cost is O(L) per sample rather than a full sort over the (huge in
    XML) label space. ``Y_bool`` optionally supplies a precomputed
    ``Y.astype(bool)`` — repeated evaluators (the per-checkpoint accuracy
    probe) cache it once per split instead of re-casting the whole label
    matrix on every call.
    """
    n, L = scores.shape
    if Y.shape != (n, L):
        raise DataFormatError(
            f"labels shape {Y.shape} does not match scores shape {scores.shape}"
        )
    ks = sorted(set(int(k) for k in ks))
    if not ks or ks[0] < 1:
        raise DataFormatError(f"ks must be positive integers, got {ks}")
    kmax = min(ks[-1], L)

    if kmax == L:
        # Every column is requested: the partition step would be a no-op
        # pass over all L columns, so go straight to the full ranking.
        topk = np.argsort(-scores, axis=1, kind="stable")  # (n, L) best-first
    else:
        # Top-kmax label ids per row (unordered), then rank them by score.
        part = np.argpartition(scores, L - kmax, axis=1)[:, L - kmax:]
        part_scores = np.take_along_axis(scores, part, axis=1)
        order = np.argsort(-part_scores, axis=1, kind="stable")
        topk = np.take_along_axis(part, order, axis=1)  # (n, kmax) best-first

    # Membership test against the sparse truth without densifying Y.
    if Y_bool is None:
        Y_bool = Y.astype(bool)
    rows = np.repeat(np.arange(n), kmax)
    flat = topk.ravel()
    # CSR membership: for each (row, label) pair check Y[row, label] != 0.
    hits_flat = np.asarray(Y_bool[rows, flat]).ravel()
    hits = hits_flat.reshape(n, kmax)

    out: Dict[int, float] = {}
    for k in ks:
        kk = min(k, kmax)
        out[k] = float(hits[:, :kk].sum() / (n * kk)) if n else 0.0
    return out


def top1_accuracy(
    scores: np.ndarray, Y: sp.csr_matrix, *, Y_bool: sp.csr_matrix = None
) -> float:
    """The paper's headline metric: P@1 on the given scores."""
    return precision_at_k(scores, Y, ks=(1,), Y_bool=Y_bool)[1]
