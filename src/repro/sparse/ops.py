"""Sparse kernels shared by the trainers.

These are the "CUDA kernels" of the reproduction: the handful of sparse
linear-algebra primitives whose cost is proportional to input cardinality.
SLIDE's sampled-softmax path (:func:`sampled_logits`,
:func:`scatter_rows_add`) only touches the *active* label columns, which is
what gives it sub-linear per-sample cost in the label dimension.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ConfigurationError

__all__ = [
    "sampled_logits",
    "scatter_columns_add",
    "sparse_row_times_dense",
    "estimate_step_flops",
    "estimate_inference_flops",
]


def sparse_row_times_dense(
    X: sp.csr_matrix, row: int, W: np.ndarray
) -> np.ndarray:
    """``X[row] @ W`` touching only the row's non-zeros.

    Cost is O(nnz(row) * W.shape[1]) — the per-sample forward kernel used by
    SLIDE's one-sample-at-a-time updates.
    """
    start, stop = X.indptr[row], X.indptr[row + 1]
    cols = X.indices[start:stop]
    vals = X.data[start:stop]
    # Gather the touched rows of W once; a (nnz, h) view-product.
    return vals @ W[cols]


def sampled_logits(
    hidden: np.ndarray,
    W_out: np.ndarray,
    b_out: np.ndarray,
    active: np.ndarray,
    *,
    W_active: np.ndarray = None,
) -> np.ndarray:
    """Output logits restricted to the ``active`` label subset.

    ``hidden`` is ``(h,)`` or ``(n, h)``; result covers only ``active``
    columns, costing O(h * |active|) instead of O(h * L). Callers that
    already gathered ``W_out[:, active]`` (the chunked SLIDE kernel reuses
    the gather for backprop) pass it as ``W_active`` to skip the second
    column gather.
    """
    if active.ndim != 1:
        raise ConfigurationError("active label set must be a 1-D index array")
    if W_active is None:
        W_active = W_out[:, active]
    return hidden @ W_active + b_out[active]


def scatter_columns_add(
    W: np.ndarray, active: np.ndarray, update: np.ndarray
) -> None:
    """``W[:, active] += update`` in place (duplicate-safe).

    ``np.add.at`` is used so repeated indices accumulate — required when an
    LSH retrieval returns a label twice.
    """
    np.add.at(W, (slice(None), active), update)


def estimate_step_flops(
    batch_size: int,
    batch_nnz: int,
    layer_dims: Tuple[int, ...],
    *,
    active_labels: int = -1,
) -> dict:
    """Floating-point-op estimate of one SGD step, split by kernel class.

    Returns a dict with ``sparse`` (input-layer products ∝ nnz), ``dense``
    (hidden/output GEMMs), and ``update`` (parameter-vector traversal) flop
    counts. ``active_labels`` (when >= 0) replaces the output dimension for
    sampled-softmax trainers. The virtual-GPU cost model prices each class
    with a different throughput (:mod:`repro.gpu.cost`).
    """
    if len(layer_dims) < 2:
        raise ConfigurationError(f"need >= 2 layer dims, got {layer_dims}")
    dims = list(layer_dims)
    if active_labels >= 0:
        dims[-1] = int(active_labels)
    h1 = dims[1]
    # Input layer: forward X@W1 and backward X.T@delta, each 2*nnz*h1.
    sparse_flops = 4.0 * batch_nnz * h1
    # Hidden/output layers: fwd GEMM + two bwd GEMMs each 2*b*din*dout.
    dense_flops = 0.0
    for i in range(1, len(dims) - 1):
        dense_flops += 6.0 * batch_size * dims[i] * dims[i + 1]
    # Parameter update + bias terms: one pass over every parameter.
    n_params = sum(dims[i] * dims[i + 1] + dims[i + 1] for i in range(len(dims) - 1))
    if active_labels >= 0:
        # Sampled trainers (SLIDE) update only what they touched: the input
        # rows present in the batch and the active output columns.
        n_params = (
            batch_nnz * h1 + h1 + dims[-2] * dims[-1] + dims[-1]
        )
    return {
        "sparse": float(sparse_flops),
        "dense": float(dense_flops),
        "update": float(2.0 * n_params),
    }


def estimate_inference_flops(
    batch_size: int,
    batch_nnz: int,
    layer_dims: Tuple[int, ...],
    *,
    active_labels: int = -1,
) -> dict:
    """Floating-point-op estimate of one forward-only pass, by kernel class.

    The serving counterpart of :func:`estimate_step_flops`: only the forward
    products run (half the input-layer cost, a third of the GEMM cost) and no
    parameter update happens, so ``update`` is always zero — kept in the dict
    so both estimates price through the same cost-model arithmetic.
    ``active_labels`` (when >= 0) replaces the output dimension for the
    LSH-accelerated scorer that only evaluates candidate label columns.
    """
    if len(layer_dims) < 2:
        raise ConfigurationError(f"need >= 2 layer dims, got {layer_dims}")
    dims = list(layer_dims)
    if active_labels >= 0:
        dims[-1] = int(active_labels)
    h1 = dims[1]
    # Input layer: forward X@W1 only, 2*nnz*h1.
    sparse_flops = 2.0 * batch_nnz * h1
    # Hidden/output layers: one forward GEMM each, 2*b*din*dout.
    dense_flops = 0.0
    for i in range(1, len(dims) - 1):
        dense_flops += 2.0 * batch_size * dims[i] * dims[i + 1]
    return {
        "sparse": float(sparse_flops),
        "dense": float(dense_flops),
        "update": 0.0,
    }
