"""Sparse deep-learning substrate: the model the paper trains.

- :mod:`repro.sparse.model_state` — flat-buffer parameter states + replica algebra.
- :mod:`repro.sparse.mlp` — the 3-layer sparse-input MLP (ReLU / softmax / CE).
- :mod:`repro.sparse.loss` — stable multi-label softmax cross-entropy.
- :mod:`repro.sparse.metrics` — P@k / top-1 accuracy.
- :mod:`repro.sparse.init` — paper-style initialization.
- :mod:`repro.sparse.optimizer` — per-replica SGD rules.
- :mod:`repro.sparse.ops` — sparse kernels incl. SLIDE's sampled-softmax path.
"""

from repro.sparse.init import INIT_SCHEMES, initialize
from repro.sparse.loss import (
    log_softmax,
    softmax,
    softmax_cross_entropy,
    uniform_label_targets,
)
from repro.sparse.metrics import precision_at_k, top1_accuracy
from repro.sparse.mlp import ForwardCache, MLPArchitecture, SparseMLP
from repro.sparse.model_state import ModelState, ParameterSpec, weighted_average
from repro.sparse.ops import (
    estimate_step_flops,
    sampled_logits,
    scatter_columns_add,
    sparse_row_times_dense,
)
from repro.sparse.optimizer import MomentumSGD, sgd_step

__all__ = [
    "INIT_SCHEMES",
    "initialize",
    "log_softmax",
    "softmax",
    "softmax_cross_entropy",
    "uniform_label_targets",
    "precision_at_k",
    "top1_accuracy",
    "ForwardCache",
    "MLPArchitecture",
    "SparseMLP",
    "ModelState",
    "ParameterSpec",
    "weighted_average",
    "estimate_step_flops",
    "sampled_logits",
    "scatter_columns_add",
    "sparse_row_times_dense",
    "MomentumSGD",
    "sgd_step",
]
