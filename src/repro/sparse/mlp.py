"""The paper's evaluation model: a sparse-input MLP.

§V-A: "a 3-layer Multi-Layer Perceptron (MLP) model having ReLU layer
activation, softmax multi-class probability, and cross-entropy loss" — the
SLIDE testbed model (input → hidden(ReLU) → output/softmax; "3 layers"
counts input, hidden, and output). :class:`SparseMLP` generalizes to any
number of ReLU hidden layers but defaults to the paper's single hidden layer
of 128 units.

Hot-path discipline (per the HPC guides): the forward/backward passes are
fully vectorized; the only sparse-dense products are ``X @ W1`` (CSR×dense)
and ``X.T @ dZ1`` (CSC×dense) whose cost is proportional to the batch's
non-zero count — exactly the sensitivity the paper's cost analysis relies
on. Gradients are written directly into a flat :class:`ModelState` so replica
algebra stays allocation-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.data.batching import Batch
from repro.exceptions import ConfigurationError
from repro.perf.workspace import Workspace, spmm_into, spmm_t_into
from repro.sparse.init import initialize
from repro.sparse.loss import softmax_cross_entropy
from repro.sparse.model_state import ModelState, ParameterSpec

__all__ = ["MLPArchitecture", "SparseMLP", "ForwardCache"]


@dataclass(frozen=True)
class MLPArchitecture:
    """Layer dimensions of the sparse MLP."""

    n_features: int
    n_labels: int
    hidden: Tuple[int, ...] = (128,)

    def __post_init__(self) -> None:
        if self.n_features < 1 or self.n_labels < 1:
            raise ConfigurationError(
                f"invalid dims: features={self.n_features}, labels={self.n_labels}"
            )
        if not self.hidden or any(h < 1 for h in self.hidden):
            raise ConfigurationError(
                f"hidden layer sizes must be positive, got {self.hidden}"
            )

    @property
    def layer_dims(self) -> List[int]:
        """Full dimension chain: features, hidden..., labels."""
        return [self.n_features, *self.hidden, self.n_labels]

    def parameter_spec(self) -> List[ParameterSpec]:
        """Flat-state layout: ``W{i}`` then ``b{i}`` per layer, in order."""
        dims = self.layer_dims
        spec: List[ParameterSpec] = []
        for i in range(len(dims) - 1):
            spec.append((f"W{i + 1}", (dims[i], dims[i + 1])))
            spec.append((f"b{i + 1}", (dims[i + 1],)))
        return spec

    @property
    def n_params(self) -> int:
        """Total scalar parameter count."""
        dims = self.layer_dims
        return sum(dims[i] * dims[i + 1] + dims[i + 1] for i in range(len(dims) - 1))


@dataclass
class ForwardCache:
    """Activations retained by :meth:`SparseMLP.forward` for the backward pass."""

    X: sp.csr_matrix
    #: Post-ReLU hidden activations per hidden layer, then raw logits last.
    activations: List[np.ndarray] = field(default_factory=list)

    @property
    def logits(self) -> np.ndarray:
        """Output-layer pre-softmax scores."""
        return self.activations[-1]


class SparseMLP:
    """Forward/backward/loss for the sparse-input MLP.

    The class is stateless with respect to parameters: every method takes the
    :class:`ModelState` it should use, because multi-GPU trainers juggle many
    replicas of the *same* architecture.
    """

    def __init__(self, arch: MLPArchitecture) -> None:
        self.arch = arch
        self._spec = arch.parameter_spec()
        self._n_layers = len(arch.layer_dims) - 1

    # -- state management ----------------------------------------------------
    def init_state(self, seed: int = 0, scheme: str = "fan_in") -> ModelState:
        """A freshly initialized parameter state."""
        return initialize(ModelState.build(self._spec), seed=seed, scheme=scheme)

    def zeros_state(self) -> ModelState:
        """A zero state (e.g. gradient accumulator)."""
        return ModelState.build(self._spec)

    # -- inference ---------------------------------------------------------
    def forward(
        self,
        X: sp.csr_matrix,
        state: ModelState,
        workspace: Optional[Workspace] = None,
        *,
        upto: Optional[int] = None,
    ) -> ForwardCache:
        """Compute activations for ``X``; retain what backward needs.

        With a ``workspace``, every activation is written into a reusable
        bucketed buffer (no per-step allocation) — numerically identical to
        the allocating path, since the same BLAS/sparsetools routines run
        with an ``out=`` destination. Buffers stay valid until the next
        ``forward`` with the same workspace, which covers the backward pass.

        ``upto`` stops after that many affine layers (1-based); the default
        runs them all. The LSH serving path uses it to get the last hidden
        activation without paying for the dense ``(n, L)`` output GEMM it
        exists to avoid — a truncated cache cannot feed ``backward``.
        """
        if X.shape[1] != self.arch.n_features:
            raise ConfigurationError(
                f"X has {X.shape[1]} features, model expects {self.arch.n_features}"
            )
        n_layers = self._n_layers if upto is None else int(upto)
        if not (1 <= n_layers <= self._n_layers):
            raise ConfigurationError(
                f"upto must be in [1, {self._n_layers}], got {upto}"
            )
        n = X.shape[0]
        cache = ForwardCache(X=X)
        current: object = X
        for layer in range(1, n_layers + 1):
            W = state[f"W{layer}"]
            b = state[f"b{layer}"]
            if workspace is None:
                z = X @ W if layer == 1 else current @ W
            else:
                z = workspace.buffer(f"act{layer}", n, W.shape[1])
                if layer == 1:
                    spmm_into(X, W, z)  # CSR × dense, cost ∝ nnz(X) · width
                else:
                    np.matmul(current, W, out=z)
            z += b  # broadcast add, in place
            if layer < self._n_layers:
                np.maximum(z, 0.0, out=z)  # ReLU in place
            cache.activations.append(z)
            current = z
        return cache

    def predict(
        self,
        X: sp.csr_matrix,
        state: ModelState,
        workspace: Optional[Workspace] = None,
    ) -> np.ndarray:
        """Label scores (logits) for ``X`` — ranking them gives predictions."""
        return self.forward(X, state, workspace).logits

    def predict_batched(
        self,
        X: sp.csr_matrix,
        state: ModelState,
        *,
        chunk: int = 2048,
        workspace: Optional[Workspace] = None,
    ) -> np.ndarray:
        """Scores for ``X`` computed ``chunk`` rows at a time.

        Bit-identical to one-shot :meth:`predict` (each chunk runs the same
        kernels on the same rows) while bounding the dense intermediate
        activations to ``(chunk, width)`` — for XML label spaces the one-shot
        ``(n, n_labels)`` logits buffer would otherwise dominate memory.
        """
        if chunk < 1:
            raise ConfigurationError(f"chunk must be positive, got {chunk}")
        n = X.shape[0]
        scores = np.empty((n, self.arch.n_labels), dtype=np.float32)
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            scores[start:stop] = self.predict(X[start:stop], state, workspace)
        return scores

    # -- training ------------------------------------------------------------
    def loss_and_grad(
        self,
        batch: Batch,
        state: ModelState,
        grad_out: Optional[ModelState] = None,
        workspace: Optional[Workspace] = None,
    ) -> Tuple[float, ModelState]:
        """Mean loss on ``batch`` and the gradient w.r.t. ``state``.

        ``grad_out`` (when given) is overwritten and returned, letting
        trainers reuse one gradient buffer across steps. ``workspace``
        additionally routes every intermediate (activations, dlogits,
        per-layer deltas) through reusable buffers and the sparsetools
        out-param kernels; results are bit-for-bit identical.
        """
        n = batch.X.shape[0]
        cache = self.forward(batch.X, state, workspace)
        dlogits_buf = (
            workspace.buffer("dlogits", n, self.arch.n_labels)
            if workspace is not None
            else None
        )
        loss, delta = softmax_cross_entropy(cache.logits, batch.Y, grad_out=dlogits_buf)
        grad = grad_out if grad_out is not None else self.zeros_state()

        # Backward through layers L..1; delta is dLoss/dz for current layer.
        for layer in range(self._n_layers, 0, -1):
            below = (
                cache.activations[layer - 2] if layer >= 2 else cache.X
            )
            gW = grad[f"W{layer}"]
            gb = grad[f"b{layer}"]
            if layer >= 2:
                np.matmul(below.T, delta, out=gW)
            elif workspace is not None:
                # CSC × dense; cost ∝ nnz(X) · width of delta.
                spmm_t_into(below, delta, gW)
            else:
                gW[...] = (below.T @ delta).astype(np.float32, copy=False)
            delta.sum(axis=0, out=gb)
            if layer >= 2:
                W = state[f"W{layer}"]
                if workspace is not None:
                    nxt = workspace.buffer(f"delta{layer - 1}", n, W.shape[0])
                    delta = np.matmul(delta, W.T, out=nxt)
                else:
                    delta = delta @ W.T
                # ReLU mask of the layer below (its activations are post-ReLU).
                delta *= cache.activations[layer - 2] > 0.0
        return loss, grad

    def evaluate(
        self,
        X: sp.csr_matrix,
        Y: sp.csr_matrix,
        state: ModelState,
        *,
        chunk: int = 2048,
        workspace: Optional[Workspace] = None,
    ) -> np.ndarray:
        """Scores for a (possibly large) eval split, computed in chunks.

        Chunking bounds the dense ``(chunk, n_labels)`` logits buffer, which
        for XML label spaces would otherwise dominate memory.
        """
        return self.predict_batched(X, state, chunk=chunk, workspace=workspace)
