"""Multi-label softmax cross-entropy (the paper's training objective).

The evaluation model is a 3-layer MLP with "softmax multi-class probability
and cross-entropy loss" (§V-A), following SLIDE's XML setup: the target
distribution of a sample is **uniform over its true labels**, and the loss is
``CE(target, softmax(logits))``. The gradient w.r.t. logits is then simply
``softmax(logits) - target`` — computed here in a numerically stable,
fully vectorized way (log-sum-exp; no per-sample Python loops).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

from repro.exceptions import DataFormatError

__all__ = ["softmax", "log_softmax", "softmax_cross_entropy", "uniform_label_targets"]


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise log-softmax, stable via max-subtraction (out-of-place)."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    return shifted - lse


def softmax(logits: np.ndarray, out: np.ndarray = None) -> np.ndarray:
    """Row-wise softmax, stable via max-subtraction.

    ``out`` (when given) receives the result in place of a fresh
    allocation — the training hot path passes a workspace buffer.
    """
    if out is None:
        shifted = logits - logits.max(axis=1, keepdims=True)
    else:
        shifted = np.subtract(logits, logits.max(axis=1, keepdims=True), out=out)
    np.exp(shifted, out=shifted)
    shifted /= shifted.sum(axis=1, keepdims=True)
    return shifted


def uniform_label_targets(Y: sp.csr_matrix) -> sp.csr_matrix:
    """Target distribution: each row of ``Y`` normalized to sum to one.

    ``Y`` is the binary label-indicator CSR; the result reuses its sparsity
    pattern with values ``1/k`` for a sample with ``k`` labels.
    """
    counts = np.diff(Y.indptr)
    if (counts == 0).any():
        raise DataFormatError("a sample without labels has no target distribution")
    data = np.repeat((1.0 / counts).astype(np.float32), counts)
    return sp.csr_matrix((data, Y.indices.copy(), Y.indptr.copy()), shape=Y.shape)


def softmax_cross_entropy(
    logits: np.ndarray, Y: sp.csr_matrix, grad_out: np.ndarray = None
) -> Tuple[float, np.ndarray]:
    """Mean cross-entropy and its gradient w.r.t. ``logits``.

    Returns ``(loss, dlogits)`` where ``dlogits = (softmax(logits) - T) / n``
    for the uniform-over-true-labels target ``T`` — the ``1/n`` folds the
    batch-mean into the gradient so callers apply it directly. ``grad_out``
    (a float32 ``(n, L)`` buffer, e.g. from a
    :class:`~repro.perf.workspace.Workspace`) receives ``dlogits`` without
    allocating.
    """
    n, L = logits.shape
    if Y.shape != (n, L):
        raise DataFormatError(
            f"labels shape {Y.shape} does not match logits shape {logits.shape}"
        )
    targets = uniform_label_targets(Y)
    logp = log_softmax(logits.astype(np.float64, copy=False))
    # loss = -sum_ij T_ij * logp_ij / n ; T is sparse so gather the entries.
    rows = np.repeat(np.arange(n), np.diff(targets.indptr))
    cols = targets.indices
    loss = float(-(targets.data * logp[rows, cols]).sum() / n)

    dlogits = softmax(logits, out=grad_out)
    if dlogits.dtype != np.float32:  # float64 logits without a buffer
        dlogits = dlogits.astype(np.float32)
    # subtract sparse targets in place, then scale by 1/n
    dlogits[rows, cols] -= targets.data
    dlogits /= np.float32(n)
    return loss, dlogits
