"""Flat-buffer model state with named parameter views.

A replica's parameters live in **one contiguous float32 vector**; the named
parameters (``W1``, ``b1``, ...) are reshaped *views* into it. This is the
HPC-idiomatic layout (views, not copies — see the optimization guide):

- replica algebra (averaging, axpy, norms) is a single vectorized op on the
  flat buffer — exactly what Algorithm 2's merge needs;
- the all-reduce collectives in :mod:`repro.comm` chunk the flat vector
  without any gather/scatter bookkeeping;
- per-layer math still addresses parameters by name with zero overhead.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import ModelStateError

__all__ = ["ParameterSpec", "ModelState", "weighted_average"]

ParameterSpec = Tuple[str, Tuple[int, ...]]


class ModelState:
    """Named parameters backed by a single contiguous float32 vector.

    Construct via :meth:`build` (zeros) or :meth:`from_vector`. Views are
    exposed through item access: ``state["W1"]`` is a writable array whose
    memory *is* a slice of ``state.vector``.
    """

    __slots__ = ("spec", "vector", "_views")

    def __init__(self, spec: Sequence[ParameterSpec], vector: np.ndarray) -> None:
        size = sum(int(np.prod(shape)) for _, shape in spec)
        if vector.ndim != 1 or vector.size != size:
            raise ModelStateError(
                f"backing vector has size {vector.size}, spec requires {size}"
            )
        if vector.dtype != np.float32:
            raise ModelStateError(f"backing vector must be float32, got {vector.dtype}")
        if not vector.flags.c_contiguous:
            raise ModelStateError("backing vector must be C-contiguous")
        self.spec: Tuple[ParameterSpec, ...] = tuple(
            (name, tuple(shape)) for name, shape in spec
        )
        names = [name for name, _ in self.spec]
        if len(set(names)) != len(names):
            raise ModelStateError(f"duplicate parameter names in spec: {names}")
        self.vector = vector
        self._views: Dict[str, np.ndarray] = {}
        offset = 0
        for name, shape in self.spec:
            count = int(np.prod(shape))
            self._views[name] = vector[offset:offset + count].reshape(shape)
            offset += count

    # -- construction -------------------------------------------------------
    @classmethod
    def build(cls, spec: Sequence[ParameterSpec]) -> "ModelState":
        """A zero-initialized state for ``spec``."""
        size = sum(int(np.prod(shape)) for _, shape in spec)
        return cls(spec, np.zeros(size, dtype=np.float32))

    @classmethod
    def from_vector(cls, spec: Sequence[ParameterSpec], vector: np.ndarray) -> "ModelState":
        """Wrap an existing flat vector (no copy)."""
        return cls(spec, np.ascontiguousarray(vector, dtype=np.float32))

    # -- persistence --------------------------------------------------------
    def save(self, path: Union[str, Path]) -> Path:
        """Write the state to a compressed ``.npz`` at ``path``.

        Each named parameter is stored as its own float32 array plus a
        ``__spec__`` entry recording the layout order, so :meth:`load`
        reconstructs the flat buffer bit-identically (npz stores raw array
        bytes — compression is lossless).
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        arrays: Dict[str, np.ndarray] = {
            name: self._views[name] for name, _ in self.spec
        }
        if "__spec__" in arrays:
            raise ModelStateError("parameter name '__spec__' is reserved")
        spec_json = json.dumps([[name, list(shape)] for name, shape in self.spec])
        np.savez_compressed(path, __spec__=np.array(spec_json), **arrays)
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ModelState":
        """Reconstruct a state saved by :meth:`save` (bit-identical)."""
        path = Path(path)
        with np.load(path) as data:
            if "__spec__" not in data.files:
                raise ModelStateError(
                    f"{path} is not a ModelState archive (missing __spec__)"
                )
            spec_raw = json.loads(str(data["__spec__"]))
            spec: List[ParameterSpec] = [
                (name, tuple(int(d) for d in shape)) for name, shape in spec_raw
            ]
            missing = [name for name, _ in spec if name not in data.files]
            if missing:
                raise ModelStateError(
                    f"{path} is missing parameter arrays: {missing}"
                )
            state = cls.build(spec)
            for name, shape in spec:
                array = data[name]
                if tuple(array.shape) != shape:
                    raise ModelStateError(
                        f"parameter {name!r} in {path} has shape "
                        f"{tuple(array.shape)}, spec says {shape}"
                    )
                np.copyto(state._views[name], array, casting="same_kind")
        return state

    # -- access ------------------------------------------------------------
    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self._views[name]
        except KeyError:
            raise ModelStateError(
                f"unknown parameter {name!r}; have {list(self._views)}"
            ) from None

    def names(self) -> List[str]:
        """Parameter names in layout order."""
        return [name for name, _ in self.spec]

    @property
    def n_params(self) -> int:
        """Total scalar parameter count (the paper's model dimensionality)."""
        return self.vector.size

    @property
    def nbytes(self) -> int:
        """Size of the replica in bytes (what model transfer moves)."""
        return self.vector.nbytes

    # -- replica algebra ------------------------------------------------------
    def copy(self) -> "ModelState":
        """Deep copy (new backing vector)."""
        return ModelState(self.spec, self.vector.copy())

    def zeros_like(self) -> "ModelState":
        """A zero state with the same spec."""
        return ModelState.build(self.spec)

    def copy_from(self, other: "ModelState") -> None:
        """In-place overwrite from a compatible state."""
        self._check_compatible(other)
        np.copyto(self.vector, other.vector)

    def add_scaled(self, other: "ModelState", alpha: float) -> None:
        """``self += alpha * other`` in place (axpy)."""
        self._check_compatible(other)
        # In-place multiply-add without a temporary for the common alpha=1.
        if alpha == 1.0:
            self.vector += other.vector
        else:
            self.vector += np.float32(alpha) * other.vector

    def scale(self, alpha: float) -> None:
        """``self *= alpha`` in place."""
        self.vector *= np.float32(alpha)

    def l2_norm(self) -> float:
        """Euclidean norm of the flat parameter vector.

        One pass over the float32 buffer with float64 accumulation — no
        float64 copy of the (model-sized) vector is materialized.
        """
        return float(
            np.sqrt(np.einsum("i,i->", self.vector, self.vector, dtype=np.float64))
        )

    def l2_norm_per_param(self) -> float:
        """L2 norm divided by model dimensionality.

        This is the paper's regularization measure: perturbation is applied
        in Algorithm 2 only when this value is below ``pert_thr`` for every
        replica (§III-B).
        """
        return self.l2_norm() / self.n_params

    def _check_compatible(self, other: "ModelState") -> None:
        if self.spec != other.spec:
            raise ModelStateError(
                f"incompatible model states: {self.spec} vs {other.spec}"
            )


def weighted_average(
    states: Sequence[ModelState], weights: Sequence[float]
) -> ModelState:
    """``sum_i weights[i] * states[i]`` as a new state.

    This is the reference (single-step) merge; the distributed equivalents in
    :mod:`repro.comm` must agree with it bit-for-bit up to float addition
    order. Weights are *not* required to sum to one — Algorithm 2's
    perturbation deliberately denormalizes them.
    """
    if not states:
        raise ModelStateError("weighted_average of zero states")
    if len(states) != len(weights):
        raise ModelStateError(
            f"{len(states)} states but {len(weights)} weights"
        )
    for state in states[1:]:
        states[0]._check_compatible(state)
    stacked = np.stack([s.vector for s in states])  # (R, P)
    w = np.asarray(weights, dtype=np.float32)[:, None]
    merged = (stacked * w).sum(axis=0, dtype=np.float32)
    return ModelState(states[0].spec, np.ascontiguousarray(merged))
