"""The unified construction API: one front door each for train and serve.

Every training algorithm in the reproduction is registered here under the
name the paper's figures use, and :func:`make_trainer` is the one front door
that builds any of them under the shared §V-A methodology (same initial
model, same evaluation subset, same hardware builder) with an optional
telemetry recorder attached::

    from repro import ExperimentSpec, make_trainer
    from repro.telemetry import Telemetry

    tel = Telemetry()
    spec = ExperimentSpec(dataset="micro", time_budget_s=0.05)
    trainer = make_trainer("adaptive", spec, telemetry=tel)
    trace = trainer.run(time_budget_s=spec.time_budget_s)

:func:`make_engine` mirrors it on the serving side: it accepts anything
that names a model — a :class:`~repro.serve.snapshot.ModelSnapshot`, a
snapshot path/stem, a prebuilt :class:`~repro.serve.predictor.Predictor`,
or a :class:`~repro.serve.store.SnapshotStore` (directory or instance, in
which case the engine auto-subscribes for hot-swaps) — builds the
heterogeneous server, and validates every option through
:class:`~repro.serve.config.ServingConfig`::

    from repro import make_engine

    engine = make_engine("model", scoring="auto", target_latency_s=2e-3)
    result = engine.serve(X, arrivals)

The direct constructors (``AdaptiveSGDTrainer(task, server, config)``,
``ServingEngine(predictor, server, ...)`` etc.) keep working — the facades
add name-based selection, spec-driven defaults, early validation of
unknown options, and uniform handling of deprecated keyword spellings
(``use_lsh`` → ``scoring='lsh'`` lives in ``ServingConfig.from_options``,
the single serving deprecation layer).
"""

from __future__ import annotations

import inspect
from typing import Dict, Iterable, List, Optional, Type

from repro.baselines.async_sgd import AsyncSGDTrainer
from repro.baselines.crossbow import CrossbowTrainer
from repro.baselines.elastic import ElasticSGDTrainer
from repro.baselines.minibatch import MiniBatchSGDTrainer
from repro.baselines.slide.trainer import SlideTrainer
from repro.baselines.sync_sgd import SyncSGDTrainer
from repro.core.adaptive import AdaptiveSGDTrainer
from repro.data.dataset import XMLTask
from repro.exceptions import ConfigurationError
from repro.gpu.cluster import MultiGPUServer
from repro.harness.trainer_base import TrainerBase
from repro.registry import RunRegistry, default_registry  # noqa: F401 (re-export)
from repro.telemetry import Telemetry

__all__ = [
    "TRAINER_REGISTRY",
    "register_trainer",
    "trainer_names",
    "trainer_class",
    "make_trainer",
    "make_engine",
    "RunRegistry",
    "default_registry",
]

#: Paper-figure algorithm names -> trainer classes. Mutate only through
#: :func:`register_trainer` (exported as ``ALGORITHMS`` for compatibility).
TRAINER_REGISTRY: Dict[str, Type[TrainerBase]] = {}

#: Deprecated constructor-keyword spellings still accepted per class (the
#: classes themselves emit the DeprecationWarning and remap the value).
_DEPRECATED_KWARGS: Dict[str, Dict[str, str]] = {}


def register_trainer(
    name: str,
    cls: Type[TrainerBase],
    *,
    deprecated_kwargs: Optional[Dict[str, str]] = None,
    overwrite: bool = False,
) -> Type[TrainerBase]:
    """Register ``cls`` under ``name`` for :func:`make_trainer`.

    ``deprecated_kwargs`` maps old keyword spellings to their current names
    so option validation accepts both. Returns ``cls`` (usable as a
    decorator factory for downstream extensions).
    """
    if not name:
        raise ConfigurationError("trainer name must be non-empty")
    if not (isinstance(cls, type) and issubclass(cls, TrainerBase)):
        raise ConfigurationError(
            f"trainer {name!r} must be a TrainerBase subclass, got {cls!r}"
        )
    if name in TRAINER_REGISTRY and not overwrite:
        raise ConfigurationError(
            f"trainer {name!r} is already registered "
            f"({TRAINER_REGISTRY[name].__name__}); pass overwrite=True"
        )
    TRAINER_REGISTRY[name] = cls
    _DEPRECATED_KWARGS[name] = dict(deprecated_kwargs or {})
    return cls


def trainer_names() -> List[str]:
    """Registered algorithm names, in registration order."""
    return list(TRAINER_REGISTRY)


def trainer_class(name: str) -> Type[TrainerBase]:
    """The trainer class registered under ``name``."""
    try:
        return TRAINER_REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown trainer {name!r}; available: {trainer_names()}"
        ) from None


def _accepted_options(cls: Type[TrainerBase]) -> Iterable[str]:
    """Keyword options ``cls(task, server, config, **options)`` accepts.

    Union of the subclass's own keywords and :class:`TrainerBase`'s (every
    trainer forwards ``**kwargs`` to ``super().__init__``).
    """
    skip = {"self", "task", "server", "config", "kwargs", "args"}
    for owner in (cls, TrainerBase):
        for pname, param in inspect.signature(owner.__init__).parameters.items():
            if pname in skip or param.kind in (
                inspect.Parameter.VAR_POSITIONAL,
                inspect.Parameter.VAR_KEYWORD,
            ):
                continue
            yield pname


def make_trainer(
    name: str,
    spec=None,
    *,
    task: Optional[XMLTask] = None,
    server: Optional[MultiGPUServer] = None,
    n_gpus: Optional[int] = None,
    telemetry: Optional[Telemetry] = None,
    **options,
) -> TrainerBase:
    """Build the trainer registered under ``name``.

    ``spec`` (an :class:`~repro.harness.experiment.ExperimentSpec`, default
    constructed when omitted) supplies the methodology: the dataset, the
    hardware builder, the hyperparameter config, seeds, and the evaluation
    subset. ``task`` / ``server`` override the spec-built ones (pass both to
    skip dataset generation and server construction entirely); ``n_gpus``
    sizes the spec-built server (default: the spec's first grid entry).
    Remaining ``options`` go to the trainer constructor and are validated
    against its signature up front.
    """
    cls = trainer_class(name)
    if spec is None:
        # Deferred: repro.harness.experiment imports this module.
        from repro.harness.experiment import ExperimentSpec

        spec = ExperimentSpec()
    unknown = [
        k for k in options
        if k not in set(_accepted_options(cls))
        and k not in _DEPRECATED_KWARGS.get(name, {})
    ]
    if unknown:
        raise ConfigurationError(
            f"trainer {name!r} ({cls.__name__}) got unknown option(s) "
            f"{sorted(unknown)}; accepted: {sorted(set(_accepted_options(cls)))}"
        )
    if task is None:
        from repro.data.registry import load_task

        task = load_task(spec.dataset, seed=spec.seed)
    if server is None:
        if n_gpus is None:
            n_gpus = spec.gpu_counts[0]
        server = spec.build_server(n_gpus)
    kwargs = dict(
        hidden=spec.hidden,
        init_seed=spec.seed,
        data_seed=spec.seed,
        eval_samples=spec.eval_samples,
        telemetry=telemetry,
    )
    kwargs.update(options)  # explicit options beat spec-derived defaults
    return cls(task, server, spec.config, **kwargs)


def make_engine(
    source,
    config=None,
    *,
    server: Optional[MultiGPUServer] = None,
    n_gpus: int = 2,
    seed: int = 0,
    version: Optional[int] = None,
    telemetry: Optional[Telemetry] = None,
    **options,
):
    """Build a :class:`~repro.serve.engine.ServingEngine` for ``source``.

    The serving mirror of :func:`make_trainer`. ``source`` names the model:

    - a :class:`~repro.serve.snapshot.ModelSnapshot`;
    - a snapshot stem / header path (``"model"``,
      ``"model.snapshot.json"``);
    - a :class:`~repro.serve.store.SnapshotStore` instance or a store
      *directory* path — the engine serves the version a subscriber
      starting at sim time 0 would run (``version=`` overrides) and
      **auto-subscribes for hot-swaps**: newer versions published on the
      sim clock are picked up mid-run, warmed off the dispatch path, and
      canary-guarded;
    - a prebuilt :class:`~repro.serve.predictor.Predictor` (advanced:
      ``version`` tags it for pinning, default 0).

    ``config`` is a prebuilt :class:`~repro.serve.config.ServingConfig`;
    alternatively pass its fields as keyword ``options`` — they are
    validated by ``ServingConfig.from_options``, the single layer that
    rejects unknown options early and maps the deprecated ``use_lsh``
    spelling onto ``scoring='lsh'`` with one uniform ``DeprecationWarning``.
    ``server`` overrides the default heterogeneous ``n_gpus``-device server
    (tiny-model cost profile, seeded like the benchmarks).

    Multi-tenant serving rides the same option surface: pass
    ``priority_classes`` / ``class_slo_ms`` / ``tenant_weights`` /
    ``wfq_quantum`` / ``admission_utilization`` here (validated by
    ``ServingConfig``) and tag the request stream at serve time —
    ``engine.serve(..., tenants=..., priority_classes=...)`` — to get
    priority-tier + weighted-fair scheduling with per-class adaptive
    batch sizing and per-tenant isolation accounting on the result.
    """
    from pathlib import Path

    from repro.gpu.cluster import make_server
    from repro.gpu.cost import GpuCostParams
    from repro.serve.config import ServingConfig
    from repro.serve.engine import ServingEngine
    from repro.serve.predictor import Predictor
    from repro.serve.snapshot import ModelSnapshot
    from repro.serve.store import MANIFEST_NAME, SnapshotStore

    if config is None:
        config = ServingConfig.from_options(**options)
    elif options:
        raise ConfigurationError(
            f"pass either config= or keyword options, not both "
            f"(got {sorted(options)})"
        )
    elif not isinstance(config, ServingConfig):
        raise ConfigurationError(
            f"config must be a ServingConfig, got {type(config).__name__}"
        )

    store: Optional[SnapshotStore] = None
    resolved = source
    if isinstance(resolved, (str, Path)):
        path = Path(resolved)
        if (path / MANIFEST_NAME).exists():
            resolved = SnapshotStore(path, create=False)
        else:
            resolved = ModelSnapshot.load(path)

    if isinstance(resolved, SnapshotStore):
        store = resolved
        if version is None:
            version = store.version_at(0.0)
            if version is None:
                raise ConfigurationError(
                    f"snapshot store {store.root} is empty; publish a "
                    f"version before serving from it"
                )
        snapshot = store.load(version)
        resolved = None
    elif isinstance(resolved, ModelSnapshot):
        snapshot = resolved
        resolved = None
    elif isinstance(resolved, Predictor):
        snapshot = None
    else:
        raise ConfigurationError(
            f"make_engine source must be a snapshot, snapshot path, "
            f"store, store directory, or Predictor; got {type(source).__name__}"
        )

    if isinstance(source, Predictor):
        predictor = source
    else:
        predictor = Predictor(
            snapshot,
            lsh_tables=config.lsh_tables,
            lsh_bits=config.lsh_bits,
            lsh_probes=config.lsh_probes,
            lsh_seed=config.lsh_seed,
            chunk=config.chunk,
        )
    if server is None:
        server = make_server(
            n_gpus,
            heterogeneity="het",
            cost_params=GpuCostParams.tiny_model_profile(),
            seed=seed,
        )
    return ServingEngine(
        predictor,
        server,
        config=config,
        store=store,
        base_version=version if version is not None else 0,
        telemetry=telemetry,
    )


# -- the built-in algorithms (names match the paper's figures) ---------------
register_trainer(
    "adaptive", AdaptiveSGDTrainer,
    deprecated_kwargs={"use_governor": "governor"},
)
register_trainer("elastic", ElasticSGDTrainer)
register_trainer("tensorflow", SyncSGDTrainer)
register_trainer(
    "crossbow", CrossbowTrainer, deprecated_kwargs={"mu": "elasticity"}
)
register_trainer("slide", SlideTrainer)
register_trainer("async", AsyncSGDTrainer)
register_trainer("minibatch", MiniBatchSGDTrainer)
