"""Fast CSR row gather — the batching layer's hot kernel.

``dataset.X[idx]`` goes through scipy's generic fancy-indexing machinery:
index validation, bounds canonicalization, a C gather, and a checked matrix
construction — tens of microseconds of constant overhead per call before any
data moves. Batch construction runs once per dispatched batch, and Algorithm
1 shrinks batch sizes on slow GPUs, so this constant is paid at the highest
possible rate exactly where the device is already the bottleneck.

:func:`gather_rows` performs the same row gather with cached segment
lengths, one cumsum, and a direct call to scipy's ``csr_row_index`` C
kernel (per-row memcpy — the same routine fancy indexing bottoms out in,
minus all the layers above it), handing the result to a validated fast CSR
constructor. :class:`RowGatherer` additionally reuses per-cursor output
buffers: a small slot pool whose slots are reclaimed when the batch that
borrowed them is garbage collected (detected by the buffer refcount), so
steady-state batch construction allocates almost nothing.

The output is bit-for-bit identical to ``matrix[idx]``: same data, same
column indices, same row pointer, same dtypes (``tests/test_perf_gather``).
"""

from __future__ import annotations

import sys
from time import perf_counter
from typing import List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.perf import profile as _profile

try:  # pragma: no cover - import guard exercised implicitly
    from scipy.sparse import _sparsetools

    _HAVE_ROW_INDEX = hasattr(_sparsetools, "csr_row_index")
except ImportError:  # pragma: no cover - version-dependent fallback
    _sparsetools = None
    _HAVE_ROW_INDEX = False

__all__ = ["gather_rows", "RowGatherer"]


def _build_csr_fast(
    data: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    shape: Tuple[int, int],
) -> sp.csr_matrix:
    """Wrap pre-validated CSR arrays without constructor checks."""
    m = sp.csr_matrix.__new__(sp.csr_matrix)
    m.data = data
    m.indices = indices
    m.indptr = indptr
    m._shape = shape
    # Rows are copied verbatim from a canonical matrix, so both flags hold.
    m.has_sorted_indices = True
    m.has_canonical_format = True
    return m


def _fast_ctor_works() -> bool:
    """One-time self-test of the unchecked constructor against scipy."""
    try:
        data = np.array([1.0, 2.0], dtype=np.float32)
        indices = np.array([1, 0], dtype=np.int32)
        indptr = np.array([0, 1, 1, 2], dtype=np.int32)
        fast = _build_csr_fast(data, indices, indptr, (3, 2))
        ref = sp.csr_matrix((data, indices, indptr), shape=(3, 2))
        if (fast != ref).nnz != 0:
            return False
        probe = np.ones((2, 2), dtype=np.float32)
        if not np.array_equal(fast @ probe, ref @ probe):
            return False
        return bool(np.array_equal(fast[np.array([0, 2])].data, np.array([1.0, 2.0])))
    except Exception:  # pragma: no cover - version-dependent fallback
        return False


_FAST_CTOR = _fast_ctor_works()


def _make_csr(
    data: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    shape: Tuple[int, int],
) -> sp.csr_matrix:
    if _FAST_CTOR:
        return _build_csr_fast(data, indices, indptr, shape)
    return sp.csr_matrix((data, indices, indptr), shape=shape)  # pragma: no cover


def _copy_rows(
    m: sp.csr_matrix,
    idx: np.ndarray,
    lens: np.ndarray,
    out_indptr: np.ndarray,
    data: np.ndarray,
    indices: np.ndarray,
) -> None:
    """Copy the selected rows' (data, indices) segments into the buffers.

    Fills ``out_indptr`` as a side effect. Uses scipy's ``csr_row_index``
    per-row-memcpy kernel when available (≈4× faster than an element-wise
    position gather on large matrices); falls back to pure numpy otherwise.
    """
    out_indptr[0] = 0
    np.cumsum(lens, out=out_indptr[1:])
    if _HAVE_ROW_INDEX and m.indptr.dtype == m.indices.dtype:
        _sparsetools.csr_row_index(
            idx.size,
            idx.astype(m.indptr.dtype, copy=False),
            m.indptr,
            m.indices,
            m.data,
            indices,
            data,
        )
        return
    # Fallback: per-element source positions (row start + in-row offset).
    pos = np.repeat(m.indptr[idx].astype(np.int64) - out_indptr[:-1], lens)
    pos += np.arange(int(out_indptr[-1]), dtype=np.int64)
    m.data.take(pos, out=data)
    m.indices.take(pos, out=indices)


def gather_rows(
    matrix: sp.csr_matrix,
    idx: np.ndarray,
    row_nnz: Optional[np.ndarray] = None,
) -> sp.csr_matrix:
    """``matrix[idx]`` without scipy's fancy-indexing overhead.

    ``row_nnz`` (``np.diff(matrix.indptr)``, precomputed once per dataset)
    avoids re-deriving segment lengths on every call.
    """
    idx = np.asarray(idx, dtype=np.int64)
    if row_nnz is None:
        row_nnz = np.diff(matrix.indptr)
    lens = row_nnz[idx]
    nnz = int(lens.sum())
    out_indptr = np.empty(idx.size + 1, dtype=matrix.indptr.dtype)
    data = np.empty(nnz, dtype=matrix.data.dtype)
    indices = np.empty(nnz, dtype=matrix.indices.dtype)
    _copy_rows(matrix, idx, lens, out_indptr, data, indices)
    return _make_csr(data, indices, out_indptr, (idx.size, matrix.shape[1]))


class _Slot:
    """One reusable set of CSR output buffers."""

    __slots__ = ("data", "indices", "indptr")

    def __init__(self, data_dtype, index_dtype, indptr_dtype, nnz_cap: int, row_cap: int):
        self.data = np.empty(nnz_cap, dtype=data_dtype)
        self.indices = np.empty(nnz_cap, dtype=index_dtype)
        self.indptr = np.empty(row_cap + 1, dtype=indptr_dtype)


class RowGatherer:
    """Row gather with a reclaiming buffer pool (one gatherer per cursor).

    Returned matrices are views into pool slots. A slot is considered free
    again once every external reference to the batch it backed is gone —
    checked via the buffer refcount — so simultaneously *live* batches (one
    per GPU manager in the multi-GPU trainers) each get their own slot. If
    more than ``max_slots`` batches are alive at once, the overflow gathers
    fall back to freshly allocated arrays; nothing ever aliases.
    """

    #: Refcount of a slot array referenced only by the slot itself, as seen
    #: by ``sys.getrefcount`` (the slot attribute + the getrefcount arg).
    _FREE_REFCOUNT = 2

    def __init__(self, matrix: sp.csr_matrix, *, max_slots: int = 16) -> None:
        self.matrix = matrix
        self.row_nnz = np.diff(matrix.indptr)
        self.max_slots = int(max_slots)
        self._slots: List[_Slot] = []

    def _free_slot(self, nnz: int, rows: int) -> Optional[_Slot]:
        m = self.matrix
        for slot in self._slots:
            if (
                sys.getrefcount(slot.data) == self._FREE_REFCOUNT
                and sys.getrefcount(slot.indices) == self._FREE_REFCOUNT
                and sys.getrefcount(slot.indptr) == self._FREE_REFCOUNT
            ):
                if slot.data.size < nnz:
                    cap = max(nnz, int(slot.data.size * 1.5))
                    slot.data = np.empty(cap, dtype=m.data.dtype)
                    slot.indices = np.empty(cap, dtype=m.indices.dtype)
                if slot.indptr.size < rows + 1:
                    slot.indptr = np.empty(
                        max(rows + 1, int(slot.indptr.size * 1.5)),
                        dtype=m.indptr.dtype,
                    )
                return slot
        if len(self._slots) < self.max_slots:
            slot = _Slot(
                m.data.dtype, m.indices.dtype, m.indptr.dtype, max(nnz, 1), rows
            )
            self._slots.append(slot)
            return slot
        return None

    def gather(self, idx: np.ndarray) -> sp.csr_matrix:
        """Gather ``matrix[idx]`` into pooled buffers (bit-for-bit equal)."""
        prof = _profile.active
        if prof is not None:
            t0 = perf_counter()
            out = self._gather(idx)
            prof.add("gather", perf_counter() - t0, units=idx.size)
            return out
        return self._gather(idx)

    def _gather(self, idx: np.ndarray) -> sp.csr_matrix:
        idx = np.asarray(idx, dtype=np.int64)
        m = self.matrix
        rows = idx.size
        lens = self.row_nnz[idx]
        nnz = int(lens.sum())
        slot = self._free_slot(nnz, rows)
        if slot is None:
            out_indptr = np.empty(rows + 1, dtype=m.indptr.dtype)
            data = np.empty(nnz, dtype=m.data.dtype)
            indices = np.empty(nnz, dtype=m.indices.dtype)
        else:
            out_indptr = slot.indptr[:rows + 1]
            data = slot.data[:nnz]
            indices = slot.indices[:nnz]
        _copy_rows(m, idx, lens, out_indptr, data, indices)
        return _make_csr(data, indices, out_indptr, (rows, m.shape[1]))

    @property
    def n_slots(self) -> int:
        """Pool slots allocated so far (observability for tests/benches)."""
        return len(self._slots)
