"""The fused hot-path execution engine.

This package is the reproduction's analogue of HeteroGPU's kernel-fusion
layer (§IV): the paper's system wins not only through adaptive scheduling
but because every per-batch constant cost — kernel launches, temporary
allocations, gather/scatter bookkeeping — is driven to zero. That matters
*more* under Algorithm 1 than under static SGD, because adaptive batch
scaling deliberately shrinks batch sizes on slow devices, so fixed per-batch
overheads are paid more often per epoch.

Components:

- :mod:`repro.perf.gather` — allocation-free CSR row gather
  (:func:`gather_rows`, :class:`RowGatherer`) replacing scipy fancy
  indexing in the batching layer;
- :mod:`repro.perf.workspace` — :class:`Workspace`, batch-size-bucketed
  activation/delta/logits buffers reused by ``SparseMLP`` forward/backward,
  plus zero-copy CSC-transpose handling for the ``X.T @ delta`` product;
- :mod:`repro.perf.slide_kernel` — the vectorized chunked SLIDE kernel
  (:func:`slide_chunk_step`) replacing the per-sample Python loop;
- :mod:`repro.perf.lsh_topk` — the batched multi-probe LSH inference
  pipeline (:func:`lsh_topk`: probe → CSR gather → flat gather-dot →
  segmented top-k) replacing ``Predictor.topk_lsh``'s per-row loop.

Every kernel here is numerically equivalent to the path it replaces
(bit-for-bit for gather/forward/backward; fp32 tolerance for the SLIDE
chunk, which batches the sampled softmax) — enforced by
``tests/test_perf_*``.
"""

from repro.perf.profile import KernelProfile
from repro.perf.gather import RowGatherer, gather_rows
from repro.perf.lsh_topk import lsh_topk
from repro.perf.slide_kernel import slide_chunk_step
from repro.perf.workspace import Workspace

__all__ = [
    "RowGatherer",
    "gather_rows",
    "Workspace",
    "slide_chunk_step",
    "lsh_topk",
    "KernelProfile",
]
