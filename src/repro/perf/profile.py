"""Host-side profiling hooks for the fused hot-path kernels.

The simulated clock prices *modeled* device work; the ``repro.perf`` kernels
additionally burn *real* host CPU. This module lets a telemetry run observe
that real cost without taxing normal runs: each kernel checks a single
module-level slot and, only when a profiler is active, wraps itself in a
``perf_counter`` pair and accumulates ``(calls, seconds, units)`` per kernel
name. Disabled cost is one ``None`` check per kernel call; enabled cost is
two clock reads and a dict update — far below the 5% overhead budget the CI
gate enforces on ``benchmarks/bench_hotpath.py``.

Aggregation (rather than per-call span events) is deliberate: the gather
kernel runs once per dispatched batch, and a per-call event list would
itself become the hot path's biggest allocation.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["KernelProfile", "activate", "deactivate", "active"]


class KernelProfile:
    """Per-kernel aggregate host-time statistics."""

    __slots__ = ("stats",)

    def __init__(self) -> None:
        #: name -> [calls, total host seconds, total work units].
        self.stats: Dict[str, List[float]] = {}

    def add(self, name: str, seconds: float, units: int = 0) -> None:
        """Account one kernel invocation of ``seconds`` host time."""
        entry = self.stats.get(name)
        if entry is None:
            self.stats[name] = [1, seconds, units]
        else:
            entry[0] += 1
            entry[1] += seconds
            entry[2] += units

    def merge(self, other: "KernelProfile") -> None:
        """Fold ``other``'s totals into this profile."""
        for name, (calls, seconds, units) in other.stats.items():
            entry = self.stats.setdefault(name, [0, 0.0, 0])
            entry[0] += calls
            entry[1] += seconds
            entry[2] += units

    def as_records(self) -> List[dict]:
        """Rows for export: one dict per kernel, sorted by total time."""
        rows = [
            {
                "kernel": name,
                "calls": int(calls),
                "host_s": float(seconds),
                "units": int(units),
            }
            for name, (calls, seconds, units) in self.stats.items()
        ]
        rows.sort(key=lambda r: -r["host_s"])
        return rows


#: The active profiler, or ``None``. Kernels read this attribute directly;
#: keeping it a plain module global makes the disabled check one LOAD + jump.
active: Optional[KernelProfile] = None


def activate(profile: KernelProfile) -> None:
    """Route kernel timings into ``profile`` until :func:`deactivate`."""
    global active
    active = profile


def deactivate() -> None:
    """Stop profiling kernels (restores the zero-cost disabled path)."""
    global active
    active = None
