"""Vectorized chunked SLIDE kernel.

The reference SLIDE update is one Python iteration per sample: a sparse
GEMV, an LSH retrieval, a sampled softmax over ~a few hundred active
labels, two outer-product updates. Interpreted-loop overhead dominates —
each sample pays dozens of small-numpy-call constants for microseconds of
arithmetic.

This kernel processes a *chunk* of samples at once with the chunk-start
weights, and its cost scales with the **total number of active (sample,
label) entries** — never with ``chunk × n_labels``, which is what a naive
union-GEMM degenerates to once the per-sample active sets cover most
labels between rebuilds:

1. the active label sets (true ∪ LSH-retrieved, built per sample — LSH
   bucket probing is inherently per-item) are flattened into one ragged
   ``(rows, cols)`` entry list with a CSR-style row pointer;
2. logits are computed only at those entries — blocked row gathers of
   ``H1`` and ``W2.T`` feeding an ``einsum('ij,ij->i')`` dot, or one BLAS
   GEMM sampled at the entries when they cover enough of the dense grid —
   and each sample's softmax is a segment reduction (``ufunc.reduceat``)
   over its own slice of the flat array;
3. the resulting ``dlogits`` *are* a CSR matrix over the active pattern,
   so the hidden backprop is one sparse ``dlog @ W2.T`` product, the
   output-layer update one sparse ``dlog.T @ H1`` product, and the
   input-layer update one compacted-CSC ``X.T @ dZ1`` product over the
   chunk's touched feature rows.

Semantically this applies the chunk's per-sample gradients — each evaluated
at the chunk-start weights — in one batched update, instead of strictly
sequentially. That *is* SLIDE's Hogwild regime (threads race on a shared
model and compute gradients against stale weights); the per-sample
sequential reference was itself an idealization. ``tests/test_perf_slide``
verifies the kernel matches the per-sample reference evaluated at identical
weights to fp32 tolerance.
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.perf import profile as _profile
from repro.perf.gather import _FAST_CTOR, _make_csr
from repro.perf.workspace import Workspace, spmm_into, spmm_t_into

__all__ = ["slide_chunk_step"]

#: Rows per gather block in the flat-logits pass — bounds scratch memory at
#: two ``(2**17, hidden)`` buffers regardless of chunk × active-set size.
_GATHER_BLOCK = 1 << 17


def _segment_arange(counts: np.ndarray) -> np.ndarray:
    """``concat(arange(c) for c in counts)`` without a Python loop."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    starts = np.cumsum(counts) - counts
    return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)


def _entries_csr(
    values: np.ndarray, cols: np.ndarray, indptr: np.ndarray, shape
) -> sp.csr_matrix:
    """CSR over the active-entry pattern (columns unsorted within rows).

    ``csr_matvecs``/``csc_matvecs`` are order-independent accumulations, so
    the unsorted indices are fine — but the sorted/canonical flags must not
    be claimed, hence not :func:`repro.perf.gather._make_csr`.
    """
    if _FAST_CTOR:
        m = sp.csr_matrix.__new__(sp.csr_matrix)
        m.data = values
        m.indices = cols
        m.indptr = indptr
        m._shape = shape
        m.has_sorted_indices = False
        m.has_canonical_format = False
        return m
    return sp.csr_matrix((values, cols, indptr), shape=shape)  # pragma: no cover


def slide_chunk_step(
    Xc: sp.csr_matrix,
    H1: np.ndarray,
    label_counts: np.ndarray,
    actives: Sequence[np.ndarray],
    W1: np.ndarray,
    b1: np.ndarray,
    W2: np.ndarray,
    b2: np.ndarray,
    lr: float,
    workspace: Optional[Workspace] = None,
) -> float:
    """One chunked sampled-softmax SGD update, in place; returns summed loss.

    Parameters mirror the per-sample reference: ``Xc`` is the chunk's
    feature rows (CSR), ``H1`` the post-ReLU hidden activations computed at
    the current weights, ``actives[i]`` sample *i*'s active label ids with
    its ``label_counts[i]`` true labels occupying the front (the
    :class:`~repro.baselines.slide.sampler.ActiveLabelSampler` contract).
    All gradients are evaluated at the passed-in (chunk-start) weights;
    updates are applied once at the end.
    """
    prof = _profile.active
    if prof is not None:
        t0 = perf_counter()
        loss = _slide_chunk_step(
            Xc, H1, label_counts, actives, W1, b1, W2, b2, lr, workspace
        )
        prof.add("slide_chunk", perf_counter() - t0, units=H1.shape[0])
        return loss
    return _slide_chunk_step(
        Xc, H1, label_counts, actives, W1, b1, W2, b2, lr, workspace
    )


def _slide_chunk_step(
    Xc: sp.csr_matrix,
    H1: np.ndarray,
    label_counts: np.ndarray,
    actives: Sequence[np.ndarray],
    W1: np.ndarray,
    b1: np.ndarray,
    W2: np.ndarray,
    b2: np.ndarray,
    lr: float,
    workspace: Optional[Workspace] = None,
) -> float:
    chunk, h_dim = H1.shape
    n_labels = W2.shape[1]
    lr32 = np.float32(lr)
    k = np.asarray(label_counts, dtype=np.int64)
    lens = np.fromiter((a.size for a in actives), dtype=np.int64, count=chunk)
    cols = np.concatenate(actives).astype(np.int64, copy=False)
    total = cols.size
    indptr = np.empty(chunk + 1, dtype=np.int64)
    indptr[0] = 0
    np.cumsum(lens, out=indptr[1:])
    seg_starts = indptr[:-1]
    rows_rep = np.repeat(np.arange(chunk, dtype=np.int64), lens)

    def scratch(tag, n, width):
        if workspace is not None:
            return workspace.buffer(tag, n, width)
        return np.empty((n, width), dtype=np.float32)

    H1 = np.ascontiguousarray(H1, dtype=np.float32)
    # Row-major W2.T (pre-update) so the sparse hidden backprop scans
    # contiguous label rows; also the accumulator for the output update.
    W2T = scratch("slide-w2t", n_labels, h_dim)
    np.copyto(W2T, W2.T)

    # Logits at the active entries only. Two regimes: when the entries
    # cover a non-trivial fraction of the dense (chunk, n_labels) grid —
    # LSH buckets saturating between rebuilds — one BLAS GEMM plus a flat
    # take beats any per-entry gather; otherwise blocked paired row
    # gathers feeding a fused row-dot keep the cost O(total · h).
    if total * 16 > chunk * n_labels:
        Z = scratch("slide-logits", chunk, n_labels)
        np.matmul(H1, W2, out=Z)
        logits = Z.ravel().take(rows_rep * n_labels + cols)
    else:
        logits = np.empty(total, dtype=np.float32)
        for s in range(0, total, _GATHER_BLOCK):
            e = min(s + _GATHER_BLOCK, total)
            np.einsum(
                "ij,ij->i",
                H1[rows_rep[s:e]],
                W2T[cols[s:e]],
                out=logits[s:e],
            )
    logits += b2[cols]

    # Per-sample softmax as segment reductions over the flat entry array.
    seg_max = np.maximum.reduceat(logits, seg_starts)
    logits -= np.repeat(seg_max, lens)
    P = np.exp(logits, out=logits)
    seg_sum = np.add.reduceat(P, seg_starts)
    P /= np.repeat(seg_sum, lens)

    # True labels sit at the front of each sample's segment.
    true_sel = np.repeat(seg_starts, k) + _segment_arange(k)
    true_rows = np.repeat(np.arange(chunk, dtype=np.int64), k)

    p_true = P[true_sel]
    per_sample_loss = np.bincount(
        true_rows, weights=-np.log(np.maximum(p_true, 1e-30)), minlength=chunk
    ) / k
    loss_sum = float(per_sample_loss.sum())

    # dlogits: softmax minus the uniform-over-true-labels target. The flat
    # array with (cols, indptr) *is* a CSR matrix over the active pattern.
    dlog = P
    dlog[true_sel] -= np.repeat(1.0 / k.astype(np.float32), k)
    dcsr = _entries_csr(dlog, cols, indptr, (chunk, n_labels))

    # Hidden backprop: one sparse product against the pre-update weights.
    dH = scratch("slide-dh", chunk, h_dim)
    spmm_into(dcsr, W2T, dH)  # dlog @ W2.T
    dZ1 = np.multiply(dH, H1 > 0.0, out=dH)

    # Output layer: G2 = dlog.T @ H1 is (n_labels, h) with nonzeros only in
    # touched label rows. Applying it on the contiguous W2T copy and
    # transpose-copying back is much faster than a strided ``W2 -= G2.T``
    # (numpy's copy path blocks the transpose; the subtract path doesn't).
    G2 = scratch("slide-g2", n_labels, h_dim)
    spmm_t_into(dcsr, H1, G2)
    G2 *= lr32
    W2T -= G2
    np.copyto(W2, W2T.T)
    b2 -= lr32 * np.bincount(cols, weights=dlog, minlength=n_labels).astype(
        np.float32
    )

    # Input layer: compact the chunk's CSC over its touched feature rows so
    # the X.T @ dZ1 product and the row update stay O(touched) in F.
    touched, inverse = np.unique(Xc.indices, return_inverse=True)
    if touched.size:
        compact = _make_csr(
            Xc.data,
            inverse.astype(Xc.indices.dtype, copy=False),
            Xc.indptr,
            (chunk, touched.size),
        )
        G1 = scratch("slide-g1", touched.size, h_dim)
        spmm_t_into(compact, np.ascontiguousarray(dZ1), G1)
        W1[touched] -= lr32 * G1
    b1 -= lr32 * dZ1.sum(axis=0)
    return loss_sum
