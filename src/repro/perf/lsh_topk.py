"""Vectorized multi-probe LSH top-k inference kernel.

The reference serving path (`Predictor.topk_lsh` before this module) ran
one Python iteration per query: a dict-based bucket lookup, an
``np.unique`` union, a per-row ``sampled_logits`` GEMV and a 1-row top-k.
At 512 queries that is ~2000 small numpy calls — the candidate machinery
cost ~25x the dense GEMM it was supposed to beat.

This kernel batches all of it over the query block:

1. **probe** — every query's bucket signatures for all tables and probes
   come from one einsum (:meth:`SimHashLSH.probe_codes`), and all
   ``n · T · P`` bucket lookups resolve with a single ``np.searchsorted``
   against the index's flat sorted ``(table << bits) | code`` key array;
2. **gather** — bucket member lists are flattened into one entry list via
   ``np.repeat`` + segment-arange (no per-bucket concatenation), and
   per-row dedup is a bitmap scatter into a reused ``(n, L)`` uint8
   workspace mask; ``np.flatnonzero`` of that mask *is* the CSR-shaped
   candidate set — ``(row_ptr, candidate_ids)`` with ids sorted ascending
   within each row, exactly the order the per-row ``np.unique`` produced;
3. **score** — one blocked gather-dot (``einsum('ej,ej->e')`` over paired
   row gathers of the hidden block and the transposed output weights)
   computes every candidate logit in O(entries · h), never touching the
   dense ``(n, L)`` grid;
4. **top-k** — rows with ≥ k candidates are ranked together by packing
   their logits into a ``-inf``-padded rectangle and reusing the
   deterministic :func:`~repro.sparse.metrics.topk_indices` (pads can
   never enter the top-k of a row with k real entries, and ascending
   candidate position == ascending label id, so the tie-break is identical
   to the exact path); underfull rows keep the reference padding loop
   verbatim — they are the rare case by construction.

``tests/test_perf_lsh_topk.py`` checks the kernel against the retained
per-row reference (`Predictor.topk_lsh_reference`) for bit-identical ids
on randomized snapshots, plus the empty-row / k > L / all-underfull edges.
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional, Tuple

import numpy as np

from repro.perf import profile as _profile
from repro.perf.workspace import Workspace
from repro.sparse.metrics import topk_indices

__all__ = ["probe_candidates", "score_entries", "segmented_topk", "lsh_topk"]

#: Entries per gather block in the flat scoring pass — bounds the paired
#: row-gather scratch at two ``(2**15, hidden)`` float32 temporaries.
_GATHER_BLOCK = 1 << 15


def _segment_arange(counts: np.ndarray) -> np.ndarray:
    """``concat(arange(c) for c in counts)`` without a Python loop."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    starts = np.cumsum(counts) - counts
    return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)


def probe_candidates(
    lsh,
    H: np.ndarray,
    *,
    n_probes: int = 1,
    workspace: Optional[Workspace] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """CSR candidate sets for a query block: ``(row_ptr, candidate_ids)``.

    ``row_ptr`` is ``(n + 1,)`` int64; row *i*'s candidates are
    ``candidate_ids[row_ptr[i]:row_ptr[i + 1]]``, sorted ascending and
    unique — element-for-element what ``lsh.query_batch(H)`` returns, but
    computed with three vectorized passes instead of ``n`` dict walks.
    """
    prof = _profile.active
    n = H.shape[0]
    L = lsh.n_items
    indptr = np.zeros(n + 1, dtype=np.int64)
    if n == 0 or L == 0:
        return indptr, np.empty(0, dtype=np.int64)

    # -- probe: hash the block, binary-search every bucket at once --------
    t0 = perf_counter() if prof is not None else 0.0
    codes = lsh.probe_codes(H, n_probes)  # (T, P, n)
    T, P, _ = codes.shape
    flat_codes, flat_offsets, flat_items = lsh.flat_tables()
    keys = codes | (np.arange(T, dtype=np.int64) << lsh.n_bits)[:, None, None]
    # (n, T·P) so each query's probes are contiguous in the flat order.
    keys = np.ascontiguousarray(keys.transpose(2, 0, 1)).reshape(n, T * P)
    flat_keys = keys.ravel()
    pos = np.searchsorted(flat_codes, flat_keys)
    pos_c = np.minimum(pos, flat_codes.size - 1)
    hit = flat_codes[pos_c] == flat_keys
    bucket_counts = np.where(
        hit, flat_offsets[pos_c + 1] - flat_offsets[pos_c], 0
    )
    if prof is not None:
        prof.add("lsh_probe", perf_counter() - t0, units=n * T * P)

    # -- gather: flatten bucket members, dedup per row via bitmap ---------
    t0 = perf_counter() if prof is not None else 0.0
    total = int(bucket_counts.sum())
    if total == 0:
        if prof is not None:
            prof.add("lsh_gather", perf_counter() - t0, units=0)
        return indptr, np.empty(0, dtype=np.int64)
    starts = np.where(hit, flat_offsets[pos_c], 0)
    entry_items = flat_items[
        np.repeat(starts, bucket_counts) + _segment_arange(bucket_counts)
    ]
    entry_rows = np.repeat(
        np.repeat(np.arange(n, dtype=np.int64), T * P), bucket_counts
    )
    if workspace is not None:
        mask = workspace.buffer("lsh-mask", n, L, dtype=np.uint8)
    else:
        mask = np.empty((n, L), dtype=np.uint8)
    mask[...] = 0
    flat_mask = mask.reshape(-1)
    flat_mask[entry_rows * L + entry_items] = 1
    nz = np.flatnonzero(flat_mask)  # ascending ⇒ (row, id) lexicographic
    rows = nz // L
    ids = nz % L
    np.cumsum(np.bincount(rows, minlength=n), out=indptr[1:])
    if prof is not None:
        prof.add("lsh_gather", perf_counter() - t0, units=total)
    return indptr, ids


def score_entries(
    H: np.ndarray,
    W_T: np.ndarray,
    b: np.ndarray,
    rows: np.ndarray,
    ids: np.ndarray,
) -> np.ndarray:
    """Logits at the flat ``(rows, ids)`` entries — blocked gather-dot.

    ``H`` is the ``(n, h)`` hidden block, ``W_T`` the row-major ``(L, h)``
    transpose of the output weights (contiguous label rows make the gather
    stream), ``b`` the ``(L,)`` bias. Cost is O(entries · h) with scratch
    bounded by the gather block, independent of ``n × L``.
    """
    prof = _profile.active
    t0 = perf_counter() if prof is not None else 0.0
    total = ids.size
    logits = np.empty(total, dtype=np.float32)
    for s in range(0, total, _GATHER_BLOCK):
        e = min(s + _GATHER_BLOCK, total)
        np.einsum(
            "ej,ej->e", H[rows[s:e]], W_T[ids[s:e]], out=logits[s:e]
        )
    logits += b[ids]
    if prof is not None:
        prof.add("lsh_score", perf_counter() - t0, units=total)
    return logits


def segmented_topk(
    indptr: np.ndarray,
    ids: np.ndarray,
    logits: np.ndarray,
    L: int,
    k: int,
) -> np.ndarray:
    """Deterministic top-``k`` over CSR-segmented candidate logits.

    Matches the per-row reference exactly: rows with ≥ k candidates rank
    them with :func:`topk_indices` semantics (ties toward the lowest label
    id — candidate ids ascend within a row, so positional tie-break is the
    id tie-break); rows with < k candidates list all candidates best-first
    and pad with the lowest-id unretrieved labels.
    """
    prof = _profile.active
    t0 = perf_counter() if prof is not None else 0.0
    n = indptr.size - 1
    out = np.empty((n, k), dtype=np.int64)
    counts = np.diff(indptr)
    full = counts >= k

    if full.any():
        fcounts = counts[full]
        maxc = int(fcounts.max())
        n_full = int(full.sum())
        padded = np.full((n_full, maxc), -np.inf, dtype=np.float32)
        entry_full = np.repeat(full, counts)
        padded[
            np.repeat(np.arange(n_full, dtype=np.int64), fcounts),
            _segment_arange(fcounts),
        ] = logits[entry_full]
        # Pads sort strictly below every finite logit, so with ≥ k real
        # entries per row the member set and tie behaviour are exactly
        # those of topk_indices on the un-padded row.
        best = topk_indices(padded, k)
        starts_full = indptr[:-1][full]
        out[full] = ids[starts_full[:, None] + best]

    if not full.all():
        # Underfull rows: the reference padding loop, verbatim. Rare by
        # construction (the bench regime retrieves ≫ k candidates).
        for i in np.flatnonzero(~full):
            cand = ids[indptr[i]:indptr[i + 1]]
            lg = logits[indptr[i]:indptr[i + 1]]
            missing = np.setdiff1d(
                np.arange(min(L, k + cand.size), dtype=np.int64), cand
            )[: k - cand.size]
            order = (
                topk_indices(lg[None, :], cand.size)[0] if cand.size else []
            )
            out[i, : cand.size] = cand[order]
            out[i, cand.size:] = missing
    if prof is not None:
        prof.add("lsh_topk", perf_counter() - t0, units=n)
    return out


def lsh_topk(
    lsh,
    H: np.ndarray,
    W_T: np.ndarray,
    b: np.ndarray,
    k: int,
    *,
    n_probes: int = 1,
    workspace: Optional[Workspace] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """The fused pipeline: probe → gather → score → segmented top-k.

    Returns ``(topk_ids, candidate_counts)`` — the ``(n, k)`` best-first
    label ids and the per-row candidate-set sizes (the selectivity signal
    the crossover calibration feeds on). ``k`` must already be clamped to
    ``[1, L]`` by the caller.
    """
    n = H.shape[0]
    L = lsh.n_items
    if n == 0:
        return (
            np.empty((0, k), dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    indptr, ids = probe_candidates(
        lsh, H, n_probes=n_probes, workspace=workspace
    )
    counts = np.diff(indptr)
    rows = np.repeat(np.arange(n, dtype=np.int64), counts)
    logits = score_entries(H, W_T, b, rows, ids)
    out = segmented_topk(indptr, ids, logits, L, k)
    return out, counts
