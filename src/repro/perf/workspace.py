"""Reusable forward/backward buffers — the allocation-free step arena.

Every ``SparseMLP`` training step needs one dense scratch matrix per layer
in each direction (activations going forward, deltas going backward). Left
to numpy, each of those is a fresh allocation per step: for an XML-sized
output layer the logits buffer alone is ``batch × n_labels`` floats, and
the allocator + page-fault cost recurs at every one of the tens of
thousands of steps in a run.

:class:`Workspace` owns those buffers and leases them out per step. Buffers
are bucketed by batch-size *capacity* (next power of two), so the adaptive
trainer's continuously varying batch sizes map onto a handful of physical
allocations; a request for ``n`` rows returns a contiguous ``buf[:n]``
view. The same object fronts the sparse out-buffer kernels used by the
input layer:

- :func:`spmm_into` — ``out = X @ W`` via ``csr_matvecs`` accumulation
  into a zeroed workspace buffer (bit-for-bit scipy's product, which calls
  the same C routine on a fresh allocation);
- :func:`spmm_t_into` — ``out = X.T @ delta`` by reading the CSR arrays
  *as* their zero-copy CSC transpose (``csc_matvecs``), writing straight
  into the gradient view instead of materializing an ``(F, h)`` temporary.

A workspace is single-flight: one step borrows buffers, finishes, and the
next step reuses them. The discrete-event trainers interleave GPU managers
*between* steps, never inside one, so one workspace per trainer is safe.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.perf import profile as _profile

try:  # pragma: no cover - import guard exercised implicitly
    from scipy.sparse import _sparsetools

    _HAVE_SPARSETOOLS = hasattr(_sparsetools, "csr_matvecs") and hasattr(
        _sparsetools, "csc_matvecs"
    )
except ImportError:  # pragma: no cover - version-dependent fallback
    _sparsetools = None
    _HAVE_SPARSETOOLS = False

__all__ = ["Workspace", "spmm_into", "spmm_t_into"]


def _capacity(n: int) -> int:
    """Bucket size: next power of two ≥ n (min 32 keeps tiny batches shared)."""
    cap = 32
    while cap < n:
        cap <<= 1
    return cap


def spmm_into(X: sp.csr_matrix, W: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``out[...] = X @ W`` without allocating the product.

    Matches scipy's ``X @ W`` bit-for-bit: scipy runs the identical
    ``csr_matvecs`` accumulation, just on a buffer it allocates per call.
    """
    prof = _profile.active
    if prof is not None:
        t0 = perf_counter()
        _spmm_into(X, W, out)
        prof.add("spmm", perf_counter() - t0, units=X.nnz)
        return out
    return _spmm_into(X, W, out)


def _spmm_into(X: sp.csr_matrix, W: np.ndarray, out: np.ndarray) -> np.ndarray:
    if _HAVE_SPARSETOOLS and W.flags.c_contiguous and out.flags.c_contiguous:
        out[...] = 0.0
        n, f = X.shape
        _sparsetools.csr_matvecs(
            n, f, W.shape[1], X.indptr, X.indices, X.data, W.ravel(), out.ravel()
        )
        return out
    out[...] = X @ W  # pragma: no cover - fallback without _sparsetools
    return out


def spmm_t_into(X: sp.csr_matrix, delta: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``out[...] = X.T @ delta`` straight into ``out`` (e.g. a grad view).

    The CSR arrays of ``X`` *are* the CSC representation of ``X.T`` —
    a zero-copy transpose — so ``csc_matvecs`` computes the product with no
    ``(n_features, h)`` temporary. Bit-for-bit equal to scipy's
    ``X.T @ delta`` (same C routine).
    """
    prof = _profile.active
    if prof is not None:
        t0 = perf_counter()
        _spmm_t_into(X, delta, out)
        prof.add("spmm_t", perf_counter() - t0, units=X.nnz)
        return out
    return _spmm_t_into(X, delta, out)


def _spmm_t_into(
    X: sp.csr_matrix, delta: np.ndarray, out: np.ndarray
) -> np.ndarray:
    if _HAVE_SPARSETOOLS and delta.flags.c_contiguous and out.flags.c_contiguous:
        out[...] = 0.0
        n, f = X.shape
        _sparsetools.csc_matvecs(
            f, n, delta.shape[1], X.indptr, X.indices, X.data,
            delta.ravel(), out.ravel(),
        )
        return out
    out[...] = (X.T @ delta).astype(out.dtype, copy=False)  # pragma: no cover
    return out


class Workspace:
    """Batch-size-bucketed scratch buffers for one trainer's hot loop."""

    __slots__ = ("_buffers", "_csc_cache")

    #: Live (X, X.T) pairs kept for the fallback transpose path.
    _CSC_CACHE_SIZE = 8

    def __init__(self) -> None:
        # (tag, capacity, width, dtype) -> (capacity, width) buffer.
        self._buffers: Dict[Tuple[str, int, int, str], np.ndarray] = {}
        self._csc_cache: list = []

    def buffer(
        self, tag: str, n: int, width: int, dtype: type = np.float32
    ) -> np.ndarray:
        """A ``(n, width)`` scratch view, reused across steps.

        ``tag`` namespaces concurrent leases within one step (e.g. the
        forward activation and backward delta of the same layer). Buffers
        default to float32; the LSH kernel also leases uint8 bitmap and
        int64 index scratch. Contents are NOT zeroed between leases.
        """
        cap = _capacity(n)
        dt = np.dtype(dtype)
        key = (tag, cap, width, dt.str)
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.empty((cap, width), dtype=dt)
            self._buffers[key] = buf
        return buf[:n]

    def csc_transpose(self, X: sp.csr_matrix) -> sp.spmatrix:
        """Cached ``X.T`` (a zero-copy CSC view over ``X``'s arrays).

        Only the *object* is cached — the arrays are shared either way. Used
        by code that needs an actual matrix operand rather than the
        :func:`spmm_t_into` raw-array kernel.
        """
        for cached_x, cached_t in self._csc_cache:
            if cached_x is X:
                return cached_t
        t = X.T
        self._csc_cache.append((X, t))
        if len(self._csc_cache) > self._CSC_CACHE_SIZE:
            self._csc_cache.pop(0)
        return t

    @property
    def allocated_bytes(self) -> int:
        """Total bytes held (observability for tests/benches)."""
        return sum(b.nbytes for b in self._buffers.values())

    @property
    def n_buffers(self) -> int:
        """Number of distinct physical buffers allocated."""
        return len(self._buffers)
