"""Binary-tree all-reduce (the NCCL-style comparator).

Reduce up a binary tree, broadcast back down: ``ceil(log2 N)`` rounds each
way, with every round moving the *full* model over one link. Compared to the
ring (which moves ``2(N-1)/N × S`` per device in 1/N-sized chunks), the tree
has fewer rounds — fewer latency terms, favorable for small models — but
transfers the whole vector per round, so it loses on bandwidth for the
GB-scale replicas XML models produce. That crossover is exactly what the
paper's implementation section reports and what ``benchmarks/
bench_allreduce.py`` regenerates.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from repro.comm.allreduce import (
    AllReduceAlgorithm,
    AllReduceTiming,
    validate_operands,
    weighted_locals,
)
from repro.comm.topology import InterconnectTopology
from repro.exceptions import CommunicationError

__all__ = ["TreeAllReduce"]


class TreeAllReduce(AllReduceAlgorithm):
    """Weighted binary-tree reduce + broadcast."""

    name = "tree"

    # -- numerics ------------------------------------------------------------
    def reduce(
        self,
        vectors: Sequence[np.ndarray],
        weights: Sequence[float],
        *,
        work: np.ndarray = None,
    ) -> np.ndarray:
        vecs = validate_operands(vectors, weights)
        n = len(vecs)
        local: List[np.ndarray] = weighted_locals(vecs, weights, work)
        # Reduce phase: at stride s, device d receives from d+s when both
        # exist and d % (2s) == 0 — a textbook binomial tree.
        stride = 1
        while stride < n:
            for d in range(0, n - stride, 2 * stride):
                local[d] += local[d + stride]
            stride *= 2
        root = local[0]
        # Broadcast phase: mirror of the reduce (values copied back down).
        stride //= 2
        while stride >= 1:
            for d in range(0, n - stride, 2 * stride):
                local[d + stride][...] = local[d]
            stride //= 2
        return root

    # -- timing -----------------------------------------------------------
    def time_seconds(
        self,
        nbytes: int,
        topology: InterconnectTopology,
        *,
        n_streams: int = 1,
    ) -> AllReduceTiming:
        """Cost for ``nbytes``.

        The tree is priced single-stream by default (the NCCL configuration
        the paper compares against); with ``n_streams > 1`` the vector is
        split into independent sub-trees whose transfers overlap the reduce
        compute, analogous to the ring's multi-streaming.
        """
        if n_streams < 1:
            raise CommunicationError(f"n_streams must be >= 1, got {n_streams}")
        n = topology.n_devices
        if n == 1:
            return AllReduceTiming(0.0, 0.0, 0.0, 0.0, rounds=0, n_streams=n_streams)
        depth = math.ceil(math.log2(n))
        rounds = 2 * depth
        per_stream_bytes = nbytes / n_streams
        elems = per_stream_bytes / 4.0
        per_round_transfer = topology.transfer_time(per_stream_bytes) - topology.link_latency_s
        per_round_reduce = topology.reduce_time(elems)
        latency = rounds * topology.link_latency_s
        transfer = rounds * per_round_transfer
        if n_streams > 1:
            reduce_cost = max(0.0, depth * per_round_reduce - depth * per_round_transfer)
        else:
            reduce_cost = depth * per_round_reduce
        total = latency + transfer + reduce_cost
        return AllReduceTiming(
            total_s=total,
            transfer_s=transfer,
            reduce_s=reduce_cost,
            latency_s=latency,
            rounds=rounds,
            n_streams=n_streams,
        )
