"""Ring all-reduce with multi-stream overlap (HeteroGPU's merge method).

§IV: "we implement specialized tree- and ring-based multi-stream all-reduce
aggregation functions. The local replica models are split into a fixed
number of partitions, which are allocated to a separate GPU processing
stream... Every stream performs the all-reduce aggregation starting from a
different GPU. This results in complete overlap between data transfer and
computation... the multi-stream ring-based all-reduce function performs
model merging at least twice as fast [as single-stream tree]."

Numerics: the classic two-phase ring — ``N-1`` scatter-reduce rounds where
each device forwards one chunk to its successor and accumulates the chunk it
receives, then ``N-1`` all-gather rounds. Weights are folded in up front
(each device contributes ``w_i · v_i``), making the result the weighted sum.

Timing: the model is cut into ``n_streams`` partitions, each running its own
ring offset by one device so concurrent streams use disjoint links (the
paper found ``n_streams = n_gpus`` optimal). Within a stream, the per-round
cost is ``latency + chunk/BW`` with the on-device reduce *overlapped* with
the transfer when more than one stream is active (that is the whole point of
multi-streaming); single-stream rings pay ``transfer + reduce`` serially.
Streams beyond ``n_gpus`` contend for links and share bandwidth.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from repro.comm.allreduce import (
    AllReduceAlgorithm,
    AllReduceTiming,
    validate_operands,
    weighted_locals,
)
from repro.comm.topology import InterconnectTopology
from repro.exceptions import CommunicationError

__all__ = ["RingAllReduce"]


class RingAllReduce(AllReduceAlgorithm):
    """Weighted ring all-reduce (optionally multi-stream)."""

    name = "ring"

    def __init__(self, n_streams: int = 1) -> None:
        if n_streams < 1:
            raise CommunicationError(f"n_streams must be >= 1, got {n_streams}")
        self.n_streams = int(n_streams)

    # -- numerics ------------------------------------------------------------
    def reduce(
        self,
        vectors: Sequence[np.ndarray],
        weights: Sequence[float],
        *,
        work: np.ndarray = None,
    ) -> np.ndarray:
        vecs = validate_operands(vectors, weights)
        n = len(vecs)
        if n == 1:
            return (vecs[0] * np.float32(weights[0])).copy()
        size = vecs[0].size
        # Device-local contributions w_i * v_i (into ``work`` when provided).
        local: List[np.ndarray] = weighted_locals(vecs, weights, work)
        # Chunk boundaries: n near-equal chunks (some possibly empty).
        bounds = np.linspace(0, size, n + 1).astype(np.int64)

        def chunk(device: int, c: int) -> np.ndarray:
            return local[device][bounds[c]:bounds[c + 1]]

        # Phase 1: scatter-reduce. After round r, device d has accumulated
        # chunk (d - r) mod n from the r+1 devices upstream of it.
        for r in range(n - 1):
            # All sends in a round happen "simultaneously": snapshot sources.
            outgoing = [chunk(d, (d - r) % n).copy() for d in range(n)]
            for d in range(n):
                dst = (d + 1) % n
                chunk(dst, (d - r) % n)[...] += outgoing[d]
        # Device d now owns the fully-reduced chunk (d + 1) mod n.
        # Phase 2: all-gather — circulate the owned chunks around the ring.
        for r in range(n - 1):
            outgoing = [chunk(d, (d + 1 - r) % n).copy() for d in range(n)]
            for d in range(n):
                dst = (d + 1) % n
                chunk(dst, (d + 1 - r) % n)[...] = outgoing[d]
        # Every device holds the same result; return device 0's copy.
        return local[0]

    # -- timing -----------------------------------------------------------
    def time_seconds(
        self,
        nbytes: int,
        topology: InterconnectTopology,
        *,
        n_streams: int = 0,
    ) -> AllReduceTiming:
        """Cost for ``nbytes``; ``n_streams=0`` uses the instance default."""
        streams = n_streams if n_streams >= 1 else self.n_streams
        n = topology.n_devices
        if n == 1:
            return AllReduceTiming(0.0, 0.0, 0.0, 0.0, rounds=0, n_streams=streams)
        rounds = 2 * (n - 1)
        # Each stream moves nbytes/streams, cut into n ring chunks.
        chunk_bytes = nbytes / (streams * n)
        chunk_elems = chunk_bytes / 4.0
        # Streams beyond n reuse links: bandwidth is shared.
        contention = max(1, math.ceil(streams / n))
        per_round_transfer = topology.transfer_time(
            chunk_bytes, concurrent_on_link=contention
        )
        per_round_reduce = topology.reduce_time(chunk_elems)
        latency = rounds * topology.link_latency_s
        transfer = rounds * (per_round_transfer - topology.link_latency_s)
        if streams > 1:
            # Multi-stream: the on-device reduce of one stream's chunk
            # overlaps with another stream's transfer — pay max, not sum.
            reduce_cost = max(
                0.0, (n - 1) * per_round_reduce - (n - 1) * per_round_transfer
            )
        else:
            reduce_cost = (n - 1) * per_round_reduce
        total = latency + transfer + reduce_cost
        return AllReduceTiming(
            total_s=total,
            transfer_s=transfer,
            reduce_s=reduce_cost,
            latency_s=latency,
            rounds=rounds,
            n_streams=streams,
        )
