"""Collective communication substrate (single-server, NCCL-free).

- :mod:`repro.comm.topology` — (α, β) link model for the PCIe/NVLink server.
- :mod:`repro.comm.allreduce` — weighted all-reduce interface + validation.
- :mod:`repro.comm.ring` — multi-stream ring (HeteroGPU's production merge).
- :mod:`repro.comm.tree` — binary-tree comparator.
- :mod:`repro.comm.halving_doubling` — recursive halving-doubling (extra).
"""

from repro.comm.allreduce import AllReduceAlgorithm, AllReduceTiming, validate_operands
from repro.comm.halving_doubling import HalvingDoublingAllReduce
from repro.comm.ring import RingAllReduce
from repro.comm.topology import InterconnectTopology
from repro.comm.tree import TreeAllReduce

__all__ = [
    "AllReduceAlgorithm",
    "AllReduceTiming",
    "validate_operands",
    "HalvingDoublingAllReduce",
    "RingAllReduce",
    "InterconnectTopology",
    "TreeAllReduce",
]
