"""Recursive halving-doubling all-reduce (the third classic schedule).

Not part of the paper's comparison (it evaluates ring vs tree), but the
natural third point on the latency/bandwidth trade-off curve and a common
NCCL fallback: ``log2(N)`` reduce-scatter rounds with halving message sizes
followed by ``log2(N)`` all-gather rounds with doubling sizes. Total bytes
moved per device ≈ ``2·S·(N-1)/N`` — ring-optimal bandwidth — in only
``2·log2(N)`` rounds — tree-like latency. Requires a power-of-two device
count; the numeric path handles any count by reducing stragglers into the
power-of-two core first (the standard pre/post step).
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from repro.comm.allreduce import (
    AllReduceAlgorithm,
    AllReduceTiming,
    validate_operands,
    weighted_locals,
)
from repro.comm.topology import InterconnectTopology
from repro.exceptions import CommunicationError

__all__ = ["HalvingDoublingAllReduce"]


class HalvingDoublingAllReduce(AllReduceAlgorithm):
    """Weighted recursive halving-doubling all-reduce."""

    name = "halving-doubling"

    # -- numerics ------------------------------------------------------------
    def reduce(
        self,
        vectors: Sequence[np.ndarray],
        weights: Sequence[float],
        *,
        work: np.ndarray = None,
    ) -> np.ndarray:
        vecs = validate_operands(vectors, weights)
        n = len(vecs)
        local: List[np.ndarray] = weighted_locals(vecs, weights, work)
        if n == 1:
            return local[0]
        # Fold stragglers beyond the largest power of two into the core.
        core = 1 << (n.bit_length() - 1)
        if core == n:
            extras = 0
        else:
            extras = n - core
            for i in range(extras):
                local[i] += local[core + i]
        size = local[0].size
        # Recursive halving (reduce-scatter): at distance d, partners swap
        # complementary halves of their active window and reduce.
        windows = [(0, size)] * core
        dist = core // 2
        while dist >= 1:
            snapshot = [arr.copy() for arr in local[:core]]
            for rank in range(core):
                partner = rank ^ dist
                lo, hi = windows[rank]
                mid = (lo + hi) // 2
                # Lower-partner keeps the low half, upper keeps the high.
                if rank < partner:
                    local[rank][lo:mid] += snapshot[partner][lo:mid]
                    windows[rank] = (lo, mid)
                else:
                    local[rank][mid:hi] += snapshot[partner][mid:hi]
                    windows[rank] = (mid, hi)
            dist //= 2
        # Recursive doubling (all-gather): mirror the exchanges.
        dist = 1
        while dist < core:
            snapshot = [arr.copy() for arr in local[:core]]
            new_windows = list(windows)
            for rank in range(core):
                partner = rank ^ dist
                plo, phi = windows[partner]
                local[rank][plo:phi] = snapshot[partner][plo:phi]
                lo, hi = windows[rank]
                new_windows[rank] = (min(lo, plo), max(hi, phi))
            windows = new_windows
            dist *= 2
        return local[0]

    # -- timing -----------------------------------------------------------
    def time_seconds(
        self,
        nbytes: int,
        topology: InterconnectTopology,
        *,
        n_streams: int = 1,
    ) -> AllReduceTiming:
        if n_streams < 1:
            raise CommunicationError(f"n_streams must be >= 1, got {n_streams}")
        n = topology.n_devices
        if n == 1:
            return AllReduceTiming(0.0, 0.0, 0.0, 0.0, rounds=0, n_streams=n_streams)
        depth = math.ceil(math.log2(n))
        rounds = 2 * depth
        # Halving phase moves S/2 + S/4 + ... ≈ S(1 - 2^-depth) bytes; the
        # doubling phase mirrors it.
        moved = nbytes * (1.0 - 2.0 ** (-depth))
        per_stream = moved / n_streams
        transfer = 2.0 * per_stream / topology.link_bandwidth_Bps
        latency = rounds * topology.link_latency_s
        reduce_elems = per_stream / 4.0
        per_reduce = topology.reduce_time(reduce_elems)
        if n_streams > 1:
            reduce_cost = max(0.0, per_reduce - transfer / 2.0)
        else:
            reduce_cost = per_reduce
        total = latency + transfer + reduce_cost
        return AllReduceTiming(
            total_s=total,
            transfer_s=transfer,
            reduce_s=reduce_cost,
            latency_s=latency,
            rounds=rounds,
            n_streams=n_streams,
        )
