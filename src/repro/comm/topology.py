"""Interconnect model for the single-server multi-GPU topology.

§IV scopes the all-reduce design to a *single server*: GPUs exchange data
peer-to-peer over PCIe/NVLink. We model every directed GPU↔GPU link with an
(α, β) cost — ``latency + bytes / bandwidth`` — and let concurrent streams
share link bandwidth when they contend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import CommunicationError
from repro.utils.validation import check_positive

__all__ = ["InterconnectTopology"]


@dataclass(frozen=True)
class InterconnectTopology:
    """Uniform all-to-all single-server interconnect.

    Attributes
    ----------
    n_devices:
        Number of GPUs on the server.
    link_bandwidth_Bps:
        Point-to-point bandwidth of each directed link (bytes/second).
    link_latency_s:
        Per-message latency (seconds).
    d2d_reduce_flops_per_s:
        Throughput of the on-GPU elementwise reduce that each received chunk
        undergoes (flop/s); part of each all-reduce round's critical path.
    """

    n_devices: int
    link_bandwidth_Bps: float = 10.0e9
    link_latency_s: float = 10.0e-6
    d2d_reduce_flops_per_s: float = 2.0e11

    def __post_init__(self) -> None:
        if self.n_devices < 1:
            raise CommunicationError(
                f"topology needs >= 1 device, got {self.n_devices}"
            )
        check_positive("link_bandwidth_Bps", self.link_bandwidth_Bps)
        check_positive("link_latency_s", self.link_latency_s)
        check_positive("d2d_reduce_flops_per_s", self.d2d_reduce_flops_per_s)

    @classmethod
    def single_server_pcie(cls, n_devices: int) -> "InterconnectTopology":
        """PCIe 3.0 x16-flavored defaults (≈10 GB/s effective per link)."""
        return cls(n_devices=n_devices)

    @classmethod
    def single_server_nvlink(cls, n_devices: int) -> "InterconnectTopology":
        """NVLink-flavored defaults (~40 GB/s, lower latency)."""
        return cls(
            n_devices=n_devices,
            link_bandwidth_Bps=40.0e9,
            link_latency_s=3.0e-6,
        )

    def transfer_time(self, nbytes: float, *, concurrent_on_link: int = 1) -> float:
        """Time to move ``nbytes`` over one link.

        ``concurrent_on_link`` models bandwidth sharing when several streams
        traverse the same physical link simultaneously.
        """
        if nbytes < 0:
            raise CommunicationError(f"nbytes must be >= 0, got {nbytes}")
        if concurrent_on_link < 1:
            raise CommunicationError(
                f"concurrent_on_link must be >= 1, got {concurrent_on_link}"
            )
        effective = self.link_bandwidth_Bps / concurrent_on_link
        return self.link_latency_s + nbytes / effective

    def reduce_time(self, n_elements: float) -> float:
        """On-device elementwise reduce time for a chunk of ``n_elements``."""
        if n_elements < 0:
            raise CommunicationError(f"n_elements must be >= 0, got {n_elements}")
        return n_elements / self.d2d_reduce_flops_per_s
