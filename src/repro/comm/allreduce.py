"""Weighted all-reduce collectives: interface and reference semantics.

HeteroGPU merges replicas with a *weighted average* all-reduce executed by
the GPU managers themselves (§IV). Two concerns are deliberately separated:

- **Numerics** — :meth:`AllReduceAlgorithm.reduce` computes the merged
  vector by actually executing the algorithm's data movement on numpy
  chunks. Every algorithm must agree with the single-step reference
  :func:`repro.sparse.model_state.weighted_average` up to float addition
  order (property-tested).
- **Timing** — :meth:`AllReduceAlgorithm.time_seconds` prices the same
  movement on an :class:`~repro.comm.topology.InterconnectTopology`,
  including multi-stream transfer/compute overlap.

Concrete schedules: :mod:`repro.comm.ring`, :mod:`repro.comm.tree`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.comm.topology import InterconnectTopology
from repro.exceptions import CommunicationError

__all__ = [
    "AllReduceAlgorithm",
    "AllReduceTiming",
    "validate_operands",
    "weighted_locals",
]


@dataclass(frozen=True)
class AllReduceTiming:
    """Cost breakdown of one collective invocation."""

    total_s: float
    transfer_s: float
    reduce_s: float
    latency_s: float
    rounds: int
    n_streams: int

    def __post_init__(self) -> None:
        if self.total_s < 0:
            raise CommunicationError(f"negative total time: {self.total_s}")

    def to_args(self) -> dict:
        """The breakdown as flat span args (for telemetry ``merge.allreduce``)."""
        return {
            "total_s": self.total_s,
            "transfer_s": self.transfer_s,
            "reduce_s": self.reduce_s,
            "latency_s": self.latency_s,
            "rounds": self.rounds,
            "n_streams": self.n_streams,
        }


def validate_operands(
    vectors: Sequence[np.ndarray], weights: Sequence[float]
) -> List[np.ndarray]:
    """Common operand checks; returns the vectors as float32 1-D arrays."""
    if not vectors:
        raise CommunicationError("all-reduce of zero vectors")
    if len(vectors) != len(weights):
        raise CommunicationError(
            f"{len(vectors)} vectors but {len(weights)} weights"
        )
    out = []
    size = None
    for i, vec in enumerate(vectors):
        arr = np.ascontiguousarray(vec, dtype=np.float32)
        if arr.ndim != 1:
            raise CommunicationError(f"vector {i} is not 1-D: shape {arr.shape}")
        if size is None:
            size = arr.size
        elif arr.size != size:
            raise CommunicationError(
                f"vector {i} has {arr.size} elements, expected {size}"
            )
        out.append(arr)
    return out


def weighted_locals(
    vecs: Sequence[np.ndarray],
    weights: Sequence[float],
    work: Optional[np.ndarray] = None,
) -> List[np.ndarray]:
    """Device-local contributions ``w_i * v_i`` for a schedule to consume.

    ``work`` (a ``(n, size)`` float32 buffer) receives the products in place
    — merge-heavy trainers preallocate it once so every mega-batch's reduce
    is allocation-free. Falls back to fresh arrays when the buffer is absent
    or mis-shaped. Callers must treat the returned result as valid only
    until the next ``reduce`` with the same buffer.
    """
    n, size = len(vecs), vecs[0].size
    if (
        work is not None
        and work.dtype == np.float32
        and work.ndim == 2
        and work.shape[0] >= n
        and work.shape[1] == size
    ):
        return [
            np.multiply(v, np.float32(w), out=work[i])
            for i, (v, w) in enumerate(zip(vecs, weights))
        ]
    return [v * np.float32(w) for v, w in zip(vecs, weights)]


class AllReduceAlgorithm(ABC):
    """A weighted-average all-reduce schedule."""

    name: str = "allreduce"

    @abstractmethod
    def reduce(
        self,
        vectors: Sequence[np.ndarray],
        weights: Sequence[float],
        *,
        work: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Execute the schedule numerically; return ``sum_i w_i * v_i``.

        Implementations move real chunks the way the hardware schedule
        would, so chunking/addition-order effects are faithfully present.
        ``work`` optionally supplies an ``(n, size)`` float32 scratch buffer
        for the device-local contributions (see :func:`weighted_locals`);
        the returned vector may alias it, and is only valid until the next
        ``reduce`` call with the same buffer.
        """

    @abstractmethod
    def time_seconds(
        self,
        nbytes: int,
        topology: InterconnectTopology,
        *,
        n_streams: int = 1,
    ) -> AllReduceTiming:
        """Price one invocation for a model of ``nbytes`` on ``topology``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"
