"""repro — reproduction of "Adaptive Optimization for Sparse Data on
Heterogeneous GPUs" (Ma, Rusu, Wu, Sim — IEEE IPDPSW 2022).

The package implements the paper's **Adaptive SGD** algorithm (dynamic
scheduling, adaptive batch size scaling, normalized model merging) together
with every substrate it needs, built from scratch:

- :mod:`repro.sim` — a deterministic discrete-event engine (the clock the
  virtual cluster runs on);
- :mod:`repro.gpu` — virtual heterogeneous GPUs with an analytical,
  sparsity-sensitive cost model (the paper's 4×V100 testbed, simulated);
- :mod:`repro.comm` — weighted ring/tree all-reduce collectives with
  multi-stream overlap timing;
- :mod:`repro.sparse` — the 3-layer sparse-input MLP, losses, metrics, and
  flat-buffer model states (real numerics on the host CPU);
- :mod:`repro.data` — synthetic XML datasets matching the paper's Table-I
  shape, multi-label libSVM IO, batching and mega-batch accounting;
- :mod:`repro.core` — Algorithms 1 & 2, the dynamic scheduler, and the
  :class:`~repro.core.adaptive.AdaptiveSGDTrainer`;
- :mod:`repro.baselines` — TensorFlow-mirrored sync SGD, Elastic SGD,
  CROSSBOW, SLIDE (real SimHash LSH), async SGD, mini-batch SGD;
- :mod:`repro.harness` — the §V-A methodology, per-figure experiment
  builders, and paper-style reporting.

Quickstart::

    from repro import AdaptiveSGDConfig, AdaptiveSGDTrainer, load_task, make_server

    task = load_task("amazon670k-bench", seed=0)
    server = make_server(4)  # 4 heterogeneous virtual V100s
    config = AdaptiveSGDConfig(b_max=128, base_lr=0.4, mega_batch_batches=40)
    trace = AdaptiveSGDTrainer(task, server, config).run(time_budget_s=0.5)
    print(trace.best_accuracy, trace.time_to_accuracy(0.5))
"""

from repro.api import make_engine, make_trainer, register_trainer, trainer_names
from repro.core.adaptive import AdaptiveSGDTrainer
from repro.core.config import AdaptiveSGDConfig
from repro.data.registry import dataset_names, load_task
from repro.gpu.cluster import make_server
from repro.harness.experiment import ALGORITHMS, ExperimentSpec, run_experiment
from repro.harness.traces import TrainingTrace
from repro.telemetry import Telemetry

__version__ = "1.1.0"

__all__ = [
    "AdaptiveSGDTrainer",
    "AdaptiveSGDConfig",
    "dataset_names",
    "load_task",
    "make_server",
    "make_trainer",
    "make_engine",
    "register_trainer",
    "trainer_names",
    "Telemetry",
    "ALGORITHMS",
    "ExperimentSpec",
    "run_experiment",
    "TrainingTrace",
    "__version__",
]
