"""Shared machinery for every trainer (Adaptive SGD and all baselines).

The paper's methodology (§V-A) imposes the same protocol on every algorithm:

- all algorithms start from the **same initial model** (same seed);
- every algorithm runs for the **same amount of simulated time**;
- **top-1 accuracy is measured after every mega-batch** on the test data;
- data-loading and evaluation time is **excluded** from the clock.

:class:`TrainerBase` implements that protocol once: it owns the model
architecture, the shared initializer, the (optionally subsampled) test-set
evaluator, trace bookkeeping, and the telemetry stream. Subclasses implement
:meth:`_execute`, which runs the algorithm on the simulation environment
until the time budget expires.

Telemetry: every trainer holds ``self.telemetry`` — a
:class:`repro.telemetry.Telemetry` recorder, or the shared zero-cost
:data:`repro.telemetry.NULL` sink when none was configured — and emits the
uniform schema of :mod:`repro.telemetry.events` through it. ``run`` attaches
the recorder to the fresh simulation clock for the duration of the run.
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from time import perf_counter
from typing import Optional, Tuple

import numpy as np

from repro.data.dataset import XMLTask
from repro.exceptions import ConfigurationError
from repro.gpu.cluster import MultiGPUServer
from repro.harness.traces import TracePoint, TrainingTrace
from repro.perf.workspace import Workspace
from repro.sim.environment import Environment
from repro.sparse.metrics import top1_accuracy
from repro.sparse.mlp import MLPArchitecture, SparseMLP
from repro.sparse.model_state import ModelState
from repro.telemetry import NULL, Telemetry
from repro.telemetry.events import (
    EVENT_CHECKPOINT,
    GAUGE_ACCURACY,
    GAUGE_BATCH_SIZE,
    GAUGE_LOSS,
    GAUGE_LR,
    SPAN_RUN,
)
from repro.utils.rng import RngFactory

__all__ = ["TrainerBase"]


class TrainerBase(ABC):
    """Common protocol for all training algorithms in the evaluation."""

    #: Human-readable algorithm name (used as the curve label).
    algorithm: str = "trainer"

    def __init__(
        self,
        task: XMLTask,
        server: MultiGPUServer,
        config=None,
        *,
        hidden: Tuple[int, ...] = (128,),
        init_seed: int = 0,
        data_seed: int = 0,
        eval_samples: Optional[int] = 1024,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.task = task
        self.server = server
        #: The shared hyperparameter bundle (an ``AdaptiveSGDConfig``).
        #: Owned here so every trainer exposes one construction surface.
        self.config = config
        self.arch = MLPArchitecture(
            n_features=task.n_features, n_labels=task.n_labels, hidden=hidden
        )
        self.mlp = SparseMLP(self.arch)
        self.init_seed = init_seed
        self.data_seed = data_seed
        self.telemetry: Telemetry = telemetry if telemetry is not None else NULL

        # Fixed evaluation subset: deterministic, identical across algorithms
        # (they share the task + seed), sized to keep host-side eval cheap.
        n_test = task.test.n_samples
        if eval_samples is None or eval_samples >= n_test:
            self._eval_split = task.test
        else:
            if eval_samples < 1:
                raise ConfigurationError(
                    f"eval_samples must be >= 1, got {eval_samples}"
                )
            rng = RngFactory(data_seed).get("eval-subset")
            idx = rng.choice(n_test, size=eval_samples, replace=False)
            self._eval_split = task.test.take(np.sort(idx), name="eval-subset")
        # Hot-path scratch shared by every step and evaluation this trainer
        # runs: bucketed activation/delta buffers (see repro.perf.workspace).
        self.workspace = Workspace()
        # The accuracy probe runs after every mega-batch; cache the boolean
        # label matrix once instead of re-casting Y per evaluation.
        self._eval_Y_bool = self._eval_split.Y.astype(bool)
        #: The model most recently passed to :meth:`record_checkpoint` —
        #: every algorithm checkpoints its live global model, so after
        #: ``run()`` this is the trained model :meth:`save_snapshot` ships.
        self.final_state: Optional[ModelState] = None
        #: Armed by :meth:`publish_snapshot`(every_s=...): periodic
        #: publication state checked at every checkpoint.
        self._publisher: Optional[dict] = None
        #: Sim time of the most recent checkpoint (stamps one-shot publishes).
        self._last_checkpoint_s: float = 0.0

    # -- shared protocol -----------------------------------------------------
    def initial_state(self) -> ModelState:
        """The shared initial model (same for every algorithm at a seed)."""
        return self.mlp.init_state(seed=self.init_seed)

    def evaluate(self, state: ModelState) -> float:
        """Top-1 test accuracy of ``state`` (host-side; zero simulated time)."""
        scores = self.mlp.evaluate(
            self._eval_split.X, self._eval_split.Y, state,
            workspace=self.workspace,
        )
        return top1_accuracy(scores, self._eval_split.Y, Y_bool=self._eval_Y_bool)

    def new_trace(self, n_devices: int) -> TrainingTrace:
        """A trace pre-filled with run identity metadata."""
        return TrainingTrace(
            algorithm=self.algorithm,
            dataset=self.task.name,
            n_devices=n_devices,
            metadata={
                "init_seed": self.init_seed,
                "data_seed": self.data_seed,
                "hidden": list(self.arch.hidden),
                "n_params": self.arch.n_params,
            },
        )

    def record_checkpoint(
        self,
        trace: TrainingTrace,
        env: Environment,
        *,
        epochs: float,
        updates: int,
        samples: int,
        state: ModelState,
        loss: float,
    ) -> TracePoint:
        """Evaluate ``state`` and append a checkpoint at the current sim time."""
        self.final_state = state
        self._last_checkpoint_s = env.now
        pub = self._publisher
        if pub is not None and env.now >= pub["next_s"]:
            # Checkpoint-aligned publishing: the live global model versions
            # into the store at the current sim time, so a serving run can
            # replay this training session's publish schedule.
            pub["store"].publish(
                self._as_snapshot(**pub["meta"]), published_s=env.now
            )
            pub["next_s"] = env.now + pub["every_s"]
        tel = self.telemetry
        host_t0 = perf_counter() if tel.enabled else 0.0
        point = TracePoint(
            time_s=env.now,
            epochs=epochs,
            updates=updates,
            samples=samples,
            accuracy=self.evaluate(state),
            loss=loss,
        )
        trace.record_point(point)
        if tel.enabled:
            # Evaluation is host-side (§V-A excludes it from the clock), so
            # it appears as an instant event carrying its real wall cost.
            tel.instant(
                EVENT_CHECKPOINT,
                accuracy=point.accuracy, loss=point.loss,
                updates=updates, samples=samples, epochs=epochs,
                host_eval_us=(perf_counter() - host_t0) * 1e6,
            )
            tel.gauge(GAUGE_ACCURACY, point.accuracy)
            tel.gauge(GAUGE_LOSS, point.loss)
        return point

    def record_device_controls(self, batch_sizes, learning_rates=None) -> None:
        """Gauge every device's current batch size (and optionally LR).

        All trainers emit ``batch_size`` — static algorithms once per
        boundary at their fixed size, Adaptive SGD at each Algorithm-1
        rescale — so the Figure-6a telemetry is uniformly available.
        """
        tel = self.telemetry
        if not tel.enabled:
            return
        for device, size in enumerate(batch_sizes):
            tel.gauge(GAUGE_BATCH_SIZE, size, device=device)
        if learning_rates is not None:
            for device, lr in enumerate(learning_rates):
                tel.gauge(GAUGE_LR, lr, device=device)

    def apply_membership_rescale(
        self,
        scheduler,
        *,
        survivors,
        joined,
        n_before: int,
    ):
        """Re-derive per-device controls at a membership epoch.

        Runs the Dynamic-Mini-batch rescale
        (:func:`repro.core.scaling.rescale_for_membership`) over the
        surviving slots, writes the new batch sizes / learning rates back
        into the scheduler, activates each joining slot at the ramped
        entry controls, and gauges the updated controls — so every trainer
        driving an elastic cluster re-derives its controls the same way.
        Returns the :class:`~repro.core.scaling.MembershipRescale`.
        """
        from repro.core.scaling import rescale_for_membership

        if not survivors:
            raise ConfigurationError(
                "membership rescale with no surviving devices"
            )
        rescale = rescale_for_membership(
            [scheduler.batch_sizes[i] for i in survivors],
            [scheduler.learning_rates[i] for i in survivors],
            n_before=n_before,
            n_joining=len(joined),
            b_min=scheduler.config.b_min,
            b_max=scheduler.config.b_max,
        )
        for slot, i in enumerate(survivors):
            scheduler.set_controls(
                i,
                batch_size=rescale.batch_sizes[slot],
                learning_rate=rescale.learning_rates[slot],
            )
        for device_id in joined:
            scheduler.activate(
                device_id,
                batch_size=rescale.join_batch_size,
                learning_rate=rescale.join_learning_rate,
            )
        self.record_device_controls(
            scheduler.batch_sizes, scheduler.learning_rates
        )
        return rescale

    def _as_snapshot(self, **meta):
        """The last-checkpointed model as a ModelSnapshot with provenance."""
        from repro.serve.snapshot import ModelSnapshot

        if self.final_state is None:
            raise ConfigurationError(
                "no checkpointed model yet: run the trainer first (every "
                "run records at least the initial checkpoint)"
            )
        merged_meta = {
            "algorithm": self.algorithm,
            "dataset": self.task.name,
            "n_labels": self.task.n_labels,
            "n_features": self.task.n_features,
            "init_seed": self.init_seed,
            "data_seed": self.data_seed,
            **meta,
        }
        return ModelSnapshot(
            arch=self.arch, state=self.final_state, meta=merged_meta
        )

    def save_snapshot(self, stem, **meta):
        """Persist the trained model as a serving snapshot at ``stem``.

        Writes ``<stem>.snapshot.json`` + ``<stem>.snapshot.npz`` (see
        :mod:`repro.serve.snapshot`) from the model recorded at the last
        checkpoint. Extra ``meta`` keywords land in the header's ``meta``
        section alongside the trainer's provenance fields. Returns the
        header path; raises if no run has checkpointed a model yet.
        """
        return self._as_snapshot(**meta).save(stem)

    def publish_snapshot(self, store, *, every_s=None, **meta):
        """Publish into a :class:`~repro.serve.store.SnapshotStore`.

        Two modes:

        - ``every_s=None`` (immediate): versions the last-checkpointed
          model into ``store`` right now and returns the new version id —
          the one-shot deploy, requires a completed run.
        - ``every_s=<sim seconds>`` (armed, call *before* ``run()``):
          checkpoint-aligned continuous publishing. At the first checkpoint
          and then whenever ``every_s`` more simulated seconds have
          elapsed, the live global model is versioned into the store
          stamped with the current sim time — the publish schedule a
          concurrently-serving engine replays for hot-swaps. Returns
          ``None``; disarm by passing ``store=None``.

        Extra ``meta`` keywords flow into every published header.
        """
        if every_s is None:
            snapshot = self._as_snapshot(**meta)
            return store.publish(snapshot, published_s=self._last_checkpoint_s)
        if store is None:
            self._publisher = None
            return None
        if not (every_s > 0):
            raise ConfigurationError(
                f"every_s must be > 0 (or None for immediate publish), "
                f"got {every_s}"
            )
        self._publisher = {
            "store": store,
            "every_s": float(every_s),
            "meta": dict(meta),
            "next_s": 0.0,
        }
        return None

    # -- entry point ---------------------------------------------------------
    def run(
        self,
        *args,
        time_budget_s: Optional[float] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> TrainingTrace:
        """Train for ``time_budget_s`` simulated seconds; return the trace.

        ``time_budget_s`` is keyword-only; the positional spelling
        ``run(0.3)`` still works but is deprecated. ``telemetry`` overrides
        the constructor-level recorder for this run only.
        """
        if args:
            if len(args) > 1:
                raise TypeError(
                    f"run() takes at most one positional argument "
                    f"({len(args)} given); use run(time_budget_s=..., "
                    f"telemetry=...)"
                )
            if time_budget_s is not None:
                raise TypeError(
                    "run() got time_budget_s both positionally and by keyword"
                )
            warnings.warn(
                "positional time_budget_s is deprecated; call "
                "run(time_budget_s=...)",
                DeprecationWarning,
                stacklevel=2,
            )
            time_budget_s = args[0]
        if time_budget_s is None:
            raise ConfigurationError("run() requires time_budget_s")
        if not (time_budget_s > 0):
            raise ConfigurationError(
                f"time budget must be > 0, got {time_budget_s}"
            )
        env = Environment()
        tel = telemetry if telemetry is not None else self.telemetry
        prev_tel = self.telemetry
        self.telemetry = tel
        tel.attach(
            env,
            algorithm=self.algorithm,
            dataset=self.task.name,
            n_devices=self.server.n_gpus,
            time_budget_s=time_budget_s,
            init_seed=self.init_seed,
            data_seed=self.data_seed,
        )
        try:
            with tel.span(SPAN_RUN, time_budget_s=time_budget_s):
                return self._execute(env, time_budget_s)
        finally:
            tel.detach()
            self.telemetry = prev_tel

    @abstractmethod
    def _execute(self, env: Environment, time_budget_s: float) -> TrainingTrace:
        """Algorithm-specific training loop on ``env`` (subclass hook)."""
