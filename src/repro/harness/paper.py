"""One-call reproduction of the whole evaluation section.

:func:`reproduce_all` runs every paper artifact in sequence — Figure 1,
Table I, Figure 4 (both datasets), Figure 5 (both datasets), Figure 6, and
the §IV all-reduce comparison — and returns a :class:`PaperReport` holding
the raw results plus the rendered text. ``examples/full_reproduction.py``
and the ``python -m repro`` workflow build on it; result sets can be saved
for later analysis with :mod:`repro.harness.store`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.harness.figures import (
    PAPER_TABLE1,
    allreduce_comparison,
    fig1_heterogeneity,
    fig4_time_to_accuracy,
    fig5_scalability,
    fig6_adaptivity,
    table1_rows,
)
from repro.harness.report import (
    render_allreduce,
    render_fig1,
    render_fig6,
    render_table1,
    render_tta_curves,
    render_tta_summary,
)

__all__ = ["PaperReport", "reproduce_all"]

DATASETS = ("amazon670k-bench", "delicious200k-bench")


@dataclass
class PaperReport:
    """All artifacts of one full reproduction pass."""

    fig1_rows: list
    table1: list
    fig4: Dict[str, dict]
    fig5: Dict[str, dict]
    fig6: object
    allreduce_rows: list
    #: Rendered text per artifact, in paper order.
    sections: List[str] = field(default_factory=list)

    def render(self) -> str:
        """The complete text report."""
        return "\n\n".join(self.sections)


def reproduce_all(
    *,
    time_budget_s: float = 0.3,
    seed: int = 0,
    datasets=DATASETS,
    progress: Optional[Callable[[str], None]] = None,
) -> PaperReport:
    """Run the full evaluation; returns the collected :class:`PaperReport`.

    ``progress`` (when given) receives a one-line status before each stage —
    pass ``print`` for a live console, or a logger method.
    """
    say = progress or (lambda _msg: None)
    sections: List[str] = []

    say("Figure 1 — heterogeneity measurement")
    fig1_rows = fig1_heterogeneity(seed=seed)
    sections.append(render_fig1(fig1_rows))

    say("Table I — dataset characteristics")
    t1 = table1_rows(datasets=datasets, seed=seed)
    sections.append(render_table1(t1, PAPER_TABLE1))

    fig4: Dict[str, dict] = {}
    for dataset in datasets:
        say(f"Figure 4 — {dataset} (4 methods x 3 GPU counts)")
        traces = fig4_time_to_accuracy(
            dataset, time_budget_s=time_budget_s, seed=seed
        )
        fig4[dataset] = traces
        sections.append(
            render_tta_curves(traces, title=f"Figure 4 — {dataset}")
            + "\n\n" + render_tta_summary(list(traces.values()))
        )

    fig5: Dict[str, dict] = {}
    for dataset in datasets:
        say(f"Figure 5 — {dataset} (Adaptive vs SLIDE)")
        traces = fig5_scalability(
            dataset, time_budget_s=time_budget_s, seed=seed
        )
        fig5[dataset] = traces
        sections.append(
            render_tta_curves(traces, title=f"Figure 5a — {dataset}")
            + "\n\n" + render_tta_curves(
                traces, x="epochs", title=f"Figure 5b — {dataset}"
            )
        )

    say("Figure 6 — adaptivity telemetry")
    fig6 = fig6_adaptivity(
        datasets[0], time_budget_s=time_budget_s, seed=seed
    )
    sections.append(render_fig6(fig6))

    say("§IV — all-reduce comparison")
    ar_rows = allreduce_comparison()
    sections.append(render_allreduce(ar_rows))

    return PaperReport(
        fig1_rows=fig1_rows,
        table1=t1,
        fig4=fig4,
        fig5=fig5,
        fig6=fig6,
        allreduce_rows=ar_rows,
        sections=sections,
    )
