"""Parameter sweeps and ablations over Adaptive SGD's design choices.

DESIGN.md calls out four design decisions worth ablating: the perturbation
step, the β scaling coefficient, the merge-weight normalization rule, and
the merge momentum. :func:`ablation_grid` runs Adaptive SGD with each
variation under otherwise identical conditions; :func:`sweep` is the
generic one-knob version used by the benches.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.core.config import AdaptiveSGDConfig
from repro.data.dataset import XMLTask
from repro.data.registry import load_task
from repro.exceptions import ConfigurationError
from repro.harness.experiment import ExperimentSpec, run_experiment
from repro.harness.traces import TrainingTrace

__all__ = ["sweep", "ablation_grid"]


def sweep(
    base_config: AdaptiveSGDConfig,
    knob: str,
    values: Sequence[Any],
    *,
    dataset: str = "micro",
    n_gpus: int = 4,
    time_budget_s: float = 0.1,
    seed: int = 0,
    eval_samples: int = 256,
    task: Optional[XMLTask] = None,
) -> Dict[Any, TrainingTrace]:
    """Run Adaptive SGD once per value of one config ``knob``.

    ``knob`` must be a field of :class:`AdaptiveSGDConfig`; every other
    hyperparameter, the dataset, the hardware, and the seeds stay fixed.
    """
    field_names = {f.name for f in dataclasses.fields(AdaptiveSGDConfig)}
    if knob not in field_names:
        raise ConfigurationError(
            f"unknown config knob {knob!r}; options: {sorted(field_names)}"
        )
    task = task or load_task(dataset, seed=seed)
    results: Dict[Any, TrainingTrace] = {}
    for value in values:
        config = dataclasses.replace(base_config, **{knob: value})
        spec = ExperimentSpec(
            dataset=dataset,
            algorithms=("adaptive",),
            gpu_counts=(n_gpus,),
            time_budget_s=time_budget_s,
            config=config,
            eval_samples=eval_samples,
            seed=seed,
        )
        trace = run_experiment(spec, task=task)[("adaptive", n_gpus)]
        trace.metadata["sweep_knob"] = knob
        trace.metadata["sweep_value"] = value
        results[value] = trace
    return results


def ablation_grid(
    base_config: AdaptiveSGDConfig,
    *,
    dataset: str = "micro",
    n_gpus: int = 4,
    time_budget_s: float = 0.1,
    seed: int = 0,
    eval_samples: int = 256,
) -> Dict[str, TrainingTrace]:
    """The DESIGN.md ablation set, each as one labelled Adaptive run.

    Variants: full algorithm, no perturbation, paper-literal denormalized
    perturbation, no batch scaling, uniform merge weights (elastic-style),
    no merge momentum, and the alternative ``u_i · b_i`` weighting from
    §III-B.
    """
    variants: Dict[str, Mapping[str, Any]] = {
        "full": {},
        "no-perturbation": {"enable_perturbation": False},
        "paper-denormalized": {"renormalize_perturbation": False},
        "no-batch-scaling": {"enable_batch_scaling": False},
        "uniform-merge": {"merge_weighting": "uniform"},
        "no-momentum": {"gamma": 0.0},
        "updates-times-batch": {"merge_weighting": "updates_times_batch"},
    }
    task = load_task(dataset, seed=seed)
    results: Dict[str, TrainingTrace] = {}
    for name, overrides in variants.items():
        config = dataclasses.replace(base_config, **overrides)
        spec = ExperimentSpec(
            dataset=dataset,
            algorithms=("adaptive",),
            gpu_counts=(n_gpus,),
            time_budget_s=time_budget_s,
            config=config,
            eval_samples=eval_samples,
            seed=seed,
        )
        trace = run_experiment(spec, task=task)[("adaptive", n_gpus)]
        trace.metadata["ablation"] = name
        results[name] = trace
    return results
