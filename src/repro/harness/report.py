"""Paper-style text rendering of experiment outputs.

Turns the data structures the figure builders return into the aligned
tables and ``(x, y)`` series the benches print — the text analogue of the
paper's plots, suitable for terminals, CI logs, and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.harness.tta import TTAEntry, default_targets, tta_table
from repro.harness.traces import TrainingTrace
from repro.utils.plots import ascii_plot
from repro.utils.tables import format_kv, format_series, format_table, format_timeline

__all__ = [
    "render_fig1",
    "render_table1",
    "render_tta_curves",
    "render_tta_summary",
    "render_fig6",
    "render_allreduce",
    "render_telemetry_summary",
    "render_attribution",
    "render_utilization",
    "render_straggler",
    "render_findings",
    "render_swaps",
    "render_membership",
    "render_tenants",
    "render_comparison",
    "render_analysis",
    "render_runs_table",
    "render_run_show",
    "render_metric_history",
]


def render_telemetry_summary(telemetry) -> str:
    """Span/kernel summary tables for a telemetry recorder.

    Thin façade over :func:`repro.telemetry.export.summary_table`, kept here
    so report consumers find all text renderers in one module.
    """
    from repro.telemetry.export import summary_table

    return summary_table(telemetry)


def render_attribution(attribution) -> str:
    """Per-device wall-clock decomposition table for one run.

    ``attribution`` is a :class:`repro.telemetry.analyze.RunAttribution`.
    Every row's components sum to the run span (the engine's invariant), so
    the table reads as a complete answer to "where did the time go".
    """
    rows = []
    run_s = attribution.run_span_s
    for dev in attribution.devices:
        busy_pct = (dev.busy_s / run_s * 100.0) if run_s > 0 else 0.0
        rows.append([
            f"gpu{dev.device}",
            dev.compute_s * 1e3,
            dev.transfer_s * 1e3,
            dev.rebuild_s * 1e3,
            dev.allreduce_wait_s * 1e3,
            dev.merge_wait_s * 1e3,
            dev.idle_s * 1e3,
            f"{busy_pct:.1f}%",
            dev.steps,
        ])
    body = format_table(
        [
            "device", "compute ms", "transfer ms", "rebuild ms",
            "allreduce ms", "merge-wait ms", "idle ms", "busy", "steps",
        ],
        rows,
        title=(
            f"Time attribution — {attribution.label}: "
            f"run span {run_s * 1e3:.4g} ms, "
            f"{attribution.n_boundaries} merge boundaries"
        ),
    )
    driver = attribution.driver
    body += (
        f"\ndriver: merge {driver['merge_s'] * 1e3:.4g} ms "
        f"(allreduce {driver['allreduce_s'] * 1e3:.4g} ms, "
        f"other {driver['merge_other_s'] * 1e3:.4g} ms)"
    )
    return body


def render_utilization(run_data, *, width: int = 64) -> str:
    """ASCII per-device utilization timeline for one run.

    ``run_data`` is a :class:`repro.telemetry.trace_data.RunData`; lanes
    come from :func:`repro.telemetry.analyze.utilization_lanes`.
    """
    from repro.telemetry.analyze import utilization_lanes

    lanes = utilization_lanes(run_data)
    start = run_data.start()
    return format_timeline(
        lanes,
        start=start,
        end=start + run_data.duration(),
        width=width,
        title=f"Device utilization — {run_data.label()}",
        legend={
            "#": "compute", "S": "serve", "T": "transfer", "R": "rebuild",
            "M": "merge", "A": "allreduce", "W": "swap-warm",
        },
    )


def render_straggler(report) -> str:
    """Straggler / critical-path section for one run.

    ``report`` is a :class:`repro.telemetry.analyze.StragglerReport`.
    """
    lines = [f"Straggler analysis — {report.label}"]
    if report.straggler is not None:
        lines.append(f"  straggler: gpu{report.straggler} ({report.reason})")
    else:
        lines.append("  straggler: none detected")
    if report.slowdowns:
        slowdown = ", ".join(
            f"gpu{d}: +{s * 100:.1f}%"
            for d, s in sorted(report.slowdowns.items())
        )
        lines.append(
            f"  per-sample slowdown vs fastest: {slowdown} "
            f"(heterogeneity index {report.heterogeneity_index * 100:.1f}%)"
        )
    if report.update_counts:
        counts = ", ".join(
            f"gpu{d}: {c:.0f}" for d, c in sorted(report.update_counts.items())
        )
        lines.append(
            f"  update counts: {counts} (skew {report.update_skew:.0f}, "
            f"balance {report.update_balance:.2f})"
        )
    if report.boundaries:
        crit = ", ".join(
            f"gpu{d}: {c}" for d, c in sorted(report.critical_counts.items())
        )
        lines.append(
            f"  critical device per boundary ({len(report.boundaries)} "
            f"boundaries): {crit}"
        )
        worst = max(
            (max(b.idle_before.values(), default=0.0) for b in report.boundaries),
            default=0.0,
        )
        lines.append(
            f"  worst idle-before-merge: {worst * 1e3:.4g} ms"
        )
    return "\n".join(lines)


def render_findings(findings: Sequence) -> str:
    """Convergence findings table (``repro.telemetry.diagnose.Finding``)."""
    if not findings:
        return "Findings: none — the run looks healthy."
    rows = [
        [
            f.severity.upper(),
            f.detector,
            "driver" if f.device is None else f"gpu{f.device}",
            f"{f.t_start:.4g}-{f.t_end:.4g}s",
            f.message,
        ]
        for f in findings
    ]
    return format_table(
        ["severity", "detector", "where", "window", "finding"],
        rows,
        title=f"Findings ({len(findings)})",
    )


def render_swaps(swaps: Mapping) -> str:
    """Hot-swap section for one serving run.

    ``swaps`` is the dict :func:`repro.telemetry.analyze.swap_events`
    returns (commit/rollback/failure counts + per-warming-window latency
    attribution).
    """
    lines = [
        f"Hot swaps — {swaps['commits']} committed, "
        f"{swaps['rollbacks']} rolled back, {swaps['failures']} failed"
    ]
    for event in swaps.get("events", []):
        verdict = "ROLLED BACK" if event.get("rolled_back") else "ok"
        piece = (
            f"  v{event.get('version_from')} -> v{event.get('version_to')} "
            f"@ {event['t_commit']:.4g}s "
            f"(warm {event['warm_s'] * 1e3:.4g} ms): {verdict}"
        )
        if "p99_in_window_s" in event and "p99_steady_s" in event:
            piece += (
                f", p99 in window {event['p99_in_window_s'] * 1e3:.4g} ms "
                f"vs steady {event['p99_steady_s'] * 1e3:.4g} ms"
            )
        lines.append(piece)
    for reason in swaps.get("rollback_reasons", []):
        lines.append(f"  rollback: {reason}")
    for error in swaps.get("failure_errors", []):
        lines.append(f"  failure: {error}")
    return "\n".join(lines)


def render_tenants(tenants: Mapping) -> str:
    """Multi-tenant section for one serving run.

    ``tenants`` is the dict :func:`repro.telemetry.analyze.tenant_breakdown`
    returns (per-tenant/per-class completions, p99, shed counts, fairness).
    """
    header = f"Tenants — {len(tenants.get('tenants', {}))}"
    if "fairness" in tenants:
        header += f", throughput fairness (max/min) {tenants['fairness']:.3g}"
    if tenants.get("n_shed"):
        reasons = tenants.get("shed_reasons", {})
        detail = ", ".join(f"{r}: {n}" for r, n in sorted(reasons.items()))
        header += f", {tenants['n_shed']} shed" + (
            f" ({detail})" if detail else ""
        )
    rows = []
    for name, row in sorted(tenants.get("tenants", {}).items()):
        classes = row.get("priority_classes")
        rows.append([
            name,
            "/".join(str(c) for c in classes) if classes else "-",
            row.get("completed", 0),
            f"{row['latency_p50_ms']:.4g}" if "latency_p50_ms" in row else "-",
            f"{row['latency_p99_ms']:.4g}" if "latency_p99_ms" in row else "-",
            row.get("n_shed", 0),
        ])
    body = format_table(
        ["tenant", "class", "completed", "p50 (ms)", "p99 (ms)", "shed"],
        rows,
        title=header,
    )
    class_rows = tenants.get("classes", {})
    if class_rows:
        lines = [body, "  per class:"]
        for cls, row in sorted(class_rows.items(), key=lambda kv: int(kv[0])):
            piece = (
                f"    class {cls}: {row.get('completed', 0)} completed, "
                f"{row.get('n_shed', 0)} shed"
            )
            if "latency_p99_ms" in row:
                piece += f", p99 {row['latency_p99_ms']:.4g} ms"
            lines.append(piece)
        return "\n".join(lines)
    return body


def render_membership(membership: Mapping) -> str:
    """Elastic-membership section for one run.

    ``membership`` is the dict
    :func:`repro.telemetry.analyze.membership_events` returns (event
    counts, active-device envelope, per-event loss/latency attribution).
    """
    by_kind = membership.get("by_kind", {})
    kinds = ", ".join(f"{k}: {n}" for k, n in sorted(by_kind.items()))
    header = (
        f"Membership — {membership['n_events']} events "
        f"({membership['n_applied']} applied, "
        f"{membership['n_suppressed']} suppressed)"
    )
    if kinds:
        header += f" [{kinds}]"
    lines = [header]
    devices = membership.get("active_devices")
    if devices:
        lines.append(
            f"  active devices: {devices['initial']:.0f} -> "
            f"{devices['final']:.0f} "
            f"(min {devices['min']:.0f}, max {devices['max']:.0f})"
        )
    for event in membership.get("events", []):
        where = "driver" if event.get("device") is None else f"gpu{event['device']}"
        piece = f"  {event['kind']} {where} @ {event['t']:.4g}s ({event['source']})"
        if "factor" in event:
            piece += f" x{event['factor']:.3g}"
        if "loss_delta" in event:
            piece += (
                f": loss {event['loss_before']:.4g} -> "
                f"{event['loss_after']:.4g} ({event['loss_delta']:+.4g})"
            )
        if "p99_in_window_s" in event and "p99_steady_s" in event:
            piece += (
                f": p99 in window {event['p99_in_window_s'] * 1e3:.4g} ms "
                f"vs steady {event['p99_steady_s'] * 1e3:.4g} ms"
            )
        lines.append(piece)
    return "\n".join(lines)


def render_comparison(cmp) -> str:
    """Phase-by-phase comparison of two runs
    (``repro.telemetry.compare.RunComparison``)."""
    header = format_kv({
        "baseline": cmp.baseline_label,
        "candidate": cmp.candidate_label,
        "wall clock": (
            f"{cmp.wall_baseline_s * 1e3:.4g} ms -> "
            f"{cmp.wall_candidate_s * 1e3:.4g} ms"
            + (
                f" ({cmp.wall_speedup:.2f}x)"
                if cmp.wall_speedup is not None else ""
            )
        ),
        "best accuracy": (
            f"{cmp.best_accuracy_baseline:.4f} -> "
            f"{cmp.best_accuracy_candidate:.4f}"
        ),
        "updates": (
            f"{cmp.updates_baseline:.0f} -> {cmp.updates_candidate:.0f}"
        ),
    })
    if cmp.tta_target is not None:
        tta_a = (
            f"{cmp.tta_baseline_s * 1e3:.4g} ms"
            if cmp.tta_baseline_s is not None else "not reached"
        )
        tta_b = (
            f"{cmp.tta_candidate_s * 1e3:.4g} ms"
            if cmp.tta_candidate_s is not None else "not reached"
        )
        delta = (
            f" (delta {cmp.tta_delta_s * 1e3:+.4g} ms)"
            if cmp.tta_delta_s is not None else ""
        )
        header += (
            f"\ntime-to-accuracy @ {cmp.tta_target:.4f}: "
            f"{tta_a} -> {tta_b}{delta}"
        )
    rows = [
        [
            p.name,
            p.baseline_s * 1e3,
            p.candidate_s * 1e3,
            p.delta_s * 1e3,
            f"{p.speedup:.2f}x" if p.speedup is not None else "-",
            "REGRESSION" if p.name in cmp.regressions else "",
        ]
        for p in sorted(cmp.phases, key=lambda p: -p.baseline_s)
    ]
    body = format_table(
        [
            "phase", "baseline ms", "candidate ms", "delta ms",
            "speedup", f"> {cmp.noise * 100:.0f}% noise",
        ],
        rows,
        title="Per-phase simulated time (baseline vs candidate)",
    )
    verdict = (
        f"regressions: {', '.join(cmp.regressions)}"
        if cmp.regressions else "regressions: none beyond the noise threshold"
    )
    return f"{header}\n\n{body}\n{verdict}"


def render_analysis(source, *, run=None, width: int = 64) -> str:
    """The full ``repro analyze`` text report for a trace source.

    Accepts anything :func:`repro.telemetry.trace_data.load_trace_data`
    does (live recorder, JSONL archive, Chrome trace, result-set dir).
    """
    from repro.telemetry.analyze import (
        attribute_time,
        critical_path,
        membership_events,
        swap_events,
        tenant_breakdown,
    )
    from repro.telemetry.diagnose import diagnose
    from repro.telemetry.trace_data import load_trace_data

    data = load_trace_data(source)
    runs = data.runs if run is None else [data.run(run)]
    if not runs:
        return f"Trace {data.label!r}: no runs recorded."
    sections = []
    for run_data in runs:
        straggler = critical_path(run_data)
        parts = [
            render_attribution(attribute_time(run_data)),
            render_utilization(run_data, width=width),
            render_straggler(straggler),
        ]
        swaps = swap_events(run_data)
        if swaps is not None:
            parts.append(render_swaps(swaps))
        membership = membership_events(run_data)
        if membership is not None:
            parts.append(render_membership(membership))
        tenants = tenant_breakdown(run_data)
        if tenants is not None:
            parts.append(render_tenants(tenants))
        parts.append(
            render_findings(diagnose(run_data, straggler_report=straggler))
        )
        sections.append("\n\n".join(parts))
    return "\n\n".join(sections)


def render_runs_table(records: Sequence) -> str:
    """The ``repro runs ls`` table for a sequence of ``RunRecord``.

    Newest-first (the registry's list order); the caller filters.
    """
    if not records:
        return "no runs registered."
    rows = []
    for record in records:
        rows.append([
            record.run_id,
            record.kind,
            record.algorithm or "-",
            record.dataset or "-",
            record.status,
            record.sim_duration_s,
            ",".join(record.tags) if record.tags else "-",
        ])
    return format_table(
        ["run_id", "kind", "algorithm", "dataset", "status", "sim s", "tags"],
        rows,
    )


def render_run_show(record) -> str:
    """The ``repro runs show`` report: identity block + metrics table."""
    pairs = {
        "run_id": record.run_id,
        "kind": record.kind,
        "algorithm": record.algorithm or "-",
        "dataset": record.dataset or "-",
        "status": record.status,
        "n_devices": record.n_devices,
        "seed": record.seed,
        "sim duration s": record.sim_duration_s,
        "path": record.path or "-",
        "trace": record.trace_path or "-",
        "git": (
            f"{record.git_commit[:12]}{' (dirty)' if record.git_dirty else ''}"
            if record.git_commit else "-"
        ),
        "tags": ",".join(record.tags) if record.tags else "-",
    }
    out = format_kv(pairs)
    if record.metrics:
        out += "\n\n" + format_table(
            ["metric", "value"],
            [[name, value] for name, value in sorted(record.metrics.items())],
            title="headline metrics",
        )
    return out


def render_metric_history(
    name: str, history: Sequence, *, width: int = 64
) -> str:
    """``repro runs history``: sparkline + per-run values, oldest first.

    ``history`` is the registry's ``(run_id, value)`` list in
    chronological order, so the sparkline's right edge is the latest run.
    """
    from repro.utils.tables import format_sparkline

    if not history:
        return f"no runs recorded metric {name!r}."
    values = [value for _, value in history]
    lines = [
        f"{name} — {len(values)} run(s), "
        f"min {min(values):.4g}, max {max(values):.4g}, "
        f"latest {values[-1]:.4g}",
        format_sparkline(values, width=width),
        "",
        format_table(
            ["run_id", "value"],
            [[run_id, value] for run_id, value in history],
        ),
    ]
    return "\n".join(lines)


def render_fig1(rows: Sequence[Mapping[str, float]]) -> str:
    """Figure 1 as a table: per-GPU epoch time and relative slowdown."""
    table_rows = [
        [
            f"GPU {int(r['gpu'])}",
            r["epoch_time_s"] * 1e3,
            f"{r['relative_slowdown'] * 100:.1f}%",
        ]
        for r in rows
    ]
    worst = max(r["relative_slowdown"] for r in rows)
    body = format_table(
        ["device", "epoch time (ms)", "slower than fastest"],
        table_rows,
        title="Figure 1 — heterogeneity on an identical sparse batch",
    )
    return body + f"\nfastest<->slowest gap: {worst * 100:.1f}%"


def render_table1(
    rows: Sequence[Mapping[str, object]],
    paper_rows: Optional[Sequence[Mapping[str, object]]] = None,
) -> str:
    """Table I (ours, optionally followed by the paper's original rows)."""
    headers = list(rows[0].keys())
    out = format_table(
        headers,
        [[r[h] for h in headers] for r in rows],
        title="Table I — synthetic analogue datasets (this reproduction)",
    )
    if paper_rows:
        out += "\n\n" + format_table(
            headers,
            [[r[h] for h in headers] for r in paper_rows],
            title="Table I — original datasets (paper, for reference)",
        )
    return out


def render_tta_curves(
    traces: Mapping[object, TrainingTrace],
    *,
    x: str = "time",
    title: str = "time-to-accuracy",
    max_points: int = 12,
    chart: bool = True,
) -> str:
    """Accuracy curves for a set of runs (Figure 4 / 5 style).

    Emits the sampled series (machine-greppable) and, with ``chart=True``,
    an ASCII rendering of the curves — the closest a terminal gets to the
    paper's actual figure.
    """
    series = {
        trace.label(): trace.series(x=x, y="accuracy")
        for trace in traces.values()
    }
    xlabel = "sim seconds" if x == "time" else x
    out = format_series(
        series, title=title, xlabel=xlabel, ylabel="top-1 acc",
        max_points=max_points,
    )
    if chart:
        out += "\n" + ascii_plot(
            series, xlabel=xlabel, ylabel="acc", width=64, height=14,
        )
    return out


def render_tta_summary(
    traces: Sequence[TrainingTrace],
    targets: Optional[Sequence[float]] = None,
) -> str:
    """Best-accuracy and time/epochs-to-target table for a run set."""
    targets = list(targets) if targets is not None else default_targets(traces)
    entries = tta_table(traces, targets)
    by_label: Dict[str, List[TTAEntry]] = {}
    for e in entries:
        by_label.setdefault(e.label, []).append(e)
    headers = ["run", "best acc"] + [f"t@{t:g}" for t in targets]
    rows = []
    for trace in traces:
        row = [trace.label(), trace.best_accuracy]
        for e in by_label[trace.label()]:
            row.append(f"{e.time_s:.4g}s" if e.reached else "not reached")
        rows.append(row)
    return format_table(headers, rows, title="time-to-accuracy summary")


def render_fig6(result, *, chart: bool = True) -> str:
    """Figure 6a/6b: batch-size evolution + perturbation frequency."""
    series = {
        f"GPU {gpu}": pts for gpu, pts in result.batch_size_series.items()
    }
    out = format_series(
        series,
        title="Figure 6a — per-GPU batch size after every mega-batch",
        xlabel="mega-batch", ylabel="batch size", max_points=16,
    )
    if chart:
        out += "\n" + ascii_plot(
            series, xlabel="mega-batch", ylabel="batch", width=64, height=12,
        )
    out += (
        f"\nFigure 6b — perturbation activation frequency: "
        f"{result.perturbation_frequency * 100:.1f}% of merges"
        f" | merge branches: {result.merge_branches}"
        f" | max staleness: {result.staleness_max} updates"
    )
    return out


def render_allreduce(rows: Sequence[Mapping[str, float]]) -> str:
    """§IV all-reduce comparison table."""
    table_rows = [
        [
            int(r["gpus"]),
            int(r["model_params"]),
            r["ring_multi_ms"],
            r["ring_single_ms"],
            r["tree_single_ms"],
            f"{r['ring_multi_vs_tree']:.1f}x",
        ]
        for r in rows
    ]
    return format_table(
        [
            "gpus", "model params", "ring multi (ms)", "ring single (ms)",
            "tree single (ms)", "ring-multi speedup vs tree",
        ],
        table_rows,
        title="§IV — all-reduce model merging comparison",
    )
