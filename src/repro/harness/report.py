"""Paper-style text rendering of experiment outputs.

Turns the data structures the figure builders return into the aligned
tables and ``(x, y)`` series the benches print — the text analogue of the
paper's plots, suitable for terminals, CI logs, and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.harness.tta import TTAEntry, default_targets, tta_table
from repro.harness.traces import TrainingTrace
from repro.utils.plots import ascii_plot
from repro.utils.tables import format_series, format_table

__all__ = [
    "render_fig1",
    "render_table1",
    "render_tta_curves",
    "render_tta_summary",
    "render_fig6",
    "render_allreduce",
    "render_telemetry_summary",
]


def render_telemetry_summary(telemetry) -> str:
    """Span/kernel summary tables for a telemetry recorder.

    Thin façade over :func:`repro.telemetry.export.summary_table`, kept here
    so report consumers find all text renderers in one module.
    """
    from repro.telemetry.export import summary_table

    return summary_table(telemetry)


def render_fig1(rows: Sequence[Mapping[str, float]]) -> str:
    """Figure 1 as a table: per-GPU epoch time and relative slowdown."""
    table_rows = [
        [
            f"GPU {int(r['gpu'])}",
            r["epoch_time_s"] * 1e3,
            f"{r['relative_slowdown'] * 100:.1f}%",
        ]
        for r in rows
    ]
    worst = max(r["relative_slowdown"] for r in rows)
    body = format_table(
        ["device", "epoch time (ms)", "slower than fastest"],
        table_rows,
        title="Figure 1 — heterogeneity on an identical sparse batch",
    )
    return body + f"\nfastest<->slowest gap: {worst * 100:.1f}%"


def render_table1(
    rows: Sequence[Mapping[str, object]],
    paper_rows: Optional[Sequence[Mapping[str, object]]] = None,
) -> str:
    """Table I (ours, optionally followed by the paper's original rows)."""
    headers = list(rows[0].keys())
    out = format_table(
        headers,
        [[r[h] for h in headers] for r in rows],
        title="Table I — synthetic analogue datasets (this reproduction)",
    )
    if paper_rows:
        out += "\n\n" + format_table(
            headers,
            [[r[h] for h in headers] for r in paper_rows],
            title="Table I — original datasets (paper, for reference)",
        )
    return out


def render_tta_curves(
    traces: Mapping[object, TrainingTrace],
    *,
    x: str = "time",
    title: str = "time-to-accuracy",
    max_points: int = 12,
    chart: bool = True,
) -> str:
    """Accuracy curves for a set of runs (Figure 4 / 5 style).

    Emits the sampled series (machine-greppable) and, with ``chart=True``,
    an ASCII rendering of the curves — the closest a terminal gets to the
    paper's actual figure.
    """
    series = {
        trace.label(): trace.series(x=x, y="accuracy")
        for trace in traces.values()
    }
    xlabel = "sim seconds" if x == "time" else x
    out = format_series(
        series, title=title, xlabel=xlabel, ylabel="top-1 acc",
        max_points=max_points,
    )
    if chart:
        out += "\n" + ascii_plot(
            series, xlabel=xlabel, ylabel="acc", width=64, height=14,
        )
    return out


def render_tta_summary(
    traces: Sequence[TrainingTrace],
    targets: Optional[Sequence[float]] = None,
) -> str:
    """Best-accuracy and time/epochs-to-target table for a run set."""
    targets = list(targets) if targets is not None else default_targets(traces)
    entries = tta_table(traces, targets)
    by_label: Dict[str, List[TTAEntry]] = {}
    for e in entries:
        by_label.setdefault(e.label, []).append(e)
    headers = ["run", "best acc"] + [f"t@{t:g}" for t in targets]
    rows = []
    for trace in traces:
        row = [trace.label(), trace.best_accuracy]
        for e in by_label[trace.label()]:
            row.append(f"{e.time_s:.4g}s" if e.reached else "not reached")
        rows.append(row)
    return format_table(headers, rows, title="time-to-accuracy summary")


def render_fig6(result, *, chart: bool = True) -> str:
    """Figure 6a/6b: batch-size evolution + perturbation frequency."""
    series = {
        f"GPU {gpu}": pts for gpu, pts in result.batch_size_series.items()
    }
    out = format_series(
        series,
        title="Figure 6a — per-GPU batch size after every mega-batch",
        xlabel="mega-batch", ylabel="batch size", max_points=16,
    )
    if chart:
        out += "\n" + ascii_plot(
            series, xlabel="mega-batch", ylabel="batch", width=64, height=12,
        )
    out += (
        f"\nFigure 6b — perturbation activation frequency: "
        f"{result.perturbation_frequency * 100:.1f}% of merges"
        f" | merge branches: {result.merge_branches}"
        f" | max staleness: {result.staleness_max} updates"
    )
    return out


def render_allreduce(rows: Sequence[Mapping[str, float]]) -> str:
    """§IV all-reduce comparison table."""
    table_rows = [
        [
            int(r["gpus"]),
            int(r["model_params"]),
            r["ring_multi_ms"],
            r["ring_single_ms"],
            r["tree_single_ms"],
            f"{r['ring_multi_vs_tree']:.1f}x",
        ]
        for r in rows
    ]
    return format_table(
        [
            "gpus", "model params", "ring multi (ms)", "ring single (ms)",
            "tree single (ms)", "ring-multi speedup vs tree",
        ],
        table_rows,
        title="§IV — all-reduce model merging comparison",
    )
