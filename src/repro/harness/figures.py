"""Per-figure experiment builders: one function per paper artifact.

Each builder assembles the workload, runs it, and returns plain data
structures (rows / trace dicts) that the benches print and EXPERIMENTS.md
summarizes. Scale parameters default to fast settings; the benchmark suite
passes larger values.

Paper artifacts covered: Figure 1 (GPU heterogeneity), Table I (datasets),
Figure 4 (time-to-accuracy grid), Figure 5a/5b (scalability vs SLIDE),
Figure 6a/6b (batch scaling + perturbation), and the §IV all-reduce claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.ring import RingAllReduce
from repro.comm.tree import TreeAllReduce
from repro.core.config import AdaptiveSGDConfig
from repro.data.batching import static_batches
from repro.data.registry import load_task
from repro.data.stats import table1_row
from repro.gpu.cluster import make_server
from repro.gpu.cost import GpuCostParams, StepWorkload
from repro.harness.experiment import ExperimentSpec, RunKey, run_experiment
from repro.harness.traces import TrainingTrace

__all__ = [
    "PAPER_TABLE1",
    "default_config_for",
    "fig1_heterogeneity",
    "table1_rows",
    "fig4_time_to_accuracy",
    "fig5_scalability",
    "fig6_adaptivity",
    "allreduce_comparison",
]

def default_config_for(dataset: str) -> AdaptiveSGDConfig:
    """The §V-A-style hyperparameters for a benchmark dataset.

    The paper finds the optimal learning rate for ``b_max`` "by griding its
    range in powers of 10 and selecting the value that achieves the best
    accuracy across all the algorithms" — per dataset. The values below are
    the result of that grid on the synthetic analogues (see
    ``benchmarks/bench_ablations.py`` for the sweep); everything else
    follows the paper's derivation rules.
    """
    base_lr = 0.8 if dataset.startswith("delicious") else 2.0
    return AdaptiveSGDConfig(b_max=128, base_lr=base_lr, mega_batch_batches=40)


#: Table I as printed in the paper (reference values for EXPERIMENTS.md).
PAPER_TABLE1 = [
    {
        "dataset": "Amazon-670k",
        "features": 135_909,
        "classes": 670_091,
        "training samples": 490_449,
        "testing samples": 153_025,
        "avg features per sample": 76,
        "avg classes per sample": 5,
    },
    {
        "dataset": "Delicious-200k",
        "features": 782_585,
        "classes": 205_443,
        "training samples": 196_606,
        "testing samples": 100_095,
        "avg features per sample": 302,
        "avg classes per sample": 75,
    },
]


# --------------------------------------------------------------------------
# Figure 1 — multi-GPU heterogeneity on an identical batch
# --------------------------------------------------------------------------

def fig1_heterogeneity(
    *,
    n_gpus: int = 4,
    dataset: str = "amazon670k-bench",
    batch_size: int = 256,
    n_epoch_batches: int = 16,
    seed: int = 0,
    max_gap: float = 0.32,
) -> List[Dict[str, float]]:
    """Per-GPU time for one *identical* training epoch (Figure 1).

    Every GPU is timed on the exact same batch sequence; differences come
    solely from the device speed profiles. Returns one row per GPU with its
    epoch time and slowdown relative to the fastest device.
    """
    task = load_task(dataset, seed=seed)
    server = make_server(
        n_gpus, max_gap=max_gap, seed=seed,
        cost_params=GpuCostParams.tiny_model_profile(),
    )
    hidden = 64
    layer_dims = (task.n_features, hidden, task.n_labels)
    batches = []
    for batch in static_batches(task.train, batch_size, seed=seed):
        batches.append(batch)
        if len(batches) >= n_epoch_batches:
            break
    epoch_times = []
    for gpu in server.gpus:
        t = 0.0
        for batch in batches:
            work = StepWorkload(batch.size, batch.nnz, layer_dims)
            t += gpu.step_time(work, t, n_active_gpus=n_gpus)
        epoch_times.append(t)
    fastest = min(epoch_times)
    return [
        {
            "gpu": gpu.device_id,
            "epoch_time_s": epoch_times[i],
            "relative_slowdown": epoch_times[i] / fastest - 1.0,
        }
        for i, gpu in enumerate(server.gpus)
    ]


# --------------------------------------------------------------------------
# Table I — dataset characteristics
# --------------------------------------------------------------------------

def table1_rows(
    datasets: Sequence[str] = ("amazon670k-bench", "delicious200k-bench"),
    *,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Table-I rows for the synthetic analogue datasets."""
    return [table1_row(load_task(name, seed=seed)) for name in datasets]


# --------------------------------------------------------------------------
# Figure 4 — time-to-accuracy for every method × GPU count
# --------------------------------------------------------------------------

def fig4_time_to_accuracy(
    dataset: str = "amazon670k-bench",
    *,
    gpu_counts: Sequence[int] = (1, 2, 4),
    time_budget_s: float = 0.35,
    config: Optional[AdaptiveSGDConfig] = None,
    seed: int = 0,
    eval_samples: int = 512,
) -> Dict[RunKey, TrainingTrace]:
    """The full Figure-4 grid on one dataset."""
    spec = ExperimentSpec(
        dataset=dataset,
        algorithms=("adaptive", "elastic", "tensorflow", "crossbow"),
        gpu_counts=tuple(gpu_counts),
        time_budget_s=time_budget_s,
        config=config or default_config_for(dataset),
        eval_samples=eval_samples,
        seed=seed,
    )
    return run_experiment(spec)


# --------------------------------------------------------------------------
# Figure 5 — scalability: Adaptive SGD vs SLIDE
# --------------------------------------------------------------------------

def fig5_scalability(
    dataset: str = "amazon670k-bench",
    *,
    gpu_counts: Sequence[int] = (1, 2, 4),
    time_budget_s: float = 0.35,
    config: Optional[AdaptiveSGDConfig] = None,
    seed: int = 0,
    eval_samples: int = 512,
) -> Dict[RunKey, TrainingTrace]:
    """Adaptive SGD at each GPU count plus the SLIDE CPU baseline."""
    spec = ExperimentSpec(
        dataset=dataset,
        algorithms=("adaptive", "slide"),
        gpu_counts=tuple(gpu_counts),
        time_budget_s=time_budget_s,
        config=config or default_config_for(dataset),
        eval_samples=eval_samples,
        seed=seed,
    )
    return run_experiment(spec)


# --------------------------------------------------------------------------
# Figure 6 — do batch size scaling and perturbation activate?
# --------------------------------------------------------------------------

@dataclass
class Fig6Result:
    """Adaptivity telemetry of one Adaptive SGD run."""

    trace: TrainingTrace
    batch_size_series: Dict[int, List[Tuple[float, float]]]
    perturbation_frequency: float
    staleness_max: int
    merge_branches: Dict[str, int]


def fig6_adaptivity(
    dataset: str = "amazon670k-bench",
    *,
    n_gpus: int = 4,
    time_budget_s: float = 0.35,
    config: Optional[AdaptiveSGDConfig] = None,
    seed: int = 0,
    eval_samples: int = 256,
) -> Fig6Result:
    """One Adaptive run, returning Figure-6a/6b quantities."""
    spec = ExperimentSpec(
        dataset=dataset,
        algorithms=("adaptive",),
        gpu_counts=(n_gpus,),
        time_budget_s=time_budget_s,
        config=config or default_config_for(dataset),
        eval_samples=eval_samples,
        seed=seed,
    )
    trace = run_experiment(spec)[("adaptive", n_gpus)]
    branches: Dict[str, int] = {}
    for branch in trace.merge_branch_history:
        branches[branch] = branches.get(branch, 0) + 1
    return Fig6Result(
        trace=trace,
        batch_size_series={
            g: trace.batch_size_series(g) for g in range(n_gpus)
        },
        perturbation_frequency=trace.perturbation_frequency(),
        staleness_max=max(trace.staleness_history, default=0),
        merge_branches=branches,
    )


# --------------------------------------------------------------------------
# §IV — multi-stream ring vs single-stream tree all-reduce
# --------------------------------------------------------------------------

def allreduce_comparison(
    *,
    model_params: Sequence[int] = (262_144, 1_048_576, 8_388_608),
    gpu_counts: Sequence[int] = (2, 4, 8),
) -> List[Dict[str, float]]:
    """Merge-time rows for ring (1 and n streams) vs tree (1 stream)."""
    from repro.comm.topology import InterconnectTopology

    rows: List[Dict[str, float]] = []
    for n in gpu_counts:
        topo = InterconnectTopology.single_server_pcie(n)
        for params in model_params:
            nbytes = 4 * params
            ring_multi = RingAllReduce(n).time_seconds(nbytes, topo)
            ring_single = RingAllReduce(1).time_seconds(nbytes, topo)
            tree_single = TreeAllReduce().time_seconds(nbytes, topo)
            rows.append(
                {
                    "gpus": n,
                    "model_params": params,
                    "ring_multi_ms": ring_multi.total_s * 1e3,
                    "ring_single_ms": ring_single.total_s * 1e3,
                    "tree_single_ms": tree_single.total_s * 1e3,
                    "ring_multi_vs_tree": tree_single.total_s
                    / max(ring_multi.total_s, 1e-12),
                }
            )
    return rows
