"""Convergence diagnostics over training traces.

Beyond the paper's headline metrics (time/epochs-to-accuracy), these helpers
characterize *how* a run behaved — useful for the ablation benches and for
catching pathologies (CROSSBOW-style divergence, post-peak decay) that a
single best-accuracy number hides:

- :func:`smoothed_accuracy` — moving-average curve (eval subsets are noisy);
- :func:`auc_accuracy` — area under the accuracy-vs-time curve, a robust
  scalar for "better everywhere" comparisons;
- :func:`detect_plateau` — when the run stopped improving;
- :func:`detect_divergence` — sustained post-peak decay (emits
  :class:`~repro.exceptions.ConvergenceWarning`);
- :func:`compare` — a one-line verdict between two traces.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, ConvergenceWarning
from repro.harness.traces import TrainingTrace

__all__ = [
    "smoothed_accuracy",
    "auc_accuracy",
    "detect_plateau",
    "detect_divergence",
    "compare",
    "TraceComparison",
]


def _arrays(trace: TrainingTrace) -> Tuple[np.ndarray, np.ndarray]:
    if len(trace) == 0:
        raise ConfigurationError("analysis of an empty trace")
    times = np.asarray([p.time_s for p in trace.points])
    accs = np.asarray([p.accuracy for p in trace.points])
    return times, accs


def smoothed_accuracy(
    trace: TrainingTrace, window: int = 3
) -> List[Tuple[float, float]]:
    """Centered moving-average of the accuracy curve (window clipped at ends)."""
    if window < 1:
        raise ConfigurationError(f"window must be >= 1, got {window}")
    times, accs = _arrays(trace)
    half = window // 2
    out = []
    for i in range(len(accs)):
        lo = max(0, i - half)
        hi = min(len(accs), i + half + 1)
        out.append((float(times[i]), float(accs[lo:hi].mean())))
    return out


def auc_accuracy(trace: TrainingTrace, until: Optional[float] = None) -> float:
    """Time-normalized area under the accuracy curve.

    Equals the run's *average accuracy over time* in ``[0, until]`` — a
    method that is better at every instant has a strictly larger AUC, and
    transient dips are weighted by how long they last.
    """
    times, accs = _arrays(trace)
    end = float(until) if until is not None else float(times[-1])
    if end <= times[0]:
        return float(accs[0])
    mask = times <= end
    t = np.append(times[mask], end)
    a = np.append(accs[mask], accs[mask][-1])
    return float(np.trapezoid(a, t) / (end - t[0]))


@dataclass(frozen=True)
class Plateau:
    """Where a run stopped improving."""

    start_time: float
    start_index: int
    level: float


def detect_plateau(
    trace: TrainingTrace, *, tolerance: float = 0.01, min_points: int = 3
) -> Optional[Plateau]:
    """The earliest suffix of >= ``min_points`` checkpoints whose accuracy
    never exceeds its own first value by ``tolerance``; ``None`` if the run
    is still improving at the end."""
    times, accs = _arrays(trace)
    n = len(accs)
    if n < min_points:
        return None
    for start in range(n - min_points + 1):
        if accs[start:].max() <= accs[start] + tolerance:
            return Plateau(
                start_time=float(times[start]),
                start_index=start,
                level=float(accs[start:].mean()),
            )
    return None


def detect_divergence(
    trace: TrainingTrace, *, drop: float = 0.1, warn: bool = True
) -> bool:
    """True if the final accuracy sits ``drop`` below the running peak.

    That is the signature the paper describes for CROSSBOW ("poor accuracy
    ... instability"); a warning is emitted so long experiment sweeps
    surface it without failing.
    """
    _, accs = _arrays(trace)
    peak = float(accs.max())
    diverged = bool(peak - float(accs[-1]) > drop)
    if diverged and warn:
        warnings.warn(
            f"{trace.label()} decayed {peak - accs[-1]:.3f} below its peak "
            f"({peak:.3f} -> {accs[-1]:.3f})",
            ConvergenceWarning,
            stacklevel=2,
        )
    return diverged


@dataclass(frozen=True)
class TraceComparison:
    """Verdict of :func:`compare`."""

    winner: str
    auc_a: float
    auc_b: float
    best_a: float
    best_b: float

    @property
    def margin(self) -> float:
        """AUC difference (positive favors trace a)."""
        return self.auc_a - self.auc_b


def compare(a: TrainingTrace, b: TrainingTrace) -> TraceComparison:
    """Compare two traces over their common time horizon (AUC first,
    best accuracy as tie-breaker)."""
    horizon = min(a.total_time, b.total_time)
    auc_a = auc_accuracy(a, until=horizon)
    auc_b = auc_accuracy(b, until=horizon)
    if abs(auc_a - auc_b) > 1e-9:
        winner = a.label() if auc_a > auc_b else b.label()
    else:
        winner = a.label() if a.best_accuracy >= b.best_accuracy else b.label()
    return TraceComparison(
        winner=winner,
        auc_a=auc_a,
        auc_b=auc_b,
        best_a=a.best_accuracy,
        best_b=b.best_accuracy,
    )
