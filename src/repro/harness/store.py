"""Persistence for training traces and experiment result sets.

A trace saves as a pair of files: ``<stem>.json`` (identity, metadata,
boundary telemetry) and ``<stem>.npz`` (the checkpoint arrays). The split
keeps the JSON human-readable while bulk numeric data stays binary. A whole
experiment grid saves as a directory with an ``index.json``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple, Union

import numpy as np

from repro.exceptions import DataFormatError
from repro.harness.traces import TracePoint, TrainingTrace
from repro.telemetry import Telemetry
from repro.telemetry.export import write_chrome_trace, write_jsonl
from repro.utils.serialization import (
    load_arrays,
    load_json,
    save_arrays,
    save_json,
    to_jsonable,
)

__all__ = ["save_trace", "load_trace", "save_result_set", "load_result_set"]

PathLike = Union[str, Path]

_POINT_FIELDS = ("time_s", "epochs", "updates", "samples", "accuracy", "loss")


def save_trace(
    trace: TrainingTrace,
    stem: PathLike,
    *,
    telemetry: Optional[Telemetry] = None,
) -> Tuple[Path, Path]:
    """Save ``trace`` as ``<stem>.json`` + ``<stem>.npz``; return both paths.

    With ``telemetry``, the recorder's event stream rides along as
    ``<stem>.telemetry.jsonl`` plus a Chrome/Perfetto-loadable
    ``<stem>.trace.json``.
    """
    stem = Path(stem)
    if telemetry is not None:
        write_jsonl(telemetry, stem.parent / f"{stem.name}.telemetry.jsonl")
        write_chrome_trace(telemetry, stem.parent / f"{stem.name}.trace.json")
    meta = {
        "algorithm": trace.algorithm,
        "dataset": trace.dataset,
        "n_devices": trace.n_devices,
        "batch_size_history": [list(s) for s in trace.batch_size_history],
        "perturbation_history": list(trace.perturbation_history),
        "merge_branch_history": list(trace.merge_branch_history),
        "staleness_history": list(trace.staleness_history),
        "metadata": _jsonable_metadata(trace.metadata),
        "format_version": 1,
    }
    json_path = save_json(stem.with_suffix(".json"), meta)
    arrays = {
        field: np.asarray([getattr(p, field) for p in trace.points])
        for field in _POINT_FIELDS
    }
    npz_path = save_arrays(stem.with_suffix(".npz"), arrays)
    return json_path, npz_path


def _jsonable_metadata(metadata: Mapping) -> dict:
    """Metadata via :func:`to_jsonable`: ``Path`` values become strings,
    non-finite floats and unconvertible objects are rejected.

    Rejection (rather than the old ``repr`` coercion) keeps the round-trip
    faithful: a value that silently stringifies on save loads back as a
    different type, and a NaN that survives to :func:`save_json` would
    fail there with a far less actionable message.
    """
    out = {}
    for key, value in metadata.items():
        try:
            out[str(key)] = to_jsonable(value)
        except (TypeError, ValueError) as exc:
            raise DataFormatError(
                f"trace metadata entry {key!r} does not survive a JSON "
                f"round-trip: {exc}"
            ) from exc
    return out


def load_trace(stem: PathLike) -> TrainingTrace:
    """Load a trace saved by :func:`save_trace`."""
    stem = Path(stem)
    json_path = stem.with_suffix(".json")
    npz_path = stem.with_suffix(".npz")
    if not json_path.exists() or not npz_path.exists():
        raise DataFormatError(f"no trace at {stem} (.json/.npz pair required)")
    meta = load_json(json_path)
    if meta.get("format_version") != 1:
        raise DataFormatError(
            f"{json_path}: unsupported trace format {meta.get('format_version')!r}"
        )
    arrays = load_arrays(npz_path)
    trace = TrainingTrace(
        algorithm=meta["algorithm"],
        dataset=meta["dataset"],
        n_devices=int(meta["n_devices"]),
        batch_size_history=[tuple(s) for s in meta["batch_size_history"]],
        perturbation_history=[bool(b) for b in meta["perturbation_history"]],
        merge_branch_history=list(meta["merge_branch_history"]),
        staleness_history=[int(s) for s in meta["staleness_history"]],
        metadata=meta.get("metadata", {}),
    )
    n = len(arrays["time_s"])
    for i in range(n):
        trace.record_point(TracePoint(
            time_s=float(arrays["time_s"][i]),
            epochs=float(arrays["epochs"][i]),
            updates=int(arrays["updates"][i]),
            samples=int(arrays["samples"][i]),
            accuracy=float(arrays["accuracy"][i]),
            loss=float(arrays["loss"][i]),
        ))
    return trace


def save_result_set(
    results: Mapping[Tuple[str, int], TrainingTrace],
    directory: PathLike,
    *,
    telemetry: Optional[Telemetry] = None,
) -> Path:
    """Save a ``run_experiment`` result dict into ``directory``.

    Each trace goes to ``<algorithm>_<n>gpu.{json,npz}``; an ``index.json``
    records the key mapping. With ``telemetry`` (the recorder the whole grid
    ran through), the set also gets ``telemetry.jsonl`` and a combined
    ``trace.json`` timeline with one process per run.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    index = []
    for (algorithm, n_gpus), trace in results.items():
        stem = directory / f"{algorithm}_{n_gpus}gpu"
        save_trace(trace, stem)
        index.append({"algorithm": algorithm, "n_gpus": n_gpus,
                      "stem": stem.name})
    save_json(directory / "index.json", index)
    if telemetry is not None:
        write_jsonl(telemetry, directory / "telemetry.jsonl")
        write_chrome_trace(telemetry, directory / "trace.json")
    return directory


def load_result_set(directory: PathLike) -> Dict[Tuple[str, int], TrainingTrace]:
    """Load a result set saved by :func:`save_result_set`."""
    directory = Path(directory)
    index_path = directory / "index.json"
    if not index_path.exists():
        raise DataFormatError(f"no index.json in {directory}")
    results: Dict[Tuple[str, int], TrainingTrace] = {}
    for entry in load_json(index_path):
        key = (entry["algorithm"], int(entry["n_gpus"]))
        results[key] = load_trace(directory / entry["stem"])
    return results
