"""Experiment specification and runner.

An :class:`ExperimentSpec` captures everything one evaluation run needs —
dataset, algorithms, GPU counts, hardware flavor, hyperparameters, and the
simulated time budget — and :func:`run_experiment` executes the full grid
under the paper's methodology (shared initial model, equal time budgets).

The algorithm registry maps the names used throughout the paper's figures to
trainer classes, so benches and examples select methods by string.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.api import TRAINER_REGISTRY, make_trainer
from repro.core.config import AdaptiveSGDConfig
from repro.data.dataset import XMLTask
from repro.data.registry import load_task
from repro.exceptions import ConfigurationError
from repro.gpu.cluster import make_server
from repro.gpu.cost import CpuCostParams, GpuCostParams
from repro.harness.trainer_base import TrainerBase
from repro.harness.traces import TrainingTrace
from repro.telemetry import Telemetry

__all__ = ["ALGORITHMS", "ExperimentSpec", "RunKey", "run_experiment"]

#: Paper-figure algorithm names -> trainer classes (the live registry of
#: :mod:`repro.api`; extend it with :func:`repro.api.register_trainer`).
ALGORITHMS = TRAINER_REGISTRY

RunKey = Tuple[str, int]  # (algorithm name, n_gpus)


@dataclass
class ExperimentSpec:
    """One evaluation grid: algorithms × GPU counts on a dataset."""

    dataset: str = "micro"
    algorithms: Tuple[str, ...] = ("adaptive", "elastic", "tensorflow", "crossbow")
    gpu_counts: Tuple[int, ...] = (4,)
    #: Simulated seconds each run gets (identical across runs — §V-A).
    time_budget_s: float = 0.1
    config: AdaptiveSGDConfig = field(default_factory=AdaptiveSGDConfig)
    heterogeneity: str = "het"
    max_gap: float = 0.32
    #: Use the scaled cost profile matched to the small benchmark models.
    tiny_hardware: bool = True
    hidden: Tuple[int, ...] = (64,)
    eval_samples: Optional[int] = 512
    seed: int = 0

    def __post_init__(self) -> None:
        unknown = [a for a in self.algorithms if a not in ALGORITHMS]
        if unknown:
            raise ConfigurationError(
                f"unknown algorithm(s) {unknown}; available: {list(ALGORITHMS)}"
            )
        if not self.gpu_counts or any(n < 1 for n in self.gpu_counts):
            raise ConfigurationError(
                f"gpu_counts must be positive, got {self.gpu_counts}"
            )
        if self.time_budget_s <= 0:
            raise ConfigurationError(
                f"time_budget_s must be > 0, got {self.time_budget_s}"
            )

    def cost_params(self) -> GpuCostParams:
        """The GPU cost constants this spec's servers use."""
        return (
            GpuCostParams.tiny_model_profile()
            if self.tiny_hardware
            else GpuCostParams()
        )

    def build_server(self, n_gpus: int):
        """A fresh virtual server for one run (device state is per-run)."""
        return make_server(
            n_gpus,
            heterogeneity=self.heterogeneity,
            max_gap=self.max_gap,
            cost_params=self.cost_params(),
            cpu_params=(
                CpuCostParams.tiny_model_profile() if self.tiny_hardware else None
            ),
            seed=self.seed,
        )

    def build_trainer(
        self,
        algorithm: str,
        task: XMLTask,
        n_gpus: int,
        *,
        telemetry: Optional[Telemetry] = None,
    ) -> TrainerBase:
        """Instantiate one trainer under the shared methodology.

        Funnels through :func:`repro.api.make_trainer`, the unified
        construction front door.
        """
        return make_trainer(
            algorithm, self, task=task, n_gpus=n_gpus, telemetry=telemetry
        )


def run_experiment(
    spec: ExperimentSpec,
    *,
    task: Optional[XMLTask] = None,
    time_budget_s: Optional[float] = None,
    telemetry: Optional[Telemetry] = None,
    registry=None,
) -> Dict[RunKey, TrainingTrace]:
    """Run the full grid; returns ``{(algorithm, n_gpus): trace}``.

    The dataset is generated once and shared; every run gets a fresh server
    (device utilization counters are per-run) and the same simulated budget.
    SLIDE is CPU-only, so it runs once (``n_gpus`` recorded as 1) regardless
    of the GPU grid. ``time_budget_s`` overrides the spec's budget;
    ``telemetry`` records every run of the grid into one recorder (the
    Chrome exporter shows each run as its own process). ``registry``
    (a :class:`~repro.registry.RunRegistry`) registers every grid entry in
    the cross-run index once the grid completes.
    """
    task = task or load_task(spec.dataset, seed=spec.seed)
    budget = time_budget_s if time_budget_s is not None else spec.time_budget_s
    results: Dict[RunKey, TrainingTrace] = {}
    for algorithm in spec.algorithms:
        counts: Sequence[int] = spec.gpu_counts if algorithm != "slide" else (1,)
        for n_gpus in counts:
            trainer = spec.build_trainer(
                algorithm, task, n_gpus, telemetry=telemetry
            )
            trace = trainer.run(time_budget_s=budget)
            results[(algorithm, n_gpus)] = trace
    if registry is not None:
        from repro.registry.record import record_experiment

        record_experiment(registry, results, spec=spec, telemetry=telemetry)
    return results
