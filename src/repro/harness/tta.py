"""Time-to-accuracy analysis across runs.

The paper's headline comparison (Figure 4): for a set of traces sharing a
task, report when each method first reaches given accuracy targets, which
method achieves the highest accuracy, and speedup factors between methods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.harness.traces import TrainingTrace

__all__ = ["TTAEntry", "tta_table", "default_targets", "speedup", "winner_at_time"]


@dataclass(frozen=True)
class TTAEntry:
    """One trace's time/epochs to one accuracy target."""

    label: str
    target: float
    time_s: Optional[float]
    epochs: Optional[float]
    reached: bool


def default_targets(
    traces: Sequence[TrainingTrace], fractions: Sequence[float] = (0.5, 0.8, 0.95)
) -> List[float]:
    """Accuracy targets as fractions of the best accuracy any trace reached.

    Anchoring on the overall best (not the worst) keeps targets meaningful:
    methods that never reach a target simply report "not reached", exactly
    as a curve that never crosses a level line in the paper's figures.
    """
    if not traces:
        raise ConfigurationError("default_targets requires at least one trace")
    best = max(t.best_accuracy for t in traces)
    if best <= 0:
        raise ConfigurationError("no trace reached positive accuracy")
    return [round(best * f, 4) for f in fractions]


def tta_table(
    traces: Sequence[TrainingTrace],
    targets: Optional[Sequence[float]] = None,
) -> List[TTAEntry]:
    """Time/epochs-to-accuracy entries for every trace × target."""
    if not traces:
        raise ConfigurationError("tta_table requires at least one trace")
    targets = list(targets) if targets is not None else default_targets(traces)
    entries: List[TTAEntry] = []
    for trace in traces:
        for target in targets:
            t = trace.time_to_accuracy(target)
            e = trace.epochs_to_accuracy(target)
            entries.append(
                TTAEntry(
                    label=trace.label(),
                    target=float(target),
                    time_s=t,
                    epochs=e,
                    reached=t is not None,
                )
            )
    return entries


def speedup(
    baseline: TrainingTrace, contender: TrainingTrace, target: float
) -> Optional[float]:
    """``baseline_time / contender_time`` to reach ``target`` (None if either fails)."""
    tb = baseline.time_to_accuracy(target)
    tc = contender.time_to_accuracy(target)
    if tb is None or tc is None or tc == 0:
        return None
    return tb / tc


def winner_at_time(
    traces: Mapping[str, TrainingTrace], t: float
) -> Tuple[str, float]:
    """The label with the best accuracy achieved by simulated time ``t``."""
    if not traces:
        raise ConfigurationError("winner_at_time requires at least one trace")
    scored = {label: tr.accuracy_at_time(t) for label, tr in traces.items()}
    label = max(scored, key=scored.get)
    return label, scored[label]
