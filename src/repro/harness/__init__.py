"""Experiment harness: methodology, runners, figure builders, reporting.

- :mod:`repro.harness.trainer_base` — the shared §V-A training protocol.
- :mod:`repro.harness.traces` — run records and derived metrics.
- :mod:`repro.harness.experiment` — specs and the grid runner.
- :mod:`repro.harness.figures` — one builder per paper table/figure.
- :mod:`repro.harness.tta` — time-to-accuracy analysis.
- :mod:`repro.harness.report` — paper-style text rendering.
- :mod:`repro.harness.sweep` — parameter sweeps and the ablation grid.

Exports are resolved lazily (PEP 562): the trainer classes import
``repro.harness.trainer_base``, and an eager ``from .experiment import ...``
here would close an import cycle back into ``repro.core``.
"""

from typing import TYPE_CHECKING

_EXPORTS = {
    "ALGORITHMS": "repro.harness.experiment",
    "ExperimentSpec": "repro.harness.experiment",
    "run_experiment": "repro.harness.experiment",
    "PAPER_TABLE1": "repro.harness.figures",
    "default_config_for": "repro.harness.figures",
    "allreduce_comparison": "repro.harness.figures",
    "fig1_heterogeneity": "repro.harness.figures",
    "fig4_time_to_accuracy": "repro.harness.figures",
    "fig5_scalability": "repro.harness.figures",
    "fig6_adaptivity": "repro.harness.figures",
    "table1_rows": "repro.harness.figures",
    "render_allreduce": "repro.harness.report",
    "render_fig1": "repro.harness.report",
    "render_fig6": "repro.harness.report",
    "render_table1": "repro.harness.report",
    "render_tta_curves": "repro.harness.report",
    "render_tta_summary": "repro.harness.report",
    "ablation_grid": "repro.harness.sweep",
    "sweep": "repro.harness.sweep",
    "save_trace": "repro.harness.store",
    "load_trace": "repro.harness.store",
    "save_result_set": "repro.harness.store",
    "load_result_set": "repro.harness.store",
    "PaperReport": "repro.harness.paper",
    "reproduce_all": "repro.harness.paper",
    "smoothed_accuracy": "repro.harness.analysis",
    "auc_accuracy": "repro.harness.analysis",
    "detect_plateau": "repro.harness.analysis",
    "detect_divergence": "repro.harness.analysis",
    "compare": "repro.harness.analysis",
    "TrainerBase": "repro.harness.trainer_base",
    "TracePoint": "repro.harness.traces",
    "TrainingTrace": "repro.harness.traces",
    "default_targets": "repro.harness.tta",
    "speedup": "repro.harness.tta",
    "tta_table": "repro.harness.tta",
    "winner_at_time": "repro.harness.tta",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.harness' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(__all__)


if TYPE_CHECKING:  # pragma: no cover - static-analysis aid only
    from repro.harness.experiment import ALGORITHMS, ExperimentSpec, run_experiment
    from repro.harness.figures import (
        PAPER_TABLE1,
        allreduce_comparison,
        fig1_heterogeneity,
        fig4_time_to_accuracy,
        fig5_scalability,
        fig6_adaptivity,
        table1_rows,
    )
    from repro.harness.report import (
        render_allreduce,
        render_fig1,
        render_fig6,
        render_table1,
        render_tta_curves,
        render_tta_summary,
    )
    from repro.harness.sweep import ablation_grid, sweep
    from repro.harness.trainer_base import TrainerBase
    from repro.harness.traces import TracePoint, TrainingTrace
    from repro.harness.tta import default_targets, speedup, tta_table, winner_at_time
