"""Training traces: everything a run records, and the paper's metrics.

A :class:`TrainingTrace` is the single artifact every trainer produces. It
holds the accuracy-vs-time curve (sampled at mega-batch boundaries, eval
time excluded from the virtual clock — §V-A methodology), plus the
adaptive-mechanism telemetry Figures 6a/6b are drawn from (per-GPU batch
sizes, perturbation activations, merge branches, staleness spreads).

Derived metrics:

- :meth:`TrainingTrace.time_to_accuracy` — the paper's headline metric;
- :meth:`TrainingTrace.epochs_to_accuracy` — statistical efficiency;
- :meth:`TrainingTrace.series` — ``(x, y)`` pairs for figure regeneration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["TracePoint", "TrainingTrace"]


@dataclass(frozen=True)
class TracePoint:
    """One evaluation checkpoint (taken after a mega-batch merge)."""

    #: Simulated wall-clock seconds elapsed (training only; eval excluded).
    time_s: float
    #: Fractional passes over the training set (statistical-efficiency axis).
    epochs: float
    #: Total model(-replica) updates performed so far, summed over devices.
    updates: int
    #: Training samples consumed so far.
    samples: int
    #: Top-1 test accuracy (P@1).
    accuracy: float
    #: Most recent training loss (mean over the last mega-batch's steps).
    loss: float


@dataclass
class TrainingTrace:
    """Complete record of one training run."""

    algorithm: str
    dataset: str
    n_devices: int
    points: List[TracePoint] = field(default_factory=list)
    #: Per-boundary per-GPU batch sizes (Figure 6a).
    batch_size_history: List[Tuple[int, ...]] = field(default_factory=list)
    #: Per-boundary perturbation activation (Figure 6b).
    perturbation_history: List[bool] = field(default_factory=list)
    #: Per-boundary Algorithm-2 normalization branch.
    merge_branch_history: List[str] = field(default_factory=list)
    #: Per-boundary update-count spread (staleness).
    staleness_history: List[int] = field(default_factory=list)
    #: Free-form run metadata (config, seed, hardware...).
    metadata: Dict[str, object] = field(default_factory=dict)

    # -- recording ----------------------------------------------------------
    def record_point(self, point: TracePoint) -> None:
        """Append an evaluation checkpoint (time must not regress)."""
        if self.points and point.time_s < self.points[-1].time_s:
            raise ConfigurationError(
                f"trace time went backwards: {point.time_s} after "
                f"{self.points[-1].time_s}"
            )
        self.points.append(point)

    # -- basic accessors -------------------------------------------------------
    def __len__(self) -> int:
        return len(self.points)

    @property
    def final_accuracy(self) -> float:
        """Accuracy at the last checkpoint (0.0 for an empty trace)."""
        return self.points[-1].accuracy if self.points else 0.0

    @property
    def best_accuracy(self) -> float:
        """Highest accuracy reached at any checkpoint."""
        return max((p.accuracy for p in self.points), default=0.0)

    @property
    def total_time(self) -> float:
        """Simulated seconds covered by the trace."""
        return self.points[-1].time_s if self.points else 0.0

    @property
    def total_epochs(self) -> float:
        """Training-set passes covered by the trace."""
        return self.points[-1].epochs if self.points else 0.0

    # -- paper metrics ------------------------------------------------------
    def time_to_accuracy(self, target: float) -> Optional[float]:
        """First simulated time at which accuracy >= ``target`` (else None)."""
        for p in self.points:
            if p.accuracy >= target:
                return p.time_s
        return None

    def epochs_to_accuracy(self, target: float) -> Optional[float]:
        """Epochs needed to first reach ``target`` accuracy (else None)."""
        for p in self.points:
            if p.accuracy >= target:
                return p.epochs
        return None

    def accuracy_at_time(self, t: float) -> float:
        """Best accuracy achieved by simulated time ``t`` (step function)."""
        best = 0.0
        for p in self.points:
            if p.time_s > t:
                break
            best = max(best, p.accuracy)
        return best

    def perturbation_frequency(self) -> float:
        """Fraction of merge boundaries at which perturbation fired."""
        if not self.perturbation_history:
            return 0.0
        return float(np.mean(self.perturbation_history))

    # -- figure series -------------------------------------------------------
    def series(self, x: str = "time", y: str = "accuracy") -> List[Tuple[float, float]]:
        """``(x, y)`` samples; axes: time | epochs | updates | samples vs
        accuracy | loss."""
        x_getters = {
            "time": lambda p: p.time_s,
            "epochs": lambda p: p.epochs,
            "updates": lambda p: float(p.updates),
            "samples": lambda p: float(p.samples),
        }
        y_getters = {
            "accuracy": lambda p: p.accuracy,
            "loss": lambda p: p.loss,
        }
        if x not in x_getters:
            raise ConfigurationError(f"unknown x-axis {x!r}; options {list(x_getters)}")
        if y not in y_getters:
            raise ConfigurationError(f"unknown y-axis {y!r}; options {list(y_getters)}")
        gx, gy = x_getters[x], y_getters[y]
        return [(gx(p), gy(p)) for p in self.points]

    def batch_size_series(self, gpu: int) -> List[Tuple[float, float]]:
        """(mega-batch index, batch size) for one GPU — Figure 6a's curves."""
        if not self.batch_size_history:
            return []
        n = len(self.batch_size_history[0])
        if not (0 <= gpu < n):
            raise ConfigurationError(f"gpu must be in [0, {n}), got {gpu}")
        return [
            (float(i), float(sizes[gpu]))
            for i, sizes in enumerate(self.batch_size_history)
        ]

    def label(self) -> str:
        """Standard curve label, e.g. ``"Adaptive SGD (4 GPUs)"``."""
        unit = "GPU" if self.n_devices == 1 else "GPUs"
        return f"{self.algorithm} ({self.n_devices} {unit})"
