"""Run comparison over the uniform telemetry schema.

Because every trainer emits the same span/gauge vocabulary, any two
recorded runs can be aligned phase-by-phase: per-span-kind simulated time,
wall-clock speedup, time-to-accuracy delta, and update totals — with a
noise threshold separating real regressions from jitter. This is what turns
a pair of ``BENCH_*.json``-style measurements into an explanation: not just
"adaptive was 1.4x faster" but *which phase* paid for it.

``a`` is the baseline and ``b`` the candidate throughout: speedups > 1 mean
the candidate is faster, and a "regression" is a phase where the candidate
spends more than ``noise`` extra time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.telemetry.events import GAUGE_ACCURACY
from repro.telemetry.trace_data import RunData

__all__ = [
    "PhaseDelta",
    "RunComparison",
    "compare_runs",
    "diff_runs",
    "time_to_accuracy",
]


def time_to_accuracy(run: RunData, target: float) -> Optional[float]:
    """First simulated time the accuracy gauge reaches ``target``."""
    for t, v in run.series(GAUGE_ACCURACY):
        if math.isfinite(v) and v >= target:
            return t
    return None


def best_accuracy(run: RunData) -> float:
    """Highest accuracy the run's gauge reached (0.0 without samples)."""
    values = [v for _, v in run.series(GAUGE_ACCURACY) if math.isfinite(v)]
    return max(values, default=0.0)


@dataclass
class PhaseDelta:
    """One span kind's totals in baseline vs candidate."""

    name: str
    baseline_s: float
    candidate_s: float
    baseline_count: int
    candidate_count: int

    @property
    def delta_s(self) -> float:
        """Candidate minus baseline (positive = candidate spends more)."""
        return self.candidate_s - self.baseline_s

    @property
    def speedup(self) -> Optional[float]:
        """baseline/candidate time ratio (>1 = candidate faster)."""
        if self.candidate_s <= 0.0:
            return None
        return self.baseline_s / self.candidate_s

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "baseline_s": self.baseline_s,
            "candidate_s": self.candidate_s,
            "baseline_count": self.baseline_count,
            "candidate_count": self.candidate_count,
            "delta_s": self.delta_s,
            "speedup": self.speedup,
        }


@dataclass
class RunComparison:
    """The full verdict of :func:`compare_runs`."""

    baseline_label: str
    candidate_label: str
    wall_baseline_s: float
    wall_candidate_s: float
    phases: List[PhaseDelta] = field(default_factory=list)
    #: Shared accuracy target the TTA delta is measured at.
    tta_target: Optional[float] = None
    tta_baseline_s: Optional[float] = None
    tta_candidate_s: Optional[float] = None
    best_accuracy_baseline: float = 0.0
    best_accuracy_candidate: float = 0.0
    updates_baseline: float = 0.0
    updates_candidate: float = 0.0
    #: Phase names where the candidate exceeds baseline beyond ``noise``.
    regressions: List[str] = field(default_factory=list)
    noise: float = 0.05

    @property
    def wall_speedup(self) -> Optional[float]:
        if self.wall_candidate_s <= 0.0:
            return None
        return self.wall_baseline_s / self.wall_candidate_s

    @property
    def tta_delta_s(self) -> Optional[float]:
        """Candidate TTA minus baseline TTA (negative = candidate faster);
        ``None`` when either run never reached the target."""
        if self.tta_baseline_s is None or self.tta_candidate_s is None:
            return None
        return self.tta_candidate_s - self.tta_baseline_s

    @property
    def tta_speedup(self) -> Optional[float]:
        if (
            self.tta_baseline_s is None
            or self.tta_candidate_s is None
            or self.tta_candidate_s <= 0.0
        ):
            return None
        return self.tta_baseline_s / self.tta_candidate_s

    def as_dict(self) -> dict:
        return {
            "baseline": self.baseline_label,
            "candidate": self.candidate_label,
            "wall_baseline_s": self.wall_baseline_s,
            "wall_candidate_s": self.wall_candidate_s,
            "wall_speedup": self.wall_speedup,
            "phases": [p.as_dict() for p in self.phases],
            "tta_target": self.tta_target,
            "tta_baseline_s": self.tta_baseline_s,
            "tta_candidate_s": self.tta_candidate_s,
            "tta_delta_s": self.tta_delta_s,
            "tta_speedup": self.tta_speedup,
            "best_accuracy_baseline": self.best_accuracy_baseline,
            "best_accuracy_candidate": self.best_accuracy_candidate,
            "updates_baseline": self.updates_baseline,
            "updates_candidate": self.updates_candidate,
            "regressions": list(self.regressions),
            "noise": self.noise,
        }


def _phase_totals(run: RunData) -> List[Tuple[str, float, int]]:
    """(span name, total seconds, count) in first-emission order."""
    totals: dict = {}
    for span in run.spans:
        entry = totals.setdefault(span.name, [0.0, 0])
        entry[0] += span.dur
        entry[1] += 1
    return [(name, t, c) for name, (t, c) in totals.items()]


def _total_updates(run: RunData) -> float:
    from repro.telemetry.events import COUNTER_UPDATES

    total = 0.0
    for device in run.devices():
        final = run.final(COUNTER_UPDATES, device=device)
        if final is not None:
            total += final
    return total


def diff_runs(
    baseline_source,
    candidate_source,
    *,
    run_a: int = 0,
    run_b: int = 0,
    target: Optional[float] = None,
    noise: float = 0.05,
) -> RunComparison:
    """Load two trace sources and compare one run from each.

    ``*_source`` is anything
    :func:`~repro.telemetry.trace_data.load_trace_data` accepts. This is
    the single code path behind both ``repro compare`` and
    ``repro runs diff``, so the two commands' JSON output is byte-identical
    for the same pair of traces.
    """
    from repro.telemetry.trace_data import load_trace_data

    baseline = load_trace_data(baseline_source).run(run_a)
    candidate = load_trace_data(candidate_source).run(run_b)
    return compare_runs(baseline, candidate, target=target, noise=noise)


def compare_runs(
    baseline: RunData,
    candidate: RunData,
    *,
    target: Optional[float] = None,
    noise: float = 0.05,
) -> RunComparison:
    """Align two runs on the shared schema and report the deltas.

    ``target`` defaults to the highest accuracy *both* runs reached, so the
    time-to-accuracy delta is always measured at an attainable level; pass
    an explicit target to reproduce a paper-style fixed threshold.
    """
    best_a = best_accuracy(baseline)
    best_b = best_accuracy(candidate)
    if target is None and best_a > 0.0 and best_b > 0.0:
        target = min(best_a, best_b)

    cmp = RunComparison(
        baseline_label=baseline.label(),
        candidate_label=candidate.label(),
        wall_baseline_s=baseline.duration(),
        wall_candidate_s=candidate.duration(),
        best_accuracy_baseline=best_a,
        best_accuracy_candidate=best_b,
        updates_baseline=_total_updates(baseline),
        updates_candidate=_total_updates(candidate),
        noise=noise,
    )
    if target is not None:
        cmp.tta_target = target
        cmp.tta_baseline_s = time_to_accuracy(baseline, target)
        cmp.tta_candidate_s = time_to_accuracy(candidate, target)

    a_totals = {name: (t, c) for name, t, c in _phase_totals(baseline)}
    b_totals = {name: (t, c) for name, t, c in _phase_totals(candidate)}
    names = list(a_totals)
    names += [n for n in b_totals if n not in a_totals]
    for name in names:
        a_s, a_c = a_totals.get(name, (0.0, 0))
        b_s, b_c = b_totals.get(name, (0.0, 0))
        phase = PhaseDelta(
            name=name, baseline_s=a_s, candidate_s=b_s,
            baseline_count=a_c, candidate_count=b_c,
        )
        cmp.phases.append(phase)
        if b_s > a_s * (1.0 + noise) and b_s - a_s > 1e-12:
            cmp.regressions.append(name)
    return cmp
