"""Telemetry exporters: JSONL event log, Chrome trace, summary table.

Three consumers, three formats:

- :func:`write_jsonl` — one JSON object per line (runs, spans, instants,
  counter samples, kernel aggregates): the machine-greppable archive that
  experiment runs persist next to their traces;
- :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` JSON object format, loadable in ``chrome://tracing`` and
  https://ui.perfetto.dev. Each run is a "process" (pid), the driver and
  each GPU are "threads" (tid), simulated seconds become microseconds;
- :func:`summary_table` — an aligned text table (per-span totals + kernel
  profile) via :mod:`repro.utils.tables` for terminals and CI logs.

All emitted JSON is strict (``allow_nan=False``): non-finite floats are
serialized as ``null`` rather than the invalid bare ``NaN`` token.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.telemetry.core import Telemetry
from repro.utils.tables import format_table

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "iter_jsonl_records",
    "write_jsonl",
    "summary_table",
    "jsonable",
]

PathLike = Union[str, Path]

#: Chrome trace tid layout: driver-level events on 0, device ``i`` on i+1.
DRIVER_TID = 0


def _tid(device: Optional[int]) -> int:
    return DRIVER_TID if device is None else int(device) + 1


def _clean(value):
    """Deep JSON-safe conversion: strict output for arbitrary inputs.

    Guarantees every exported file parses under ``allow_nan=False`` no
    matter what callers stuffed into span args or run metadata:

    - non-finite floats become ``None`` (bare ``NaN`` is invalid JSON);
    - numpy scalars/arrays become Python scalars/lists;
    - dicts/lists/tuples are cleaned recursively;
    - anything else non-primitive falls back to ``str``.
    """
    if value is None or isinstance(value, (str, bool, int)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {str(k): _clean(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_clean(v) for v in value]
    if isinstance(value, np.generic):
        return _clean(value.item())
    if isinstance(value, np.ndarray):
        return [_clean(v) for v in value.tolist()]
    return str(value)


def _clean_args(args: dict) -> dict:
    return {str(k): _clean(v) for k, v in args.items()}


def jsonable(value):
    """Public alias for the deep cleaner: strict-JSON-safe copy of ``value``.

    Used by the analytics engine so ``repro analyze --json`` output always
    serializes under ``allow_nan=False``.
    """
    return _clean(value)


# -- Chrome trace_event ------------------------------------------------------
def to_chrome_trace(tel: Telemetry) -> dict:
    """``tel`` as a Chrome ``trace_event`` JSON object (not yet serialized)."""
    events: List[dict] = []
    devices_per_run: Dict[int, set] = {}

    for span in tel.spans:
        devices_per_run.setdefault(span.run, set()).add(span.device)
        events.append({
            "name": span.name,
            "cat": "sim",
            "ph": "X",
            "ts": span.ts * 1e6,
            "dur": span.dur * 1e6,
            "pid": span.run,
            "tid": _tid(span.device),
            "args": _clean_args(span.args),
        })
    for inst in tel.instants:
        devices_per_run.setdefault(inst.run, set()).add(inst.device)
        events.append({
            "name": inst.name,
            "cat": "sim",
            "ph": "i",
            "s": "t",
            "ts": inst.ts * 1e6,
            "pid": inst.run,
            "tid": _tid(inst.device),
            "args": _clean_args(inst.args),
        })
    for run_idx, monitors in enumerate(tel.monitor_sets):
        for name in monitors.names():
            mon = monitors[name]
            for t, v in zip(mon.times, mon.values):
                value = _clean(float(v))
                if value is None:
                    continue
                events.append({
                    "name": name,
                    "cat": "sim",
                    "ph": "C",
                    "ts": float(t) * 1e6,
                    "pid": run_idx,
                    "tid": DRIVER_TID,
                    "args": {"value": value},
                })

    # Metadata: name each run-process and each device-thread.
    for run_idx, meta in enumerate(tel.runs):
        label = str(meta.get("algorithm", f"run {run_idx}"))
        n = meta.get("n_devices")
        if n is not None:
            label = f"{label} ({n} dev)"
        events.append({
            "name": "process_name", "ph": "M", "pid": run_idx,
            "tid": DRIVER_TID, "args": {"name": label},
        })
        for device in sorted(
            (d for d in devices_per_run.get(run_idx, ()) if d is not None),
        ):
            events.append({
                "name": "thread_name", "ph": "M", "pid": run_idx,
                "tid": _tid(device), "args": {"name": f"gpu{device}"},
            })
        events.append({
            "name": "thread_name", "ph": "M", "pid": run_idx,
            "tid": DRIVER_TID, "args": {"name": "driver"},
        })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "label": tel.label,
            "clock": "simulated seconds (exported as microseconds)",
            "runs": [_clean_args(meta) for meta in tel.runs],
            "kernels": [_clean_args(row) for row in tel.kernels.as_records()],
        },
    }


def write_chrome_trace(tel: Telemetry, path: PathLike) -> Path:
    """Write the Chrome trace JSON to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(to_chrome_trace(tel), allow_nan=False) + "\n"
    )
    return path


# -- JSONL -------------------------------------------------------------------
def iter_jsonl_records(tel: Telemetry):
    """Yield the JSONL export as dicts (``type`` discriminates records)."""
    yield {"type": "trace", "label": str(tel.label)}
    for run_idx, meta in enumerate(tel.runs):
        yield {"type": "run", "run": run_idx, **_clean_args(meta)}
    for span in tel.spans:
        yield {
            "type": "span", "name": span.name, "run": span.run,
            "device": span.device, "ts": _clean(span.ts),
            "dur": _clean(span.dur), "args": _clean_args(span.args),
        }
    for inst in tel.instants:
        yield {
            "type": "instant", "name": inst.name, "run": inst.run,
            "device": inst.device, "ts": _clean(inst.ts),
            "args": _clean_args(inst.args),
        }
    for run_idx, monitors in enumerate(tel.monitor_sets):
        for record in monitors.to_records():
            yield {"type": "counter", "run": run_idx,
                   "name": record["monitor"],
                   "ts": _clean(record["time"]),
                   "value": _clean(record["value"])}
    for run_idx, monitors in enumerate(tel.monitor_sets):
        for record in monitors.idle.as_records():
            yield {"type": "idle", "run": run_idx,
                   **{k: _clean(v) for k, v in record.items()}}
    for row in tel.kernels.as_records():
        yield {"type": "kernel", **_clean_args(row)}


def write_jsonl(tel: Telemetry, path: PathLike) -> Path:
    """Write the event stream as JSON Lines to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for record in iter_jsonl_records(tel):
            fh.write(json.dumps(record, allow_nan=False) + "\n")
    return path


# -- summary table -----------------------------------------------------------
def summary_table(tel: Telemetry) -> str:
    """Aligned text summary: simulated time per span kind + kernel profile."""
    totals: Dict[str, List[float]] = {}
    for span in tel.spans:
        entry = totals.setdefault(span.name, [0, 0.0])
        entry[0] += 1
        entry[1] += span.dur
    rows = [
        [name, int(count), total * 1e3, (total / count) * 1e6 if count else 0.0]
        for name, (count, total) in sorted(
            totals.items(), key=lambda kv: -kv[1][1]
        )
    ]
    out = format_table(
        ["span", "count", "total sim ms", "mean sim us"],
        rows,
        title=f"Telemetry summary — {len(tel.runs)} run(s), "
              f"{len(tel.spans)} spans, {len(tel.instants)} instants",
    )
    kernel_rows = tel.kernels.as_records()
    if kernel_rows:
        out += "\n\n" + format_table(
            ["kernel", "calls", "host ms", "mean host us"],
            [
                [
                    r["kernel"], r["calls"], r["host_s"] * 1e3,
                    (r["host_s"] / r["calls"]) * 1e6 if r["calls"] else 0.0,
                ]
                for r in kernel_rows
            ],
            title="Host-side kernel profile (repro.perf, wall clock)",
        )
    return out
