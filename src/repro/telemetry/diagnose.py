"""Rule-based convergence diagnostics over a recorded run's gauge series.

Each detector scans one family of gauges from the uniform schema and emits
typed :class:`Finding`\\ s — severity, human-readable message, and the
evidence window ``[t_start, t_end]`` the rule fired on — so a run explains
*why* it looks healthy or broken without anyone hand-reading JSONL.

Detectors (all pure functions of :class:`~repro.telemetry.trace_data.RunData`):

- loss divergence / non-finite loss / loss plateau;
- per-device batch-size oscillation and clamp saturation at the observed
  ``b_min``/``b_max`` rails (AdaBatch-style dynamics gone wrong);
- learning-rate blow-up;
- staleness growth across merge boundaries;
- update-count skew and straggler findings bridged from
  :mod:`repro.telemetry.analyze`.

:func:`diagnose` runs the full battery and returns findings sorted most
severe first.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.telemetry.analyze import StragglerReport, critical_path
from repro.telemetry.events import (
    GAUGE_BATCH_SIZE,
    GAUGE_LOSS,
    GAUGE_LR,
    GAUGE_STALENESS,
)
from repro.telemetry.trace_data import RunData

__all__ = [
    "Finding",
    "SEVERITIES",
    "detect_loss_anomalies",
    "detect_batch_size_anomalies",
    "detect_lr_blowup",
    "detect_staleness_growth",
    "detect_straggler",
    "diagnose",
]

#: Ascending severity order (used for sorting; most severe reported first).
SEVERITIES = ("info", "warning", "critical")

Series = Sequence[Tuple[float, float]]


@dataclass
class Finding:
    """One detector verdict with its evidence window."""

    detector: str
    severity: str
    message: str
    run: int
    device: Optional[int] = None
    #: Evidence window on the simulated clock.
    t_start: float = 0.0
    t_end: float = 0.0
    #: The numbers the rule fired on (JSON-safe scalars only).
    evidence: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    def as_dict(self) -> dict:
        return {
            "detector": self.detector,
            "severity": self.severity,
            "message": self.message,
            "run": self.run,
            "device": self.device,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "evidence": dict(self.evidence),
        }


def _finite(series: Series) -> List[Tuple[float, float]]:
    return [(t, v) for t, v in series if math.isfinite(v)]


# -- loss --------------------------------------------------------------------
def detect_loss_anomalies(
    run: RunData,
    *,
    divergence_factor: float = 2.0,
    plateau_tol: float = 0.01,
    min_points: int = 4,
) -> List[Finding]:
    """Non-finite loss, sustained divergence, and late-run plateaus.

    The leading checkpoint is taken before any step and legitimately
    records ``NaN`` loss, so non-finite values only count *after* the
    first finite sample.
    """
    findings: List[Finding] = []
    series = list(run.series(GAUGE_LOSS))
    finite = _finite(series)
    if not finite:
        return findings

    first_finite_t = finite[0][0]
    bad = [
        (t, v) for t, v in series
        if t > first_finite_t and not math.isfinite(v)
    ]
    if bad:
        findings.append(Finding(
            detector="loss_nonfinite",
            severity="critical",
            message=(
                f"loss became non-finite at t={bad[0][0]:.4g}s "
                f"({len(bad)} bad sample(s) after training started)"
            ),
            run=run.index,
            t_start=bad[0][0],
            t_end=bad[-1][0],
            evidence={"bad_samples": len(bad)},
        ))

    values = [v for _, v in finite]
    lo = min(values)
    lo_t = next(t for t, v in finite if v == lo)
    last_t, last_v = finite[-1]
    if lo > 0 and last_v > divergence_factor * lo and last_t > lo_t:
        findings.append(Finding(
            detector="loss_divergence",
            severity="critical" if last_v > 2 * divergence_factor * lo
            else "warning",
            message=(
                f"loss rose to {last_v:.4g} — "
                f"{last_v / lo:.2f}x its minimum of {lo:.4g} at "
                f"t={lo_t:.4g}s"
            ),
            run=run.index,
            t_start=lo_t,
            t_end=last_t,
            evidence={"min_loss": lo, "final_loss": last_v,
                      "ratio": last_v / lo},
        ))

    if len(finite) >= min_points:
        half = finite[len(finite) // 2:]
        first_half_v = half[0][1]
        best_late = min(v for _, v in half)
        if first_half_v > 0 and (first_half_v - best_late) / first_half_v < plateau_tol:
            findings.append(Finding(
                detector="loss_plateau",
                severity="info",
                message=(
                    f"loss plateaued: <{plateau_tol * 100:.0f}% improvement "
                    f"over the last {len(half)} checkpoints "
                    f"(stuck near {best_late:.4g})"
                ),
                run=run.index,
                t_start=half[0][0],
                t_end=half[-1][0],
                evidence={"window_points": len(half), "level": best_late},
            ))
    return findings


# -- batch size --------------------------------------------------------------
def detect_batch_size_anomalies(
    run: RunData,
    *,
    b_min: Optional[float] = None,
    b_max: Optional[float] = None,
    osc_fraction: float = 0.6,
    sat_fraction: float = 0.5,
    min_points: int = 5,
) -> List[Finding]:
    """Per-device batch-size oscillation and clamp saturation.

    Without explicit ``b_min``/``b_max``, the rails are the global minimum
    and maximum batch size observed across all devices — saturation then
    means "pinned to the most extreme value anyone reached".
    """
    findings: List[Finding] = []
    per_device = {
        d: _finite(run.series(GAUGE_BATCH_SIZE, device=d))
        for d in run.devices()
    }
    all_values = [v for series in per_device.values() for _, v in series]
    if not all_values:
        return findings
    observed_lo = min(all_values)
    observed_hi = max(all_values)
    if observed_lo == observed_hi:
        return findings  # a static-batch algorithm; rails are meaningless
    lo_rail = observed_lo if b_min is None else float(b_min)
    hi_rail = observed_hi if b_max is None else float(b_max)

    for device, series in per_device.items():
        if len(series) < min_points:
            continue
        diffs = [
            b[1] - a[1] for a, b in zip(series, series[1:])
            if b[1] != a[1]
        ]
        flips = sum(
            1 for a, b in zip(diffs, diffs[1:]) if (a > 0) != (b > 0)
        )
        if len(diffs) >= 4 and flips / (len(diffs) - 1) > osc_fraction:
            findings.append(Finding(
                detector="batch_size_oscillation",
                severity="warning",
                message=(
                    f"gpu{device} batch size oscillated: direction flipped "
                    f"{flips}/{len(diffs) - 1} times between rescales"
                ),
                run=run.index,
                device=device,
                t_start=series[0][0],
                t_end=series[-1][0],
                evidence={"flips": flips, "moves": len(diffs)},
            ))
        for rail, name in ((lo_rail, "b_min"), (hi_rail, "b_max")):
            pinned = [(t, v) for t, v in series if v == rail]
            if len(pinned) / len(series) >= sat_fraction:
                findings.append(Finding(
                    detector="batch_size_clamp",
                    severity="warning",
                    message=(
                        f"gpu{device} batch size saturated at "
                        f"{name}={rail:g} for {len(pinned)}/{len(series)} "
                        f"samples — the adaptive range may be too narrow"
                    ),
                    run=run.index,
                    device=device,
                    t_start=pinned[0][0],
                    t_end=pinned[-1][0],
                    evidence={"rail": name, "value": rail,
                              "pinned": len(pinned), "samples": len(series)},
                ))
    return findings


# -- learning rate -----------------------------------------------------------
def detect_lr_blowup(
    run: RunData, *, blowup_factor: float = 10.0
) -> List[Finding]:
    """A device's learning rate growing far beyond its initial value."""
    findings: List[Finding] = []
    for device in run.devices():
        series = _finite(run.series(GAUGE_LR, device=device))
        if len(series) < 2:
            continue
        first = series[0][1]
        if first <= 0:
            continue
        peak_t, peak = max(series, key=lambda tv: tv[1])
        if peak > blowup_factor * first:
            findings.append(Finding(
                detector="lr_blowup",
                severity="critical",
                message=(
                    f"gpu{device} learning rate blew up to {peak:.4g} — "
                    f"{peak / first:.1f}x its initial {first:.4g}"
                ),
                run=run.index,
                device=device,
                t_start=series[0][0],
                t_end=peak_t,
                evidence={"initial": first, "peak": peak,
                          "ratio": peak / first},
            ))
    return findings


# -- staleness ---------------------------------------------------------------
def detect_staleness_growth(
    run: RunData, *, growth_factor: float = 2.0, min_points: int = 4
) -> List[Finding]:
    """Update-count spread widening across merge boundaries.

    Growing staleness means the slow device keeps falling further behind —
    the divergence-risk regime §III bounds against.
    """
    series = _finite(run.series(GAUGE_STALENESS))
    if len(series) < min_points:
        return []
    quarter = max(1, len(series) // 4)
    early = sum(v for _, v in series[:quarter]) / quarter
    late_samples = series[-quarter:]
    late = sum(v for _, v in late_samples) / len(late_samples)
    if late > 0 and late > growth_factor * max(early, 1.0):
        return [Finding(
            detector="staleness_growth",
            severity="warning",
            message=(
                f"staleness grew from ~{early:.1f} to ~{late:.1f} updates "
                f"across the run — a device is falling progressively behind"
            ),
            run=run.index,
            t_start=series[0][0],
            t_end=series[-1][0],
            evidence={"early_mean": early, "late_mean": late},
        )]
    return []


# -- straggler bridge --------------------------------------------------------
def detect_straggler(
    run: RunData,
    *,
    report: Optional[StragglerReport] = None,
    balance_threshold: float = 0.75,
) -> List[Finding]:
    """Findings bridged from the critical-path analysis.

    Emits a straggler finding when one device is measurably slower, and an
    update-skew finding when update counts are badly unbalanced (the skew
    Algorithm 1 exists to close).
    """
    findings: List[Finding] = []
    rep = report if report is not None else critical_path(run)
    if rep.straggler is not None:
        findings.append(Finding(
            detector="straggler",
            severity="warning",
            message=f"straggler: {rep.reason}",
            run=run.index,
            device=rep.straggler,
            t_start=run.start(),
            t_end=run.start() + run.duration(),
            evidence={
                "heterogeneity_index": rep.heterogeneity_index,
                "critical_counts": {
                    str(k): v for k, v in rep.critical_counts.items()
                },
            },
        ))
    if rep.update_counts and rep.update_balance < balance_threshold:
        lo_dev = min(rep.update_counts, key=rep.update_counts.get)
        hi_dev = max(rep.update_counts, key=rep.update_counts.get)
        findings.append(Finding(
            detector="update_skew",
            severity="info",
            message=(
                f"update counts are skewed: gpu{lo_dev} made "
                f"{rep.update_counts[lo_dev]:.0f} updates vs gpu{hi_dev}'s "
                f"{rep.update_counts[hi_dev]:.0f} "
                f"(balance {rep.update_balance:.2f})"
            ),
            run=run.index,
            device=lo_dev,
            t_start=run.start(),
            t_end=run.start() + run.duration(),
            evidence={
                "update_counts": {
                    str(k): v for k, v in rep.update_counts.items()
                },
                "balance": rep.update_balance,
            },
        ))
    return findings


# -- the full battery --------------------------------------------------------
def diagnose(
    run: RunData, *, straggler_report: Optional[StragglerReport] = None
) -> List[Finding]:
    """Run every detector over ``run``; findings sorted most severe first
    (ties by evidence-window start)."""
    findings: List[Finding] = []
    findings += detect_loss_anomalies(run)
    findings += detect_batch_size_anomalies(run)
    findings += detect_lr_blowup(run)
    findings += detect_staleness_growth(run)
    findings += detect_straggler(run, report=straggler_report)
    rank = {severity: i for i, severity in enumerate(SEVERITIES)}
    findings.sort(key=lambda f: (-rank[f.severity], f.t_start, f.detector))
    return findings
