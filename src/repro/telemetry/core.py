"""The telemetry recorder every trainer routes through.

A :class:`Telemetry` object collects one uniform event stream — spans and
instant events stamped with the *simulated* clock, per-device counters and
gauges backed by :class:`~repro.sim.monitor.MonitorSet`, and aggregate
host-side kernel timings from :mod:`repro.perf.profile` — across one or
more training runs. Each run (one ``TrainerBase.run`` invocation) gets its
own run index, which the Chrome exporter maps to a Perfetto "process", so a
whole experiment grid lands in a single inspectable trace.

Disabled telemetry must cost nothing: :data:`NULL` is a shared
:class:`NullTelemetry` whose ``span`` returns one preallocated no-op context
manager and whose counter/gauge methods return immediately. Trainers hold
``self.telemetry`` unconditionally and never branch on configuration.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.perf import profile as kernel_profile
from repro.perf.profile import KernelProfile
from repro.sim.environment import Environment
from repro.sim.monitor import MonitorSet
from repro.telemetry.events import (
    SPAN_SERVE_BATCH,
    SPAN_STEP,
    InstantEvent,
    SpanEvent,
)

__all__ = ["Telemetry", "NullTelemetry", "NULL"]


class _NullSpan:
    """Shared no-op context manager (the disabled ``span`` fast path)."""

    __slots__ = ()

    #: Shared write-and-forget dict so ``span.args[...] = ...`` annotation
    #: sites need no enabled-check. Bounded: keys are just overwritten.
    args: dict = {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """An open span: records itself into the telemetry on ``__exit__``."""

    __slots__ = ("_tel", "name", "device", "args", "_start")

    def __init__(self, tel: "Telemetry", name: str,
                 device: Optional[int], args: dict) -> None:
        self._tel = tel
        self.name = name
        self.device = device
        self.args = args
        self._start: float = 0.0

    def __enter__(self) -> "_Span":
        self._start = self._tel._now()
        return self

    def __exit__(self, *exc) -> bool:
        tel = self._tel
        if tel._clock is None:
            # The run detached while this span was open (e.g. a worker
            # process abandoned at budget expiry and later closed by GC):
            # the span never completed, so drop it.
            return False
        end = tel._now()
        tel.spans.append(SpanEvent(
            name=self.name,
            ts=self._start,
            dur=max(0.0, end - self._start),
            run=tel.run_index,
            device=self.device,
            args=self.args,
        ))
        if self.device is not None and self.name in (SPAN_STEP, SPAN_SERVE_BATCH):
            # Device compute intervals feed the per-device idle accountant,
            # so analysis reads busy/gap totals instead of re-deriving them.
            tel.monitor_sets[-1].idle.observe(self.device, self._start, end)
        return False


def _device_key(name: str, device: Optional[int]) -> str:
    return name if device is None else f"gpu{device}/{name}"


class Telemetry:
    """Structured tracing + per-device metrics for training runs.

    Pass one instance to any trainer (constructor ``telemetry=`` or
    ``run(telemetry=...)``) or to :func:`repro.harness.experiment.run_experiment`;
    export the result with :mod:`repro.telemetry.export`.
    """

    enabled: bool = True

    def __init__(self, *, label: str = "telemetry") -> None:
        self.label = label
        self.spans: List[SpanEvent] = []
        self.instants: List[InstantEvent] = []
        #: One metadata dict per attached run; index == the events' ``run``.
        self.runs: List[dict] = []
        #: Per-run monitor sets (counters/gauges on that run's sim clock).
        self.monitor_sets: List[MonitorSet] = []
        #: Aggregate host-side kernel timings across all runs.
        self.kernels = KernelProfile()
        self._clock: Optional[Environment] = None
        self._counters: Dict[Tuple[int, str], float] = {}

    # -- run lifecycle -----------------------------------------------------
    @property
    def run_index(self) -> int:
        """Index of the currently attached run (-1 before any attach)."""
        return len(self.runs) - 1

    @property
    def attached(self) -> bool:
        """Whether a run is currently recording."""
        return self._clock is not None

    def attach(self, env: Environment, **run_meta: object) -> int:
        """Start recording a new run on ``env``'s clock; returns its index.

        Called by ``TrainerBase.run`` — user code only needs this when
        driving a simulation by hand.
        """
        if self._clock is not None:
            raise RuntimeError(
                f"telemetry {self.label!r} is already attached to a run; "
                "detach() it first (one run records at a time)"
            )
        self._clock = env
        self.runs.append(dict(run_meta))
        self.monitor_sets.append(MonitorSet(env))
        kernel_profile.activate(self.kernels)
        return self.run_index

    def detach(self) -> None:
        """Stop recording the current run (idempotent)."""
        self._clock = None
        if kernel_profile.active is self.kernels:
            kernel_profile.deactivate()

    def _now(self) -> float:
        if self._clock is None:
            raise RuntimeError(
                f"telemetry {self.label!r} is not attached to a run; "
                "record events between attach() and detach()"
            )
        return self._clock.now

    @property
    def monitors(self) -> MonitorSet:
        """The current run's monitor set."""
        if not self.monitor_sets or self._clock is None:
            raise RuntimeError(
                f"telemetry {self.label!r} has no attached run"
            )
        return self.monitor_sets[-1]

    # -- recording ---------------------------------------------------------
    def span(self, name: str, *, device: Optional[int] = None, **args: object):
        """A context manager recording ``name`` over its ``with`` block.

        Safe around ``yield env.timeout(...)`` inside simulation processes:
        the span brackets simulated time, and concurrent device processes
        each hold their own span object.
        """
        return _Span(self, name, device, args)

    def instant(self, name: str, *, device: Optional[int] = None,
                **args: object) -> None:
        """Record a zero-duration event at the current simulated time."""
        self.instants.append(InstantEvent(
            name=name, ts=self._now(), run=self.run_index,
            device=device, args=args,
        ))

    def record_span(self, name: str, ts: float, dur: float, *,
                    device: Optional[int] = None, **args: object) -> None:
        """Record an already-completed span retroactively.

        The serving engine needs this for per-request latency spans: a
        request's span starts at *enqueue* time, but which micro-batch (and
        therefore which completion time) it lands in is only known after the
        batch finishes — no ``with`` block can bracket that. ``ts``/``dur``
        are on the simulated clock; ``SPAN_STEP``/``SPAN_SERVE_BATCH`` spans
        with a device still feed the idle accountant, same as live spans.
        """
        if dur < 0:
            raise ValueError(f"span duration must be >= 0, got {dur}")
        self._now()  # raises unless a run is attached
        self.spans.append(SpanEvent(
            name=name, ts=ts, dur=dur, run=self.run_index,
            device=device, args=args,
        ))
        if device is not None and name in (SPAN_STEP, SPAN_SERVE_BATCH):
            self.monitor_sets[-1].idle.observe(device, ts, ts + dur)

    def counter(self, name: str, inc: float = 1.0, *,
                device: Optional[int] = None) -> None:
        """Increment a cumulative counter and sample it at the sim clock."""
        key = (self.run_index, _device_key(name, device))
        total = self._counters.get(key, 0.0) + inc
        self._counters[key] = total
        self.monitors[key[1]].record(total)

    def gauge(self, name: str, value: float, *,
              device: Optional[int] = None) -> None:
        """Sample a point-in-time value at the sim clock."""
        self.monitors[_device_key(name, device)].record(value)

    # -- introspection -----------------------------------------------------
    def span_names(self) -> List[str]:
        """Distinct span names, in first-emission order."""
        seen: Dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.name)
        return list(seen)

    def monitor_names(self) -> List[str]:
        """Distinct monitor (counter/gauge) names across all runs."""
        seen: Dict[str, None] = {}
        for ms in self.monitor_sets:
            for name in ms.names():
                seen.setdefault(name)
        return list(seen)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Telemetry {self.label!r}: {len(self.runs)} runs, "
            f"{len(self.spans)} spans, {len(self.instants)} instants>"
        )


class NullTelemetry(Telemetry):
    """The disabled sink: every record call is a no-op.

    ``NULL`` (the shared instance) is what trainers hold when no telemetry
    was configured; its ``span`` hands back one preallocated context
    manager, so the hot path never allocates on the disabled path.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(label="null")

    def attach(self, env: Environment, **run_meta: object) -> int:
        return -1

    def detach(self) -> None:
        pass

    def span(self, name: str, *, device: Optional[int] = None, **args: object):
        return _NULL_SPAN

    def instant(self, name: str, *, device: Optional[int] = None,
                **args: object) -> None:
        pass

    def record_span(self, name: str, ts: float, dur: float, *,
                    device: Optional[int] = None, **args: object) -> None:
        pass

    def counter(self, name: str, inc: float = 1.0, *,
                device: Optional[int] = None) -> None:
        pass

    def gauge(self, name: str, value: float, *,
              device: Optional[int] = None) -> None:
        pass


#: Shared disabled instance (do not record into this).
NULL = NullTelemetry()
