"""Time attribution and straggler/critical-path analysis over a trace.

This module answers the first two questions the paper's Figure 1 raises for
any recorded run: *where did the time go on every device*, and *which GPU
held the mega-batch back*. Everything is a pure function of
:class:`~repro.telemetry.trace_data.RunData`; nothing here touches a live
simulation.

Attribution invariant: for every device, the reported components
(compute + transfer + rebuild + other busy + all-reduce wait + merge wait
+ idle) sum to the ``run`` span's duration *exactly* (idle is computed as
the remainder, so the invariant holds to float addition error — the
acceptance tests pin it below 1e-6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.telemetry.events import (
    COUNTER_UPDATES,
    EVENT_MEMBERSHIP,
    EVENT_SHED,
    EVENT_SWAP_COMMIT,
    EVENT_SWAP_FAILED,
    EVENT_SWAP_ROLLBACK,
    GAUGE_ACTIVE_DEVICES,
    GAUGE_LOSS,
    SPAN_ALLREDUCE,
    SPAN_LSH_REBUILD,
    SPAN_MERGE,
    SPAN_RUN,
    SPAN_SERVE_BATCH,
    SPAN_SERVE_REQUEST,
    SPAN_SERVE_SWAP,
    SPAN_STEP,
    SPAN_TRANSFER,
)
from repro.telemetry.trace_data import RunData

__all__ = [
    "DeviceAttribution",
    "RunAttribution",
    "BoundaryDiagnosis",
    "StragglerReport",
    "attribute_time",
    "critical_path",
    "utilization_lanes",
    "scoring_split",
    "swap_events",
    "membership_events",
    "tenant_breakdown",
    "headline_metrics",
    "analyze_report",
]

Interval = Tuple[float, float]

#: Minimum fastest-to-slowest throughput gap before a device is called a
#: straggler (mirrors the paper's Figure 1 framing: the measured gap on
#: "identical" hardware is far above this).
STRAGGLER_GAP = 0.05


# -- interval arithmetic -----------------------------------------------------
def _union(intervals: Sequence[Interval]) -> List[Interval]:
    """Merge possibly-overlapping intervals into a sorted disjoint union."""
    merged: List[Interval] = []
    for start, end in sorted(i for i in intervals if i[1] > i[0]):
        if merged and start <= merged[-1][1]:
            last_start, last_end = merged[-1]
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


def _length(union: Sequence[Interval]) -> float:
    return sum(end - start for start, end in union)


def _difference_length(
    a: Sequence[Interval], b: Sequence[Interval]
) -> float:
    """``|union(a) \\ union(b)|`` for disjoint sorted unions ``a`` and ``b``."""
    total = 0.0
    j = 0
    for start, end in a:
        cursor = start
        while j < len(b) and b[j][1] <= cursor:
            j += 1
        k = j
        while k < len(b) and b[k][0] < end:
            cut_start, cut_end = b[k]
            if cut_start > cursor:
                total += cut_start - cursor
            cursor = max(cursor, min(cut_end, end))
            if cut_end >= end:
                break
            k += 1
        if cursor < end:
            total += end - cursor
    return total


# -- time attribution --------------------------------------------------------
@dataclass
class DeviceAttribution:
    """Wall-clock decomposition of one device's run (simulated seconds)."""

    device: int
    compute_s: float = 0.0
    transfer_s: float = 0.0
    rebuild_s: float = 0.0
    #: Device spans outside the uniform schema (future-proofing: the sum
    #: invariant must survive new span kinds).
    other_s: float = 0.0
    #: Time parked inside a merge stage while its collective ran.
    allreduce_wait_s: float = 0.0
    #: Remaining merge-stage time (weight computation, normalization).
    merge_wait_s: float = 0.0
    #: Everything else: waiting on the scheduler, stragglers, ramp-down.
    idle_s: float = 0.0
    steps: int = 0
    #: Samples processed: sum of ``size`` args over ``step.compute`` spans
    #: (training) and ``serve.batch`` spans (requests, for serving runs).
    samples: int = 0
    #: Idle-accountant view: gaps between *consecutive* compute spans only.
    gap_idle_s: Optional[float] = None

    @property
    def busy_s(self) -> float:
        """Seconds this device was executing its own spans."""
        return self.compute_s + self.transfer_s + self.rebuild_s + self.other_s

    @property
    def total_s(self) -> float:
        """Sum of every component (must equal the run span)."""
        return (
            self.busy_s + self.allreduce_wait_s + self.merge_wait_s
            + self.idle_s
        )

    @property
    def throughput(self) -> Optional[float]:
        """Samples per simulated compute second (``None`` without steps)."""
        if self.compute_s <= 0.0 or self.samples <= 0:
            return None
        return self.samples / self.compute_s

    def as_dict(self) -> dict:
        return {
            "device": self.device,
            "compute_s": self.compute_s,
            "transfer_s": self.transfer_s,
            "rebuild_s": self.rebuild_s,
            "other_s": self.other_s,
            "allreduce_wait_s": self.allreduce_wait_s,
            "merge_wait_s": self.merge_wait_s,
            "idle_s": self.idle_s,
            "busy_s": self.busy_s,
            "total_s": self.total_s,
            "steps": self.steps,
            "samples": self.samples,
            "throughput": self.throughput,
            "gap_idle_s": self.gap_idle_s,
        }


@dataclass
class RunAttribution:
    """Per-device + driver time decomposition of one run."""

    run: int
    label: str
    run_span_s: float
    n_boundaries: int
    devices: List[DeviceAttribution] = field(default_factory=list)
    #: Driver-lane totals: merge stage, the collective inside it, other.
    driver: Dict[str, float] = field(default_factory=dict)

    def device(self, device_id: int) -> DeviceAttribution:
        for d in self.devices:
            if d.device == device_id:
                return d
        raise KeyError(f"no device {device_id} in run {self.run}")

    def max_residual(self) -> float:
        """Largest |components − run span| over devices (the invariant)."""
        return max(
            (abs(d.total_s - self.run_span_s) for d in self.devices),
            default=0.0,
        )

    def as_dict(self) -> dict:
        return {
            "run": self.run,
            "label": self.label,
            "run_span_s": self.run_span_s,
            "n_boundaries": self.n_boundaries,
            "devices": [d.as_dict() for d in self.devices],
            "driver": dict(self.driver),
            "max_residual": self.max_residual(),
        }


def attribute_time(run: RunData) -> RunAttribution:
    """Decompose ``run``'s wall clock per device; components sum to the
    ``run`` span (see the module invariant)."""
    run_s = run.duration()

    merge_union = _union([
        (s.ts, s.ts + s.dur)
        for s in run.spans_named(SPAN_MERGE, device=None)
    ])
    allreduce_union = _union([
        (s.ts, s.ts + s.dur)
        for s in run.spans_named(SPAN_ALLREDUCE, device=None)
    ])
    merge_total = _length(merge_union)
    allreduce_total = _length(allreduce_union)

    att = RunAttribution(
        run=run.index,
        label=run.label(),
        run_span_s=run_s,
        n_boundaries=len(run.spans_named(SPAN_MERGE, device=None)),
        driver={
            "merge_s": merge_total,
            "allreduce_s": allreduce_total,
            "merge_other_s": merge_total - allreduce_total,
            "rebuild_s": sum(
                s.dur for s in run.spans_named(SPAN_LSH_REBUILD, device=None)
            ),
            "run_s": run_s,
        },
    )

    for device_id in run.devices():
        dev = DeviceAttribution(device=device_id)
        busy_intervals: List[Interval] = []
        for span in run.spans:
            if span.device != device_id:
                continue
            busy_intervals.append((span.ts, span.ts + span.dur))
            if span.name in (SPAN_STEP, SPAN_SERVE_BATCH):
                # serve.batch is the serving-side compute unit: batches
                # count as steps, coalesced requests as samples.
                dev.compute_s += span.dur
                dev.steps += 1
                size = span.args.get("size")
                if isinstance(size, (int, float)):
                    dev.samples += int(size)
            elif span.name == SPAN_TRANSFER:
                dev.transfer_s += span.dur
            elif span.name == SPAN_LSH_REBUILD:
                dev.rebuild_s += span.dur
            elif span.name == SPAN_RUN:
                busy_intervals.pop()  # a device-level root would distort busy
            else:
                dev.other_s += span.dur
        busy_union = _union(busy_intervals)
        # Merge-stage time the device spent parked (not executing a span),
        # split into the collective and the rest of the merge stage.
        dev.allreduce_wait_s = _difference_length(allreduce_union, busy_union)
        merge_wait_total = _difference_length(merge_union, busy_union)
        dev.merge_wait_s = merge_wait_total - dev.allreduce_wait_s
        # Idle is the remainder, so components sum to the run span exactly.
        dev.idle_s = run_s - dev.busy_s - merge_wait_total
        idle_record = run.idle.get(device_id)
        if idle_record is not None:
            dev.gap_idle_s = float(idle_record.get("idle_s", 0.0))
        elif dev.steps:
            # Archived Chrome traces carry no idle records; re-derive the
            # consecutive-compute-gap view from the step spans.
            steps = sorted(
                (s.ts, s.ts + s.dur)
                for s in run.spans_named(SPAN_STEP, device=device_id)
            )
            dev.gap_idle_s = sum(
                max(0.0, s2 - e1)
                for (_, e1), (s2, _) in zip(steps, steps[1:])
            )
        att.devices.append(dev)
    return att


# -- straggler / critical path -----------------------------------------------
@dataclass
class BoundaryDiagnosis:
    """One mega-batch boundary: who arrived last, who waited how long."""

    index: int
    #: Merge-stage start (the barrier everyone converged on).
    merge_ts: float
    window_start: float
    critical_device: Optional[int]
    #: Device -> idle seconds between its last activity and the barrier.
    idle_before: Dict[int, float] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "merge_ts": self.merge_ts,
            "window_start": self.window_start,
            "critical_device": self.critical_device,
            "idle_before": {str(k): v for k, v in self.idle_before.items()},
        }


@dataclass
class StragglerReport:
    """Per-run straggler diagnosis mirroring the paper's Figure 1."""

    run: int
    label: str
    boundaries: List[BoundaryDiagnosis] = field(default_factory=list)
    #: Device -> number of boundaries it was the last to arrive at.
    critical_counts: Dict[int, int] = field(default_factory=dict)
    #: Device -> final cumulative update count (the `u_i` of Algorithm 1).
    update_counts: Dict[int, float] = field(default_factory=dict)
    #: max(u_i) - min(u_i): the update-count skew adaptivity should close.
    update_skew: float = 0.0
    #: min(u_i) / max(u_i), 1.0 when perfectly balanced.
    update_balance: float = 1.0
    #: Device -> relative per-sample slowdown vs the fastest device.
    slowdowns: Dict[int, float] = field(default_factory=dict)
    #: Fastest-to-slowest relative gap (Figure 1's headline number).
    heterogeneity_index: float = 0.0
    straggler: Optional[int] = None
    reason: str = ""

    def as_dict(self) -> dict:
        return {
            "run": self.run,
            "label": self.label,
            "boundaries": [b.as_dict() for b in self.boundaries],
            "critical_counts": {
                str(k): v for k, v in self.critical_counts.items()
            },
            "update_counts": {
                str(k): v for k, v in self.update_counts.items()
            },
            "update_skew": self.update_skew,
            "update_balance": self.update_balance,
            "slowdowns": {str(k): v for k, v in self.slowdowns.items()},
            "heterogeneity_index": self.heterogeneity_index,
            "straggler": self.straggler,
            "reason": self.reason,
        }


def critical_path(
    run: RunData, *, straggler_gap: float = STRAGGLER_GAP
) -> StragglerReport:
    """Straggler and per-boundary critical-device analysis of ``run``."""
    report = StragglerReport(run=run.index, label=run.label())
    devices = run.devices()

    # Per-boundary arrival analysis: for each driver-level merge, find each
    # device's last activity in the window since the previous boundary.
    merges = sorted(
        run.spans_named(SPAN_MERGE, device=None), key=lambda s: s.ts
    )
    device_ends: Dict[int, List[Tuple[float, float]]] = {
        d: sorted(
            (s.ts + s.dur, s.ts)
            for s in run.spans
            if s.device == d and s.name != SPAN_RUN
        )
        for d in devices
    }
    window_start = run.start()
    for k, merge in enumerate(merges):
        diag = BoundaryDiagnosis(
            index=k,
            merge_ts=merge.ts,
            window_start=window_start,
            critical_device=None,
        )
        last_seen: Dict[int, float] = {}
        for d in devices:
            last_end = window_start
            for end, _ in device_ends[d]:
                if end > merge.ts + 1e-12:
                    break
                if end >= window_start:
                    last_end = max(last_end, end)
            last_seen[d] = last_end
            diag.idle_before[d] = max(0.0, merge.ts - last_end)
        if last_seen:
            latest = max(last_seen.values())
            diag.critical_device = min(
                d for d, end in last_seen.items() if end == latest
            )
            report.critical_counts[diag.critical_device] = (
                report.critical_counts.get(diag.critical_device, 0) + 1
            )
        report.boundaries.append(diag)
        window_start = merge.ts + merge.dur

    # Update-count skew (Algorithm 1's u_i spread).
    for d in devices:
        final = run.final(COUNTER_UPDATES, device=d)
        if final is not None:
            report.update_counts[d] = final
    if report.update_counts:
        values = list(report.update_counts.values())
        hi, lo = max(values), min(values)
        report.update_skew = hi - lo
        report.update_balance = (lo / hi) if hi > 0 else 1.0

    # Per-sample throughput -> relative slowdown vs the fastest device.
    throughputs: Dict[int, float] = {}
    for d in devices:
        compute = 0.0
        samples = 0
        for name in (SPAN_STEP, SPAN_SERVE_BATCH):
            for s in run.spans_named(name, device=d):
                compute += s.dur
                size = s.args.get("size")
                if isinstance(size, (int, float)):
                    samples += int(size)
        if compute > 0.0 and samples > 0:
            throughputs[d] = samples / compute
    if throughputs:
        fastest = max(throughputs.values())
        report.slowdowns = {
            d: (fastest / t) - 1.0 for d, t in throughputs.items()
        }
        report.heterogeneity_index = max(report.slowdowns.values())

    # The straggler verdict: hardware speed first (Figure 1's notion),
    # arrival order as the fallback signal when speeds are indistinguishable.
    if report.heterogeneity_index > straggler_gap:
        report.straggler = min(
            d for d, s in report.slowdowns.items()
            if s == report.heterogeneity_index
        )
        pieces = [
            f"gpu{report.straggler} is "
            f"{report.heterogeneity_index * 100:.1f}% slower per sample "
            f"than the fastest device"
        ]
        critical = report.critical_counts.get(report.straggler, 0)
        if merges:
            pieces.append(
                f"last to arrive at {critical}/{len(merges)} merge boundaries"
            )
        report.reason = "; ".join(pieces)
    elif report.critical_counts:
        top = max(report.critical_counts.values())
        if len(devices) > 1 and top > len(merges) / 2:
            report.straggler = min(
                d for d, c in report.critical_counts.items() if c == top
            )
            report.reason = (
                f"gpu{report.straggler} was last to arrive at "
                f"{top}/{len(merges)} merge boundaries"
            )
    return report


# -- utilization lanes -------------------------------------------------------
#: Timeline glyphs: compute / serve batch / transfer / LSH rebuild / other /
#: merge / all-reduce / hot-swap warming. Idle renders as the timeline's
#: background dot.
LANE_GLYPHS = {
    SPAN_STEP: "#",
    SPAN_SERVE_BATCH: "S",
    SPAN_TRANSFER: "T",
    SPAN_LSH_REBUILD: "R",
    SPAN_MERGE: "M",
    SPAN_ALLREDUCE: "A",
    SPAN_SERVE_SWAP: "W",
}


def utilization_lanes(run: RunData) -> Dict[str, List[Tuple[float, float, str]]]:
    """Per-device (+driver) ``(start, end, glyph)`` intervals for the ASCII
    timeline (:func:`repro.utils.tables.format_timeline`)."""
    lanes: Dict[str, List[Tuple[float, float, str]]] = {}
    for device_id in run.devices():
        intervals = []
        for span in run.spans:
            if span.device != device_id or span.name == SPAN_RUN:
                continue
            glyph = LANE_GLYPHS.get(span.name, "o")
            intervals.append((span.ts, span.ts + span.dur, glyph))
        lanes[f"gpu{device_id}"] = intervals
    driver = [
        (s.ts, s.ts + s.dur, LANE_GLYPHS[SPAN_MERGE])
        for s in run.spans_named(SPAN_MERGE, device=None)
    ] + [
        (s.ts, s.ts + s.dur, LANE_GLYPHS[SPAN_ALLREDUCE])
        for s in run.spans_named(SPAN_ALLREDUCE, device=None)
    ] + [
        (s.ts, s.ts + s.dur, LANE_GLYPHS[SPAN_SERVE_SWAP])
        for s in run.spans_named(SPAN_SERVE_SWAP, device=None)
    ]
    if driver or lanes:
        lanes["driver"] = driver
    return lanes


# -- the aggregated report ---------------------------------------------------
def scoring_split(run: "RunData") -> Optional[dict]:
    """Per-path serving summary from the run's ``serve.batch`` spans.

    Returns ``None`` for non-serving runs (or traces recorded before the
    scoring crossover existed). Otherwise one entry per scoring path —
    ``exact`` / ``lsh`` — with the batches, samples and simulated seconds it
    absorbed, plus the mean observed candidate fraction on the LSH side:
    the `auto`-mode decision record, viewable via ``repro analyze``.
    """
    batches = run.spans_named(SPAN_SERVE_BATCH)
    tagged = [s for s in batches if "scoring" in s.args]
    if not tagged:
        return None
    paths: Dict[str, dict] = {}
    for span in tagged:
        path = str(span.args["scoring"])
        entry = paths.setdefault(
            path, {"batches": 0, "samples": 0, "sim_s": 0.0}
        )
        entry["batches"] += 1
        entry["samples"] += int(span.args.get("size", 0))
        entry["sim_s"] += span.dur
    fractions = [
        float(s.args["candidate_fraction"])
        for s in tagged
        if "candidate_fraction" in s.args
    ]
    out = {"paths": paths}
    if fractions:
        out["mean_candidate_fraction"] = sum(fractions) / len(fractions)
    return out


def swap_events(run: "RunData") -> Optional[dict]:
    """Hot-swap attribution from the run's ``serve.swap`` telemetry.

    Returns ``None`` for runs with no swap activity. Otherwise a summary —
    commit / rollback / failure counts — plus one entry per warming window
    with the p99 latency of requests whose lifetime overlapped it versus
    the steady-state p99 of every other request: the record that lets
    ``repro analyze`` attribute a latency blip to the swap that caused it.
    """
    from repro.serve.loadgen import nearest_rank_percentile

    warmings = run.spans_named(SPAN_SERVE_SWAP)
    commits = [i for i in run.instants if i.name == EVENT_SWAP_COMMIT]
    rollbacks = [i for i in run.instants if i.name == EVENT_SWAP_ROLLBACK]
    failures = [i for i in run.instants if i.name == EVENT_SWAP_FAILED]
    if not (warmings or commits or rollbacks or failures):
        return None
    requests = run.spans_named(SPAN_SERVE_REQUEST)
    rolled_back = {i.args.get("version") for i in rollbacks}
    events = []
    for span in warmings:
        t0, t1 = span.ts, span.ts + span.dur
        in_window = [
            r.dur for r in requests if r.ts <= t1 and r.ts + r.dur >= t0
        ]
        steady = [
            r.dur for r in requests if not (r.ts <= t1 and r.ts + r.dur >= t0)
        ]
        entry = {
            "version_from": span.args.get("version_from"),
            "version_to": span.args.get("version_to"),
            "t_warm_start": span.ts,
            "t_commit": t1,
            "warm_s": span.dur,
            "rolled_back": span.args.get("version_to") in rolled_back,
            "requests_in_window": len(in_window),
        }
        if in_window:
            entry["p99_in_window_s"] = nearest_rank_percentile(in_window, 99)
        if steady:
            entry["p99_steady_s"] = nearest_rank_percentile(steady, 99)
        events.append(entry)
    out = {
        "commits": len(commits),
        "rollbacks": len(rollbacks),
        "failures": len(failures),
        "events": events,
    }
    reasons = [str(i.args.get("reason", "")) for i in rollbacks]
    if reasons:
        out["rollback_reasons"] = reasons
    errors = [str(i.args.get("error", "")) for i in failures]
    if errors:
        out["failure_errors"] = errors
    return out


def membership_events(run: "RunData") -> Optional[dict]:
    """Elastic-membership attribution from ``membership.event`` instants.

    Returns ``None`` for runs with no membership activity. Otherwise a
    summary — delivered / applied / suppressed counts, per-kind and
    per-source breakdowns, the ``active_devices`` gauge envelope — plus
    one entry per *applied* event attributing its local impact:

    - training runs get the loss gauge straddling the event (last sample
      before vs first after, and the delta — the "convergence blip");
    - serving runs get the p99 of requests whose lifetime overlapped the
      post-event window versus the steady p99 of everything else (the
      same windowing :func:`swap_events` uses for warmings).
    """
    from repro.serve.loadgen import nearest_rank_percentile

    instants = [i for i in run.instants if i.name == EVENT_MEMBERSHIP]
    if not instants:
        return None
    by_kind: Dict[str, int] = {}
    by_source: Dict[str, int] = {}
    applied_count = 0
    for instant in instants:
        kind = str(instant.args.get("kind", "?"))
        by_kind[kind] = by_kind.get(kind, 0) + 1
        source = str(instant.args.get("source", "?"))
        by_source[source] = by_source.get(source, 0) + 1
        if instant.args.get("applied"):
            applied_count += 1
    out: Dict[str, object] = {
        "n_events": len(instants),
        "n_applied": applied_count,
        "n_suppressed": len(instants) - applied_count,
        "by_kind": dict(sorted(by_kind.items())),
        "by_source": dict(sorted(by_source.items())),
    }
    devices = run.series(GAUGE_ACTIVE_DEVICES)
    if devices:
        values = [v for _, v in devices]
        out["active_devices"] = {
            "initial": values[0],
            "final": values[-1],
            "min": min(values),
            "max": max(values),
        }
    loss = [(t, v) for t, v in run.series(GAUGE_LOSS) if math.isfinite(v)]
    requests = run.spans_named(SPAN_SERVE_REQUEST)
    # Post-event attribution window: until the next membership event (or
    # run end), capped at a tenth of the run — local impact, not drift.
    cap = run.duration() / 10 if run.duration() > 0 else float("inf")
    times = sorted(i.ts for i in instants)
    events = []
    for instant in instants:
        if not instant.args.get("applied"):
            continue
        t = instant.ts
        entry: Dict[str, object] = {
            "t": t,
            "kind": str(instant.args.get("kind", "?")),
            "device": instant.device,
            "source": str(instant.args.get("source", "?")),
        }
        if "factor" in instant.args:
            entry["factor"] = instant.args["factor"]
        if loss:
            before = [v for ts, v in loss if ts <= t]
            after = [v for ts, v in loss if ts > t]
            if before and after:
                entry["loss_before"] = before[-1]
                entry["loss_after"] = after[0]
                entry["loss_delta"] = after[0] - before[-1]
        if requests:
            later = [ts for ts in times if ts > t]
            t1 = min(later[0] if later else t + cap, t + cap)
            in_window = [
                r.dur for r in requests if r.ts <= t1 and r.ts + r.dur >= t
            ]
            steady = [
                r.dur
                for r in requests
                if not (r.ts <= t1 and r.ts + r.dur >= t)
            ]
            entry["requests_in_window"] = len(in_window)
            if in_window:
                entry["p99_in_window_s"] = nearest_rank_percentile(
                    in_window, 99
                )
            if steady:
                entry["p99_steady_s"] = nearest_rank_percentile(steady, 99)
        events.append(entry)
    out["events"] = events
    return out


def tenant_breakdown(run: "RunData") -> Optional[dict]:
    """Per-tenant/per-class serving summary from a multi-tenant trace.

    Reads the ``tenant`` / ``priority_class`` args the engine stamps on
    ``serve.request`` spans plus the ``admission.shed`` instants. Returns
    ``None`` for single-tenant runs with no shed activity (legacy traces
    stay unchanged). Tenant throughput here is completions over the run's
    request window; ``fairness`` is the raw max/min tenant throughput
    ratio (weights are an engine-side config, not in the trace).
    """
    from repro.serve.loadgen import nearest_rank_percentiles

    requests = run.spans_named(SPAN_SERVE_REQUEST)
    tagged = [s for s in requests if "tenant" in s.args]
    sheds = [i for i in run.instants if i.name == EVENT_SHED]
    if not tagged and not sheds:
        return None
    tenant_names = {str(s.args["tenant"]) for s in tagged}
    if len(tenant_names) <= 1 and not sheds:
        return None
    window = 0.0
    if tagged:
        t0 = min(s.ts for s in tagged)
        t1 = max(s.ts + s.dur for s in tagged)
        window = t1 - t0
    tenants: Dict[str, dict] = {}
    for span in tagged:
        entry = tenants.setdefault(
            str(span.args["tenant"]), {"latencies": [], "classes": set()}
        )
        entry["latencies"].append(span.dur)
        if "priority_class" in span.args:
            entry["classes"].add(int(span.args["priority_class"]))
    classes: Dict[int, dict] = {}
    for span in tagged:
        if "priority_class" not in span.args:
            continue
        entry = classes.setdefault(
            int(span.args["priority_class"]), {"latencies": []}
        )
        entry["latencies"].append(span.dur)
    shed_by_tenant: Dict[str, int] = {}
    shed_by_class: Dict[int, int] = {}
    shed_reasons: Dict[str, int] = {}
    for instant in sheds:
        tenant = str(instant.args.get("tenant", "?"))
        shed_by_tenant[tenant] = shed_by_tenant.get(tenant, 0) + 1
        cls = instant.args.get("priority_class")
        if cls is not None:
            shed_by_class[int(cls)] = shed_by_class.get(int(cls), 0) + 1
        reason = str(instant.args.get("reason", "?"))
        shed_reasons[reason] = shed_reasons.get(reason, 0) + 1
    tenant_rows: Dict[str, dict] = {}
    for name in sorted(set(tenants) | set(shed_by_tenant)):
        entry = tenants.get(name)
        row = {
            "completed": len(entry["latencies"]) if entry else 0,
            "n_shed": shed_by_tenant.get(name, 0),
        }
        if entry:
            p50, p99 = nearest_rank_percentiles(entry["latencies"], (50, 99))
            row["latency_p50_ms"] = float(p50) * 1e3
            row["latency_p99_ms"] = float(p99) * 1e3
            row["throughput_rps"] = (
                len(entry["latencies"]) / window if window > 0 else 0.0
            )
            if entry["classes"]:
                row["priority_classes"] = sorted(entry["classes"])
        tenant_rows[name] = row
    class_rows: Dict[str, dict] = {}
    for cls in sorted(set(classes) | set(shed_by_class)):
        entry = classes.get(cls)
        row = {
            "completed": len(entry["latencies"]) if entry else 0,
            "n_shed": shed_by_class.get(cls, 0),
        }
        if entry:
            row["latency_p99_ms"] = (
                float(nearest_rank_percentiles(entry["latencies"], (99,))[0])
                * 1e3
            )
        class_rows[str(cls)] = row
    out = {
        "tenants": tenant_rows,
        "classes": class_rows,
        "n_shed": len(sheds),
    }
    if shed_reasons:
        out["shed_reasons"] = dict(sorted(shed_reasons.items()))
    throughputs = [
        row.get("throughput_rps", 0.0) for row in tenant_rows.values()
    ]
    positive = [t for t in throughputs if t > 0]
    if len(tenant_rows) >= 2 and positive:
        out["fairness"] = (
            max(positive) / min(positive)
            if len(positive) == len(throughputs)
            else float("inf")
        )
    return out


def headline_metrics(run: RunData) -> Dict[str, float]:
    """Flat headline metrics for one run: the run registry's report row.

    Everything is a finite float keyed by a stable name — the run's
    duration, best/final accuracy (when the gauge was sampled), the total
    update count, and per-phase span totals as ``span/<name>_s`` — so the
    dict drops straight into the cross-run index's metrics table and
    ``repro runs history`` can chart any of it.
    """
    from repro.telemetry.compare import _phase_totals, _total_updates
    from repro.telemetry.events import GAUGE_ACCURACY

    out: Dict[str, float] = {"duration_s": run.duration()}
    accuracy = [v for _, v in run.series(GAUGE_ACCURACY) if math.isfinite(v)]
    if accuracy:
        out["best_accuracy"] = max(accuracy)
        out["final_accuracy"] = accuracy[-1]
    updates = _total_updates(run)
    if updates > 0:
        out["updates_total"] = updates
    membership = [i for i in run.instants if i.name == EVENT_MEMBERSHIP]
    if membership:
        out["n_membership_events"] = len(membership)
        devices = run.series(GAUGE_ACTIVE_DEVICES)
        if devices:
            out["final_devices"] = devices[-1][1]
    for name, total, _count in _phase_totals(run):
        out[f"span/{name}_s"] = total
    return {k: float(v) for k, v in out.items() if math.isfinite(v)}


def analyze_report(source, *, run: Optional[int] = None) -> dict:
    """The full analysis of a trace as one JSON-safe dict.

    ``source`` is anything :func:`~repro.telemetry.trace_data.load_trace_data`
    accepts — a live recorder, a JSONL/Chrome archive path, or a
    ``TraceData``. Serializing the result with ``json.dumps(...,
    sort_keys=True)`` yields byte-identical output for a live recorder and
    the JSONL archive of the same run (the analysis is a pure function of
    the shared record stream).
    """
    from repro.telemetry.diagnose import diagnose
    from repro.telemetry.export import jsonable
    from repro.telemetry.trace_data import load_trace_data

    data = load_trace_data(source)
    runs = data.runs if run is None else [data.run(run)]
    report_runs = []
    for run_data in runs:
        straggler = critical_path(run_data)
        entry = {
            "run": run_data.index,
            "label": run_data.label(),
            "meta": dict(run_data.meta),
            "attribution": attribute_time(run_data).as_dict(),
            "straggler": straggler.as_dict(),
            "findings": [
                f.as_dict()
                for f in diagnose(run_data, straggler_report=straggler)
            ],
        }
        scoring = scoring_split(run_data)
        if scoring is not None:
            entry["serving_scoring"] = scoring
        swaps = swap_events(run_data)
        if swaps is not None:
            entry["serving_swaps"] = swaps
        membership = membership_events(run_data)
        if membership is not None:
            entry["membership"] = membership
        tenants = tenant_breakdown(run_data)
        if tenants is not None:
            entry["serving_tenants"] = tenants
        report_runs.append(entry)
    return jsonable({
        "label": data.label,
        "runs": report_runs,
        "kernels": [dict(row) for row in data.kernels],
    })
