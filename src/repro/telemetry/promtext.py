"""Prometheus text exposition of a trace's final counters and gauges.

External scrapers (a Pushgateway, a CI dashboard, a node_exporter textfile
collector) speak the Prometheus exposition format; this module renders the
*final* value of every counter/gauge, per-span simulated-time totals, and
the host-side kernel profile in that format. One call, one string, no
Prometheus client dependency::

    from repro.telemetry import load_trace_data, to_promtext
    print(to_promtext(load_trace_data("run.telemetry.jsonl")))

Sample output line::

    repro_updates_total{run="0",device="0"} 42
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

from repro.telemetry.events import COUNTER_UPDATES
from repro.telemetry.trace_data import TraceData, split_device_key

__all__ = ["to_promtext", "write_promtext"]

#: Monitor names that are cumulative counters (exported with ``_total``).
COUNTER_NAMES = frozenset({COUNTER_UPDATES})

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")
_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def _metric_name(name: str) -> str:
    cleaned = _NAME_RE.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return f"repro_{cleaned}"


def _label_value(value: object) -> str:
    text = str(value)
    for raw, escaped in _LABEL_ESCAPES.items():
        text = text.replace(raw, escaped)
    return text


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _render_labels(labels: Dict[str, object]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_label_value(value)}"' for key, value in labels.items()
    )
    return "{" + body + "}"


class _Family:
    """One metric family: TYPE/HELP header plus its samples."""

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.samples: List[Tuple[Dict[str, object], float]] = []

    def add(self, labels: Dict[str, object], value: float) -> None:
        self.samples.append((labels, value))

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for labels, value in self.samples:
            lines.append(
                f"{self.name}{_render_labels(labels)} {_format_value(value)}"
            )
        return lines


def to_promtext(data: TraceData, *, run_id: Optional[str] = None) -> str:
    """Render ``data`` in the Prometheus text exposition format (0.0.4).

    ``run_id`` (a registry run id) is stamped as the first label on every
    sample so scrapes from multiple runs land in one Prometheus without
    colliding — the ``run`` label only disambiguates runs *within* one
    recorded trace.
    """
    families: Dict[str, _Family] = {}

    def family(name: str, kind: str, help_text: str) -> _Family:
        fam = families.get(name)
        if fam is None:
            fam = _Family(name, kind, help_text)
            families[name] = fam
        return fam

    info = family(
        "repro_run_info", "gauge",
        "Run identity; labels carry algorithm/dataset/device count.",
    )
    for run in data.runs:
        labels: Dict[str, object] = {"run": run.index}
        for key in ("algorithm", "dataset", "n_devices"):
            if key in run.meta:
                labels[key] = run.meta[key]
        info.add(labels, 1.0)

    run_span = family(
        "repro_run_span_seconds", "gauge",
        "Simulated seconds covered by the run span.",
    )
    for run in data.runs:
        run_span.add({"run": run.index}, run.duration())

    # Final counter/gauge values per monitor.
    for run in data.runs:
        for key, series in run.samples.items():
            if not series:
                continue
            device, name = split_device_key(key)
            is_counter = name in COUNTER_NAMES
            metric = _metric_name(name) + ("_total" if is_counter else "")
            fam = family(
                metric,
                "counter" if is_counter else "gauge",
                f"Final recorded value of the '{name}' "
                f"{'counter' if is_counter else 'gauge'}.",
            )
            labels = {"run": run.index}
            if device is not None:
                labels["device"] = device
            fam.add(labels, series[-1][1])

    # Per-span simulated time: the attribution table, scrape-ready.
    span_seconds = family(
        "repro_span_seconds_total", "counter",
        "Total simulated seconds spent in each span kind.",
    )
    span_count = family(
        "repro_span_count_total", "counter",
        "Number of completed spans of each kind.",
    )
    for run in data.runs:
        totals: Dict[Tuple[str, Optional[int]], List[float]] = {}
        for span in run.spans:
            entry = totals.setdefault((span.name, span.device), [0.0, 0])
            entry[0] += span.dur
            entry[1] += 1
        for (name, device), (seconds, count) in totals.items():
            labels = {"run": run.index, "span": name}
            if device is not None:
                labels["device"] = device
            span_seconds.add(labels, seconds)
            span_count.add(labels, float(count))

    # Idle accounting (busy/gap seconds per device).
    busy = family(
        "repro_device_busy_seconds_total", "counter",
        "Simulated seconds each device spent computing steps.",
    )
    gaps = family(
        "repro_device_gap_idle_seconds_total", "counter",
        "Simulated seconds of gaps between consecutive compute spans.",
    )
    for run in data.runs:
        for device, record in run.idle.items():
            labels = {"run": run.index, "device": device}
            busy.add(labels, float(record.get("busy_s", 0.0)))
            gaps.add(labels, float(record.get("idle_s", 0.0)))

    # Host-side kernel profile (wall clock, aggregated over the recorder).
    kernel_calls = family(
        "repro_kernel_calls_total", "counter",
        "Host-side kernel invocation counts.",
    )
    kernel_seconds = family(
        "repro_kernel_host_seconds_total", "counter",
        "Host-side wall seconds spent in each kernel.",
    )
    for row in data.kernels:
        labels = {"kernel": row.get("kernel", "unknown")}
        kernel_calls.add(labels, float(row.get("calls", 0)))
        kernel_seconds.add(labels, float(row.get("host_s", 0.0)))

    if run_id is not None:
        for fam in families.values():
            fam.samples = [
                ({"run_id": run_id, **labels}, value)
                for labels, value in fam.samples
            ]

    lines: List[str] = []
    for fam in families.values():
        if fam.samples:
            lines.extend(fam.render())
    return "\n".join(lines) + ("\n" if lines else "")


def write_promtext(data: TraceData, path, *, run_id: Optional[str] = None) -> "Path":
    """Write :func:`to_promtext` output to ``path``; returns the path."""
    from pathlib import Path

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_promtext(data, run_id=run_id))
    return path
