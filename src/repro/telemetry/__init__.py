"""Structured tracing and per-GPU metrics for every trainer.

The observability layer the paper's claims call for: *where time goes* on
heterogeneous GPUs — per-device step spans, merge and all-reduce rounds,
update-count convergence — captured as one uniform event stream no matter
which of the six training algorithms produced it.

Quickstart::

    from repro import ExperimentSpec, run_experiment
    from repro.telemetry import Telemetry
    from repro.telemetry.export import write_chrome_trace, summary_table

    tel = Telemetry()
    run_experiment(ExperimentSpec(dataset="micro"), telemetry=tel)
    write_chrome_trace(tel, "trace.json")   # open in chrome://tracing
    print(summary_table(tel))

Or from the shell: ``python -m repro trace --dataset micro --out out/``.

Components:

- :mod:`repro.telemetry.core` — :class:`Telemetry` (the recorder) and
  :data:`NULL` (the zero-cost disabled sink);
- :mod:`repro.telemetry.events` — event records and the uniform schema;
- :mod:`repro.telemetry.export` — JSONL, Chrome ``trace_event``, and
  summary-table exporters;
- :mod:`repro.telemetry.trace_data` — the normalized :class:`TraceData`
  view any analysis consumes (live recorder, JSONL, or Chrome archive);
- :mod:`repro.telemetry.analyze` — time attribution and straggler /
  critical-path analysis (``repro analyze``);
- :mod:`repro.telemetry.diagnose` — rule-based convergence findings;
- :mod:`repro.telemetry.compare` — phase-by-phase run comparison
  (``repro compare``);
- :mod:`repro.telemetry.promtext` — Prometheus text exposition of final
  counters/gauges for external scraping.
"""

from repro.telemetry.analyze import (
    analyze_report,
    attribute_time,
    critical_path,
    utilization_lanes,
)
from repro.telemetry.compare import RunComparison, compare_runs
from repro.telemetry.core import NULL, NullTelemetry, Telemetry
from repro.telemetry.diagnose import Finding, diagnose
from repro.telemetry.events import InstantEvent, SpanEvent
from repro.telemetry.export import (
    summary_table,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.promtext import to_promtext, write_promtext
from repro.telemetry.trace_data import RunData, TraceData, load_trace_data

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL",
    "SpanEvent",
    "InstantEvent",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "summary_table",
    "TraceData",
    "RunData",
    "load_trace_data",
    "analyze_report",
    "attribute_time",
    "critical_path",
    "utilization_lanes",
    "diagnose",
    "Finding",
    "compare_runs",
    "RunComparison",
    "to_promtext",
    "write_promtext",
]
