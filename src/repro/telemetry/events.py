"""Telemetry event records and the uniform trainer schema.

Every trainer — Adaptive SGD and all baselines — emits the *same* event
vocabulary through :class:`~repro.telemetry.core.Telemetry`, so any run can
be compared against any other in the same tooling. The schema mirrors where
the paper says time goes on heterogeneous GPUs:

Spans (simulated-clock duration events):

- ``run`` — one full training run (the root span);
- ``transfer.model`` — host→device replica download at a mega-batch start;
- ``step.compute`` — one batch (or SLIDE chunk) of compute + local update
  on a device;
- ``merge`` — the whole merge/synchronization stage of one boundary;
- ``merge.allreduce`` — the collective inside the merge stage;
- ``slide.rebuild`` — SLIDE's periodic LSH re-hash;
- ``serve.request`` — one inference query, enqueue → response (queueing +
  compute; the latency the serving SLO is written against);
- ``serve.batch`` — one coalesced micro-batch executing on a device (the
  serving analogue of ``step.compute``; feeds the idle accountant);
- ``serve.swap`` — one hot-swap warming a newly published snapshot into a
  running engine (driver-level: loading + LSH re-index + ``W_out.T``
  re-cache happen off the dispatch path while devices keep serving).

Instant events:

- ``batch.dispatch`` — the scheduler handing a batch to a device;
- ``checkpoint`` — a §V-A accuracy probe (host-side; zero simulated time);
- ``swap.commit`` — a hot-swap went live (requests now admit against the
  new version);
- ``swap.rollback`` — a post-swap canary regressed; the engine restored
  the previous version and quarantined the new one;
- ``swap.failed`` — a published version failed validation (corrupt
  checksum, version skew) and was skipped; the prior version kept serving;
- ``admission.shed`` — admission control rejected or displaced one request
  (args carry ``tenant``, ``priority_class``, and the ``reason``:
  ``utilization``, ``capacity``, or ``displaced``);
- ``membership.event`` — one device-lifecycle transition applied by the
  elastic layer (args carry ``kind`` — join/leave/fail/throttle/recover —
  the target ``device``, the throttle ``factor`` when applicable, the
  ``source``: ``timeline`` or ``autoscaler``, and ``applied``/``note`` when
  the never-empty guard suppressed the transition).

Counters / gauges (per-device monitors stamped with the simulated clock):

- ``updates`` — cumulative replica updates per device;
- ``batch_size`` / ``lr`` — the Algorithm-1 controls per device;
- ``staleness`` — per-boundary update-count spread;
- ``accuracy`` / ``loss`` — the checkpoint curve;
- ``swaps`` / ``rollbacks`` / ``swap_failures`` — hot-swap outcomes;
- ``shed`` — requests rejected by admission control;
- ``active_devices`` — size of the elastic active set, sampled at every
  applied membership event and at each membership epoch.

Span/instant ``device`` is the GPU index (``None`` for driver-level events:
merges, checkpoints, the run span itself).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = [
    "SpanEvent",
    "InstantEvent",
    "SPAN_RUN",
    "SPAN_TRANSFER",
    "SPAN_STEP",
    "SPAN_MERGE",
    "SPAN_ALLREDUCE",
    "SPAN_LSH_REBUILD",
    "SPAN_SERVE_REQUEST",
    "SPAN_SERVE_BATCH",
    "SPAN_SERVE_SWAP",
    "EVENT_DISPATCH",
    "EVENT_CHECKPOINT",
    "EVENT_SWAP_COMMIT",
    "EVENT_SWAP_ROLLBACK",
    "EVENT_SWAP_FAILED",
    "EVENT_SHED",
    "EVENT_MEMBERSHIP",
    "COUNTER_UPDATES",
    "COUNTER_SWAPS",
    "COUNTER_ROLLBACKS",
    "COUNTER_SWAP_FAILURES",
    "COUNTER_SHED",
    "GAUGE_BATCH_SIZE",
    "GAUGE_LR",
    "GAUGE_STALENESS",
    "GAUGE_ACCURACY",
    "GAUGE_LOSS",
    "GAUGE_ACTIVE_DEVICES",
    "CORE_SPANS",
    "CORE_GAUGES",
]

# -- the uniform schema ------------------------------------------------------
SPAN_RUN = "run"
SPAN_TRANSFER = "transfer.model"
SPAN_STEP = "step.compute"
SPAN_MERGE = "merge"
SPAN_ALLREDUCE = "merge.allreduce"
SPAN_LSH_REBUILD = "slide.rebuild"
SPAN_SERVE_REQUEST = "serve.request"
SPAN_SERVE_BATCH = "serve.batch"
SPAN_SERVE_SWAP = "serve.swap"

EVENT_DISPATCH = "batch.dispatch"
EVENT_CHECKPOINT = "checkpoint"
EVENT_SWAP_COMMIT = "swap.commit"
EVENT_SWAP_ROLLBACK = "swap.rollback"
EVENT_SWAP_FAILED = "swap.failed"
EVENT_SHED = "admission.shed"
EVENT_MEMBERSHIP = "membership.event"

COUNTER_UPDATES = "updates"
COUNTER_SWAPS = "swaps"
COUNTER_ROLLBACKS = "rollbacks"
COUNTER_SWAP_FAILURES = "swap_failures"
COUNTER_SHED = "shed"
GAUGE_BATCH_SIZE = "batch_size"
GAUGE_LR = "lr"
GAUGE_STALENESS = "staleness"
GAUGE_ACCURACY = "accuracy"
GAUGE_LOSS = "loss"
GAUGE_ACTIVE_DEVICES = "active_devices"

#: Every trainer must emit at least these spans / gauges (parity-tested).
CORE_SPANS = (SPAN_RUN, SPAN_STEP)
CORE_GAUGES = (GAUGE_ACCURACY, GAUGE_BATCH_SIZE)


@dataclass
class SpanEvent:
    """One completed duration event on the simulated clock."""

    name: str
    #: Simulated start time (seconds).
    ts: float
    #: Simulated duration (seconds, >= 0).
    dur: float
    #: Run index within the owning :class:`Telemetry` (Chrome ``pid``).
    run: int
    #: Device index, or ``None`` for driver-level spans.
    device: Optional[int] = None
    args: Dict[str, object] = field(default_factory=dict)


@dataclass
class InstantEvent:
    """One zero-duration event on the simulated clock."""

    name: str
    ts: float
    run: int
    device: Optional[int] = None
    args: Dict[str, object] = field(default_factory=dict)
