"""A normalized, source-agnostic view of one telemetry stream.

The analytics engine (:mod:`repro.telemetry.analyze`,
:mod:`repro.telemetry.diagnose`, :mod:`repro.telemetry.compare`) never reads
a :class:`~repro.telemetry.core.Telemetry` recorder or an archive directly —
it consumes :class:`TraceData`, which can be built from any of the three
places a run lives:

- a live recorder (:meth:`TraceData.from_telemetry`);
- an archived JSONL event stream (:meth:`TraceData.from_jsonl`);
- an archived Chrome ``trace_event`` file (:meth:`TraceData.from_chrome`).

The live and JSONL constructors both funnel through the *same* JSONL record
stream (:func:`repro.telemetry.export.iter_jsonl_records`), so any analysis
over a ``TraceData`` is **byte-identical** whether it saw the recorder or
the archive of the same run — the property the acceptance tests pin down.
The Chrome path round-trips through microseconds and is therefore exact
only to float precision; prefer the JSONL archive for analysis.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.exceptions import DataFormatError
from repro.telemetry.events import SPAN_RUN, InstantEvent, SpanEvent

__all__ = ["RunData", "TraceData", "split_device_key", "load_trace_data"]

PathLike = Union[str, Path]

#: Sample series: ``[(time, value), ...]`` in recording order.
Series = List[Tuple[float, float]]


def split_device_key(key: str) -> Tuple[Optional[int], str]:
    """Invert the monitor naming scheme: ``"gpu3/updates" -> (3, "updates")``.

    Names without the ``gpu<i>/`` prefix are driver-level: ``(None, key)``.
    """
    if key.startswith("gpu"):
        head, sep, tail = key.partition("/")
        if sep and head[3:].isdigit():
            return int(head[3:]), tail
    return None, key


def _nan_to_float(value) -> float:
    # JSONL serializes non-finite samples as null; analysis sees them as NaN.
    return float("nan") if value is None else float(value)


@dataclass
class RunData:
    """One run's worth of normalized telemetry."""

    index: int
    meta: Dict[str, object] = field(default_factory=dict)
    spans: List[SpanEvent] = field(default_factory=list)
    instants: List[InstantEvent] = field(default_factory=list)
    #: Monitor name (device-prefixed) -> samples, in recording order.
    samples: Dict[str, Series] = field(default_factory=dict)
    #: Device id -> idle-accountant record (busy_s / idle_s / ...).
    idle: Dict[int, Dict[str, float]] = field(default_factory=dict)

    # -- accessors -----------------------------------------------------------
    def devices(self) -> List[int]:
        """Sorted device ids seen in spans or device-prefixed monitors."""
        seen = {s.device for s in self.spans if s.device is not None}
        seen.update(
            i.device for i in self.instants if i.device is not None
        )
        for key in self.samples:
            device, _ = split_device_key(key)
            if device is not None:
                seen.add(device)
        seen.update(self.idle)
        return sorted(seen)

    def spans_named(
        self, name: str, *, device: object = "any"
    ) -> List[SpanEvent]:
        """Spans called ``name``; ``device`` filters (``"any"`` = no filter)."""
        if device == "any":
            return [s for s in self.spans if s.name == name]
        return [s for s in self.spans if s.name == name and s.device == device]

    def run_span(self) -> Optional[SpanEvent]:
        """The root ``run`` span, or ``None`` for a zero-span run."""
        for s in self.spans:
            if s.name == SPAN_RUN:
                return s
        return None

    def start(self) -> float:
        """The run's start time (root span start, else earliest event, else 0)."""
        root = self.run_span()
        if root is not None:
            return root.ts
        starts = [s.ts for s in self.spans] + [i.ts for i in self.instants]
        starts += [t for series in self.samples.values() for t, _ in series[:1]]
        return min(starts) if starts else 0.0

    def duration(self) -> float:
        """Simulated seconds the run covers (root span, else the event hull)."""
        root = self.run_span()
        if root is not None:
            return root.dur
        start = self.start()
        ends = [s.ts + s.dur for s in self.spans]
        ends += [i.ts for i in self.instants]
        ends += [t for series in self.samples.values() for t, _ in series[-1:]]
        return max(ends) - start if ends else 0.0

    def series(self, name: str, *, device: Optional[int] = None) -> Series:
        """Samples of monitor ``name`` on ``device`` (driver when ``None``)."""
        key = name if device is None else f"gpu{device}/{name}"
        return self.samples.get(key, [])

    def final(self, name: str, *, device: Optional[int] = None) -> Optional[float]:
        """The last recorded value of a monitor, or ``None`` if absent."""
        series = self.series(name, device=device)
        return series[-1][1] if series else None

    def label(self) -> str:
        """Human-readable run identity (algorithm + device count)."""
        algorithm = str(self.meta.get("algorithm", f"run {self.index}"))
        n = self.meta.get("n_devices")
        return f"{algorithm} ({n} dev)" if n is not None else algorithm


@dataclass
class TraceData:
    """A whole recorded experiment: runs + aggregate kernel profile."""

    label: str = "trace"
    runs: List[RunData] = field(default_factory=list)
    kernels: List[Dict[str, object]] = field(default_factory=list)

    def run(self, index: int) -> RunData:
        """The run at ``index`` (negative indices count from the end)."""
        try:
            return self.runs[index]
        except IndexError:
            raise DataFormatError(
                f"trace {self.label!r} has {len(self.runs)} run(s); "
                f"no run {index}"
            ) from None

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_records(
        cls, records: Iterable[Dict[str, object]], *, label: str = "trace"
    ) -> "TraceData":
        """Build from JSONL-shaped record dicts (``type`` discriminates)."""
        data = cls(label=label)

        def run_at(index: int) -> RunData:
            while len(data.runs) <= index:
                data.runs.append(RunData(index=len(data.runs)))
            return data.runs[index]

        for record in records:
            kind = record.get("type")
            if kind == "trace":
                data.label = str(record.get("label", data.label))
            elif kind == "run":
                meta = {
                    k: v for k, v in record.items()
                    if k not in ("type", "run")
                }
                run_at(int(record["run"])).meta.update(meta)
            elif kind == "span":
                run_idx = int(record["run"])
                device = record.get("device")
                run_at(run_idx).spans.append(SpanEvent(
                    name=str(record["name"]),
                    ts=_nan_to_float(record.get("ts")),
                    dur=_nan_to_float(record.get("dur")),
                    run=run_idx,
                    device=None if device is None else int(device),
                    args=dict(record.get("args") or {}),
                ))
            elif kind == "instant":
                run_idx = int(record["run"])
                device = record.get("device")
                run_at(run_idx).instants.append(InstantEvent(
                    name=str(record["name"]),
                    ts=_nan_to_float(record.get("ts")),
                    run=run_idx,
                    device=None if device is None else int(device),
                    args=dict(record.get("args") or {}),
                ))
            elif kind == "counter":
                run = run_at(int(record["run"]))
                run.samples.setdefault(str(record["name"]), []).append(
                    (_nan_to_float(record.get("ts")),
                     _nan_to_float(record.get("value")))
                )
            elif kind == "idle":
                run = run_at(int(record["run"]))
                run.idle[int(record["device"])] = {
                    k: v for k, v in record.items()
                    if k not in ("type", "run", "device")
                }
            elif kind == "kernel":
                data.kernels.append(
                    {k: v for k, v in record.items() if k != "type"}
                )
            # Unknown record types are skipped: newer archives stay loadable.
        return data

    @classmethod
    def from_telemetry(cls, tel) -> "TraceData":
        """Normalize a live :class:`~repro.telemetry.core.Telemetry`.

        Routed through the JSONL record stream so analysis of the live
        recorder matches analysis of its archive byte for byte.
        """
        from repro.telemetry.export import iter_jsonl_records

        return cls.from_records(iter_jsonl_records(tel), label=tel.label)

    @classmethod
    def from_jsonl(cls, path: PathLike) -> "TraceData":
        """Load an archive written by :func:`repro.telemetry.export.write_jsonl`.

        An empty file is a valid zero-run trace (a run that recorded no
        steps must still load).
        """
        path = Path(path)
        records = []
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise DataFormatError(
                    f"{path}:{lineno}: invalid JSONL record: {exc}"
                ) from exc
        return cls.from_records(records, label=path.stem)

    @classmethod
    def from_chrome(cls, source: Union[PathLike, dict]) -> "TraceData":
        """Load a Chrome ``trace_event`` export (path or parsed object).

        Timestamps round-trip through microseconds, so durations are exact
        only to float precision — fine for attribution and diagnosis, but
        byte-identical comparisons should use the JSONL archive.
        """
        if isinstance(source, dict):
            obj = source
            label = str(obj.get("otherData", {}).get("label", "trace"))
        else:
            path = Path(source)
            try:
                obj = json.loads(path.read_text())
            except json.JSONDecodeError as exc:
                raise DataFormatError(
                    f"{path}: invalid Chrome trace JSON: {exc}"
                ) from exc
            label = str(obj.get("otherData", {}).get("label", path.stem))
        if not isinstance(obj, dict) or "traceEvents" not in obj:
            raise DataFormatError(
                "not a Chrome trace: missing the 'traceEvents' key"
            )
        other = obj.get("otherData", {})
        data = cls(label=label)
        data.kernels = [dict(row) for row in other.get("kernels", [])]

        def run_at(index: int) -> RunData:
            while len(data.runs) <= index:
                data.runs.append(RunData(index=len(data.runs)))
            return data.runs[index]

        for run_idx, meta in enumerate(other.get("runs", [])):
            run_at(run_idx).meta.update(dict(meta))

        for event in obj["traceEvents"]:
            ph = event.get("ph")
            run_idx = int(event.get("pid", 0))
            tid = int(event.get("tid", 0))
            device = None if tid == 0 else tid - 1
            if ph == "X":
                run_at(run_idx).spans.append(SpanEvent(
                    name=str(event["name"]),
                    ts=_nan_to_float(event.get("ts")) / 1e6,
                    dur=_nan_to_float(event.get("dur")) / 1e6,
                    run=run_idx,
                    device=device,
                    args=dict(event.get("args") or {}),
                ))
            elif ph == "i":
                run_at(run_idx).instants.append(InstantEvent(
                    name=str(event["name"]),
                    ts=_nan_to_float(event.get("ts")) / 1e6,
                    run=run_idx,
                    device=device,
                    args=dict(event.get("args") or {}),
                ))
            elif ph == "C":
                run = run_at(run_idx)
                value = (event.get("args") or {}).get("value")
                run.samples.setdefault(str(event["name"]), []).append(
                    (_nan_to_float(event.get("ts")) / 1e6,
                     _nan_to_float(value))
                )
            # "M" metadata carries display names only; identity lives in
            # otherData.runs which we already consumed.
        return data


def load_trace_data(source) -> TraceData:
    """Coerce anything the CLI or API accepts into a :class:`TraceData`.

    ``source`` may be a :class:`TraceData` (returned as-is), a live
    :class:`~repro.telemetry.core.Telemetry` recorder, a ``.jsonl`` archive,
    a Chrome ``.trace.json`` export, or a result-set directory containing a
    ``telemetry.jsonl``.
    """
    if isinstance(source, TraceData):
        return source
    # A live recorder (duck-typed to avoid importing core eagerly).
    if hasattr(source, "spans") and hasattr(source, "monitor_sets"):
        return TraceData.from_telemetry(source)
    path = Path(source)
    if path.is_dir():
        jsonl = path / "telemetry.jsonl"
        if not jsonl.exists():
            raise DataFormatError(
                f"{path} is a directory without a telemetry.jsonl "
                "(not a saved result set?)"
            )
        return TraceData.from_jsonl(jsonl)
    if not path.exists():
        raise DataFormatError(f"no trace at {path}")
    if path.suffix == ".jsonl":
        return TraceData.from_jsonl(path)
    text = path.read_text()
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            obj = json.loads(text)
        except json.JSONDecodeError:
            obj = None
        if isinstance(obj, dict) and "traceEvents" in obj:
            data = TraceData.from_chrome(obj)
            if data.label == "trace":
                data.label = path.stem
            return data
    # Fall back to JSONL (covers .jsonl archives with unusual suffixes).
    return TraceData.from_jsonl(path)
