"""The simulated multi-GPU server.

Bundles the virtual devices with the interconnect description and provides
the named constructors experiments use (``make_server``). The default server
mirrors the paper's testbed: 4 × V100-16GB on one PCIe host with observable
heterogeneity (Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.comm.topology import InterconnectTopology
from repro.exceptions import ConfigurationError
from repro.gpu.cost import CpuCostModel, CpuCostParams, GpuCostModel, GpuCostParams
from repro.gpu.device import VirtualCPU, VirtualGPU
from repro.gpu.profiles import (
    SpeedProfile,
    make_heterogeneous_profiles,
    make_uniform_profiles,
)

__all__ = ["MultiGPUServer", "make_server"]

HETEROGENEITY_MODES = ("het", "uniform")


@dataclass
class MultiGPUServer:
    """A single-server multi-GPU machine: devices + interconnect + host CPU."""

    gpus: List[VirtualGPU]
    topology: InterconnectTopology
    cpu: VirtualCPU = field(default_factory=VirtualCPU)

    def __post_init__(self) -> None:
        if not self.gpus:
            raise ConfigurationError("a server needs at least one GPU")
        ids = [g.device_id for g in self.gpus]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"duplicate GPU device ids: {ids}")

    @property
    def n_gpus(self) -> int:
        """Number of GPUs installed."""
        return len(self.gpus)

    @property
    def device_ids(self) -> List[int]:
        """Installed device ids, in slot order."""
        return [g.device_id for g in self.gpus]

    def device(self, device_id: int) -> VirtualGPU:
        """Look up an installed GPU by id (active or not)."""
        for g in self.gpus:
            if g.device_id == device_id:
                return g
        raise ConfigurationError(
            f"no GPU with device_id {device_id}; installed: {self.device_ids}"
        )

    def add_gpu(self, gpu: VirtualGPU) -> None:
        """Install a device at runtime (elastic ``join`` provisioning).

        The interconnect is re-derived as a single-server PCIe tree over
        the grown device set — the same constructor :func:`make_server`
        uses — so collective timings stay consistent after a join.
        """
        if any(g.device_id == gpu.device_id for g in self.gpus):
            raise ConfigurationError(
                f"device_id {gpu.device_id} already installed"
            )
        self.gpus.append(gpu)
        self.topology = InterconnectTopology.single_server_pcie(len(self.gpus))

    def speeds_at(self, t: float) -> List[float]:
        """Every GPU's speed multiplier at time ``t`` (diagnostics)."""
        return [g.speed_at(t) for g in self.gpus]


def make_server(
    n_gpus: int = 4,
    *,
    heterogeneity: str = "het",
    max_gap: float = 0.32,
    fused_kernels: bool = True,
    cost_params: Optional[GpuCostParams] = None,
    cpu_params: Optional[CpuCostParams] = None,
    seed: int = 0,
) -> MultiGPUServer:
    """Construct the paper-testbed-like server.

    Parameters
    ----------
    n_gpus:
        GPUs installed (the paper evaluates 1, 2, and 4).
    heterogeneity:
        ``"het"`` — base-speed skew up to ``max_gap`` plus oscillation and
        jitter (Figure 1 behaviour); ``"uniform"`` — idealized identical
        devices (ablation control).
    fused_kernels:
        Whether the HeteroGPU kernel-fusion optimization (§IV) is enabled in
        the cost model.
    """
    if heterogeneity not in HETEROGENEITY_MODES:
        raise ConfigurationError(
            f"heterogeneity must be one of {HETEROGENEITY_MODES}, got {heterogeneity!r}"
        )
    if heterogeneity == "het":
        profiles = make_heterogeneous_profiles(n_gpus, max_gap=max_gap, seed=seed)
    else:
        profiles = make_uniform_profiles(n_gpus, seed=seed)
    params = cost_params or GpuCostParams()
    gpus = [
        VirtualGPU(
            device_id=i,
            profile=profiles[i],
            cost_model=GpuCostModel(params, fused=fused_kernels),
        )
        for i in range(n_gpus)
    ]
    cpu = (
        VirtualCPU(cost_model=CpuCostModel(cpu_params))
        if cpu_params is not None
        else VirtualCPU()
    )
    return MultiGPUServer(
        gpus=gpus,
        topology=InterconnectTopology.single_server_pcie(n_gpus),
        cpu=cpu,
    )
