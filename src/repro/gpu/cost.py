"""Analytical execution-cost model for virtual devices.

The paper's scheduling decisions depend only on *when each GPU finishes its
batch*, so the simulator prices one SGD step from first principles:

- **sparse flops** (input-layer kernels) at a sparse-kernel throughput —
  their count is proportional to the batch's non-zero features, reproducing
  the data-dependent variance of §I;
- **dense flops** (hidden/output GEMMs) at a dense throughput;
- **update flops** (parameter traversal) at a memory-bound throughput;
- **kernel-launch overhead** per step: ``n_kernels × launch_us``, inflated
  by the CUDA-environment *interference* factor that grows with the number
  of GPUs launching concurrently (§IV) — kernel fusion divides the kernel
  count;
- **host↔device transfer** of the batch's bytes over PCIe.

Throughputs default to V100-like magnitudes. Absolute values only set the
time unit; the *ratios* (dense vs sparse vs launch overhead) are what shape
the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.exceptions import ConfigurationError
from repro.sparse.ops import estimate_inference_flops, estimate_step_flops
from repro.utils.validation import check_positive

__all__ = ["StepWorkload", "GpuCostParams", "GpuCostModel", "CpuCostParams", "CpuCostModel"]


@dataclass(frozen=True)
class StepWorkload:
    """Size descriptors of one SGD step handed to a cost model."""

    batch_size: int
    batch_nnz: int
    layer_dims: Tuple[int, ...]
    #: For sampled-softmax (SLIDE) steps: labels actually touched, else -1.
    active_labels: int = -1

    @property
    def batch_bytes(self) -> int:
        """Approximate bytes moved to the device for this batch (CSR + labels)."""
        # values (4B) + column indices (4B) per nnz, plus indptr.
        return 8 * self.batch_nnz + 4 * (self.batch_size + 1)


@dataclass(frozen=True)
class GpuCostParams:
    """Tunable constants of the GPU cost model (V100-flavored defaults)."""

    #: Effective dense GEMM throughput (flop/s).
    dense_flops_per_s: float = 6.0e12
    #: Effective sparse (cuSPARSE-like) throughput — well below dense.
    sparse_flops_per_s: float = 4.0e11
    #: Memory-bound parameter-update throughput (flop/s).
    update_flops_per_s: float = 3.0e11
    #: Per-kernel launch latency (seconds).
    kernel_launch_s: float = 8.0e-6
    #: Kernels per SGD step without fusion.
    kernels_per_step_unfused: int = 24
    #: Kernels per SGD step with HeteroGPU's kernel fusion (§IV).
    kernels_per_step_fused: int = 6
    #: Extra launch overhead per additional concurrently-active GPU.
    interference_per_gpu: float = 0.35
    #: Host→device PCIe bandwidth (bytes/s) for batch upload.
    h2d_bytes_per_s: float = 12.0e9
    #: Fixed per-step framework overhead (seconds).
    step_overhead_s: float = 3.0e-5

    def __post_init__(self) -> None:
        for name in (
            "dense_flops_per_s", "sparse_flops_per_s", "update_flops_per_s",
            "kernel_launch_s", "h2d_bytes_per_s",
        ):
            check_positive(name, getattr(self, name))
        if self.kernels_per_step_fused > self.kernels_per_step_unfused:
            raise ConfigurationError(
                "fused kernel count cannot exceed the unfused count"
            )
        if self.interference_per_gpu < 0:
            raise ConfigurationError("interference_per_gpu must be >= 0")

    @classmethod
    def tiny_model_profile(cls) -> "GpuCostParams":
        """Cost constants rescaled for the scaled-down benchmark models.

        The experiment models in this reproduction are orders of magnitude
        smaller than Amazon-670k's ~100M parameters, so at V100 throughputs
        a step would be dominated by the constant launch/step overheads —
        drowning the heterogeneity signal the paper studies. This profile
        shrinks the virtual GPU proportionally (lower throughputs, lower
        overheads) so the compute : overhead ratio of a step matches the
        paper-scale regime, where the 32% device gap is fully visible in
        step times. Absolute times only set the unit of the x-axes.
        """
        return cls(
            dense_flops_per_s=1.5e11,
            sparse_flops_per_s=1.0e10,
            update_flops_per_s=1.0e10,
            kernel_launch_s=2.0e-6,
            h2d_bytes_per_s=6.0e9,
            step_overhead_s=5.0e-6,
        )


class GpuCostModel:
    """Prices SGD steps and model transfers for a virtual GPU."""

    def __init__(self, params: GpuCostParams = GpuCostParams(), *, fused: bool = True):
        self.params = params
        self.fused = bool(fused)

    def launch_overhead(self, n_active_gpus: int) -> float:
        """Per-step kernel-launch cost, inflated by CUDA-scheduler interference."""
        if n_active_gpus < 1:
            raise ConfigurationError(f"n_active_gpus must be >= 1, got {n_active_gpus}")
        kernels = (
            self.params.kernels_per_step_fused
            if self.fused
            else self.params.kernels_per_step_unfused
        )
        interference = 1.0 + self.params.interference_per_gpu * (n_active_gpus - 1)
        return kernels * self.params.kernel_launch_s * interference

    def step_time(
        self,
        work: StepWorkload,
        *,
        speed: float = 1.0,
        n_active_gpus: int = 1,
        include_h2d: bool = True,
    ) -> float:
        """Seconds one SGD step takes at the given relative ``speed``.

        ``speed`` is the device's current performance multiplier (1.0 =
        nominal); compute scales inversely with it. Launch overhead does not
        (it is a host/driver cost), matching the paper's observation that
        interference affects all GPUs.
        """
        if not (speed > 0):
            raise ConfigurationError(f"speed must be > 0, got {speed}")
        flops = estimate_step_flops(
            work.batch_size, work.batch_nnz, work.layer_dims,
            active_labels=work.active_labels,
        )
        compute = (
            flops["sparse"] / self.params.sparse_flops_per_s
            + flops["dense"] / self.params.dense_flops_per_s
            + flops["update"] / self.params.update_flops_per_s
        ) / speed
        transfer = (
            work.batch_bytes / self.params.h2d_bytes_per_s if include_h2d else 0.0
        )
        return (
            compute
            + transfer
            + self.launch_overhead(n_active_gpus)
            + self.params.step_overhead_s
        )

    def inference_time(
        self,
        work: StepWorkload,
        *,
        speed: float = 1.0,
        n_active_gpus: int = 1,
        include_h2d: bool = True,
    ) -> float:
        """Seconds one forward-only (serving) pass takes at ``speed``.

        Same pricing structure as :meth:`step_time` but over
        :func:`estimate_inference_flops` and roughly a third of the kernel
        launches (no backward or optimizer kernels run). The fixed launch +
        step overhead is what adaptive micro-batching amortizes: per-request
        cost falls as the dispatcher coalesces more queries per pass.
        """
        if not (speed > 0):
            raise ConfigurationError(f"speed must be > 0, got {speed}")
        flops = estimate_inference_flops(
            work.batch_size, work.batch_nnz, work.layer_dims,
            active_labels=work.active_labels,
        )
        compute = (
            flops["sparse"] / self.params.sparse_flops_per_s
            + flops["dense"] / self.params.dense_flops_per_s
        ) / speed
        transfer = (
            work.batch_bytes / self.params.h2d_bytes_per_s if include_h2d else 0.0
        )
        # Forward-only launches ~ a third of a full training step's kernels.
        launch = self.launch_overhead(n_active_gpus) / 3.0
        return compute + transfer + launch + self.params.step_overhead_s

    def lsh_inference_time(
        self,
        work: StepWorkload,
        candidate_fraction: float,
        *,
        n_tables: int = 16,
        n_bits: int = 12,
        n_probes: int = 1,
        speed: float = 1.0,
        n_active_gpus: int = 1,
        include_h2d: bool = True,
    ) -> float:
        """Seconds one LSH-accelerated (serving) pass takes at ``speed``.

        The approximate scorer runs the same trunk as :meth:`inference_time`
        up to the last hidden layer, then replaces the dense ``(b, L)``
        output GEMM with: a signature hash (``n_tables × n_bits`` dense
        projections), a candidate gather-dot over ``candidate_fraction · L``
        labels per query priced at *sparse* throughput (it is irregular
        gather work, not a GEMM), and a candidate-sized top-k priced at the
        memory-bound update throughput. Half the launch overhead of a full
        step — the pipeline is fused into probe/gather/score/topk kernels,
        more launches than the plain forward's single output GEMM.

        This is the crossover oracle: ``auto`` serving compares it against
        :meth:`inference_time` per batch using the predictor's *observed*
        candidate fraction, so the decision tracks retrieval selectivity —
        LSH wins when ``candidate_fraction`` is far below the sparse:dense
        throughput ratio, exact wins on small label spaces where candidate
        sets cover most of the output layer anyway.
        """
        if not (speed > 0):
            raise ConfigurationError(f"speed must be > 0, got {speed}")
        if not (0.0 <= candidate_fraction <= 1.0):
            raise ConfigurationError(
                f"candidate_fraction must be in [0, 1], got {candidate_fraction}"
            )
        if n_tables < 1 or n_bits < 1 or n_probes < 1:
            raise ConfigurationError(
                "n_tables, n_bits and n_probes must all be >= 1"
            )
        b = work.batch_size
        L = work.layer_dims[-1]
        h = work.layer_dims[-2]
        active = max(1.0, candidate_fraction * L)
        full = estimate_inference_flops(
            work.batch_size, work.batch_nnz, work.layer_dims
        )
        # Trunk = every dense GEMM except the (b, h, L) output product.
        trunk_dense = full["dense"] - 2.0 * b * h * L
        hash_flops = 2.0 * b * n_tables * n_bits * h
        candidate_flops = 2.0 * b * h * active
        topk_flops = 2.0 * b * active
        compute = (
            full["sparse"] / self.params.sparse_flops_per_s
            + (trunk_dense + hash_flops) / self.params.dense_flops_per_s
            + candidate_flops / self.params.sparse_flops_per_s
            + topk_flops / self.params.update_flops_per_s
        ) / speed
        transfer = (
            work.batch_bytes / self.params.h2d_bytes_per_s if include_h2d else 0.0
        )
        launch = self.launch_overhead(n_active_gpus) / 2.0
        return compute + transfer + launch + self.params.step_overhead_s

    def lsh_rebuild_time(
        self,
        n_labels: int,
        dim: int,
        *,
        n_tables: int = 16,
        n_bits: int = 12,
        speed: float = 1.0,
        n_active_gpus: int = 1,
    ) -> float:
        """Seconds to warm a swapped-in model's serving index at ``speed``.

        Prices what :meth:`~repro.serve.predictor.Predictor.rebuild_lsh`
        does when a hot-swap stages a new snapshot: hash all ``L`` output
        columns through the ``n_tables × n_bits`` signature projections
        (one dense GEMM), scatter the codes into the tables plus rebuild
        the flat sorted-key view (memory-bound, priced at update
        throughput), and re-cache the contiguous ``W_out.T`` gather stream
        (a transpose copy, also memory-bound). Half a step's launch
        overhead: the rebuild is a handful of fused kernels, and it runs
        *off* the dispatch path — this cost is the swap's warming time, not
        any request's service time.
        """
        if n_labels < 1 or dim < 1:
            raise ConfigurationError(
                f"n_labels and dim must be >= 1, got {n_labels}, {dim}"
            )
        if n_tables < 1 or n_bits < 1:
            raise ConfigurationError("n_tables and n_bits must be >= 1")
        if not (speed > 0):
            raise ConfigurationError(f"speed must be > 0, got {speed}")
        hash_flops = 2.0 * n_labels * n_tables * n_bits * dim
        scatter_flops = 2.0 * n_labels * n_tables
        recache_flops = 2.0 * n_labels * dim
        compute = (
            hash_flops / self.params.dense_flops_per_s
            + (scatter_flops + recache_flops) / self.params.update_flops_per_s
        ) / speed
        launch = self.launch_overhead(n_active_gpus) / 2.0
        return compute + launch + self.params.step_overhead_s

    def model_transfer_time(self, nbytes: int) -> float:
        """Host↔device time to move a model replica of ``nbytes``."""
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
        return nbytes / self.params.h2d_bytes_per_s


@dataclass(frozen=True)
class CpuCostParams:
    """Cost constants for the CPU device running SLIDE-style training.

    Per-sample cost follows SLIDE's design: hashing + a forward/backward
    restricted to the *active* output neurons, executed across many threads
    with near-linear scaling (SLIDE's updates are Hogwild-sparse and rarely
    collide).
    """

    #: Per-core effective throughput (flop/s) — ~2 orders below a GPU.
    flops_per_s_per_core: float = 2.0e9
    #: Hash-table probe + bucket gather cost per sample (seconds).
    lsh_lookup_s: float = 2.0e-6
    #: Thread-scaling efficiency in (0, 1]; 1.0 = perfectly linear.
    thread_efficiency: float = 0.85

    def __post_init__(self) -> None:
        check_positive("flops_per_s_per_core", self.flops_per_s_per_core)
        check_positive("lsh_lookup_s", self.lsh_lookup_s)
        if not (0.0 < self.thread_efficiency <= 1.0):
            raise ConfigurationError(
                f"thread_efficiency must be in (0, 1], got {self.thread_efficiency}"
            )

    @classmethod
    def tiny_model_profile(cls) -> "CpuCostParams":
        """CPU constants matched to :meth:`GpuCostParams.tiny_model_profile`.

        The scaled-down GPU profile shrinks device throughput; the host CPU
        must shrink proportionally or the simulated CPU:GPU speed ratio
        collapses to ~1 and SLIDE's defining trade-off (many more updates at
        much lower hardware efficiency) disappears. The defaults keep the
        full 32-thread CPU roughly 25x slower than one virtual GPU on dense
        work — the same order as a real Cascade Lake host vs one V100.
        """
        return cls(flops_per_s_per_core=2.5e8, lsh_lookup_s=5.0e-7)


class CpuCostModel:
    """Prices SLIDE-style per-sample updates on a multicore CPU."""

    def __init__(self, params: CpuCostParams = CpuCostParams()) -> None:
        self.params = params

    def samples_time(
        self, per_sample_flops: float, n_samples: int, n_threads: int
    ) -> float:
        """Seconds for ``n_samples`` per-sample updates across ``n_threads``."""
        if n_threads < 1:
            raise ConfigurationError(f"n_threads must be >= 1, got {n_threads}")
        per_sample = (
            per_sample_flops / self.params.flops_per_s_per_core
            + self.params.lsh_lookup_s
        )
        effective_threads = 1.0 + self.params.thread_efficiency * (n_threads - 1)
        return per_sample * n_samples / effective_threads
