"""Per-device speed profiles: the first heterogeneity source.

§I: "The clock rate and memory latency display oscillations on GPUs with the
same model from the same vendor... the gap between the fastest and slowest
GPU is as large as 32%" (Figure 1). A :class:`SpeedProfile` models a
device's relative performance as a function of simulated time:

``speed(t) = base × (1 + osc_amp · sin(2π t / osc_period + phase)) × jitter(t)``

where ``jitter`` is a slowly-varying bounded random walk resampled every
``jitter_interval`` seconds. All draws come from a dedicated stream, so a
device's timing trace is deterministic in the experiment seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import RngFactory
from repro.utils.validation import check_in_range, check_positive

__all__ = [
    "SpeedProfile",
    "ThrottledProfile",
    "CHURN_PRESETS",
    "churn_preset_names",
    "make_heterogeneous_profiles",
    "make_uniform_profiles",
]

#: Named churn presets for the elastic membership layer, consumed by
#: :func:`repro.elastic.timeline.make_churn_timeline` and selectable by name
#: from ``repro train/serve --churn`` and the ``elastic`` bench section.
#:
#: Event rates (per run of duration ``T``, on an ``n``-device cluster):
#:
#: ======================  =====  =====  ======  =========  ================
#: preset                  fails  joins  leaves  throttles  throttle factor
#: ======================  =====  =====  ======  =========  ================
#: ``stable``              0      0      0       0          —
#: ``flaky-one``           0      0      0       1 (+rec)   0.4
#: ``spot-churn``          1 [*]  1 [*]  0       1 (+rec)   0.5
#: ``brownout``            0      0      0       n (+rec)   0.7
#: ======================  =====  =====  ======  =========  ================
#:
#: [*] ``spot-churn`` scales with cluster size: one extra fail/join pair per
#: two devices beyond the first two (preemptible-capacity semantics).
#: Fails land in ``(0.2, 0.38) T``, joins in ``(0.42, 0.6) T``, leaves in
#: ``(0.62, 0.78) T``, throttles in ``(0.5, 0.62) T`` with recovery
#: ``0.22 T`` later — all strictly mid-run, jittered by the churn seed.
CHURN_PRESETS = {
    "stable": {},
    "flaky-one": {"throttles": 1, "throttle_factor": 0.4, "recover": True},
    "spot-churn": {
        "fails": 1,
        "joins": 1,
        "throttles": 1,
        "throttle_factor": 0.5,
        "recover": True,
        "scale_with_devices": True,
    },
    "brownout": {"throttles": "all", "throttle_factor": 0.7, "recover": True},
}


def churn_preset_names() -> List[str]:
    """Sorted preset names, for CLI help and error messages."""
    return sorted(CHURN_PRESETS)


@dataclass
class SpeedProfile:
    """Deterministic time-varying speed multiplier for one device."""

    base: float = 1.0
    osc_amplitude: float = 0.03
    osc_period_s: float = 7.0
    phase: float = 0.0
    jitter_amplitude: float = 0.02
    jitter_interval_s: float = 2.0
    seed: int = 0
    _jitter_cache: List[float] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        check_positive("base", self.base)
        check_in_range("osc_amplitude", self.osc_amplitude, 0.0, 0.5)
        check_positive("osc_period_s", self.osc_period_s)
        check_in_range("jitter_amplitude", self.jitter_amplitude, 0.0, 0.5)
        check_positive("jitter_interval_s", self.jitter_interval_s)
        self._rng = RngFactory(self.seed).get("speed-jitter")

    def _jitter(self, t: float) -> float:
        """Piecewise-constant bounded random walk, extended lazily."""
        if self.jitter_amplitude == 0.0:
            return 1.0
        index = int(t // self.jitter_interval_s)
        while len(self._jitter_cache) <= index:
            previous = self._jitter_cache[-1] if self._jitter_cache else 0.0
            step = float(self._rng.normal(0.0, self.jitter_amplitude / 2.0))
            walk = float(
                np.clip(previous + step, -self.jitter_amplitude, self.jitter_amplitude)
            )
            self._jitter_cache.append(walk)
        return 1.0 + self._jitter_cache[index]

    def speed(self, t: float) -> float:
        """Relative speed multiplier at simulated time ``t`` (always > 0)."""
        if t < 0:
            raise ConfigurationError(f"time must be >= 0, got {t}")
        osc = 1.0 + self.osc_amplitude * math.sin(
            2.0 * math.pi * t / self.osc_period_s + self.phase
        )
        return self.base * osc * self._jitter(t)


@dataclass
class ThrottledProfile:
    """Fault injection: step changes layered over a base speed profile.

    Models events the paper's heterogeneity sources imply but its testbed
    did not isolate — thermal throttling, a co-tenant grabbing the device,
    recovery after cooling. ``events`` is a list of ``(time, factor)``
    pairs: from ``time`` onward the base profile's speed is multiplied by
    ``factor`` until the next event. Used by the resilience tests/examples
    to show Adaptive SGD re-balancing around a mid-run slowdown (and
    Elastic SGD not).
    """

    base_profile: SpeedProfile
    events: List[tuple] = field(default_factory=list)

    def __post_init__(self) -> None:
        last_t = -1.0
        for t, factor in self.events:
            if t < 0 or t <= last_t:
                raise ConfigurationError(
                    f"throttle events must have strictly increasing, "
                    f"non-negative times: {self.events}"
                )
            if not (factor > 0):
                raise ConfigurationError(
                    f"throttle factor must be > 0, got {factor}"
                )
            last_t = t

    @property
    def base(self) -> float:
        """Nominal base multiplier (delegates to the wrapped profile)."""
        return self.base_profile.base

    def speed(self, t: float) -> float:
        """Base profile speed times the most recent event's factor."""
        factor = 1.0
        for event_time, event_factor in self.events:
            if t >= event_time:
                factor = event_factor
            else:
                break
        return self.base_profile.speed(t) * factor


def make_heterogeneous_profiles(
    n: int,
    *,
    max_gap: float = 0.32,
    osc_amplitude: float = 0.03,
    jitter_amplitude: float = 0.02,
    seed: int = 0,
) -> List[SpeedProfile]:
    """Profiles for ``n`` same-model GPUs with a fastest↔slowest base gap.

    Base speeds are spread so the slowest device is ``(1 - max_gap)`` of the
    fastest (matching Figure 1's 32% observation at the default), with the
    intermediate devices evenly placed and a small random shuffle of the
    assignment so device id does not encode rank.
    """
    if n < 1:
        raise ConfigurationError(f"need >= 1 device, got {n}")
    check_in_range("max_gap", max_gap, 0.0, 0.9)
    rng = RngFactory(seed).get("profile-assignment")
    if n == 1:
        bases = np.array([1.0])
    else:
        bases = np.linspace(1.0, 1.0 - max_gap, n)
    order = rng.permutation(n)
    profiles = []
    for device_id in range(n):
        profiles.append(
            SpeedProfile(
                base=float(bases[order[device_id]]),
                osc_amplitude=osc_amplitude,
                osc_period_s=5.0 + 2.0 * float(rng.random()),
                phase=float(rng.random() * 2.0 * math.pi),
                jitter_amplitude=jitter_amplitude,
                seed=int(rng.integers(2**31)),
            )
        )
    return profiles


def make_uniform_profiles(n: int, *, seed: int = 0) -> List[SpeedProfile]:
    """Idealized homogeneous devices (no skew, no oscillation, no jitter).

    Useful as the control in ablations: with these profiles Adaptive SGD and
    Elastic SGD should behave near-identically.
    """
    if n < 1:
        raise ConfigurationError(f"need >= 1 device, got {n}")
    return [
        SpeedProfile(
            base=1.0, osc_amplitude=0.0, jitter_amplitude=0.0, seed=seed + i
        )
        for i in range(n)
    ]
