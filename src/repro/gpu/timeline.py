"""Execution timeline export and utilization reporting.

When trainers record busy intervals (they pass ``start=`` to
:meth:`VirtualGPU.record_busy`), the run can be inspected like a real
profiler session:

- :func:`chrome_trace` writes the Chrome/Perfetto trace-event JSON
  (open in ``chrome://tracing`` or https://ui.perfetto.dev) with one track
  per GPU — mega-batch phases, stragglers, and merge barriers become
  visually obvious;
- :func:`utilization_report` summarizes busy fractions per device;
- :func:`ascii_timeline` renders the same tracks as terminal bars.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.exceptions import ConfigurationError
from repro.gpu.cluster import MultiGPUServer

__all__ = ["chrome_trace", "utilization_report", "ascii_timeline"]

PathLike = Union[str, Path]


def chrome_trace(
    server: MultiGPUServer, path: PathLike, *, time_scale_us: float = 1e6
) -> Path:
    """Write the server's recorded busy intervals as Chrome trace events.

    ``time_scale_us`` converts simulated seconds to trace microseconds
    (default: 1 sim second = 1e6 µs, i.e. real scale).
    """
    events: List[dict] = []
    for gpu in server.gpus:
        events.append({
            "name": "thread_name", "ph": "M", "pid": 0,
            "tid": gpu.device_id,
            "args": {"name": f"{gpu.name} (base speed {gpu.profile.base:.2f})"},
        })
        for start, duration, tag in gpu.busy_intervals:
            events.append({
                "name": tag,
                "ph": "X",
                "pid": 0,
                "tid": gpu.device_id,
                "ts": start * time_scale_us,
                "dur": duration * time_scale_us,
            })
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({"traceEvents": events}, indent=1))
    return path


def utilization_report(
    server: MultiGPUServer, elapsed: float
) -> List[Dict[str, float]]:
    """Per-GPU busy seconds / steps / utilization over ``elapsed`` seconds."""
    if elapsed <= 0:
        raise ConfigurationError(f"elapsed must be > 0, got {elapsed}")
    return [
        {
            "gpu": gpu.device_id,
            "steps": gpu.steps_executed,
            "busy_s": gpu.busy_seconds,
            "utilization": gpu.utilization(elapsed),
        }
        for gpu in server.gpus
    ]


def ascii_timeline(
    server: MultiGPUServer,
    *,
    until: Optional[float] = None,
    width: int = 72,
) -> str:
    """Terminal bars of each GPU's busy intervals (``#`` busy, ``.`` idle).

    Requires recorded intervals; devices without any render as all-idle.
    """
    if width < 8:
        raise ConfigurationError(f"width must be >= 8, got {width}")
    horizon = until
    if horizon is None:
        ends = [
            start + duration
            for gpu in server.gpus
            for start, duration, _ in gpu.busy_intervals
        ]
        horizon = max(ends, default=1.0)
    if horizon <= 0:
        raise ConfigurationError(f"empty timeline horizon: {horizon}")
    lines = []
    for gpu in server.gpus:
        row = ["."] * width
        for start, duration, _ in gpu.busy_intervals:
            lo = int(start / horizon * width)
            hi = int(min(start + duration, horizon) / horizon * width)
            for c in range(lo, max(hi, lo + 1)):
                if 0 <= c < width:
                    row[c] = "#"
        lines.append(f"{gpu.name:>6} |{''.join(row)}|")
    lines.append(f"{'':>6}  0{'sim time'.center(width - 2)}{horizon:.3g}")
    return "\n".join(lines)
