"""Virtual devices: the simulated GPUs and the SLIDE CPU.

A :class:`VirtualGPU` knows how long a given SGD step takes *right now*
(cost model × its time-varying speed profile) and tracks busy time and
memory so utilization and batch-fit constraints can be asserted on. It does
not execute anything — GPU-manager processes (in the trainers) advance the
simulation clock by the durations computed here, while the actual numerics
run on the host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.exceptions import ConfigurationError, SimulationError
from repro.gpu.cost import (
    CpuCostModel,
    CpuCostParams,
    GpuCostModel,
    GpuCostParams,
    StepWorkload,
)
from repro.gpu.profiles import SpeedProfile

__all__ = ["VirtualGPU", "VirtualCPU"]

GiB = 1024**3


@dataclass
class VirtualGPU:
    """A single simulated GPU.

    Defaults mimic the paper's testbed device (NVIDIA V100, 16 GB).
    """

    device_id: int
    profile: SpeedProfile
    cost_model: GpuCostModel = field(default_factory=GpuCostModel)
    memory_bytes: int = 16 * GiB
    name: str = ""

    def __post_init__(self) -> None:
        if self.device_id < 0:
            raise ConfigurationError(f"device_id must be >= 0, got {self.device_id}")
        if self.memory_bytes <= 0:
            raise ConfigurationError("memory_bytes must be positive")
        if not self.name:
            self.name = f"gpu{self.device_id}"
        self._busy_s = 0.0
        self._steps = 0
        self._intervals: list = []
        self._speed_scale = 1.0

    # -- execution-time queries -----------------------------------------------
    def speed_at(self, t: float) -> float:
        """The device's relative speed multiplier at simulated time ``t``.

        The profile's deterministic trace times the dynamic membership
        throttle scale (1.0 unless a ``throttle`` lifecycle event is in
        effect).
        """
        return self.profile.speed(t) * self._speed_scale

    @property
    def speed_scale(self) -> float:
        """Current dynamic throttle multiplier (1.0 = unthrottled)."""
        return self._speed_scale

    def set_speed_scale(self, factor: float) -> None:
        """Apply a lifecycle ``throttle``/``recover`` speed multiplier.

        Unlike :class:`~repro.gpu.profiles.ThrottledProfile` (a static,
        pre-authored schedule), this is the mutable hook the elastic
        membership layer drives from live timeline events.
        """
        if not (isinstance(factor, (int, float)) and factor > 0):
            raise ConfigurationError(
                f"speed scale must be > 0, got {factor!r}"
            )
        self._speed_scale = float(factor)

    def step_time(
        self, work: StepWorkload, t: float, *, n_active_gpus: int = 1
    ) -> float:
        """Seconds the device needs for ``work`` started at time ``t``."""
        return self.cost_model.step_time(
            work, speed=self.speed_at(t), n_active_gpus=n_active_gpus
        )

    def model_transfer_time(self, nbytes: int) -> float:
        """Host↔device model-replica transfer time."""
        return self.cost_model.model_transfer_time(nbytes)

    # -- memory accounting --------------------------------------------------
    def batch_fits(self, work: StepWorkload, model_bytes: int) -> bool:
        """Whether a step's working set fits device memory.

        Working set ≈ model replica + gradient + batch CSR + dense
        activations ``batch_size × (hidden… + labels)`` float32.
        """
        act_units = sum(work.layer_dims[1:])
        activations = 4 * work.batch_size * act_units
        required = 2 * model_bytes + work.batch_bytes + activations
        return required <= self.memory_bytes

    def max_batch_size(
        self, layer_dims: Tuple[int, ...], model_bytes: int, avg_nnz_per_sample: float
    ) -> int:
        """Largest batch size whose working set fits in memory.

        Used to pick the paper's ``b_max``: "The initial batch size — set to
        b_max — is chosen such that the GPU memory (and utilization) are
        maximized" (§V-A).
        """
        available = self.memory_bytes - 2 * model_bytes
        if available <= 0:
            raise ConfigurationError(
                f"{self.name}: model of {model_bytes} bytes does not fit in "
                f"{self.memory_bytes} bytes of device memory"
            )
        per_sample = 4.0 * sum(layer_dims[1:]) + 8.0 * avg_nnz_per_sample + 4.0
        return max(1, int(available / per_sample))

    # -- utilization bookkeeping -------------------------------------------
    def record_busy(
        self,
        seconds: float,
        *,
        start: Optional[float] = None,
        tag: str = "step",
    ) -> None:
        """Accumulate busy time (called by trainers as steps complete).

        When ``start`` (simulated seconds) is supplied, the interval is also
        kept for timeline export (:mod:`repro.gpu.timeline`); totals-only
        accounting stays allocation-free otherwise.
        """
        if seconds < 0:
            raise SimulationError(f"negative busy time: {seconds}")
        self._busy_s += float(seconds)
        self._steps += 1
        if start is not None:
            if start < 0:
                raise SimulationError(f"negative interval start: {start}")
            self._intervals.append((float(start), float(seconds), tag))

    @property
    def busy_intervals(self) -> Tuple[Tuple[float, float, str], ...]:
        """Recorded ``(start, duration, tag)`` intervals (may be empty)."""
        return tuple(self._intervals)

    @property
    def busy_seconds(self) -> float:
        """Total simulated seconds spent computing."""
        return self._busy_s

    @property
    def steps_executed(self) -> int:
        """Number of SGD steps the device has run."""
        return self._steps

    def utilization(self, elapsed: float) -> float:
        """Busy fraction of ``elapsed`` simulated seconds."""
        return self._busy_s / elapsed if elapsed > 0 else 0.0


@dataclass
class VirtualCPU:
    """The multicore CPU that runs the SLIDE baseline.

    Defaults mimic the paper's host (16-core / 32-thread Cascade Lake).
    """

    n_threads: int = 32
    cost_model: CpuCostModel = field(default_factory=CpuCostModel)
    name: str = "cpu"

    def __post_init__(self) -> None:
        if self.n_threads < 1:
            raise ConfigurationError(f"n_threads must be >= 1, got {self.n_threads}")
        self._busy_s = 0.0

    def samples_time(self, per_sample_flops: float, n_samples: int) -> float:
        """Seconds to run ``n_samples`` per-sample updates across all threads."""
        return self.cost_model.samples_time(
            per_sample_flops, n_samples, self.n_threads
        )

    def record_busy(self, seconds: float) -> None:
        """Accumulate busy time."""
        if seconds < 0:
            raise SimulationError(f"negative busy time: {seconds}")
        self._busy_s += float(seconds)

    @property
    def busy_seconds(self) -> float:
        """Total simulated seconds spent computing."""
        return self._busy_s
