"""Virtual heterogeneous GPU substrate (the paper's testbed, simulated).

- :mod:`repro.gpu.cost` — analytical step/transfer cost models (GPU + CPU).
- :mod:`repro.gpu.profiles` — time-varying per-device speed profiles.
- :mod:`repro.gpu.device` — :class:`VirtualGPU` / :class:`VirtualCPU`.
- :mod:`repro.gpu.cluster` — :func:`make_server` (4×V100-like by default).
"""

from repro.gpu.cluster import MultiGPUServer, make_server
from repro.gpu.cost import (
    CpuCostModel,
    CpuCostParams,
    GpuCostModel,
    GpuCostParams,
    StepWorkload,
)
from repro.gpu.device import VirtualCPU, VirtualGPU
from repro.gpu.profiles import (
    SpeedProfile,
    ThrottledProfile,
    make_heterogeneous_profiles,
    make_uniform_profiles,
)
from repro.gpu.timeline import ascii_timeline, chrome_trace, utilization_report

__all__ = [
    "MultiGPUServer",
    "make_server",
    "CpuCostModel",
    "CpuCostParams",
    "GpuCostModel",
    "GpuCostParams",
    "StepWorkload",
    "VirtualCPU",
    "VirtualGPU",
    "SpeedProfile",
    "ThrottledProfile",
    "make_heterogeneous_profiles",
    "make_uniform_profiles",
    "ascii_timeline",
    "chrome_trace",
    "utilization_report",
]
