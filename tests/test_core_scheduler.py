"""Tests for repro.core.scheduler — dynamic dispatch and boundary protocol."""

import pytest

from repro.core.config import AdaptiveSGDConfig
from repro.core.scheduler import DynamicScheduler
from repro.exceptions import ScheduleError


def make_scheduler(micro_task, n_gpus=2, **cfg_kwargs):
    defaults = dict(b_max=64, base_lr=0.2, mega_batch_batches=4)
    defaults.update(cfg_kwargs)
    cfg = AdaptiveSGDConfig(**defaults)
    return DynamicScheduler(micro_task.train, cfg, n_gpus, seed=0), cfg


class TestDispatch:
    def test_batch_sized_to_gpu(self, micro_task):
        sched, cfg = make_scheduler(micro_task)
        batch = sched.try_dispatch(0)
        assert batch.size == cfg.b_max

    def test_budget_exhaustion_returns_none(self, micro_task):
        sched, cfg = make_scheduler(micro_task)
        served = 0
        while True:
            batch = sched.try_dispatch(served % 2)
            if batch is None:
                break
            sched.record_completion(served % 2)
            served += batch.size
        assert served == cfg.mega_batch_size
        assert sched.try_dispatch(0) is None

    def test_last_batch_clamped(self, micro_task):
        # Mega-batch of 4*64=256 samples; sizes 100 leave a 56-sample tail.
        sched, _ = make_scheduler(micro_task)
        sched.batch_sizes = [100, 100]
        sizes = []
        while True:
            batch = sched.try_dispatch(0)
            if batch is None:
                break
            sched.record_completion(0)
            sizes.append(batch.size)
        assert sizes == [100, 100, 56]

    def test_updates_counted_on_completion(self, micro_task):
        sched, _ = make_scheduler(micro_task)
        sched.try_dispatch(0)
        sched.try_dispatch(1)
        assert sched.updates == [0, 0]
        sched.record_completion(0)
        assert sched.updates == [1, 0]

    def test_completion_without_dispatch_rejected(self, micro_task):
        sched, _ = make_scheduler(micro_task)
        with pytest.raises(ScheduleError):
            sched.record_completion(0)

    def test_bad_gpu_id_rejected(self, micro_task):
        sched, _ = make_scheduler(micro_task)
        with pytest.raises(ScheduleError):
            sched.try_dispatch(5)
        with pytest.raises(ScheduleError):
            sched.record_completion(-1)


class TestBoundary:
    def drain(self, sched, pattern):
        """Dispatch the full mega-batch alternating GPUs per ``pattern``."""
        i = 0
        while True:
            gpu = pattern[i % len(pattern)]
            batch = sched.try_dispatch(gpu)
            if batch is None:
                return
            sched.record_completion(gpu)
            i += 1

    def test_boundary_resets_and_reports(self, micro_task):
        sched, cfg = make_scheduler(micro_task)
        self.drain(sched, [0, 0, 0, 1])  # skewed work: GPU0 got 3, GPU1 got 1
        report = sched.mega_batch_boundary()
        assert report.updates == (3, 1)
        assert sched.updates == [0, 0]
        assert sched.accountant.remaining == cfg.mega_batch_size

    def test_algorithm1_runs_at_boundary(self, micro_task):
        sched, cfg = make_scheduler(micro_task, mega_batch_batches=8)
        self.drain(sched, [0, 0, 0, 1])
        report = sched.mega_batch_boundary()
        assert report.scaling_ran
        # GPU0 (more updates) must not shrink; GPU1 must not grow.
        assert report.batch_sizes_after[0] >= report.batch_sizes_before[0]
        assert report.batch_sizes_after[1] <= report.batch_sizes_before[1]

    def test_boundary_before_exhaustion_rejected(self, micro_task):
        sched, _ = make_scheduler(micro_task)
        sched.try_dispatch(0)
        sched.record_completion(0)
        with pytest.raises(ScheduleError, match="budget"):
            sched.mega_batch_boundary()

    def test_boundary_with_open_dispatch_rejected(self, micro_task):
        sched, _ = make_scheduler(micro_task)
        while True:
            batch = sched.try_dispatch(0)
            if batch is None:
                break
            # Leave the final dispatch unacknowledged.
            if sched.accountant.exhausted:
                break
            sched.record_completion(0)
        with pytest.raises(ScheduleError, match="unfinished"):
            sched.mega_batch_boundary()

    def test_scaling_disabled_by_config(self, micro_task):
        sched, _ = make_scheduler(micro_task, enable_batch_scaling=False)
        self.drain(sched, [0, 0, 0, 1])
        report = sched.mega_batch_boundary()
        assert not report.scaling_ran
        assert report.batch_sizes_after == report.batch_sizes_before

    def test_boundaries_accumulate(self, micro_task):
        sched, _ = make_scheduler(micro_task)
        for _ in range(3):
            self.drain(sched, [0, 1])
            sched.mega_batch_boundary()
        assert len(sched.boundaries) == 3
        assert sched.boundaries[1].mega_batch_index == 1

    def test_epoch_accounting(self, micro_task):
        sched, cfg = make_scheduler(micro_task)
        self.drain(sched, [0, 1])
        sched.mega_batch_boundary()
        expected = cfg.mega_batch_size / micro_task.train.n_samples
        assert sched.epochs_completed == pytest.approx(expected)
        assert sched.samples_dispatched == cfg.mega_batch_size
