"""Tests for repro.gpu.device and repro.gpu.cluster."""

import pytest

from repro.exceptions import ConfigurationError, SimulationError
from repro.gpu.cluster import MultiGPUServer, make_server
from repro.gpu.cost import GpuCostModel, GpuCostParams, StepWorkload
from repro.gpu.device import GiB, VirtualCPU, VirtualGPU
from repro.gpu.profiles import SpeedProfile

WORK = StepWorkload(batch_size=64, batch_nnz=2000, layer_dims=(500, 64, 300))


def make_gpu(base=1.0, **kwargs):
    return VirtualGPU(
        device_id=0, profile=SpeedProfile(base=base, seed=0), **kwargs
    )


class TestVirtualGPU:
    def test_step_time_uses_profile(self):
        fast = make_gpu(base=1.0)
        slow = make_gpu(base=0.5)
        assert slow.step_time(WORK, 0.0) > fast.step_time(WORK, 0.0)

    def test_busy_accounting(self):
        gpu = make_gpu()
        gpu.record_busy(0.5)
        gpu.record_busy(0.25)
        assert gpu.busy_seconds == pytest.approx(0.75)
        assert gpu.steps_executed == 2
        assert gpu.utilization(1.5) == pytest.approx(0.5)

    def test_negative_busy_rejected(self):
        with pytest.raises(SimulationError):
            make_gpu().record_busy(-0.1)

    def test_batch_fits_respects_memory(self):
        gpu = make_gpu(memory_bytes=1024 * 1024)  # 1 MiB device
        model_bytes = 100_000
        small = StepWorkload(4, 100, (500, 64, 300))
        huge = StepWorkload(100_000, 10_000_000, (500, 64, 300))
        assert gpu.batch_fits(small, model_bytes)
        assert not gpu.batch_fits(huge, model_bytes)

    def test_max_batch_size_consistent_with_fits(self):
        gpu = make_gpu(memory_bytes=8 * 1024 * 1024)
        dims = (500, 64, 300)
        model_bytes = 4 * (500 * 64 + 64 + 64 * 300 + 300)
        bmax = gpu.max_batch_size(dims, model_bytes, avg_nnz_per_sample=30.0)
        assert bmax >= 1
        work = StepWorkload(bmax, int(bmax * 30), dims)
        assert gpu.batch_fits(work, model_bytes)

    def test_model_too_big_rejected(self):
        gpu = make_gpu(memory_bytes=1000)
        with pytest.raises(ConfigurationError):
            gpu.max_batch_size((10, 5, 2), model_bytes=10_000,
                               avg_nnz_per_sample=5.0)

    def test_default_name_and_memory(self):
        gpu = make_gpu()
        assert gpu.name == "gpu0"
        assert gpu.memory_bytes == 16 * GiB  # V100 spec


class TestVirtualCPU:
    def test_samples_time_positive(self):
        cpu = VirtualCPU(n_threads=32)
        assert cpu.samples_time(1e6, 100) > 0

    def test_more_threads_faster(self):
        fast = VirtualCPU(n_threads=32)
        slow = VirtualCPU(n_threads=4)
        assert fast.samples_time(1e6, 100) < slow.samples_time(1e6, 100)

    def test_busy_tracking(self):
        cpu = VirtualCPU()
        cpu.record_busy(1.0)
        assert cpu.busy_seconds == 1.0

    def test_invalid_threads_rejected(self):
        with pytest.raises(ConfigurationError):
            VirtualCPU(n_threads=0)


class TestMakeServer:
    def test_default_matches_paper_testbed(self):
        server = make_server()
        assert server.n_gpus == 4
        assert all(g.memory_bytes == 16 * GiB for g in server.gpus)
        assert server.topology.n_devices == 4
        assert server.cpu.n_threads == 32  # the host CPU (32 threads)

    def test_heterogeneous_speeds_spread(self):
        server = make_server(4, seed=1)
        speeds = server.speeds_at(0.0)
        assert max(speeds) / min(speeds) > 1.2

    def test_uniform_mode(self):
        server = make_server(4, heterogeneity="uniform")
        speeds = server.speeds_at(3.0)
        assert max(speeds) == min(speeds) == 1.0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            make_server(4, heterogeneity="banana")

    def test_custom_cost_params_propagate(self):
        params = GpuCostParams.tiny_model_profile()
        server = make_server(2, cost_params=params)
        assert server.gpus[0].cost_model.params is params

    def test_fusion_flag_propagates(self):
        fused = make_server(2, fused_kernels=True)
        unfused = make_server(2, fused_kernels=False)
        assert fused.gpus[0].cost_model.fused
        assert not unfused.gpus[0].cost_model.fused

    def test_duplicate_ids_rejected(self):
        gpu = make_gpu()
        from repro.comm.topology import InterconnectTopology

        with pytest.raises(ConfigurationError):
            MultiGPUServer(
                gpus=[gpu, gpu],
                topology=InterconnectTopology.single_server_pcie(2),
            )

    def test_empty_server_rejected(self):
        from repro.comm.topology import InterconnectTopology

        with pytest.raises(ConfigurationError):
            MultiGPUServer(
                gpus=[], topology=InterconnectTopology.single_server_pcie(1)
            )
