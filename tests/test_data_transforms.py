"""Tests for repro.data.transforms."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.data.dataset import SparseDataset
from repro.data.transforms import (
    filter_rare_labels,
    hash_features,
    tfidf_transform,
    train_test_split,
)
from repro.exceptions import ConfigurationError, DataFormatError


def make_split(n=40, d=100, l=10, seed=0, density=0.1):
    rng = np.random.default_rng(seed)
    X = sp.random(n, d, density=density, random_state=rng, format="csr",
                  dtype=np.float32)
    X.data = np.abs(X.data) + 0.1
    cols = rng.integers(0, l, size=n)
    Y = sp.csr_matrix(
        (np.ones(n, dtype=np.float32), (np.arange(n), cols)), shape=(n, l)
    )
    return SparseDataset(X=X, Y=Y, name="t")


class TestHashFeatures:
    def test_output_dimensionality(self):
        ds = make_split()
        hashed = hash_features(ds, 16, seed=1)
        assert hashed.n_features == 16
        assert hashed.n_samples == ds.n_samples
        assert (hashed.Y != ds.Y).nnz == 0

    def test_deterministic(self):
        ds = make_split()
        a = hash_features(ds, 16, seed=1)
        b = hash_features(ds, 16, seed=1)
        assert (a.X != b.X).nnz == 0

    def test_seed_changes_mapping(self):
        ds = make_split()
        a = hash_features(ds, 16, seed=1)
        b = hash_features(ds, 16, seed=2)
        assert (a.X != b.X).nnz > 0

    def test_unsigned_preserves_row_mass(self):
        ds = make_split()
        hashed = hash_features(ds, 8, seed=0, signed=False)
        original = np.asarray(ds.X.sum(axis=1)).ravel()
        mass = np.asarray(hashed.X.sum(axis=1)).ravel()
        assert np.allclose(mass, original, rtol=1e-5)

    def test_signed_roughly_preserves_inner_products(self):
        """The hashing-trick guarantee, checked statistically."""
        ds = make_split(n=60, d=400, density=0.15, seed=3)
        hashed = hash_features(ds, 256, seed=0, signed=True)
        G0 = (ds.X @ ds.X.T).toarray()
        G1 = (hashed.X @ hashed.X.T).toarray()
        # Relative error of the Gram matrices stays moderate.
        err = np.abs(G1 - G0).mean() / (np.abs(G0).mean() + 1e-9)
        assert err < 0.5

    def test_large_ids_supported(self):
        # Simulate XMLRepository-scale feature ids.
        X = sp.csr_matrix(
            (np.ones(2, dtype=np.float32), ([0, 1], [135_000, 782_000])),
            shape=(2, 800_000),
        )
        Y = sp.csr_matrix(np.eye(2, 3, dtype=np.float32))
        ds = SparseDataset(X=X, Y=Y)
        hashed = hash_features(ds, 1024)
        assert hashed.n_features == 1024
        assert hashed.X.nnz == 2

    def test_invalid_buckets_rejected(self):
        with pytest.raises(ConfigurationError):
            hash_features(make_split(), 0)


class TestFilterRareLabels:
    def test_rare_labels_removed(self):
        train = make_split(n=40, l=10, seed=0)
        test = make_split(n=10, l=10, seed=1)
        ftrain, ftest = filter_rare_labels(train, test, min_count=3)
        counts = np.asarray(ftrain.Y.sum(axis=0)).ravel()
        assert counts.min() >= 3
        assert ftrain.n_labels == ftest.n_labels

    def test_label_less_samples_dropped(self):
        train = make_split(n=40, l=10, seed=0)
        test = make_split(n=10, l=10, seed=1)
        ftrain, ftest = filter_rare_labels(train, test, min_count=3)
        assert ftrain.labels_per_sample().min() >= 1
        assert ftest.labels_per_sample().min() >= 1

    def test_nothing_left_rejected(self):
        train = make_split(n=5, l=10, seed=0)
        test = make_split(n=5, l=10, seed=1)
        with pytest.raises(DataFormatError):
            filter_rare_labels(train, test, min_count=100)

    def test_invalid_min_count_rejected(self):
        with pytest.raises(ConfigurationError):
            filter_rare_labels(make_split(), make_split(), min_count=0)


class TestTfidf:
    def test_rows_l2_normalized(self):
        train, test = tfidf_transform(make_split(seed=0), make_split(seed=1))
        for split in (train, test):
            norms = np.sqrt(
                np.asarray(split.X.multiply(split.X).sum(axis=1))
            ).ravel()
            nz = norms[norms > 0]
            assert np.allclose(nz, 1.0, atol=1e-5)

    def test_idf_fit_on_train_only(self):
        """Changing the test split must not change the train transform."""
        base = make_split(seed=0)
        t1, _ = tfidf_transform(base, make_split(seed=1))
        t2, _ = tfidf_transform(base, make_split(seed=2))
        assert (t1.X != t2.X).nnz == 0

    def test_rare_features_upweighted(self):
        # A feature appearing in one document gets a higher idf than one
        # appearing everywhere.
        X = sp.csr_matrix(np.array(
            [[1.0, 1.0], [1.0, 0.0], [1.0, 0.0]], dtype=np.float32
        ))
        Y = sp.csr_matrix(np.ones((3, 1), dtype=np.float32))
        ds = SparseDataset(X=X, Y=Y)
        train, _ = tfidf_transform(ds, ds)
        # In row 0 both features have tf=1; the rarer feature 1 must
        # dominate after idf weighting.
        row = train.X[0].toarray().ravel()
        assert row[1] > row[0]


class TestTrainTestSplit:
    def test_partition(self):
        ds = make_split(n=50)
        task = train_test_split(ds, test_fraction=0.2, seed=0)
        assert task.train.n_samples == 40
        assert task.test.n_samples == 10

    def test_disjoint_and_complete(self):
        ds = make_split(n=50)
        task = train_test_split(ds, test_fraction=0.3, seed=4)
        total = task.train.n_samples + task.test.n_samples
        assert total == 50
        # Feature rows must come from the original (spot check by matching
        # row sums as a multiset).
        orig = sorted(np.asarray(ds.X.sum(axis=1)).ravel().round(5))
        got = sorted(
            np.concatenate([
                np.asarray(task.train.X.sum(axis=1)).ravel(),
                np.asarray(task.test.X.sum(axis=1)).ravel(),
            ]).round(5)
        )
        assert orig == got

    def test_deterministic(self):
        ds = make_split(n=50)
        a = train_test_split(ds, seed=7)
        b = train_test_split(ds, seed=7)
        assert (a.test.X != b.test.X).nnz == 0

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            train_test_split(make_split(), test_fraction=0.0)
        with pytest.raises(ConfigurationError):
            train_test_split(make_split(), test_fraction=1.0)
