"""Tests for repro.core.stability and repro.core.staleness."""

import pytest

from repro.core.stability import ScalingGovernor, StabilityDetector
from repro.core.staleness import StalenessTracker, staleness_bound
from repro.exceptions import ConfigurationError


class TestStabilityDetector:
    def make(self, **kwargs):
        defaults = dict(n_gpus=2, b_max=128, window=3, tolerance=0.05)
        defaults.update(kwargs)
        return StabilityDetector(**defaults)

    def test_insufficient_history_is_neither(self):
        det = self.make()
        det.observe([128, 128])
        state = det.classify()
        assert not state.stable and not state.oscillatory

    def test_constant_sizes_stable(self):
        det = self.make()
        for _ in range(3):
            det.observe([100, 80])
        state = det.classify()
        assert state.stable and state.settled

    def test_small_wiggle_within_tolerance_stable(self):
        det = self.make()
        for sizes in ([100, 80], [102, 78], [99, 81]):
            det.observe(sizes)
        assert det.classify().stable

    def test_trend_not_stable(self):
        det = self.make()
        for sizes in ([128, 128], [100, 128], [70, 128]):
            det.observe(sizes)
        state = det.classify()
        assert not state.stable

    def test_thrash_detected_as_oscillation(self):
        det = self.make(window=5, tolerance=0.01)
        for sizes in ([60, 80], [100, 80], [60, 80], [100, 80], [60, 80]):
            det.observe(sizes)
        state = det.classify()
        assert state.oscillatory and state.settled

    def test_wrong_width_rejected(self):
        det = self.make()
        with pytest.raises(ConfigurationError):
            det.observe([1, 2, 3])

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            StabilityDetector(0, 128)
        with pytest.raises(ConfigurationError):
            StabilityDetector(2, 128, window=1)
        with pytest.raises(ConfigurationError):
            StabilityDetector(2, 128, tolerance=1.5)


class TestScalingGovernor:
    def test_scales_every_boundary_while_unsettled(self):
        gov = ScalingGovernor(StabilityDetector(1, 128, window=3))
        decisions = [gov.should_scale([size]) for size in (128, 90, 60, 120)]
        assert all(decisions)

    def test_backs_off_when_stable(self):
        gov = ScalingGovernor(StabilityDetector(1, 128, window=2), max_interval=4)
        decisions = [gov.should_scale([100]) for _ in range(12)]
        # Once stable, the interval doubles: scaling becomes sparser.
        assert sum(decisions[4:]) < 8
        assert gov.interval > 1

    def test_resets_on_drift(self):
        gov = ScalingGovernor(StabilityDetector(1, 128, window=2), max_interval=8)
        for _ in range(6):
            gov.should_scale([100])
        assert gov.interval > 1
        gov.should_scale([40])  # big move: drift
        assert gov.interval == 1

    def test_invalid_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            ScalingGovernor(StabilityDetector(1, 128), max_interval=0)


class TestStalenessBound:
    def test_single_gpu_zero(self):
        assert staleness_bound(1000, 16, 128, 1) == 0.0

    def test_bound_formula(self):
        assert staleness_bound(1000, 16, 128, 4) == pytest.approx(
            -(-1000 // 16)
        )

    def test_bound_monotone_in_mega_batch(self):
        small = staleness_bound(500, 16, 128, 4)
        large = staleness_bound(5000, 16, 128, 4)
        assert large > small

    def test_larger_b_min_tightens_bound(self):
        loose = staleness_bound(1000, 8, 128, 4)
        tight = staleness_bound(1000, 64, 128, 4)
        assert tight < loose

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            staleness_bound(0, 16, 128, 4)
        with pytest.raises(ConfigurationError):
            staleness_bound(100, 0, 128, 4)
        with pytest.raises(ConfigurationError):
            staleness_bound(100, 129, 128, 4)
        with pytest.raises(ConfigurationError):
            staleness_bound(100, 16, 128, 0)


class TestStalenessTracker:
    def test_observe_and_spread(self):
        tracker = StalenessTracker()
        rec = tracker.observe(0, [5, 3, 4])
        assert rec.spread == 2
        assert rec.max_updates == 5 and rec.min_updates == 3

    def test_max_and_mean(self):
        tracker = StalenessTracker()
        tracker.observe(0, [5, 3])
        tracker.observe(1, [4, 4])
        assert tracker.max_spread() == 2
        assert tracker.mean_spread() == pytest.approx(1.0)

    def test_empty_tracker(self):
        tracker = StalenessTracker()
        assert tracker.max_spread() == 0
        assert tracker.mean_spread() == 0.0

    def test_empty_observation_rejected(self):
        with pytest.raises(ConfigurationError):
            StalenessTracker().observe(0, [])
