"""Property-based tests (hypothesis) for the elastic membership subsystem.

Invariants under test, over arbitrary churn schedules (derandomized: the
same example budget with the same seed on every machine, so CI and local
runs agree):

- **Ordered delivery** — a :class:`TimelineCursor` yields events in
  timestamp order, exactly once, regardless of the polling cadence.
- **Exactly-once accounting** — driving :class:`ClusterMembership` and
  an :class:`UpdateLedger` through an arbitrary schedule, every offered
  update resolves merged-or-discarded exactly once and the ledger drains.
- **Never-empty active set** — the ``min_active`` guard holds for any
  schedule: the active set never empties while work is in flight, and
  the suppression count explains every undelivered departure.

``tests/test_elastic_membership.py`` holds the scenario-level unit
tests; this file pins the state machine's algebra.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.elastic import (
    ClusterMembership,
    MembershipEvent,
    MembershipTimeline,
    UpdateLedger,
)
from repro.gpu.cluster import make_server
from repro.gpu.cost import GpuCostParams

N_DEVICES = 3

# One raw event: (t, kind_idx, device_id, factor). Device ids range past
# the installed count so joins provision and fails/leaves can miss.
KINDS = ("join", "leave", "fail", "throttle", "recover")
raw_events = st.tuples(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False,
              allow_infinity=False),
    st.integers(min_value=0, max_value=len(KINDS) - 1),
    st.integers(min_value=0, max_value=N_DEVICES + 2),
    st.floats(min_value=0.05, max_value=1.0, allow_nan=False,
              allow_infinity=False),
)
schedules = st.lists(raw_events, max_size=24)
# Strictly positive gaps between polls, so poll times advance.
poll_gaps = st.lists(
    st.floats(min_value=0.01, max_value=4.0, allow_nan=False,
              allow_infinity=False),
    min_size=1, max_size=16,
)


def build_timeline(raw):
    events = []
    for t, kind_idx, device_id, factor in raw:
        kind = KINDS[kind_idx]
        events.append(MembershipEvent(
            t, kind, device_id,
            factor=factor if kind == "throttle" else None,
        ))
    return MembershipTimeline(events)


def fresh_membership(raw, **kwargs):
    server = make_server(
        N_DEVICES, cost_params=GpuCostParams.tiny_model_profile(), seed=0
    )
    return ClusterMembership(server, build_timeline(raw), **kwargs)


class TestOrderedDelivery:
    @given(schedules, poll_gaps)
    @settings(max_examples=200, deadline=None, derandomize=True)
    def test_cursor_delivers_in_timestamp_order_exactly_once(
        self, raw, gaps
    ):
        timeline = build_timeline(raw)
        cursor = timeline.cursor()
        seen = []
        t = 0.0
        for gap in gaps:
            t += gap
            seen.extend(cursor.due(t))
        seen.extend(cursor.due(1e9))
        # exactly once: everything delivered, nothing left or duplicated
        assert cursor.remaining == 0
        assert len(seen) == len(timeline)
        # timestamp order, ties in schedule order (stable)
        assert [e.t for e in seen] == sorted(e.t for e in timeline.events)
        assert seen == list(timeline.events)

    @given(schedules)
    @settings(max_examples=200, deadline=None, derandomize=True)
    def test_peek_t_is_the_next_delivery(self, raw):
        cursor = build_timeline(raw).cursor()
        while True:
            t_next = cursor.peek_t()
            if t_next is None:
                assert cursor.remaining == 0
                break
            assert cursor.due(t_next - 1e-9) == ()
            delivered = cursor.due(t_next)
            assert delivered and delivered[0].t == t_next


class TestExactlyOnceAccounting:
    @given(schedules, poll_gaps)
    @settings(max_examples=100, deadline=None, derandomize=True)
    def test_every_offer_resolves_exactly_once(self, raw, gaps):
        """Simulate the trainer driver's offer/resolve loop over arbitrary
        churn: each poll window, every active device offers one update;
        devices that failed before the merge get discarded, the rest merge."""
        membership = fresh_membership(raw)
        ledger = UpdateLedger()
        n_offered = 0
        t = 0.0
        for gap in gaps:
            t += gap
            offers = {
                device_id: ledger.offer(device_id, 1)
                for device_id in membership.active_ids
            }
            n_offered += len(offers)
            membership.poll(t)
            failed, _, _ = membership.take_sync()
            for device_id, token in offers.items():
                ledger.resolve(token, merged=device_id not in failed)
        membership.poll(1e9)
        ledger.assert_drained()  # raises if any offer is unresolved
        assert ledger.n_merged + ledger.n_discarded == n_offered
        assert ledger.updates_merged + ledger.updates_discarded == n_offered


class TestNeverEmptyActiveSet:
    @given(schedules, poll_gaps)
    @settings(max_examples=100, deadline=None, derandomize=True)
    def test_active_set_never_empties(self, raw, gaps):
        membership = fresh_membership(raw)
        t = 0.0
        for gap in gaps:
            t += gap
            membership.poll(t)
            assert membership.n_active >= 1
        membership.poll(1e9)
        assert membership.n_active >= 1

    @given(schedules)
    @settings(max_examples=100, deadline=None, derandomize=True)
    def test_event_conservation(self, raw):
        """Every timeline event is accounted: applied + suppressed ==
        delivered, and the final active set follows the applied deltas."""
        membership = fresh_membership(raw)
        membership.poll(1e9)
        summary = membership.summary()
        assert summary["n_applied"] + summary["n_suppressed"] == len(raw)
        delta = 0
        for event in membership.applied_events:
            if not event.applied:
                continue
            if event.kind == "join":
                delta += 1
            elif event.kind in ("fail", "leave"):
                delta -= 1
        assert summary["final_devices"] == N_DEVICES + delta
