"""Property-based tests (hypothesis) for the core algorithms.

Invariants under test:

- Algorithm 1 never leaves the ``[b_min, b_max]`` box, preserves the linear
  LR-scaling relation exactly, and moves sizes monotonically toward update
  parity.
- Algorithm 2's weights are a valid normalization without perturbation; with
  perturbation the sum shifts by exactly ``δ(α_r − α_s)``.
- The analytic staleness bound dominates any realizable update allocation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.merging import compute_merge_weights
from repro.core.scaling import scale_batch_sizes
from repro.core.staleness import staleness_bound

# Strategy: a fleet of 1-8 GPUs with consistent per-GPU state.
fleets = st.integers(min_value=1, max_value=8).flatmap(
    lambda n: st.tuples(
        st.lists(
            st.integers(min_value=16, max_value=128), min_size=n, max_size=n
        ),
        st.lists(
            st.floats(min_value=1e-4, max_value=1.0, allow_nan=False),
            min_size=n, max_size=n,
        ),
        st.lists(
            st.integers(min_value=0, max_value=200), min_size=n, max_size=n
        ),
    )
)


class TestScalingProperties:
    @given(fleets, st.floats(min_value=0.5, max_value=32.0))
    @settings(max_examples=150, deadline=None)
    def test_bounds_always_respected(self, fleet, beta):
        sizes, lrs, updates = fleet
        decision = scale_batch_sizes(
            sizes, lrs, updates, b_min=16, b_max=128, beta=beta
        )
        for b in decision.batch_sizes:
            assert 16 <= b <= 128

    @given(fleets, st.floats(min_value=0.5, max_value=32.0))
    @settings(max_examples=150, deadline=None)
    def test_linear_lr_relation_exact(self, fleet, beta):
        sizes, lrs, updates = fleet
        decision = scale_batch_sizes(
            sizes, lrs, updates, b_min=16, b_max=128, beta=beta
        )
        for b_old, lr_old, b_new, lr_new in zip(
            sizes, lrs, decision.batch_sizes, decision.learning_rates
        ):
            assert lr_new == pytest.approx(lr_old * b_new / b_old, rel=1e-9)

    @given(fleets, st.floats(min_value=0.5, max_value=32.0))
    @settings(max_examples=150, deadline=None)
    def test_direction_follows_update_deviation(self, fleet, beta):
        """Above-average GPUs never shrink; below-average never grow."""
        sizes, lrs, updates = fleet
        decision = scale_batch_sizes(
            sizes, lrs, updates, b_min=16, b_max=128, beta=beta
        )
        mean = float(np.mean(updates))
        for b_old, u, b_new in zip(sizes, updates, decision.batch_sizes):
            if u > mean:
                assert b_new >= b_old
            elif u < mean:
                assert b_new <= b_old
            else:
                assert b_new == b_old

    @given(fleets)
    @settings(max_examples=100, deadline=None)
    def test_unchanged_flags_consistent(self, fleet):
        sizes, lrs, updates = fleet
        decision = scale_batch_sizes(
            sizes, lrs, updates, b_min=16, b_max=128, beta=4.0
        )
        for b_old, b_new, changed in zip(
            sizes, decision.batch_sizes, decision.changed
        ):
            assert changed == (b_old != b_new)


class TestMergingProperties:
    @given(fleets, st.floats(min_value=0.01, max_value=0.3))
    @settings(max_examples=150, deadline=None)
    def test_weights_normalized_without_perturbation(self, fleet, delta):
        sizes, _, updates = fleet
        norms = [0.01] * len(sizes)
        w = compute_merge_weights(
            sizes, updates, norms, pert_thr=0.1, delta=delta,
            enable_perturbation=False,
        )
        if sum(updates) > 0 or w.branch == "batch_size":
            assert sum(w.alphas) == pytest.approx(1.0, abs=1e-9)
        assert all(a >= 0 for a in w.alphas)

    @given(fleets, st.floats(min_value=0.01, max_value=0.3))
    @settings(max_examples=150, deadline=None)
    def test_perturbation_shifts_sum_by_exact_amount(self, fleet, delta):
        sizes, _, updates = fleet
        norms = [0.01] * len(sizes)
        base = compute_merge_weights(
            sizes, updates, norms, pert_thr=0.1, delta=delta,
            enable_perturbation=False,
        )
        pert = compute_merge_weights(
            sizes, updates, norms, pert_thr=0.1, delta=delta,
        )
        if not pert.perturbed:
            assert pert.alphas == base.alphas
            return
        r, s = pert.boosted, pert.damped
        assert r != s
        expected_shift = delta * (base.alphas[r] - base.alphas[s])
        assert sum(pert.alphas) - sum(base.alphas) == pytest.approx(
            expected_shift, abs=1e-9
        )

    @given(fleets)
    @settings(max_examples=100, deadline=None)
    def test_branch_selection_rule(self, fleet):
        sizes, _, updates = fleet
        w = compute_merge_weights(
            sizes, updates, [1.0] * len(sizes),  # gate closed
            pert_thr=0.1, delta=0.1,
        )
        if len(set(updates)) == 1:
            assert w.branch == "batch_size"
        else:
            assert w.branch == "updates"
        assert not w.perturbed  # norms over threshold

    @given(fleets)
    @settings(max_examples=100, deadline=None)
    def test_higher_updates_never_lower_weight(self, fleet):
        sizes, _, updates = fleet
        if len(set(updates)) == 1:
            return
        w = compute_merge_weights(
            sizes, updates, [1.0] * len(sizes), pert_thr=0.1, delta=0.1,
        )
        order = np.argsort(updates)
        alphas = np.asarray(w.alphas)
        assert np.all(np.diff(alphas[order]) >= -1e-12)


class TestStalenessProperties:
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=2, max_value=64),
        st.integers(min_value=1, max_value=40),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_bound_dominates_any_realizable_allocation(
        self, n_gpus, b_min, batches, rng
    ):
        """Randomly allocate a mega-batch in >= b_min chunks; the observed
        update spread never exceeds the analytic bound."""
        b_max = b_min * 8
        mega = b_max * batches
        updates = [0] * n_gpus
        remaining = mega
        while remaining > 0:
            gpu = rng.randrange(n_gpus)
            size = min(remaining, rng.randint(b_min, b_max))
            updates[gpu] += 1
            remaining -= size
        spread = max(updates) - min(updates)
        assert spread <= staleness_bound(mega, b_min, b_max, n_gpus)
