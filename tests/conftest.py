"""Shared fixtures: one small task/server/config reused across the suite."""

from __future__ import annotations

import pytest

from repro.core.config import AdaptiveSGDConfig
from repro.data.registry import load_task
from repro.gpu.cluster import make_server
from repro.gpu.cost import GpuCostParams


@pytest.fixture(scope="session")
def micro_task():
    """The smallest registered task (session-scoped: generated once)."""
    return load_task("micro", seed=1)


@pytest.fixture()
def het_server():
    """A fresh 4-GPU heterogeneous server with the tiny-model cost profile."""
    return make_server(
        4, seed=5, cost_params=GpuCostParams.tiny_model_profile()
    )


@pytest.fixture()
def uniform_server():
    """A fresh 4-GPU homogeneous server (ablation control)."""
    return make_server(
        4, heterogeneity="uniform", seed=5,
        cost_params=GpuCostParams.tiny_model_profile(),
    )


@pytest.fixture()
def small_config():
    """A config sized for fast test runs (small mega-batches)."""
    return AdaptiveSGDConfig(b_max=64, base_lr=0.2, mega_batch_batches=16)
