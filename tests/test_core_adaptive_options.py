"""Tests for AdaptiveSGDTrainer's optional machinery: the scaling governor
and pluggable all-reduce algorithms."""

import numpy as np
import pytest

from repro.comm.halving_doubling import HalvingDoublingAllReduce
from repro.comm.tree import TreeAllReduce
from repro.core.adaptive import AdaptiveSGDTrainer
from repro.core.config import AdaptiveSGDConfig
from repro.gpu.cluster import make_server
from repro.gpu.cost import GpuCostParams


def run(micro_task, server, budget=0.05, **trainer_kwargs):
    cfg = AdaptiveSGDConfig(b_max=64, base_lr=0.2, mega_batch_batches=16)
    trainer = AdaptiveSGDTrainer(
        micro_task, server, cfg, hidden=(32,), init_seed=7, data_seed=3,
        eval_samples=64, **trainer_kwargs,
    )
    return trainer.run(time_budget_s=budget)


class TestGovernor:
    def test_governor_run_completes_and_learns(self, micro_task, het_server):
        trace = run(micro_task, het_server, governor=True)
        assert trace.best_accuracy > trace.points[0].accuracy

    def test_governor_skips_scaling_at_steady_state(self, micro_task):
        """On uniform hardware the system is stable immediately, so the
        governor must stretch the scaling interval — observable through the
        scheduler's boundary reports."""
        server = make_server(
            4, heterogeneity="uniform", seed=5,
            cost_params=GpuCostParams.tiny_model_profile(),
        )
        cfg = AdaptiveSGDConfig(b_max=64, base_lr=0.2, mega_batch_batches=16)
        # Use the scheduler directly for a deterministic boundary count.
        from repro.core.scheduler import DynamicScheduler

        sched = DynamicScheduler(
            micro_task.train, cfg, 4, seed=0, use_governor=True
        )
        ran = []
        for _ in range(12):
            while True:
                for gpu in range(4):
                    batch = sched.try_dispatch(gpu)
                    if batch is None:
                        break
                    sched.record_completion(gpu)
                else:
                    continue
                break
            ran.append(sched.mega_batch_boundary().scaling_ran)
        assert all(ran[:4])          # full rate until the window fills
        assert not all(ran[4:])      # backed off once stable

    def test_no_governor_scales_every_boundary(self, micro_task, het_server):
        from repro.core.scheduler import DynamicScheduler

        cfg = AdaptiveSGDConfig(b_max=64, base_lr=0.2, mega_batch_batches=8)
        sched = DynamicScheduler(
            micro_task.train, cfg, 2, seed=0, use_governor=False
        )
        for _ in range(6):
            while True:
                batch = sched.try_dispatch(0)
                if batch is None:
                    break
                sched.record_completion(0)
            assert sched.mega_batch_boundary().scaling_ran


class TestPluggableAllReduce:
    @pytest.mark.parametrize("algo", [TreeAllReduce(), HalvingDoublingAllReduce()])
    def test_alternative_collectives_work(self, micro_task, het_server, algo):
        trace = run(micro_task, het_server, allreduce=algo, budget=0.03)
        assert trace.metadata["allreduce"] == algo.name
        assert len(trace) >= 2
        assert trace.best_accuracy > 0.1

    def test_collective_choice_does_not_change_numerics(self, micro_task):
        """Merging is numerically equivalent across schedules, so only the
        *times* may differ — accuracies at matching checkpoints must agree."""
        def one(algo):
            server = make_server(
                4, seed=5, cost_params=GpuCostParams.tiny_model_profile()
            )
            return run(micro_task, server, allreduce=algo, budget=0.03)

        a = one(TreeAllReduce())
        b = one(HalvingDoublingAllReduce())
        n = min(len(a.points), len(b.points))
        accs_a = [p.accuracy for p in a.points[:n]]
        accs_b = [p.accuracy for p in b.points[:n]]
        assert accs_a == pytest.approx(accs_b, abs=0.05)

    def test_collective_crossover_visible_to_trainers(self, het_server):
        """What a trainer pays per merge follows the small/large-message
        crossover: tree wins for tiny replicas (fewer latency terms), the
        multi-stream ring wins at XML-model scale."""
        from repro.comm.ring import RingAllReduce

        topo = het_server.topology
        tiny, big = 40_000, 4_000_000
        ring = RingAllReduce(4)
        tree = TreeAllReduce()
        assert tree.time_seconds(tiny, topo).total_s < ring.time_seconds(
            tiny, topo
        ).total_s
        assert ring.time_seconds(big, topo).total_s < tree.time_seconds(
            big, topo
        ).total_s
