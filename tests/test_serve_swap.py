"""Tests for hot-swapping: the store-subscribed serving loop.

Covers the tentpole protocol end to end on the simulated clock: commits
under load with per-request pinning, the labeled recall canary and its
rollback path, swap failures that must never interrupt serving, admission
control shedding, and the swap telemetry the analytics engine consumes.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.api import make_engine
from repro.serve import (
    LoadSpec,
    ModelSnapshot,
    Predictor,
    ServingConfig,
    SnapshotStore,
    generate_arrivals,
)
from repro.sparse.mlp import MLPArchitecture, SparseMLP

N_GPUS = 2


@pytest.fixture(scope="module")
def arch(micro_task):
    return MLPArchitecture(
        micro_task.n_features, micro_task.n_labels, hidden=(32,)
    )


def state_for(arch, seed):
    return SparseMLP(arch).init_state(seed=seed)


def snap(arch, seed):
    return ModelSnapshot(
        arch=arch, state=state_for(arch, seed), meta={"dataset": "micro"}
    )


def fill_store(root, arch, seeds, times):
    store = SnapshotStore(root)
    for seed, t in zip(seeds, times):
        store.publish(snap(arch, seed), published_s=t)
    return store


def spanning_arrivals(store, n_requests, *, seed=0):
    """Open-loop Poisson arrivals whose window covers every publish."""
    span = store.entries[-1].published_s * 1.2
    spec = LoadSpec(n_requests=n_requests, rate_rps=n_requests / span,
                    seed=seed)
    return generate_arrivals(spec)


def self_labels(predictor, X, k=5):
    """CSR ground truth equal to ``predictor``'s own top-k — the serving
    version scores recall 1.0 against it, so any later version's recall
    measures agreement with the incumbent."""
    top = predictor.topk(X, k)
    n = X.shape[0]
    rows = np.repeat(np.arange(n), k)
    return sp.csr_matrix(
        (np.ones(n * k), (rows, top.ravel())),
        shape=(n, predictor.arch.n_labels),
    )


class TestHotSwapUnderLoad:
    def test_commits_with_zero_dropped_or_mixed(self, arch, micro_task,
                                                tmp_path):
        # Identical weights per version: swaps exercise the full protocol
        # while the recall canary sees no regression to veto.
        store = fill_store(tmp_path / "s", arch, [7, 7, 7],
                           [0.0, 0.01, 0.02])
        engine = make_engine(store, mode="adaptive", n_gpus=N_GPUS)
        X = micro_task.test.X
        arrivals = spanning_arrivals(store, 300)
        result = engine.serve(X, arrivals, k=5,
                              canary_labels=micro_task.test.Y)
        assert result.n_swaps == 2
        assert result.n_rollbacks == 0
        assert result.n_swap_failures == 0
        assert result.active_version == 3
        # Zero dropped: every admitted request completed.
        assert all(r.t_done is not None for r in result.requests)
        assert sum(result.versions_served.values()) == 300
        # Zero mis-versioned: batches never mix weights across a swap.
        assert result.mis_versioned == 0
        assert all(r.served_version == r.version for r in result.requests)

    def test_later_versions_actually_serve(self, arch, micro_task, tmp_path):
        store = fill_store(tmp_path / "s", arch, [7, 7], [0.0, 0.01])
        engine = make_engine(store, mode="adaptive", n_gpus=N_GPUS)
        arrivals = spanning_arrivals(store, 300)
        result = engine.serve(micro_task.test.X, arrivals, k=5)
        assert result.versions_served.get(2, 0) > 0

    def test_swap_records_carry_timing(self, arch, micro_task, tmp_path):
        store = fill_store(tmp_path / "s", arch, [7, 7], [0.0, 0.01])
        engine = make_engine(store, mode="adaptive", n_gpus=N_GPUS)
        arrivals = spanning_arrivals(store, 200)
        result = engine.serve(micro_task.test.X, arrivals, k=5)
        (record,) = result.swaps
        assert record["version_from"] == 1 and record["version_to"] == 2
        assert record["warm_s"] > 0
        # Warming happens off the dispatch path, before the commit.
        assert record["t_commit"] == pytest.approx(
            record["t_warm_start"] + record["warm_s"]
        )

    def test_without_store_no_swap_fields(self, arch, micro_task):
        engine = make_engine(snap(arch, 7), mode="adaptive", n_gpus=N_GPUS)
        arrivals = generate_arrivals(
            LoadSpec(n_requests=50, rate_rps=5000.0, seed=0)
        )
        result = engine.serve(micro_task.test.X, arrivals, k=5)
        assert result.n_swaps == 0
        assert result.swaps == []
        assert "swaps" not in result.as_dict()


class TestCanaryRollback:
    def test_recall_regression_rolls_back(self, arch, micro_task, tmp_path):
        store = fill_store(tmp_path / "s", arch, [7, 8], [0.0, 0.01])
        engine = make_engine(store, mode="adaptive", n_gpus=N_GPUS)
        X = micro_task.test.X
        labels = self_labels(engine.predictor, X, k=5)
        result = engine.serve(X, spanning_arrivals(store, 300), k=5,
                              canary_labels=labels)
        assert result.n_rollbacks == 1
        assert result.active_version == 1
        (record,) = result.swaps
        assert record["rolled_back"] is True
        assert "recall" in record["rollback_reason"]
        assert record["canary_recall_prev"] == pytest.approx(1.0)
        assert record["canary_recall_new"] < 0.5
        # Serving never stopped: every request drained.
        assert all(r.t_done is not None for r in result.requests)

    def test_rollback_disabled_without_labels(self, arch, micro_task,
                                              tmp_path):
        """No canary labels -> the recall canary is skipped, not guessed."""
        store = fill_store(tmp_path / "s", arch, [7, 8], [0.0, 0.01])
        engine = make_engine(store, mode="adaptive", n_gpus=N_GPUS)
        result = engine.serve(
            micro_task.test.X, spanning_arrivals(store, 300), k=5
        )
        assert result.n_rollbacks == 0
        assert result.active_version == 2

    def test_rollback_disabled_by_config(self, arch, micro_task, tmp_path):
        store = fill_store(tmp_path / "s", arch, [7, 8], [0.0, 0.01])
        engine = make_engine(store, mode="adaptive", n_gpus=N_GPUS,
                             canary_recall_drop=None)
        X = micro_task.test.X
        labels = self_labels(engine.predictor, X, k=5)
        result = engine.serve(X, spanning_arrivals(store, 300), k=5,
                              canary_labels=labels)
        assert result.n_rollbacks == 0
        assert result.active_version == 2


class TestSwapFailure:
    def test_corrupt_version_skipped_serving_continues(self, arch,
                                                       micro_task, tmp_path):
        store = fill_store(tmp_path / "s", arch, [7, 7], [0.0, 0.01])
        npz = store.root / "v000002.snapshot.npz"
        npz.write_bytes(npz.read_bytes()[:64])
        engine = make_engine(store, mode="adaptive", n_gpus=N_GPUS)
        result = engine.serve(
            micro_task.test.X, spanning_arrivals(store, 300), k=5
        )
        assert result.n_swap_failures == 1
        assert result.n_swaps == 0
        assert result.active_version == 1
        assert all(r.t_done is not None for r in result.requests)
        (record,) = result.swaps
        assert record["failed"] is True and "error" in record

    def test_failed_version_not_retried(self, arch, micro_task, tmp_path):
        """A bad version is quarantined; the next good one still lands."""
        store = fill_store(tmp_path / "s", arch, [7, 7, 7],
                           [0.0, 0.008, 0.016])
        npz = store.root / "v000002.snapshot.npz"
        npz.write_bytes(b"not an npz")
        engine = make_engine(store, mode="adaptive", n_gpus=N_GPUS)
        result = engine.serve(
            micro_task.test.X, spanning_arrivals(store, 300), k=5
        )
        assert result.n_swap_failures == 1
        assert result.n_swaps == 1
        assert result.active_version == 3


class TestAdmissionControl:
    def test_max_queue_depth_sheds(self, arch, micro_task):
        engine = make_engine(snap(arch, 7), mode="sequential",
                             max_queue_depth=2, n_gpus=N_GPUS)
        # Everything arrives at once against a depth-2 queue.
        arrivals = np.zeros(80)
        result = engine.serve(micro_task.test.X, arrivals, k=5)
        assert result.n_shed > 0
        served = [r for r in result.requests if not r.shed]
        assert len(served) + result.n_shed == 80
        assert all(r.t_done is not None for r in served)
        assert len(result.report.latencies_s) == len(served)

    def test_default_queue_is_unbounded(self, arch, micro_task):
        engine = make_engine(snap(arch, 7), mode="adaptive", n_gpus=N_GPUS)
        arrivals = np.zeros(80)
        result = engine.serve(micro_task.test.X, arrivals, k=5)
        assert result.n_shed == 0


class TestSwapTelemetry:
    def test_spans_instants_and_attribution(self, arch, micro_task, tmp_path):
        from repro.telemetry import Telemetry
        from repro.telemetry.analyze import analyze_report, swap_events
        from repro.telemetry.events import EVENT_SWAP_COMMIT, SPAN_SERVE_SWAP
        from repro.telemetry.trace_data import TraceData

        store = fill_store(tmp_path / "s", arch, [7, 7], [0.0, 0.01])
        tel = Telemetry(label="swap-test")
        engine = make_engine(store, mode="adaptive", n_gpus=N_GPUS,
                             telemetry=tel)
        result = engine.serve(
            micro_task.test.X, spanning_arrivals(store, 300), k=5,
            canary_labels=micro_task.test.Y,
        )
        swap_spans = [s for s in tel.spans if s.name == SPAN_SERVE_SWAP]
        assert len(swap_spans) == result.n_swaps == 1
        assert swap_spans[0].device is None  # driver lane, not a GPU
        commits = [i for i in tel.instants if i.name == EVENT_SWAP_COMMIT]
        assert len(commits) == 1
        assert commits[0].args["version"] == 2

        run = TraceData.from_telemetry(tel).run(0)
        swaps = swap_events(run)
        assert swaps is not None
        assert swaps["commits"] == 1
        assert swaps["rollbacks"] == 0 and swaps["failures"] == 0
        (event,) = swaps["events"]
        assert event["version_from"] == 1 and event["version_to"] == 2
        assert not event["rolled_back"]
        assert event["requests_in_window"] >= 0

        # The analytics report folds the swap section in, with the
        # attribution invariant intact on a swap-bearing trace.
        report = analyze_report(tel)
        (entry,) = report["runs"]
        assert entry["serving_swaps"]["commits"] == 1
        assert entry["attribution"]["max_residual"] <= 1e-6

    def test_no_swaps_means_no_section(self, arch, micro_task):
        from repro.telemetry import Telemetry
        from repro.telemetry.analyze import swap_events
        from repro.telemetry.trace_data import TraceData

        tel = Telemetry(label="no-swap")
        engine = make_engine(snap(arch, 7), mode="adaptive", n_gpus=N_GPUS,
                             telemetry=tel)
        arrivals = generate_arrivals(
            LoadSpec(n_requests=40, rate_rps=5000.0, seed=0)
        )
        engine.serve(micro_task.test.X, arrivals, k=5)
        assert swap_events(TraceData.from_telemetry(tel).run(0)) is None


class TestServeValidation:
    def test_canary_labels_row_mismatch(self, arch, micro_task):
        engine = make_engine(snap(arch, 7), n_gpus=N_GPUS)
        from repro.exceptions import ConfigurationError
        bad = sp.csr_matrix((3, micro_task.n_labels))
        with pytest.raises(ConfigurationError, match="canary_labels"):
            engine.serve(micro_task.test.X, np.array([0.0]), k=5,
                         canary_labels=bad)

    def test_config_rejects_bad_drop(self):
        from repro.exceptions import ConfigurationError
        with pytest.raises(ConfigurationError, match="canary_recall_drop"):
            ServingConfig(canary_recall_drop=1.5).validate()
