"""Edge-case tests for the data substrate: ambiguous inputs, extremes."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.data.batching import BatchCursor
from repro.data.dataset import SparseDataset
from repro.data.libsvm import read_libsvm, write_libsvm
from repro.data.synthetic import SyntheticXMLConfig, generate_xml_task
from repro.exceptions import ConfigurationError, DataFormatError


class TestLibsvmAmbiguity:
    def test_three_token_data_line_not_mistaken_for_header(self, tmp_path):
        """A first line like '0,1 2:1 3:1' has 3 whitespace tokens but must
        parse as data, not as an 'n d L' header."""
        path = tmp_path / "f.txt"
        path.write_text("0,1 2:1.0 3:1.0\n2 1:0.5\n")
        ds = read_libsvm(path)
        assert ds.n_samples == 2
        assert sorted(ds.Y[0].indices.tolist()) == [0, 1]

    def test_pure_integer_first_line_is_header(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("2 4 3\n0 1:1\n1,2 3:1\n")
        ds = read_libsvm(path)
        assert ds.n_samples == 2
        assert ds.n_features == 4 and ds.n_labels == 3

    def test_header_dims_override_inference(self, tmp_path):
        # Declared dims larger than any observed id must be respected.
        path = tmp_path / "f.txt"
        path.write_text("1 100 50\n3 7:1.5\n")
        ds = read_libsvm(path)
        assert ds.n_features == 100 and ds.n_labels == 50

    def test_explicit_dims_override_header(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("1 100 50\n3 7:1.5\n")
        ds = read_libsvm(path, n_features=200, n_labels=60)
        assert ds.n_features == 200 and ds.n_labels == 60

    def test_negative_id_after_one_based_shift_rejected(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("0 1:1\n")  # label 0 invalid in one-based data
        with pytest.raises(DataFormatError, match="negative"):
            read_libsvm(path, zero_based=False)

    def test_write_precision_controls_size(self, tmp_path, micro_task):
        coarse = write_libsvm(
            micro_task.test, tmp_path / "c.txt", precision=2
        )
        fine = write_libsvm(
            micro_task.test, tmp_path / "f.txt", precision=9
        )
        assert coarse.stat().st_size < fine.stat().st_size


class TestCursorExtremes:
    def test_batch_larger_than_several_epochs(self, micro_task):
        n = micro_task.train.n_samples
        cursor = BatchCursor(micro_task.train, seed=0)
        batch = cursor.next_batch(3 * n + 5)
        assert batch.size == 3 * n + 5
        counts = np.bincount(batch.indices, minlength=n)
        # Every sample appears 3 or 4 times: epochs stay balanced.
        assert set(np.unique(counts)) <= {3, 4}
        assert cursor.epochs_completed == pytest.approx(3 + 5 / n)

    def test_batch_size_one_stream(self, micro_task):
        cursor = BatchCursor(micro_task.train, seed=0)
        seen = {int(cursor.next_batch(1).indices[0]) for _ in range(50)}
        assert len(seen) == 50  # no repeats inside one epoch

    def test_empty_dataset_rejected(self):
        X = sp.csr_matrix((0, 4), dtype=np.float32)
        Y = sp.csr_matrix((0, 2), dtype=np.float32)
        empty = SparseDataset(X=X, Y=Y)
        with pytest.raises(ConfigurationError):
            BatchCursor(empty)


class TestSyntheticExtremes:
    def test_single_label_per_sample(self):
        cfg = SyntheticXMLConfig(
            n_features=128, n_labels=32, n_train=256, n_test=64,
            avg_features_per_sample=8.0, avg_labels_per_sample=1.0,
            name="single-label", seed=0,
        )
        task = generate_xml_task(cfg)
        assert task.train.labels_per_sample().min() >= 1

    def test_dense_label_regime(self):
        """Delicious-like: many labels per sample still yields a valid
        indicator matrix with no duplicate label entries."""
        cfg = SyntheticXMLConfig(
            n_features=256, n_labels=64, n_train=128, n_test=32,
            avg_features_per_sample=16.0, avg_labels_per_sample=20.0,
            label_neighborhood=32, name="dense-labels", seed=0,
        )
        task = generate_xml_task(cfg)
        assert task.train.avg_labels_per_sample > 8
        assert (task.train.Y.data == 1.0).all()

    def test_feature_space_of_one(self):
        cfg = SyntheticXMLConfig(
            n_features=1, n_labels=4, n_train=32, n_test=8,
            avg_features_per_sample=1.0, avg_labels_per_sample=1.0,
            prototypes_per_label=1, name="one-feature", seed=0,
        )
        task = generate_xml_task(cfg)
        assert task.n_features == 1
        assert task.train.X.nnz > 0
