"""Tests for repro.data.batching — cursors, static batches, mega-batches."""

import numpy as np
import pytest

from repro.data.batching import (
    Batch,
    BatchCursor,
    MegaBatchAccountant,
    static_batches,
)
from repro.exceptions import ConfigurationError


class TestBatchCursor:
    def test_serves_requested_sizes(self, micro_task):
        cursor = BatchCursor(micro_task.train, seed=1)
        for size in (10, 1, 99, 64):
            batch = cursor.next_batch(size)
            assert batch.size == size
            assert batch.X.shape == (size, micro_task.n_features)
            assert batch.Y.shape == (size, micro_task.n_labels)

    def test_epoch_covers_every_sample_once(self, micro_task):
        n = micro_task.train.n_samples
        cursor = BatchCursor(micro_task.train, seed=1)
        seen = np.concatenate(
            [cursor.next_batch(64).indices for _ in range(n // 64)]
        )
        assert len(seen) == n
        assert len(np.unique(seen)) == n  # exactly one epoch, no repeats

    def test_reshuffle_across_epoch_boundary(self, micro_task):
        n = micro_task.train.n_samples
        cursor = BatchCursor(micro_task.train, seed=1)
        batch = cursor.next_batch(n + 10)  # crosses the boundary
        assert batch.size == n + 10
        counts = np.bincount(batch.indices, minlength=n)
        assert counts.max() <= 2  # a sample repeats at most once

    def test_epochs_completed(self, micro_task):
        n = micro_task.train.n_samples
        cursor = BatchCursor(micro_task.train, seed=0)
        cursor.next_batch(n // 2)
        assert cursor.epochs_completed == pytest.approx(0.5)
        cursor.next_batch(n // 2)
        assert cursor.epochs_completed == pytest.approx(1.0)

    def test_sequence_numbers(self, micro_task):
        cursor = BatchCursor(micro_task.train, seed=0)
        assert cursor.next_batch(4).sequence == 0
        assert cursor.next_batch(4).sequence == 1
        assert cursor.batches_served == 2

    def test_deterministic_given_seed(self, micro_task):
        a = BatchCursor(micro_task.train, seed=9).next_batch(32)
        b = BatchCursor(micro_task.train, seed=9).next_batch(32)
        assert np.array_equal(a.indices, b.indices)

    def test_invalid_size_rejected(self, micro_task):
        with pytest.raises(ConfigurationError):
            BatchCursor(micro_task.train).next_batch(0)

    def test_nnz_property(self, micro_task):
        batch = BatchCursor(micro_task.train, seed=0).next_batch(16)
        assert batch.nnz == batch.X.nnz


class TestStaticBatches:
    def test_partition_covers_epoch(self, micro_task):
        n = micro_task.train.n_samples
        batches = list(static_batches(micro_task.train, 60, seed=4))
        assert sum(b.size for b in batches) == n
        all_idx = np.concatenate([b.indices for b in batches])
        assert len(np.unique(all_idx)) == n

    def test_drop_last(self, micro_task):
        batches = list(
            static_batches(micro_task.train, 60, seed=4, drop_last=True)
        )
        assert all(b.size == 60 for b in batches)

    def test_invalid_size_rejected(self, micro_task):
        with pytest.raises(ConfigurationError):
            list(static_batches(micro_task.train, 0))


class TestMegaBatchAccountant:
    def test_budget_flow(self):
        acc = MegaBatchAccountant(100)
        assert acc.remaining == 100 and not acc.exhausted
        acc.charge(60)
        assert acc.consumed == 60 and acc.remaining == 40
        assert acc.clamp(64) == 40  # clamped to what's left
        acc.charge(40)
        assert acc.exhausted
        assert acc.clamp(10) == 0

    def test_overcharge_rejected(self):
        acc = MegaBatchAccountant(10)
        with pytest.raises(ConfigurationError):
            acc.charge(11)

    def test_roll_over(self):
        acc = MegaBatchAccountant(10)
        acc.charge(10)
        acc.roll_over()
        assert acc.mega_batches_completed == 1
        assert acc.remaining == 10

    def test_early_roll_over_rejected(self):
        acc = MegaBatchAccountant(10)
        acc.charge(5)
        with pytest.raises(ConfigurationError):
            acc.roll_over()

    def test_zero_charge_rejected(self):
        with pytest.raises(ConfigurationError):
            MegaBatchAccountant(10).charge(0)

    def test_invalid_size_rejected(self):
        with pytest.raises(ConfigurationError):
            MegaBatchAccountant(0)
