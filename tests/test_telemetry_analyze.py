"""Tests for repro.telemetry.analyze — attribution, stragglers, lanes."""

import json

import pytest

from repro.telemetry.analyze import (
    STRAGGLER_GAP,
    _difference_length,
    _length,
    _union,
    analyze_report,
    attribute_time,
    critical_path,
    utilization_lanes,
)
from repro.telemetry.events import SpanEvent
from repro.telemetry.trace_data import RunData, TraceData


def span(name, ts, dur, device=None, run=0, **args):
    return SpanEvent(name=name, ts=ts, dur=dur, run=run, device=device,
                     args=args)


@pytest.fixture
def synthetic_run():
    """Two devices under a 10 s run: gpu0 slow, gpu1 fast, one merge.

    gpu0: step [0,4] (400 samples), transfer [4,4.5], step [5,8] (300).
    gpu1: step [0,2] (400), step [2,4] (400) — twice gpu0's throughput.
    driver: merge [8,9] containing allreduce [8.2,8.8].
    """
    return RunData(
        index=0,
        meta={"algorithm": "synthetic", "n_devices": 2},
        spans=[
            span("run", 0.0, 10.0),
            span("step.compute", 0.0, 4.0, device=0, size=400),
            span("transfer.model", 4.0, 0.5, device=0),
            span("step.compute", 5.0, 3.0, device=0, size=300),
            span("step.compute", 0.0, 2.0, device=1, size=400),
            span("step.compute", 2.0, 2.0, device=1, size=400),
            span("merge", 8.0, 1.0),
            span("merge.allreduce", 8.2, 0.6),
        ],
        samples={"gpu0/updates": [(9.0, 7.0)], "gpu1/updates": [(9.0, 8.0)]},
    )


class TestIntervalHelpers:
    def test_union_merges_overlaps(self):
        assert _union([(0, 2), (1, 3), (5, 6)]) == [(0, 3), (5, 6)]

    def test_union_drops_empty_intervals(self):
        assert _union([(1, 1), (2, 1)]) == []

    def test_length(self):
        assert _length([(0, 2), (5, 6.5)]) == pytest.approx(3.5)

    def test_difference_length(self):
        a = _union([(0.0, 10.0)])
        b = _union([(2.0, 3.0), (5.0, 7.0)])
        assert _difference_length(a, b) == pytest.approx(7.0)

    def test_difference_length_disjoint(self):
        assert _difference_length([(0.0, 1.0)], [(2.0, 3.0)]) == 1.0

    def test_difference_length_fully_covered(self):
        assert _difference_length([(1.0, 2.0)], [(0.0, 3.0)]) == 0.0


class TestAttribution:
    def test_components_sum_to_run_span(self, synthetic_run):
        att = attribute_time(synthetic_run)
        assert att.run_span_s == 10.0
        assert att.max_residual() <= 1e-6  # the acceptance invariant
        for dev in att.devices:
            assert dev.total_s == pytest.approx(att.run_span_s, abs=1e-6)

    def test_per_device_components(self, synthetic_run):
        att = attribute_time(synthetic_run)
        gpu0 = att.device(0)
        assert gpu0.compute_s == pytest.approx(7.0)
        assert gpu0.transfer_s == pytest.approx(0.5)
        assert gpu0.steps == 2 and gpu0.samples == 700
        # merge [8,9] is fully outside gpu0's busy union; the allreduce
        # slice [8.2,8.8] is attributed separately from the rest.
        assert gpu0.allreduce_wait_s == pytest.approx(0.6)
        assert gpu0.merge_wait_s == pytest.approx(0.4)
        assert gpu0.idle_s == pytest.approx(10.0 - 7.5 - 1.0)

    def test_driver_lane_totals(self, synthetic_run):
        att = attribute_time(synthetic_run)
        assert att.n_boundaries == 1
        assert att.driver["merge_s"] == pytest.approx(1.0)
        assert att.driver["allreduce_s"] == pytest.approx(0.6)
        assert att.driver["merge_other_s"] == pytest.approx(0.4)

    def test_gap_idle_rederived_without_idle_records(self, synthetic_run):
        att = attribute_time(synthetic_run)
        # gpu0 steps end at 4 and restart at 5 -> 1 s of compute gap.
        assert att.device(0).gap_idle_s == pytest.approx(1.0)
        assert att.device(1).gap_idle_s == pytest.approx(0.0)

    def test_idle_records_take_precedence(self, synthetic_run):
        synthetic_run.idle[0] = {"busy_s": 7.5, "idle_s": 0.25}
        att = attribute_time(synthetic_run)
        assert att.device(0).gap_idle_s == 0.25

    def test_throughput(self, synthetic_run):
        att = attribute_time(synthetic_run)
        assert att.device(0).throughput == pytest.approx(100.0)
        assert att.device(1).throughput == pytest.approx(200.0)

    def test_empty_run(self):
        att = attribute_time(RunData(index=0))
        assert att.devices == [] and att.run_span_s == 0.0
        assert att.max_residual() == 0.0


class TestCriticalPath:
    def test_straggler_by_throughput(self, synthetic_run):
        report = critical_path(synthetic_run)
        assert report.straggler == 0
        assert report.heterogeneity_index == pytest.approx(1.0)
        assert report.slowdowns[0] == pytest.approx(1.0)
        assert report.slowdowns[1] == pytest.approx(0.0)
        assert "gpu0" in report.reason and "slower per sample" in report.reason

    def test_boundary_critical_device(self, synthetic_run):
        report = critical_path(synthetic_run)
        (diag,) = report.boundaries
        assert diag.critical_device == 0      # gpu0's step ends at the barrier
        assert diag.idle_before[0] == pytest.approx(0.0)
        assert diag.idle_before[1] == pytest.approx(4.0)
        assert report.critical_counts == {0: 1}

    def test_update_skew(self, synthetic_run):
        report = critical_path(synthetic_run)
        assert report.update_counts == {0: 7.0, 1: 8.0}
        assert report.update_skew == pytest.approx(1.0)
        assert report.update_balance == pytest.approx(7.0 / 8.0)

    def test_uniform_devices_have_no_straggler(self):
        run = RunData(index=0, spans=[
            span("run", 0.0, 4.0),
            span("step.compute", 0.0, 2.0, device=0, size=200),
            span("step.compute", 0.0, 2.0, device=1, size=200),
        ])
        report = critical_path(run)
        assert report.heterogeneity_index <= STRAGGLER_GAP
        assert report.straggler is None

    def test_arrival_fallback_when_speeds_match(self):
        # Same throughput, but gpu1 always finishes last before each merge.
        spans = [span("run", 0.0, 9.0)]
        for k in range(3):
            base = k * 3.0
            spans.append(span("step.compute", base, 1.0, device=0, size=100))
            spans.append(span("step.compute", base, 2.0, device=1, size=200))
            spans.append(span("merge", base + 2.0, 0.5))
        report = critical_path(RunData(index=0, spans=spans))
        assert report.heterogeneity_index <= STRAGGLER_GAP
        assert report.straggler == 1
        assert "last to arrive at 3/3" in report.reason

    def test_empty_run(self):
        report = critical_path(RunData(index=0))
        assert report.straggler is None and report.boundaries == []


class TestUtilizationLanes:
    def test_lane_glyphs(self, synthetic_run):
        lanes = utilization_lanes(synthetic_run)
        assert set(lanes) == {"gpu0", "gpu1", "driver"}
        glyphs0 = {glyph for _, _, glyph in lanes["gpu0"]}
        assert glyphs0 == {"#", "T"}
        driver_glyphs = {glyph for _, _, glyph in lanes["driver"]}
        assert driver_glyphs == {"M", "A"}

    def test_run_span_excluded(self, synthetic_run):
        lanes = utilization_lanes(synthetic_run)
        total = sum(len(v) for v in lanes.values())
        assert total == len(synthetic_run.spans) - 1  # minus the root span

    def test_empty_run_has_no_lanes(self):
        assert utilization_lanes(RunData(index=0)) == {}


class TestAnalyzeReport:
    def test_report_is_strict_json(self, synthetic_run):
        data = TraceData(label="t", runs=[synthetic_run])
        report = analyze_report(data)
        text = json.dumps(report, sort_keys=True, allow_nan=False)
        loaded = json.loads(text)
        assert loaded["label"] == "t"
        (run,) = loaded["runs"]
        assert run["attribution"]["max_residual"] <= 1e-6
        assert run["straggler"]["straggler"] == 0
        detectors = {f["detector"] for f in run["findings"]}
        assert "straggler" in detectors

    def test_run_selector(self, synthetic_run):
        data = TraceData(label="t", runs=[synthetic_run])
        report = analyze_report(data, run=0)
        assert len(report["runs"]) == 1

    def test_empty_trace(self):
        report = analyze_report(TraceData(label="void"))
        assert report == {"label": "void", "runs": [], "kernels": []}
