"""Edge-case tests for the sparse substrate: degenerate shapes and inputs."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.data.batching import Batch
from repro.sparse.loss import softmax_cross_entropy
from repro.sparse.metrics import precision_at_k, top1_accuracy
from repro.sparse.mlp import MLPArchitecture, SparseMLP


def batch_of(X, Y):
    return Batch(X=X, Y=Y, indices=np.arange(X.shape[0]))


class TestDegenerateBatches:
    def setup_method(self):
        self.arch = MLPArchitecture(20, 6, hidden=(8,))
        self.mlp = SparseMLP(self.arch)
        self.state = self.mlp.init_state(seed=0)

    def test_single_sample_batch(self):
        X = sp.random(1, 20, density=0.3, format="csr", dtype=np.float32,
                      random_state=np.random.default_rng(0))
        Y = sp.csr_matrix(
            (np.ones(1, dtype=np.float32), ([0], [2])), shape=(1, 6)
        )
        loss, grad = self.mlp.loss_and_grad(batch_of(X, Y), self.state)
        assert np.isfinite(loss)
        assert np.isfinite(grad.vector).all()

    def test_all_zero_feature_rows(self):
        """Samples with no features still produce a valid (bias-driven)
        forward pass and gradient."""
        X = sp.csr_matrix((3, 20), dtype=np.float32)
        Y = sp.csr_matrix(
            (np.ones(3, dtype=np.float32), ([0, 1, 2], [0, 1, 2])),
            shape=(3, 6),
        )
        loss, grad = self.mlp.loss_and_grad(batch_of(X, Y), self.state)
        assert np.isfinite(loss)
        # Input weights receive no gradient from empty rows.
        assert np.allclose(grad["W1"], 0.0)

    def test_sample_with_every_label(self):
        X = sp.random(1, 20, density=0.5, format="csr", dtype=np.float32,
                      random_state=np.random.default_rng(1))
        Y = sp.csr_matrix(np.ones((1, 6), dtype=np.float32))
        loss, grad = self.mlp.loss_and_grad(batch_of(X, Y), self.state)
        # Uniform target over all 6 labels: loss >= log(6) is NOT required,
        # but finiteness and a zero-sum output-layer bias gradient are.
        assert np.isfinite(loss)
        assert grad["b2"].sum() == pytest.approx(0.0, abs=1e-6)

    def test_dense_input_matches_sparse(self):
        """CSR with explicit zeros vs dense-equivalent CSR: same results."""
        rng = np.random.default_rng(2)
        dense = rng.normal(size=(4, 20)).astype(np.float32)
        dense[dense < 0.5] = 0.0
        X1 = sp.csr_matrix(dense)
        Y = sp.csr_matrix(
            (np.ones(4, dtype=np.float32), (range(4), [0, 1, 2, 3])),
            shape=(4, 6),
        )
        l1, g1 = self.mlp.loss_and_grad(batch_of(X1, Y), self.state)
        X2 = sp.csr_matrix(dense.copy())
        l2, g2 = self.mlp.loss_and_grad(batch_of(X2, Y), self.state)
        assert l1 == pytest.approx(l2)
        assert np.array_equal(g1.vector, g2.vector)


class TestExtremeLogits:
    def test_loss_finite_under_huge_logits(self):
        Y = sp.csr_matrix(
            (np.ones(2, dtype=np.float32), ([0, 1], [0, 1])), shape=(2, 3)
        )
        logits = np.array(
            [[1e30, -1e30, 0.0], [-1e30, 1e30, 0.0]], dtype=np.float32
        )
        loss, grad = softmax_cross_entropy(logits, Y)
        assert np.isfinite(loss)
        assert np.isfinite(grad).all()

    def test_metrics_with_negative_scores(self):
        Y = sp.csr_matrix(
            (np.ones(2, dtype=np.float32), ([0, 1], [0, 2])), shape=(2, 3)
        )
        scores = np.array(
            [[-1.0, -5.0, -9.0], [-9.0, -5.0, -1.0]], dtype=np.float32
        )
        assert top1_accuracy(scores, Y) == 1.0

    def test_metrics_single_label_universe(self):
        Y = sp.csr_matrix(np.ones((3, 1), dtype=np.float32))
        scores = np.zeros((3, 1), dtype=np.float32)
        out = precision_at_k(scores, Y, ks=(1, 3))
        assert out[1] == 1.0
        assert out[3] == 1.0  # k clamped to the 1-label space


class TestDeepArchitectures:
    def test_three_hidden_layers_gradcheck(self, micro_task):
        from repro.data.batching import BatchCursor

        arch = MLPArchitecture(
            micro_task.n_features, micro_task.n_labels, hidden=(16, 12, 8)
        )
        mlp = SparseMLP(arch)
        state = mlp.init_state(seed=3)
        batch = BatchCursor(micro_task.train, seed=1).next_batch(6)
        _, grad = mlp.loss_and_grad(batch, state)
        rng = np.random.default_rng(2)
        eps = 1e-3
        checked = 0
        for _ in range(20):
            i = int(rng.integers(state.n_params))
            if abs(grad.vector[i]) < 1e-7:
                continue  # dead ReLU paths have exact-zero gradients
            old = state.vector[i]
            state.vector[i] = old + eps
            lp, _ = mlp.loss_and_grad(batch, state)
            state.vector[i] = old - eps
            lm, _ = mlp.loss_and_grad(batch, state)
            state.vector[i] = old
            fd = (lp - lm) / (2 * eps)
            assert grad.vector[i] == pytest.approx(fd, abs=5e-3)
            checked += 1
        assert checked >= 5

    def test_parameter_count_grows_with_depth(self):
        shallow = MLPArchitecture(100, 50, hidden=(16,))
        deep = MLPArchitecture(100, 50, hidden=(16, 16, 16))
        assert deep.n_params > shallow.n_params
