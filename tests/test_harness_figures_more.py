"""Additional tests for the figure builders and per-dataset defaults."""

import pytest

from repro.core.config import AdaptiveSGDConfig
from repro.harness.figures import default_config_for, fig1_heterogeneity


class TestDefaultConfigFor:
    def test_amazon_defaults(self):
        cfg = default_config_for("amazon670k-bench")
        assert cfg.base_lr == pytest.approx(2.0)
        assert cfg.b_max == 128
        assert cfg.mega_batch_batches == 40

    def test_delicious_defaults(self):
        cfg = default_config_for("delicious200k-bench")
        assert cfg.base_lr == pytest.approx(0.8)

    def test_derivation_rules_preserved(self):
        for name in ("amazon670k-bench", "delicious200k-bench", "micro"):
            cfg = default_config_for(name)
            assert cfg.b_min == cfg.b_max // 8
            assert cfg.beta == cfg.b_min / 2
            assert cfg.gamma == 0.9 and cfg.delta == 0.1

    def test_fresh_instance_each_call(self):
        a = default_config_for("micro")
        b = default_config_for("micro")
        assert a is not b  # configs must not be shared across experiments


class TestFig1Knobs:
    def test_more_gpus_more_rows(self):
        rows = fig1_heterogeneity(
            n_gpus=2, dataset="micro", batch_size=32, n_epoch_batches=2
        )
        assert len(rows) == 2

    def test_fastest_has_zero_slowdown(self):
        rows = fig1_heterogeneity(
            dataset="micro", batch_size=32, n_epoch_batches=2
        )
        assert min(r["relative_slowdown"] for r in rows) == 0.0

    def test_seed_changes_assignment(self):
        a = fig1_heterogeneity(
            dataset="micro", batch_size=32, n_epoch_batches=2, seed=0
        )
        b = fig1_heterogeneity(
            dataset="micro", batch_size=32, n_epoch_batches=2, seed=1
        )
        assert [r["epoch_time_s"] for r in a] != [r["epoch_time_s"] for r in b]

    def test_epoch_time_grows_with_batches(self):
        short = fig1_heterogeneity(
            dataset="micro", batch_size=32, n_epoch_batches=2
        )
        long = fig1_heterogeneity(
            dataset="micro", batch_size=32, n_epoch_batches=6
        )
        assert long[0]["epoch_time_s"] > short[0]["epoch_time_s"]
