"""Tests for repro.telemetry.export — Chrome trace, JSONL, summary table."""

import json
import math

import numpy as np
import pytest

from repro.sim.environment import Environment
from repro.telemetry import Telemetry
from repro.telemetry.export import (
    DRIVER_TID,
    iter_jsonl_records,
    jsonable,
    summary_table,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.trace_data import TraceData


@pytest.fixture
def recorded():
    """A two-run recorder with spans, instants, counters, and a NaN arg."""
    tel = Telemetry(label="unit")
    env = Environment()
    tel.attach(env, algorithm="alpha", n_devices=2)

    def proc():
        with tel.span("step.compute", device=1, size=8):
            yield env.timeout(2.0)
        tel.instant("batch.dispatch", device=0, nnz=float("nan"))
        tel.counter("updates", 3, device=0)
        tel.gauge("accuracy", 0.5)

    env.process(proc())
    env.run()
    tel.detach()

    env2 = Environment()
    tel.attach(env2, algorithm="beta")
    with tel.span("merge", branch="uniform"):
        pass
    tel.detach()
    return tel


class TestChromeTrace:
    def test_strict_json_serializable(self, recorded):
        text = json.dumps(to_chrome_trace(recorded), allow_nan=False)
        json.loads(text)  # round-trips

    def test_phases_restricted(self, recorded):
        phases = {e["ph"] for e in to_chrome_trace(recorded)["traceEvents"]}
        assert phases <= {"X", "i", "C", "M"}

    def test_complete_events_carry_microseconds(self, recorded):
        trace = to_chrome_trace(recorded)
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        step = next(e for e in spans if e["name"] == "step.compute")
        assert step["ts"] == 0.0
        assert step["dur"] == pytest.approx(2.0 * 1e6)  # seconds -> us
        for e in spans:
            assert isinstance(e["ts"], float) and isinstance(e["dur"], float)
            assert math.isfinite(e["ts"]) and e["dur"] >= 0.0

    def test_pid_is_run_and_tid_is_device_plus_one(self, recorded):
        trace = to_chrome_trace(recorded)
        step = next(
            e for e in trace["traceEvents"]
            if e["ph"] == "X" and e["name"] == "step.compute"
        )
        assert (step["pid"], step["tid"]) == (0, 2)  # run 0, device 1
        merge = next(
            e for e in trace["traceEvents"]
            if e["ph"] == "X" and e["name"] == "merge"
        )
        assert (merge["pid"], merge["tid"]) == (1, DRIVER_TID)

    def test_counters_exported_as_counter_events(self, recorded):
        trace = to_chrome_trace(recorded)
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        names = {e["name"] for e in counters}
        assert "gpu0/updates" in names and "accuracy" in names
        upd = next(e for e in counters if e["name"] == "gpu0/updates")
        assert upd["args"] == {"value": 3.0}

    def test_metadata_names_processes_and_threads(self, recorded):
        trace = to_chrome_trace(recorded)
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        process_names = {
            e["pid"]: e["args"]["name"]
            for e in meta if e["name"] == "process_name"
        }
        assert process_names[0] == "alpha (2 dev)"
        assert process_names[1] == "beta"
        thread_names = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in meta if e["name"] == "thread_name"
        }
        assert thread_names[(0, DRIVER_TID)] == "driver"
        assert thread_names[(0, 2)] == "gpu1"

    def test_nan_args_become_null(self, recorded):
        trace = to_chrome_trace(recorded)
        dispatch = next(
            e for e in trace["traceEvents"]
            if e["ph"] == "i" and e["name"] == "batch.dispatch"
        )
        assert dispatch["args"]["nnz"] is None
        assert dispatch["s"] == "t"

    def test_write_chrome_trace(self, recorded, tmp_path):
        path = write_chrome_trace(recorded, tmp_path / "out" / "t.trace.json")
        assert path.exists()
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"]
        assert loaded["displayTimeUnit"] == "ms"
        assert loaded["otherData"]["label"] == "unit"
        assert len(loaded["otherData"]["runs"]) == 2


class TestJsonl:
    def test_record_types(self, recorded):
        records = list(iter_jsonl_records(recorded))
        types = {r["type"] for r in records}
        assert {"run", "span", "instant", "counter"} <= types
        runs = [r for r in records if r["type"] == "run"]
        assert [r["run"] for r in runs] == [0, 1]
        assert runs[0]["algorithm"] == "alpha"

    def test_span_record_fields(self, recorded):
        span = next(
            r for r in iter_jsonl_records(recorded)
            if r["type"] == "span" and r["name"] == "step.compute"
        )
        assert span["run"] == 0
        assert span["device"] == 1
        assert span["dur"] == 2.0
        assert span["args"] == {"size": 8}

    def test_write_jsonl_is_strict_json_lines(self, recorded, tmp_path):
        path = write_jsonl(recorded, tmp_path / "events.jsonl")
        lines = path.read_text().splitlines()
        assert lines
        for line in lines:
            json.loads(line)  # every line parses; NaN would raise
        assert '"nnz": null' in path.read_text()


class TestDeepClean:
    def test_nested_nonfinite_floats_become_null(self):
        cleaned = jsonable({
            "x": float("nan"),
            "nested": {"inf": float("inf"), "ok": 1.5},
            "seq": [float("-inf"), 2, "s"],
        })
        assert cleaned == {
            "x": None,
            "nested": {"inf": None, "ok": 1.5},
            "seq": [None, 2, "s"],
        }
        json.dumps(cleaned, allow_nan=False)

    def test_numpy_scalars_and_arrays(self):
        cleaned = jsonable({
            "i": np.int64(7),
            "f": np.float32(0.5),
            "bad": np.float64("nan"),
            "arr": np.array([1.0, 2.0]),
        })
        assert cleaned == {"i": 7, "f": 0.5, "bad": None, "arr": [1.0, 2.0]}
        json.dumps(cleaned, allow_nan=False)

    def test_non_primitive_falls_back_to_str(self):
        assert isinstance(jsonable(object()), str)
        assert jsonable({"p": Environment}) == {"p": str(Environment)}

    def test_nested_nan_in_span_args_exports_strictly(self, tmp_path):
        tel = Telemetry()
        tel.attach(Environment(), algorithm="deep")
        with tel.span("merge", stats={"ratio": float("nan"),
                                      "sizes": np.array([3, 4])}):
            pass
        tel.detach()
        json.dumps(to_chrome_trace(tel), allow_nan=False)
        path = write_jsonl(tel, tmp_path / "deep.jsonl")
        span = next(
            json.loads(line) for line in path.read_text().splitlines()
            if json.loads(line)["type"] == "span"
        )
        assert span["args"]["stats"] == {"ratio": None, "sizes": [3, 4]}


class TestEmptyAndZeroSpanRuns:
    def test_empty_recorder_round_trips(self, tmp_path):
        tel = Telemetry(label="empty")
        chrome = to_chrome_trace(tel)
        json.dumps(chrome, allow_nan=False)
        assert chrome["traceEvents"] == []
        path = write_jsonl(tel, tmp_path / "empty.jsonl")
        data = TraceData.from_jsonl(path)
        assert data.label == "empty"
        assert data.runs == []

    def test_attached_but_zero_span_run_round_trips(self, tmp_path):
        tel = Telemetry(label="zero")
        tel.attach(Environment(), algorithm="noop", n_devices=2)
        tel.detach()
        path = write_jsonl(tel, tmp_path / "zero.jsonl")
        data = TraceData.from_jsonl(path)
        assert len(data.runs) == 1
        run = data.run(0)
        assert run.spans == [] and run.duration() == 0.0
        chrome = to_chrome_trace(tel)
        meta = [e for e in chrome["traceEvents"] if e["ph"] == "M"]
        assert meta  # process metadata still names the empty run
        loaded = TraceData.from_chrome(chrome)
        assert loaded.run(0).meta["algorithm"] == "noop"


class TestRoundTrip:
    def test_jsonl_round_trip_preserves_stream(self, recorded, tmp_path):
        path = write_jsonl(recorded, tmp_path / "rt.jsonl")
        data = TraceData.from_jsonl(path)
        assert data.label == "unit"
        assert len(data.runs) == 2
        run0 = data.run(0)
        (step,) = run0.spans_named("step.compute")
        assert step.dur == 2.0 and step.device == 1
        assert step.args == {"size": 8}
        assert run0.series("gpu0/updates") == [(2.0, 3.0)]
        # Re-normalizing the archive equals normalizing the recorder.
        live = TraceData.from_telemetry(recorded)
        assert [s.name for r in live.runs for s in r.spans] == \
               [s.name for r in data.runs for s in r.spans]

    def test_chrome_round_trip_preserves_events(self, recorded, tmp_path):
        path = write_chrome_trace(recorded, tmp_path / "rt.trace.json")
        data = TraceData.from_chrome(path)
        assert data.label == "unit"
        assert len(data.runs) == 2
        (step,) = data.run(0).spans_named("step.compute")
        assert step.dur == pytest.approx(2.0)
        assert step.device == 1
        (merge,) = data.run(1).spans_named("merge")
        assert merge.device is None and merge.args["branch"] == "uniform"

    def test_jsonl_stream_carries_trace_label_header(self, recorded):
        first = next(iter_jsonl_records(recorded))
        assert first == {"type": "trace", "label": "unit"}


class TestSummaryTable:
    def test_lists_spans_with_counts(self, recorded):
        out = summary_table(recorded)
        assert "step.compute" in out and "merge" in out
        assert "2 run(s)" in out

    def test_empty_recorder_renders(self):
        out = summary_table(Telemetry())
        assert "0 run(s)" in out
