"""Tests for repro.sim.environment — scheduling and process semantics."""

import pytest

from repro.exceptions import SimulationError
from repro.sim.environment import Environment


class TestClock:
    def test_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_custom_initial_time(self):
        assert Environment(initial_time=5.0).now == 5.0

    def test_run_until_advances_clock_exactly(self):
        env = Environment()
        env.timeout(10)
        final = env.run(until=4.0)
        assert final == 4.0 == env.now

    def test_run_until_past_rejected(self):
        env = Environment(initial_time=2.0)
        with pytest.raises(SimulationError):
            env.run(until=1.0)

    def test_peek_empty_is_inf(self):
        assert Environment().peek() == float("inf")

    def test_step_on_empty_rejected(self):
        with pytest.raises(SimulationError):
            Environment().step()


class TestDeterminism:
    def test_equal_time_events_fire_in_creation_order(self):
        env = Environment()
        order = []

        def proc(tag):
            yield env.timeout(1.0)
            order.append(tag)

        for tag in ("a", "b", "c"):
            env.process(proc(tag))
        env.run()
        assert order == ["a", "b", "c"]

    def test_replay_identical(self):
        def build_and_run():
            env = Environment()
            log = []

            def proc(tag, delay):
                yield env.timeout(delay)
                log.append((env.now, tag))

            env.process(proc("x", 2))
            env.process(proc("y", 1))
            env.process(proc("z", 2))
            env.run()
            return log

        assert build_and_run() == build_and_run()


class TestProcesses:
    def test_return_value_becomes_event_value(self):
        env = Environment()

        def proc():
            yield env.timeout(1)
            return 42

        p = env.process(proc())
        assert env.run_until_complete(p) == 42

    def test_process_waits_on_process(self):
        env = Environment()

        def inner():
            yield env.timeout(2)
            return "inner-done"

        def outer():
            result = yield env.process(inner())
            return (env.now, result)

        p = env.process(outer())
        env.run()
        assert p.value == (2.0, "inner-done")

    def test_yield_non_event_crashes_simulation(self):
        env = Environment()

        def bad():
            yield 42

        env.process(bad())
        with pytest.raises(SimulationError, match="non-event"):
            env.run()

    def test_unhandled_exception_surfaces(self):
        env = Environment()

        def bad():
            yield env.timeout(1)
            raise ValueError("inside process")

        env.process(bad())
        with pytest.raises(SimulationError, match="crashed"):
            env.run()

    def test_waiter_can_catch_process_failure(self):
        env = Environment()

        def bad():
            yield env.timeout(1)
            raise ValueError("expected")

        def waiter():
            try:
                yield env.process(bad())
            except ValueError:
                return "caught"

        p = env.process(waiter())
        env.run()
        assert p.value == "caught"

    def test_is_alive(self):
        env = Environment()

        def proc():
            yield env.timeout(3)

        p = env.process(proc())
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_non_generator_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.process(lambda: None)

    def test_yield_already_processed_event_resumes(self):
        env = Environment()
        t = env.timeout(1, "v")
        env.run()

        def proc():
            val = yield t
            return val

        p = env.process(proc())
        env.run()
        assert p.value == "v"

    def test_deadlock_detected(self):
        env = Environment()

        def stuck():
            yield env.event()  # never triggered

        p = env.process(stuck())
        with pytest.raises(SimulationError, match="deadlock"):
            env.run_until_complete(p)
