"""Tests for repro.api — the unified trainer construction front door."""

import numpy as np
import pytest

from repro.api import (
    TRAINER_REGISTRY,
    make_trainer,
    register_trainer,
    trainer_class,
    trainer_names,
)
from repro.core.adaptive import AdaptiveSGDTrainer
from repro.exceptions import ConfigurationError
from repro.harness.experiment import ALGORITHMS, ExperimentSpec
from repro.harness.trainer_base import TrainerBase

BUDGET = 0.02


def micro_spec(**overrides):
    return ExperimentSpec(
        dataset="micro", gpu_counts=(2,), time_budget_s=BUDGET, **overrides
    )


def curve(trace):
    """The comparable numeric identity of a run."""
    return (
        np.asarray([p.time_s for p in trace.points]),
        np.asarray([p.accuracy for p in trace.points]),
        np.asarray([p.loss for p in trace.points]),
    )


class TestRegistry:
    def test_builtin_names(self):
        assert trainer_names() == [
            "adaptive", "elastic", "tensorflow", "crossbow",
            "slide", "async", "minibatch",
        ]

    def test_algorithms_alias_is_live_registry(self):
        assert ALGORITHMS is TRAINER_REGISTRY

    def test_trainer_class_lookup(self):
        assert trainer_class("adaptive") is AdaptiveSGDTrainer
        with pytest.raises(ConfigurationError, match="unknown trainer"):
            trainer_class("sgd-9000")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_trainer("adaptive", AdaptiveSGDTrainer)
        # overwrite=True is the explicit escape hatch (restore the entry).
        register_trainer("adaptive", AdaptiveSGDTrainer, overwrite=True,
                         deprecated_kwargs={"use_governor": "governor"})

    def test_non_trainer_class_rejected(self):
        with pytest.raises(ConfigurationError, match="TrainerBase subclass"):
            register_trainer("bogus", dict)
        with pytest.raises(ConfigurationError, match="non-empty"):
            register_trainer("", AdaptiveSGDTrainer)


class TestMakeTrainer:
    def test_parity_with_direct_constructor(self):
        """make_trainer and the direct constructor run bit-identically."""
        spec = micro_spec()
        from repro.data.registry import load_task

        task = load_task(spec.dataset, seed=spec.seed)
        direct = AdaptiveSGDTrainer(
            task, spec.build_server(2), spec.config,
            hidden=spec.hidden, init_seed=spec.seed, data_seed=spec.seed,
            eval_samples=spec.eval_samples,
        )
        via_api = make_trainer("adaptive", spec, task=task, n_gpus=2)
        t_d, acc_d, loss_d = curve(direct.run(time_budget_s=BUDGET))
        t_a, acc_a, loss_a = curve(via_api.run(time_budget_s=BUDGET))
        assert np.array_equal(t_d, t_a)
        assert np.array_equal(acc_d, acc_a)
        assert np.array_equal(loss_d, loss_a, equal_nan=True)

    def test_default_spec(self):
        trainer = make_trainer("minibatch")
        assert isinstance(trainer, TrainerBase)
        assert trainer.server.n_gpus == ExperimentSpec().gpu_counts[0]

    def test_unknown_trainer_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown trainer"):
            make_trainer("sgd-9000", micro_spec())

    def test_unknown_option_rejected_early(self):
        with pytest.raises(ConfigurationError, match="unknown option"):
            make_trainer("adaptive", micro_spec(), warp_speed=9)

    def test_options_override_spec_defaults(self):
        trainer = make_trainer("adaptive", micro_spec(), hidden=(16,))
        assert trainer.arch.hidden == (16,)

    def test_n_gpus_sizes_server(self):
        trainer = make_trainer("elastic", micro_spec(), n_gpus=3)
        assert trainer.server.n_gpus == 3


class TestDeprecatedKwargs:
    def test_use_governor_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="use_governor"):
            trainer = make_trainer("adaptive", micro_spec(), use_governor=True)
        assert trainer.governor is True
        assert trainer.use_governor is True  # property alias

    def test_mu_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="mu"):
            trainer = make_trainer("crossbow", micro_spec(), mu=0.2)
        assert trainer.elasticity == pytest.approx(0.2)
        assert trainer.mu == pytest.approx(0.2)  # property alias

    def test_new_spelling_does_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            make_trainer("adaptive", micro_spec(), governor=True)
            make_trainer("crossbow", micro_spec(), elasticity=0.2)

    def test_positional_run_budget_deprecated(self):
        trainer = make_trainer("minibatch", micro_spec())
        with pytest.warns(DeprecationWarning, match="time_budget_s"):
            trainer.run(0.005)
