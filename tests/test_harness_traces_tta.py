"""Tests for repro.harness.traces and repro.harness.tta."""

import pytest

from repro.exceptions import ConfigurationError
from repro.harness.traces import TracePoint, TrainingTrace
from repro.harness.tta import (
    default_targets,
    speedup,
    tta_table,
    winner_at_time,
)


def make_trace(accs, dt=1.0, algorithm="A", n=4):
    trace = TrainingTrace(algorithm=algorithm, dataset="d", n_devices=n)
    for i, acc in enumerate(accs):
        trace.record_point(
            TracePoint(
                time_s=i * dt, epochs=float(i), updates=i * 10,
                samples=i * 100, accuracy=acc, loss=1.0 / (i + 1),
            )
        )
    return trace


class TestTrainingTrace:
    def test_basic_metrics(self):
        trace = make_trace([0.0, 0.3, 0.5, 0.45])
        assert trace.final_accuracy == 0.45
        assert trace.best_accuracy == 0.5
        assert trace.total_time == 3.0
        assert trace.total_epochs == 3.0
        assert len(trace) == 4

    def test_time_to_accuracy(self):
        trace = make_trace([0.0, 0.3, 0.5])
        assert trace.time_to_accuracy(0.3) == 1.0
        assert trace.time_to_accuracy(0.31) == 2.0
        assert trace.time_to_accuracy(0.9) is None

    def test_epochs_to_accuracy(self):
        trace = make_trace([0.0, 0.3, 0.5])
        assert trace.epochs_to_accuracy(0.5) == 2.0

    def test_accuracy_at_time_is_running_best(self):
        trace = make_trace([0.0, 0.5, 0.3])
        assert trace.accuracy_at_time(0.5) == 0.0
        assert trace.accuracy_at_time(1.0) == 0.5
        assert trace.accuracy_at_time(10.0) == 0.5  # best so far, not last

    def test_time_regression_rejected(self):
        trace = make_trace([0.1])
        with pytest.raises(ConfigurationError):
            trace.record_point(
                TracePoint(-1.0, 0.0, 0, 0, 0.2, 1.0)
            )

    def test_series_axes(self):
        trace = make_trace([0.0, 0.4])
        assert trace.series("time", "accuracy") == [(0.0, 0.0), (1.0, 0.4)]
        assert trace.series("epochs", "loss")[1] == (1.0, 0.5)
        with pytest.raises(ConfigurationError):
            trace.series("bogus", "accuracy")

    def test_batch_size_series(self):
        trace = make_trace([0.0, 0.4])
        trace.batch_size_history = [(64, 32), (70, 30)]
        assert trace.batch_size_series(0) == [(0.0, 64.0), (1.0, 70.0)]
        assert trace.batch_size_series(1)[1] == (1.0, 30.0)
        with pytest.raises(ConfigurationError):
            trace.batch_size_series(5)

    def test_perturbation_frequency(self):
        trace = make_trace([0.0])
        trace.perturbation_history = [True, False, True, True]
        assert trace.perturbation_frequency() == 0.75
        assert make_trace([0.0]).perturbation_frequency() == 0.0

    def test_label(self):
        assert make_trace([0.1], n=4).label() == "A (4 GPUs)"
        assert make_trace([0.1], n=1).label() == "A (1 GPU)"

    def test_empty_trace_defaults(self):
        trace = TrainingTrace(algorithm="A", dataset="d", n_devices=1)
        assert trace.final_accuracy == 0.0
        assert trace.best_accuracy == 0.0
        assert trace.total_time == 0.0


class TestDefaultTargets:
    def test_fractions_of_overall_best(self):
        traces = [make_trace([0.0, 0.4]), make_trace([0.0, 0.8])]
        targets = default_targets(traces, fractions=(0.5, 1.0))
        assert targets == [0.4, 0.8]

    def test_no_positive_accuracy_rejected(self):
        with pytest.raises(ConfigurationError):
            default_targets([make_trace([0.0, 0.0])])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            default_targets([])


class TestTtaTable:
    def test_entries_per_trace_and_target(self):
        traces = [make_trace([0.0, 0.5], algorithm="A"),
                  make_trace([0.0, 0.2], algorithm="B")]
        entries = tta_table(traces, targets=[0.3])
        assert len(entries) == 2
        a, b = entries
        assert a.reached and a.time_s == 1.0
        assert not b.reached and b.time_s is None


class TestSpeedup:
    def test_ratio(self):
        slow = make_trace([0.0, 0.0, 0.0, 0.5], dt=1.0)
        fast = make_trace([0.0, 0.5], dt=1.0)
        assert speedup(slow, fast, 0.5) == pytest.approx(3.0)

    def test_unreached_returns_none(self):
        a = make_trace([0.0, 0.5])
        b = make_trace([0.0, 0.1])
        assert speedup(a, b, 0.5) is None


class TestWinnerAtTime:
    def test_picks_best(self):
        traces = {
            "a": make_trace([0.0, 0.3]),
            "b": make_trace([0.0, 0.6]),
        }
        label, acc = winner_at_time(traces, 1.0)
        assert label == "b" and acc == 0.6

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            winner_at_time({}, 1.0)
